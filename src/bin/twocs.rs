//! `twocs` — command-line front end for the Comp-vs-Comm analysis.
//!
//! ```text
//! twocs list                         # registered experiments
//! twocs run fig10 [--csv]            # regenerate one artifact
//! twocs run all [--jobs N]           # everything, paper order, in parallel
//! twocs sweep [--h 4096,65536] [--tp 16,64,256] [--jobs N] [--csv]
//! twocs analyze --h 16384 --sl 2048 --b 1 --tp 64 [--dp 8] [--flop-vs-bw 4]
//! twocs serve [--addr 127.0.0.1:7878] [--jobs N] [--queue N] [--max-conns N]
//! ```
//!
//! `run` and `sweep` fan work across `--jobs` worker threads; stdout is
//! byte-identical to a serial run (results are collected in deterministic
//! order) and the sweep summary — per-task wall times and memo-cache hit
//! rates — goes to stderr.
//!
//! Observability (see the README's "Observability" section):
//! `--trace <path>` writes a Chrome-trace JSON of the run (sweep-pool
//! task lifecycles plus every simulator timeline; open it in Perfetto or
//! `chrome://tracing`), `--metrics` prints the metrics registry — memo
//! cache hit rates, queue depths, per-worker busy time — to stderr.
//! `TWOCS_TRACE_CLOCK=logical` switches trace timestamps from wall time
//! to the deterministic logical clock, making traces byte-identical at
//! any `--jobs` count. Neither flag touches stdout.

use std::process::ExitCode;
use std::sync::Arc;
use twocs::analysis::sweep::GridSweep;
use twocs::analysis::{experiments, serialized};
use twocs::hw::{DeviceSpec, HwEvolution};
use twocs::obs::{TraceMode, Tracer};
use twocs::sim::Engine;
use twocs::transformer::graph_builder::IterationBuilder;
use twocs::transformer::{Hyperparams, ParallelConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  twocs list\n  twocs run <experiment-id|all> [--csv] [--jobs <N>] [--trace <path>] [--metrics]\n  twocs sweep [--h <H,..>] [--sl <SL,..>] [--tp <TP,..>] [--flop-vs-bw <R,..>] [--experts <E,..>] [--top-k <K,..>] [--stages <S,..>] [--micro-batches <M,..>] [--sp <SP,..>] [--workload training|prefill|decode] [--b <B>] [--method sim|proj] [--planner auto|naive|factored] [--csv] [--jobs <N>] [--listen <host:port>] [--min-workers <N>] [--min-workers-timeout-ms <MS>] [--chunk <N>] [--pipeline <N>] [--journal <path>] [--resume <path>] [--refine comm-frac=<F>] [--refine-tol <T>] [--trace <path>] [--metrics]\n  twocs worker --connect <host:port> [--jobs <N>] [--trace <path>] [--metrics]\n  twocs analyze --h <H> [--sl <SL>] [--b <B>] [--tp <TP>] [--dp <DP>] [--flop-vs-bw <R>] [--trace <path>] [--metrics]\n  twocs serve [--addr <host:port>] [--listen <host:port>] [--pipeline <N>] [--jobs <N>] [--queue <N>] [--request-timeout-ms <MS>] [--idle-timeout-ms <MS>] [--max-conns <N>] [--max-requests-per-conn <N>] [--no-response-cache] [--journal-dir <dir>] [--trace <path>] [--metrics]"
    );
    ExitCode::FAILURE
}

/// Observability wiring parsed from `--trace <path>` / `--metrics`.
///
/// When `--trace` is given, a tracer is installed globally before the
/// command runs (wall clock by default; `TWOCS_TRACE_CLOCK=logical`
/// selects the deterministic logical clock). [`ObsSession::finish`]
/// writes the Chrome-trace JSON and prints the metrics summary; both
/// stay off stdout by construction.
struct ObsSession {
    trace_path: Option<String>,
    metrics: bool,
    tracer: Option<Arc<Tracer>>,
}

impl ObsSession {
    fn from_args(args: &[String]) -> Self {
        let trace_path = str_flag(args, "--trace").map(ToOwned::to_owned);
        let tracer = trace_path.is_some().then(|| {
            let mode = match std::env::var("TWOCS_TRACE_CLOCK").as_deref() {
                Ok("logical") => TraceMode::Logical,
                _ => TraceMode::Wall,
            };
            let tracer = Arc::new(Tracer::new(mode));
            twocs::obs::install_global(tracer.clone());
            tracer
        });
        Self {
            trace_path,
            metrics: args.iter().any(|a| a == "--metrics"),
            tracer,
        }
    }

    /// Export the trace and/or metrics summary. Returns an error only
    /// when the trace file cannot be written.
    fn finish(self) -> Result<(), String> {
        if let (Some(path), Some(tracer)) = (&self.trace_path, &self.tracer) {
            twocs::obs::uninstall_global();
            let json = twocs::obs::chrome::render(&tracer.snapshot());
            debug_assert!(twocs::obs::json::validate(&json).is_ok());
            std::fs::write(path, &json).map_err(|e| format!("cannot write trace {path}: {e}"))?;
            eprintln!(
                "trace: {} spans written to {path} (open in Perfetto / chrome://tracing)",
                tracer.len()
            );
        }
        if self.metrics {
            eprintln!("{}", twocs::obs::metrics::global().summary());
        }
        Ok(())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            for def in experiments::all() {
                println!("{:<8} {:<38} {}", def.id, def.title, def.paper_claim);
            }
            ExitCode::SUCCESS
        }
        Some("run") => {
            let Some(id) = args.get(1) else {
                return usage();
            };
            let csv = args.iter().any(|a| a == "--csv");
            let jobs = match jobs_flag(&args) {
                Ok(jobs) => jobs.unwrap_or(1),
                Err(e) => {
                    eprintln!("error: {e}");
                    return usage();
                }
            };
            let device = DeviceSpec::mi210();
            let defs: Vec<_> = if id == "all" {
                experiments::all()
            } else {
                match experiments::by_id(id) {
                    Some(d) => vec![d],
                    None => {
                        eprintln!("unknown experiment `{id}`; try `twocs list`");
                        return ExitCode::FAILURE;
                    }
                }
            };
            let obs = ObsSession::from_args(&args);
            let run = twocs::analysis::sweep::run_experiments(&device, &defs, jobs);
            for res in &run.results {
                match &res.output {
                    Ok(out) => {
                        if csv {
                            println!("{}", out.to_csv());
                        } else {
                            println!("{}", out.to_ascii());
                        }
                    }
                    Err(e) => eprintln!("experiment `{}` failed: {e}", res.id),
                }
            }
            eprintln!("{}", run.summary);
            if let Err(e) = obs.finish() {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
            if run.summary.failures > 0 {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Some("sweep") => match sweep(&args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Some("worker") => match worker(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Some("analyze") => match analyze(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Some("serve") => match serve(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        _ => usage(),
    }
}

fn flag(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Strict `--jobs` parsing: absent → `None`; present it must be a
/// positive integer (`--jobs 0` and garbage are usage errors instead of
/// being silently defaulted).
fn jobs_flag(args: &[String]) -> Result<Option<usize>, String> {
    let Some(i) = args.iter().position(|a| a == "--jobs") else {
        return Ok(None);
    };
    let raw = args
        .get(i + 1)
        .ok_or("--jobs requires a value (a positive thread count)")?;
    raw.parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
        .map(Some)
        .ok_or_else(|| format!("--jobs {raw}: expected a positive thread count"))
}

/// Default thread count when `--jobs` is omitted: one per available
/// core, or 1 if the platform cannot say.
fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(1)
}

fn str_flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Parse a comma-separated numeric list flag (e.g. `--h 4096,16384`).
fn list_flag<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<Vec<T>>, String> {
    let Some(raw) = str_flag(args, name) else {
        return Ok(None);
    };
    raw.split(',')
        .map(|v| {
            v.trim()
                .parse()
                .map_err(|_| format!("invalid value `{v}` for {name}"))
        })
        .collect::<Result<Vec<T>, _>>()
        .map(Some)
}

fn sweep(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let mut grid = GridSweep::default();
    if let Some(hs) = list_flag(args, "--h")? {
        grid.hs = hs;
    }
    if let Some(sls) = list_flag(args, "--sl")? {
        grid.sls = sls;
    }
    if let Some(tps) = list_flag(args, "--tp")? {
        grid.tps = tps;
    }
    if let Some(ratios) = list_flag(args, "--flop-vs-bw")? {
        grid.flop_vs_bw = ratios;
    }
    if let Some(experts) = list_flag(args, "--experts")? {
        grid.experts = experts;
    }
    if let Some(top_ks) = list_flag(args, "--top-k")? {
        grid.top_ks = top_ks;
    }
    if let Some(stages) = list_flag(args, "--stages")? {
        grid.stages = stages;
    }
    if let Some(micro_batches) = list_flag(args, "--micro-batches")? {
        grid.micro_batches = micro_batches;
    }
    if let Some(sps) = list_flag(args, "--sp")? {
        grid.sps = sps;
    }
    if let Some(raw) = str_flag(args, "--workload") {
        grid.workload = raw.parse::<twocs::analysis::sweep::Workload>()?;
    }
    if let Some(b) = flag(args, "--b") {
        grid.batch = b;
    }
    grid.method = match str_flag(args, "--method") {
        None | Some("sim") => serialized::Method::Simulation,
        Some("proj") => serialized::Method::Projection,
        Some(other) => return Err(format!("unknown method `{other}` (sim|proj)").into()),
    };
    let refine_raw = str_flag(args, "--refine");
    if refine_raw.is_some() {
        if matches!(str_flag(args, "--method"), Some("sim")) {
            return Err(
                "--refine requires --method proj (simulation probes would cost more \
                 than the refinement avoids)"
                    .into(),
            );
        }
        // Refinement bisects the projection's closed form; omitting
        // --method means proj here, not the dense sweep's sim default.
        grid.method = serialized::Method::Projection;
    }
    let planner = match str_flag(args, "--planner") {
        None => twocs::analysis::PlannerMode::Auto,
        Some(raw) => raw.parse::<twocs::analysis::PlannerMode>()?,
    };
    // Omitted `--jobs` means "use the machine": sweeps are embarrassingly
    // parallel, so default to every available core. Explicit values are
    // still strictly validated by `jobs_flag`.
    let jobs = jobs_flag(args)?.unwrap_or_else(default_jobs);
    let csv = args.iter().any(|a| a == "--csv");

    if let Some(h) = grid.hs.iter().find(|&&h| h == 0 || h % 256 != 0) {
        return Err(format!(
            "--h {h}: hidden sizes must be non-zero multiples of 256 (the sweep fixes 256-way head sharding)"
        )
        .into());
    }
    if grid.sls.contains(&0) || grid.tps.contains(&0) || grid.batch == 0 {
        return Err("--sl, --tp, and --b values must be non-zero".into());
    }
    if [
        &grid.experts,
        &grid.top_ks,
        &grid.stages,
        &grid.micro_batches,
        &grid.sps,
    ]
    .iter()
    .any(|axis| axis.contains(&0))
    {
        return Err(
            "--experts, --top-k, --stages, --micro-batches, and --sp values must be non-zero"
                .into(),
        );
    }
    if !grid
        .experts
        .iter()
        .any(|&e| grid.top_ks.iter().any(|&k| k <= e))
    {
        return Err("--top-k exceeds --experts for every requested combination".into());
    }
    let extended_axes = grid.experts.iter().any(|&e| e > 1)
        || grid.stages.iter().any(|&s| s > 1)
        || grid.sps.iter().any(|&s| s > 1);
    use twocs::analysis::sweep::Workload;
    if grid.method == serialized::Method::Simulation && grid.workload != Workload::Training {
        return Err(format!(
            "--workload {} requires --method proj (the simulation engine models training only)",
            grid.workload
        )
        .into());
    }
    if grid.method == serialized::Method::Simulation && extended_axes {
        return Err(
            "--experts/--stages/--sp above 1 require --method proj (the simulation engine \
             models the dense TP iteration only)"
                .into(),
        );
    }
    // `point_count()` walks the pruned index without materializing the
    // grid — on million-point sweeps, `points()` here would cost more
    // peak memory than the entire streaming evaluation.
    if grid.point_count() == 0 {
        return Err("grid has no realistic points; widen --h/--tp".into());
    }
    let device = DeviceSpec::mi210();
    let obs = ObsSession::from_args(args);

    // `--refine` replaces the dense sweep with adaptive bisection along
    // the flop-vs-bw axis: per surviving shape, find the hardware-
    // evolution ratio where the chosen metric crosses the threshold.
    if let Some(raw) = refine_raw {
        if str_flag(args, "--listen").is_some()
            || str_flag(args, "--journal").is_some()
            || str_flag(args, "--resume").is_some()
        {
            return Err("--refine is incompatible with --listen, --journal, and --resume".into());
        }
        let tol = match str_flag(args, "--refine-tol") {
            None => 0.05,
            Some(raw) => raw
                .parse::<f64>()
                .map_err(|_| format!("--refine-tol {raw}: expected a positive number"))?,
        };
        let spec = twocs::store::RefineSpec::parse(raw, tol)?;
        let result = twocs::store::refine_frontier(&device, &grid, &spec)?;
        let crossed = result
            .rows
            .iter()
            .filter(|r| matches!(r.crossing, twocs::store::Crossing::Crossed { .. }))
            .count();
        eprintln!(
            "refine: {} shape(s), {} crossed; {} evaluation(s) vs {} dense-equivalent ({:.1}x fewer)",
            result.rows.len(),
            crossed,
            result.evaluations,
            result.dense_equivalent,
            result.dense_equivalent as f64 / result.evaluations.max(1) as f64
        );
        if csv {
            println!("{}", result.table.to_csv());
        } else {
            println!("{}", result.table.to_ascii());
        }
        obs.finish()?;
        return Ok(ExitCode::SUCCESS);
    }

    // `--journal` / `--resume` switch to the streaming store: rows are
    // rendered to stdout as chunks complete (bounded memory), every
    // completed chunk is journaled durably first, and a killed run
    // picks up from the last durable chunk with `--resume <journal>`.
    if let Some(code) = sweep_streaming(args, &grid, &device, jobs, csv)? {
        obs.finish()?;
        return Ok(code);
    }

    // `--listen` turns this process into a sweep coordinator: workers
    // (`twocs worker --connect`) pull chunk leases over TCP and the
    // merged table is byte-identical to the local run below — the
    // address line and distribution summary stay on stderr for exactly
    // that reason.
    let (table, failures) = if let Some(listen) = str_flag(args, "--listen") {
        let min_workers = flag(args, "--min-workers").unwrap_or(0) as usize;
        let min_workers_timeout = std::time::Duration::from_millis(
            flag(args, "--min-workers-timeout-ms").unwrap_or(10_000),
        );
        let mut dist_cfg = twocs::dist::CoordinatorConfig {
            listen: listen.to_owned(),
            local_jobs: jobs,
            ..twocs::dist::CoordinatorConfig::default()
        };
        if let Some(chunk) = flag(args, "--chunk") {
            dist_cfg.chunk_size = chunk.max(1) as usize;
        }
        if let Some(pipeline) = flag(args, "--pipeline") {
            dist_cfg.pipeline = pipeline.max(1) as usize;
        }
        let coordinator = twocs::dist::Coordinator::bind(dist_cfg)
            .map_err(|e| format!("cannot bind coordinator address `{listen}`: {e}"))?;
        eprintln!(
            "twocs sweep: coordinating on {} (workers: `twocs worker --connect {}`)",
            coordinator.local_addr(),
            coordinator.local_addr()
        );
        let present = coordinator.wait_for_workers(min_workers, min_workers_timeout);
        if present < min_workers {
            eprintln!(
                "twocs sweep: {present}/{min_workers} worker(s) after {min_workers_timeout:?}; degrading to local evaluation"
            );
        }
        let (table, dist_summary) = coordinator.run_sweep(&grid, &device)?;
        eprintln!("{dist_summary}");
        let failures = table
            .rows
            .iter()
            .filter(|row| row.iter().any(|cell| cell == "error"))
            .count();
        (table, failures)
    } else {
        let (table, summary) = grid.run_mode(&device, jobs, planner);
        let failures = summary.failures;
        eprintln!("{summary}");
        (table, failures)
    };

    if csv {
        println!("{}", table.to_csv());
    } else {
        println!("{}", table.to_ascii());
    }
    obs.finish()?;
    Ok(if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

/// The `--journal` / `--resume` streaming-store sweep path. Returns
/// `Ok(None)` when neither flag is present so [`sweep`] falls through
/// to the in-memory table path.
fn sweep_streaming(
    args: &[String],
    grid: &GridSweep,
    device: &DeviceSpec,
    jobs: usize,
    csv: bool,
) -> Result<Option<ExitCode>, Box<dyn std::error::Error>> {
    use twocs::store::{run_streaming, SweepSpec, SweepStore};

    let journal = str_flag(args, "--journal");
    let resume = str_flag(args, "--resume");
    if journal.is_none() && resume.is_none() {
        return Ok(None);
    }
    if journal.is_some() && resume.is_some() {
        return Err("--journal starts a fresh journal, --resume continues one; pick one".into());
    }
    if !csv {
        return Err(
            "--journal/--resume stream rows incrementally; add --csv (the ascii \
                    table would need the whole grid in memory)"
                .into(),
        );
    }

    let out: Box<dyn std::io::Write + Send> = Box::new(std::io::stdout());
    let mut store = match resume {
        Some(path) => {
            // The journal fixes the grid; axis flags would silently
            // disagree with it.
            for f in [
                "--h",
                "--sl",
                "--tp",
                "--flop-vs-bw",
                "--experts",
                "--top-k",
                "--stages",
                "--micro-batches",
                "--sp",
                "--workload",
                "--b",
                "--method",
                "--chunk",
            ] {
                if args.iter().any(|a| a == f) {
                    return Err(format!(
                        "{f} conflicts with --resume: the journaled spec fixes the grid"
                    )
                    .into());
                }
            }
            SweepStore::resume(std::path::Path::new(path), out)?
        }
        None => {
            // Default chunk size balances fsync frequency against lost
            // recompute on crash; 512 points ≈ tens of KiB per append.
            let chunk_size = flag(args, "--chunk").unwrap_or(512).max(1) as u32;
            let spec = SweepSpec {
                sweep: grid.clone(),
                chunk_size,
                device_name: device.name().to_owned(),
                device_fingerprint: device.fingerprint(),
            };
            SweepStore::create(spec, out, journal.map(std::path::Path::new))?
        }
    };

    let dist_summary = if let Some(listen) = str_flag(args, "--listen") {
        if store.spec().device_fingerprint != device.fingerprint() {
            return Err(format!(
                "journaled device \"{}\" does not match this build's \"{}\"",
                store.spec().device_name,
                device.name()
            )
            .into());
        }
        let min_workers = flag(args, "--min-workers").unwrap_or(0) as usize;
        let min_workers_timeout = std::time::Duration::from_millis(
            flag(args, "--min-workers-timeout-ms").unwrap_or(10_000),
        );
        let mut dist_cfg = twocs::dist::CoordinatorConfig {
            listen: listen.to_owned(),
            local_jobs: jobs,
            ..twocs::dist::CoordinatorConfig::default()
        };
        if let Some(pipeline) = flag(args, "--pipeline") {
            dist_cfg.pipeline = pipeline.max(1) as usize;
        }
        let coordinator = twocs::dist::Coordinator::bind(dist_cfg)
            .map_err(|e| format!("cannot bind coordinator address `{listen}`: {e}"))?;
        eprintln!(
            "twocs sweep: coordinating on {} (workers: `twocs worker --connect {}`)",
            coordinator.local_addr(),
            coordinator.local_addr()
        );
        let present = coordinator.wait_for_workers(min_workers, min_workers_timeout);
        if present < min_workers {
            eprintln!(
                "twocs sweep: {present}/{min_workers} worker(s) after {min_workers_timeout:?}; degrading to local evaluation"
            );
        }
        let sweep = store.spec().sweep.clone();
        let chunk_size = store.spec().chunk_size.max(1) as usize;
        let completed = store.completed().clone();
        let summary = coordinator.run_sweep_streaming(
            &sweep,
            device,
            chunk_size,
            &completed,
            &mut |chunk, values| store.record(chunk, values).map(|_| ()),
        )?;
        Some(summary)
    } else {
        run_streaming(device, &mut store, jobs)?;
        None
    };

    let report = store.finish()?;
    // Parity with `println!("{}", table.to_csv())`: one extra newline
    // after the final row, so streamed and in-memory stdout are
    // byte-identical.
    println!();
    if let Some(summary) = dist_summary {
        eprintln!("{summary}");
    }
    eprintln!(
        "store: {} row(s), {} failure(s), {} replayed chunk(s), {} spilled byte(s), {} merge pass(es)",
        report.rows,
        report.failures,
        report.replayed_chunks,
        report.spilled_bytes,
        report.merge_passes
    );
    Ok(Some(if report.failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }))
}

/// `twocs worker`: connect to a sweep coordinator and evaluate chunk
/// leases until it says `Done`. All chatter is on stderr; a worker never
/// writes the sweep table.
fn worker(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let connect = str_flag(args, "--connect").ok_or("--connect <host:port> is required")?;
    let jobs = jobs_flag(args)?.unwrap_or(1);
    let obs = ObsSession::from_args(args);
    eprintln!("twocs worker: connecting to {connect}");
    let report = twocs::dist::run_worker(&twocs::dist::WorkerConfig::new(connect, jobs))?;
    eprintln!("{report}");
    obs.finish()?;
    Ok(())
}

/// `twocs serve`: run the HTTP query service until SIGINT/SIGTERM, then
/// drain gracefully. One stdout line announces the bound address (so
/// scripts binding `:0` can discover the port); everything else goes to
/// stderr, matching the other subcommands' stdout discipline.
fn serve(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut config = twocs::serve::ServerConfig::default();
    if let Some(addr) = str_flag(args, "--addr") {
        config.addr = addr.to_owned();
    }
    if let Some(jobs) = jobs_flag(args)? {
        config.jobs = jobs;
    }
    if let Some(queue) = flag(args, "--queue") {
        config.queue = queue.max(1) as usize;
    }
    if let Some(ms) = flag(args, "--request-timeout-ms") {
        config.request_timeout = std::time::Duration::from_millis(ms.max(1));
    }
    if let Some(ms) = flag(args, "--idle-timeout-ms") {
        config.idle_timeout = std::time::Duration::from_millis(ms.max(1));
    }
    if let Some(conns) = flag(args, "--max-conns") {
        config.max_connections = conns.max(1) as usize;
    }
    if let Some(reqs) = flag(args, "--max-requests-per-conn") {
        config.max_requests_per_conn = reqs.max(1);
    }
    if args.iter().any(|a| a == "--no-response-cache") {
        config.cache_responses = false;
    }
    if let Some(dir) = str_flag(args, "--journal-dir") {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create journal dir `{dir}`: {e}"))?;
        config.handler.journal_dir = Some(std::path::PathBuf::from(dir));
    }
    // Debug endpoints (/v1/debug/sleep) are opt-in via environment, never
    // flags, so they cannot be enabled by a copy-pasted command line.
    config.handler.enable_debug = std::env::var("TWOCS_SERVE_DEBUG").as_deref() == Ok("1");

    // `--listen` starts a sweep coordinator alongside the HTTP server
    // and plugs it into `/v1/sweep`: requests are sharded across any
    // connected `twocs worker` processes, with local evaluation as the
    // no-worker fallback. Response bodies are byte-identical either way.
    let coordinator = match str_flag(args, "--listen") {
        Some(listen) => {
            let mut dist_cfg = twocs::dist::CoordinatorConfig {
                listen: listen.to_owned(),
                local_jobs: config.jobs,
                ..twocs::dist::CoordinatorConfig::default()
            };
            if let Some(pipeline) = flag(args, "--pipeline") {
                dist_cfg.pipeline = pipeline.max(1) as usize;
            }
            let coordinator = Arc::new(
                twocs::dist::Coordinator::bind(dist_cfg)
                    .map_err(|e| format!("cannot bind coordinator address `{listen}`: {e}"))?,
            );
            eprintln!(
                "twocs serve: sweep coordinator on {} (workers: `twocs worker --connect {}`)",
                coordinator.local_addr(),
                coordinator.local_addr()
            );
            let executor: Arc<dyn twocs::analysis::sweep::GridExecutor> = coordinator.clone();
            config.handler.executor = Some(executor);
            Some(coordinator)
        }
        None => None,
    };
    let jobs = config.jobs;
    let queue = config.queue;
    let max_conns = config.max_connections;
    let cache = if config.cache_responses { "on" } else { "off" };

    let obs = ObsSession::from_args(args);
    let server = twocs::serve::Server::bind(config)
        .map_err(|e| format!("cannot bind the requested address: {e}"))?;
    let addr = server.local_addr()?;
    println!("twocs serve: listening on http://{addr}");
    eprintln!(
        "twocs serve: {jobs} worker(s), queue depth {queue}, {max_conns} keep-alive connection budget, response cache {cache}; ctrl-c drains in-flight requests and exits"
    );
    twocs::serve::install_signal_handler();
    let stats = server.run();
    eprintln!(
        "twocs serve: shut down cleanly; {} request(s) served, {} rejected with 503",
        stats.served, stats.rejected
    );
    // Stops accepting workers and tells connected ones `Done`.
    drop(coordinator);
    obs.finish()?;
    Ok(())
}

fn analyze(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let h = flag(args, "--h").ok_or("--h <hidden size> is required")?;
    let sl = flag(args, "--sl").unwrap_or(2048);
    let b = flag(args, "--b").unwrap_or(1);
    let tp = flag(args, "--tp").unwrap_or(1);
    let dp = flag(args, "--dp").unwrap_or(1);
    let ratio = flag(args, "--flop-vs-bw").unwrap_or(1) as f64;

    let heads = (h / 64).clamp(16, 256);
    let hyper = Hyperparams::builder(h)
        .heads(heads)
        .layers(4)
        .seq_len(sl)
        .batch(b)
        .build()?;
    let parallel = ParallelConfig::new().tensor(tp).data(dp);
    parallel.validate(&hyper)?;

    let device = if ratio > 1.0 {
        HwEvolution::flop_vs_bw(ratio).apply(&DeviceSpec::mi210())
    } else {
        DeviceSpec::mi210()
    };
    println!("model:    {hyper}");
    println!("parallel: {parallel}");
    println!("device:   {}\n", device.name());

    let obs = ObsSession::from_args(args);
    let graph = IterationBuilder::new(&hyper, &parallel, &device).build_training();
    let timeline = Engine::new().run_trace(&graph)?;
    let report = twocs::sim::SimReport::from_timeline(&timeline);
    print!("{report}");
    println!("\ntop kernels:");
    for stat in timeline.kernel_summary(8) {
        println!("  {stat}");
    }
    println!(
        "\n=> {:.1}% of the training iteration is communication on the critical path",
        100.0 * report.comm_fraction()
    );
    obs.finish()?;
    Ok(())
}
