//! `twocs` — command-line front end for the Comp-vs-Comm analysis.
//!
//! ```text
//! twocs list                         # registered experiments
//! twocs run fig10 [--csv]            # regenerate one artifact
//! twocs run all                      # everything, paper order
//! twocs analyze --h 16384 --sl 2048 --b 1 --tp 64 [--dp 8] [--flop-vs-bw 4]
//! ```

use std::process::ExitCode;
use twocs::analysis::experiments;
use twocs::hw::{DeviceSpec, HwEvolution};
use twocs::sim::Engine;
use twocs::transformer::graph_builder::IterationBuilder;
use twocs::transformer::{Hyperparams, ParallelConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  twocs list\n  twocs run <experiment-id|all> [--csv]\n  twocs analyze --h <H> [--sl <SL>] [--b <B>] [--tp <TP>] [--dp <DP>] [--flop-vs-bw <R>]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            for def in experiments::all() {
                println!("{:<8} {:<38} {}", def.id, def.title, def.paper_claim);
            }
            ExitCode::SUCCESS
        }
        Some("run") => {
            let Some(id) = args.get(1) else {
                return usage();
            };
            let csv = args.iter().any(|a| a == "--csv");
            let device = DeviceSpec::mi210();
            let defs: Vec<_> = if id == "all" {
                experiments::all()
            } else {
                match experiments::by_id(id) {
                    Some(d) => vec![d],
                    None => {
                        eprintln!("unknown experiment `{id}`; try `twocs list`");
                        return ExitCode::FAILURE;
                    }
                }
            };
            for def in defs {
                let out = (def.run)(&device);
                if csv {
                    println!("{}", out.to_csv());
                } else {
                    println!("{}", out.to_ascii());
                }
            }
            ExitCode::SUCCESS
        }
        Some("analyze") => match analyze(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        _ => usage(),
    }
}

fn flag(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn analyze(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let h = flag(args, "--h").ok_or("--h <hidden size> is required")?;
    let sl = flag(args, "--sl").unwrap_or(2048);
    let b = flag(args, "--b").unwrap_or(1);
    let tp = flag(args, "--tp").unwrap_or(1);
    let dp = flag(args, "--dp").unwrap_or(1);
    let ratio = flag(args, "--flop-vs-bw").unwrap_or(1) as f64;

    let heads = (h / 64).clamp(16, 256);
    let hyper = Hyperparams::builder(h)
        .heads(heads)
        .layers(4)
        .seq_len(sl)
        .batch(b)
        .build()?;
    let parallel = ParallelConfig::new().tensor(tp).data(dp);
    parallel.validate(&hyper)?;

    let device = if ratio > 1.0 {
        HwEvolution::flop_vs_bw(ratio).apply(&DeviceSpec::mi210())
    } else {
        DeviceSpec::mi210()
    };
    println!("model:    {hyper}");
    println!("parallel: {parallel}");
    println!("device:   {}\n", device.name());

    let graph = IterationBuilder::new(&hyper, &parallel, &device).build_training();
    let timeline = Engine::new().run_trace(&graph)?;
    let report = twocs::sim::SimReport::from_timeline(&timeline);
    print!("{report}");
    println!("\ntop kernels:");
    for stat in timeline.kernel_summary(8) {
        println!("  {stat}");
    }
    println!(
        "\n=> {:.1}% of the training iteration is communication on the critical path",
        100.0 * report.comm_fraction()
    );
    Ok(())
}
