//! # twocs — Tale of Two Cs, reproduced in Rust
//!
//! Facade crate re-exporting the whole workspace. See the individual
//! crates for details:
//!
//! * [`obs`] — span tracing, metrics, and Chrome-trace export.
//! * [`hw`] — accelerator & interconnect models and hardware evolution.
//! * [`sim`] — the deterministic discrete-event cluster simulator.
//! * [`collectives`] — collective algorithms, costs, and the data plane.
//! * [`transformer`] — Transformer training workloads as operator graphs.
//! * [`opmodel`] — the paper's operator-level projection methodology.
//! * [`analysis`] — the Comp-vs-Comm analysis and experiment registry.
//! * [`serve`] — the std-only HTTP/1.1 query service (`twocs serve`).
//! * [`dist`] — the distributed sweep fabric (`twocs worker`,
//!   `twocs sweep --listen`).
//! * [`store`] — durable sweep journals, the streaming spill-to-disk
//!   result sink, and adaptive frontier refinement (`twocs sweep
//!   --journal/--resume/--refine`).
//!
//! ## Example
//!
//! ```
//! use twocs::analysis::experiments;
//! use twocs::hw::DeviceSpec;
//!
//! let fig7 = experiments::by_id("fig07").expect("registered");
//! let out = (fig7.run)(&DeviceSpec::mi210());
//! assert!(out.to_ascii().contains("slack"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use twocs_collectives as collectives;
pub use twocs_core as analysis;
pub use twocs_dist as dist;
pub use twocs_hw as hw;
pub use twocs_obs as obs;
pub use twocs_opmodel as opmodel;
pub use twocs_serve as serve;
pub use twocs_sim as sim;
pub use twocs_store as store;
pub use twocs_transformer as transformer;
