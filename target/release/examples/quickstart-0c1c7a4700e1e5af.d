/root/repo/target/release/examples/quickstart-0c1c7a4700e1e5af.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-0c1c7a4700e1e5af: examples/quickstart.rs

examples/quickstart.rs:
