/root/repo/target/release/examples/quickstart-cb717a083f72d83a.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-cb717a083f72d83a: examples/quickstart.rs

examples/quickstart.rs:
