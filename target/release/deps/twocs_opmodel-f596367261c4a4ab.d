/root/repo/target/release/deps/twocs_opmodel-f596367261c4a4ab.d: crates/opmodel/src/lib.rs crates/opmodel/src/cost_accounting.rs crates/opmodel/src/model.rs crates/opmodel/src/profile.rs crates/opmodel/src/projection.rs crates/opmodel/src/stats.rs crates/opmodel/src/validation.rs

/root/repo/target/release/deps/libtwocs_opmodel-f596367261c4a4ab.rlib: crates/opmodel/src/lib.rs crates/opmodel/src/cost_accounting.rs crates/opmodel/src/model.rs crates/opmodel/src/profile.rs crates/opmodel/src/projection.rs crates/opmodel/src/stats.rs crates/opmodel/src/validation.rs

/root/repo/target/release/deps/libtwocs_opmodel-f596367261c4a4ab.rmeta: crates/opmodel/src/lib.rs crates/opmodel/src/cost_accounting.rs crates/opmodel/src/model.rs crates/opmodel/src/profile.rs crates/opmodel/src/projection.rs crates/opmodel/src/stats.rs crates/opmodel/src/validation.rs

crates/opmodel/src/lib.rs:
crates/opmodel/src/cost_accounting.rs:
crates/opmodel/src/model.rs:
crates/opmodel/src/profile.rs:
crates/opmodel/src/projection.rs:
crates/opmodel/src/stats.rs:
crates/opmodel/src/validation.rs:
