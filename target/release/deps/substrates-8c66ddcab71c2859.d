/root/repo/target/release/deps/substrates-8c66ddcab71c2859.d: crates/bench/benches/substrates.rs

/root/repo/target/release/deps/substrates-8c66ddcab71c2859: crates/bench/benches/substrates.rs

crates/bench/benches/substrates.rs:
