/root/repo/target/release/deps/twocs_testkit-2401b68eeb120572.d: crates/testkit/src/lib.rs crates/testkit/src/trace.rs

/root/repo/target/release/deps/libtwocs_testkit-2401b68eeb120572.rlib: crates/testkit/src/lib.rs crates/testkit/src/trace.rs

/root/repo/target/release/deps/libtwocs_testkit-2401b68eeb120572.rmeta: crates/testkit/src/lib.rs crates/testkit/src/trace.rs

crates/testkit/src/lib.rs:
crates/testkit/src/trace.rs:
