/root/repo/target/release/deps/twocs-44e27d89c04e4801.d: src/bin/twocs.rs

/root/repo/target/release/deps/twocs-44e27d89c04e4801: src/bin/twocs.rs

src/bin/twocs.rs:
