/root/repo/target/release/deps/twocs_opmodel-79d83fc5fd44041a.d: crates/opmodel/src/lib.rs crates/opmodel/src/cost_accounting.rs crates/opmodel/src/model.rs crates/opmodel/src/profile.rs crates/opmodel/src/projection.rs crates/opmodel/src/stats.rs crates/opmodel/src/validation.rs

/root/repo/target/release/deps/libtwocs_opmodel-79d83fc5fd44041a.rlib: crates/opmodel/src/lib.rs crates/opmodel/src/cost_accounting.rs crates/opmodel/src/model.rs crates/opmodel/src/profile.rs crates/opmodel/src/projection.rs crates/opmodel/src/stats.rs crates/opmodel/src/validation.rs

/root/repo/target/release/deps/libtwocs_opmodel-79d83fc5fd44041a.rmeta: crates/opmodel/src/lib.rs crates/opmodel/src/cost_accounting.rs crates/opmodel/src/model.rs crates/opmodel/src/profile.rs crates/opmodel/src/projection.rs crates/opmodel/src/stats.rs crates/opmodel/src/validation.rs

crates/opmodel/src/lib.rs:
crates/opmodel/src/cost_accounting.rs:
crates/opmodel/src/model.rs:
crates/opmodel/src/profile.rs:
crates/opmodel/src/projection.rs:
crates/opmodel/src/stats.rs:
crates/opmodel/src/validation.rs:
