/root/repo/target/release/deps/twocs_sim-f1d68e078fb2fa2c.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/graph.rs crates/sim/src/interference.rs crates/sim/src/metrics.rs crates/sim/src/task.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libtwocs_sim-f1d68e078fb2fa2c.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/graph.rs crates/sim/src/interference.rs crates/sim/src/metrics.rs crates/sim/src/task.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libtwocs_sim-f1d68e078fb2fa2c.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/graph.rs crates/sim/src/interference.rs crates/sim/src/metrics.rs crates/sim/src/task.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/graph.rs:
crates/sim/src/interference.rs:
crates/sim/src/metrics.rs:
crates/sim/src/task.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
