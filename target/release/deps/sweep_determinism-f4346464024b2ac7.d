/root/repo/target/release/deps/sweep_determinism-f4346464024b2ac7.d: tests/sweep_determinism.rs

/root/repo/target/release/deps/sweep_determinism-f4346464024b2ac7: tests/sweep_determinism.rs

tests/sweep_determinism.rs:

# env-dep:CARGO_BIN_EXE_twocs=/root/repo/target/release/twocs
