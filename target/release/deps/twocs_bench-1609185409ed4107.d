/root/repo/target/release/deps/twocs_bench-1609185409ed4107.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libtwocs_bench-1609185409ed4107.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libtwocs_bench-1609185409ed4107.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
