/root/repo/target/release/deps/twocs-e3b9c9e20d3c0a21.d: src/bin/twocs.rs

/root/repo/target/release/deps/twocs-e3b9c9e20d3c0a21: src/bin/twocs.rs

src/bin/twocs.rs:
