/root/repo/target/release/deps/twocs_hw-017692765070c4a0.d: crates/hw/src/lib.rs crates/hw/src/cache.rs crates/hw/src/device.rs crates/hw/src/error.rs crates/hw/src/evolution.rs crates/hw/src/gemm.rs crates/hw/src/memops.rs crates/hw/src/network.rs crates/hw/src/precision.rs crates/hw/src/roofline.rs crates/hw/src/topology.rs

/root/repo/target/release/deps/libtwocs_hw-017692765070c4a0.rlib: crates/hw/src/lib.rs crates/hw/src/cache.rs crates/hw/src/device.rs crates/hw/src/error.rs crates/hw/src/evolution.rs crates/hw/src/gemm.rs crates/hw/src/memops.rs crates/hw/src/network.rs crates/hw/src/precision.rs crates/hw/src/roofline.rs crates/hw/src/topology.rs

/root/repo/target/release/deps/libtwocs_hw-017692765070c4a0.rmeta: crates/hw/src/lib.rs crates/hw/src/cache.rs crates/hw/src/device.rs crates/hw/src/error.rs crates/hw/src/evolution.rs crates/hw/src/gemm.rs crates/hw/src/memops.rs crates/hw/src/network.rs crates/hw/src/precision.rs crates/hw/src/roofline.rs crates/hw/src/topology.rs

crates/hw/src/lib.rs:
crates/hw/src/cache.rs:
crates/hw/src/device.rs:
crates/hw/src/error.rs:
crates/hw/src/evolution.rs:
crates/hw/src/gemm.rs:
crates/hw/src/memops.rs:
crates/hw/src/network.rs:
crates/hw/src/precision.rs:
crates/hw/src/roofline.rs:
crates/hw/src/topology.rs:
