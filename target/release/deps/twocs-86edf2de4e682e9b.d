/root/repo/target/release/deps/twocs-86edf2de4e682e9b.d: src/lib.rs

/root/repo/target/release/deps/libtwocs-86edf2de4e682e9b.rlib: src/lib.rs

/root/repo/target/release/deps/libtwocs-86edf2de4e682e9b.rmeta: src/lib.rs

src/lib.rs:
