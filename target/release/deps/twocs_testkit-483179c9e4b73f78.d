/root/repo/target/release/deps/twocs_testkit-483179c9e4b73f78.d: crates/testkit/src/lib.rs

/root/repo/target/release/deps/libtwocs_testkit-483179c9e4b73f78.rlib: crates/testkit/src/lib.rs

/root/repo/target/release/deps/libtwocs_testkit-483179c9e4b73f78.rmeta: crates/testkit/src/lib.rs

crates/testkit/src/lib.rs:
