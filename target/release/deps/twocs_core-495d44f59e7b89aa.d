/root/repo/target/release/deps/twocs_core-495d44f59e7b89aa.d: crates/core/src/lib.rs crates/core/src/accuracy.rs crates/core/src/algorithmic.rs crates/core/src/case_study.rs crates/core/src/evolution.rs crates/core/src/experiments.rs crates/core/src/inference.rs crates/core/src/overlapped.rs crates/core/src/report.rs crates/core/src/sensitivity.rs crates/core/src/serialized.rs crates/core/src/sweep.rs crates/core/src/techniques.rs crates/core/src/trends.rs

/root/repo/target/release/deps/libtwocs_core-495d44f59e7b89aa.rlib: crates/core/src/lib.rs crates/core/src/accuracy.rs crates/core/src/algorithmic.rs crates/core/src/case_study.rs crates/core/src/evolution.rs crates/core/src/experiments.rs crates/core/src/inference.rs crates/core/src/overlapped.rs crates/core/src/report.rs crates/core/src/sensitivity.rs crates/core/src/serialized.rs crates/core/src/sweep.rs crates/core/src/techniques.rs crates/core/src/trends.rs

/root/repo/target/release/deps/libtwocs_core-495d44f59e7b89aa.rmeta: crates/core/src/lib.rs crates/core/src/accuracy.rs crates/core/src/algorithmic.rs crates/core/src/case_study.rs crates/core/src/evolution.rs crates/core/src/experiments.rs crates/core/src/inference.rs crates/core/src/overlapped.rs crates/core/src/report.rs crates/core/src/sensitivity.rs crates/core/src/serialized.rs crates/core/src/sweep.rs crates/core/src/techniques.rs crates/core/src/trends.rs

crates/core/src/lib.rs:
crates/core/src/accuracy.rs:
crates/core/src/algorithmic.rs:
crates/core/src/case_study.rs:
crates/core/src/evolution.rs:
crates/core/src/experiments.rs:
crates/core/src/inference.rs:
crates/core/src/overlapped.rs:
crates/core/src/report.rs:
crates/core/src/sensitivity.rs:
crates/core/src/serialized.rs:
crates/core/src/sweep.rs:
crates/core/src/techniques.rs:
crates/core/src/trends.rs:
