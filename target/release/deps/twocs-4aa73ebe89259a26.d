/root/repo/target/release/deps/twocs-4aa73ebe89259a26.d: src/lib.rs

/root/repo/target/release/deps/libtwocs-4aa73ebe89259a26.rlib: src/lib.rs

/root/repo/target/release/deps/libtwocs-4aa73ebe89259a26.rmeta: src/lib.rs

src/lib.rs:
