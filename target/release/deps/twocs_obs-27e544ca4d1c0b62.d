/root/repo/target/release/deps/twocs_obs-27e544ca4d1c0b62.d: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/clock.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/span.rs

/root/repo/target/release/deps/libtwocs_obs-27e544ca4d1c0b62.rlib: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/clock.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/span.rs

/root/repo/target/release/deps/libtwocs_obs-27e544ca4d1c0b62.rmeta: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/clock.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/chrome.rs:
crates/obs/src/clock.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/span.rs:
