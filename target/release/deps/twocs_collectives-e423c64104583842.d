/root/repo/target/release/deps/twocs_collectives-e423c64104583842.d: crates/collectives/src/lib.rs crates/collectives/src/algorithm.rs crates/collectives/src/cost.rs crates/collectives/src/dataplane.rs crates/collectives/src/error.rs crates/collectives/src/schedule.rs

/root/repo/target/release/deps/libtwocs_collectives-e423c64104583842.rlib: crates/collectives/src/lib.rs crates/collectives/src/algorithm.rs crates/collectives/src/cost.rs crates/collectives/src/dataplane.rs crates/collectives/src/error.rs crates/collectives/src/schedule.rs

/root/repo/target/release/deps/libtwocs_collectives-e423c64104583842.rmeta: crates/collectives/src/lib.rs crates/collectives/src/algorithm.rs crates/collectives/src/cost.rs crates/collectives/src/dataplane.rs crates/collectives/src/error.rs crates/collectives/src/schedule.rs

crates/collectives/src/lib.rs:
crates/collectives/src/algorithm.rs:
crates/collectives/src/cost.rs:
crates/collectives/src/dataplane.rs:
crates/collectives/src/error.rs:
crates/collectives/src/schedule.rs:
