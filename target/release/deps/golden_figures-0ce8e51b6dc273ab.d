/root/repo/target/release/deps/golden_figures-0ce8e51b6dc273ab.d: tests/golden_figures.rs

/root/repo/target/release/deps/golden_figures-0ce8e51b6dc273ab: tests/golden_figures.rs

tests/golden_figures.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
