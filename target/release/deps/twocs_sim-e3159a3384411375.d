/root/repo/target/release/deps/twocs_sim-e3159a3384411375.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/graph.rs crates/sim/src/interference.rs crates/sim/src/metrics.rs crates/sim/src/task.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libtwocs_sim-e3159a3384411375.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/graph.rs crates/sim/src/interference.rs crates/sim/src/metrics.rs crates/sim/src/task.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libtwocs_sim-e3159a3384411375.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/graph.rs crates/sim/src/interference.rs crates/sim/src/metrics.rs crates/sim/src/task.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/graph.rs:
crates/sim/src/interference.rs:
crates/sim/src/metrics.rs:
crates/sim/src/task.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
