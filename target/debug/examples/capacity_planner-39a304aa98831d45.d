/root/repo/target/debug/examples/capacity_planner-39a304aa98831d45.d: examples/capacity_planner.rs Cargo.toml

/root/repo/target/debug/examples/libcapacity_planner-39a304aa98831d45.rmeta: examples/capacity_planner.rs Cargo.toml

examples/capacity_planner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
