/root/repo/target/debug/examples/quickstart-5f67865c10c4b9c2.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-5f67865c10c4b9c2: examples/quickstart.rs

examples/quickstart.rs:
