/root/repo/target/debug/examples/operator_model-56ca599a30d1e314.d: examples/operator_model.rs

/root/repo/target/debug/examples/operator_model-56ca599a30d1e314: examples/operator_model.rs

examples/operator_model.rs:
