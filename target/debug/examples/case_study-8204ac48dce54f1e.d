/root/repo/target/debug/examples/case_study-8204ac48dce54f1e.d: examples/case_study.rs Cargo.toml

/root/repo/target/debug/examples/libcase_study-8204ac48dce54f1e.rmeta: examples/case_study.rs Cargo.toml

examples/case_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
