/root/repo/target/debug/examples/operator_model-3a3829f2fac0dba6.d: examples/operator_model.rs

/root/repo/target/debug/examples/operator_model-3a3829f2fac0dba6: examples/operator_model.rs

examples/operator_model.rs:
