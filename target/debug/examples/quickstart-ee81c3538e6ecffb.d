/root/repo/target/debug/examples/quickstart-ee81c3538e6ecffb.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ee81c3538e6ecffb: examples/quickstart.rs

examples/quickstart.rs:
