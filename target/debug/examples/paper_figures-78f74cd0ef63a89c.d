/root/repo/target/debug/examples/paper_figures-78f74cd0ef63a89c.d: examples/paper_figures.rs Cargo.toml

/root/repo/target/debug/examples/libpaper_figures-78f74cd0ef63a89c.rmeta: examples/paper_figures.rs Cargo.toml

examples/paper_figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
