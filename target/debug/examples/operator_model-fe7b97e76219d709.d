/root/repo/target/debug/examples/operator_model-fe7b97e76219d709.d: examples/operator_model.rs Cargo.toml

/root/repo/target/debug/examples/liboperator_model-fe7b97e76219d709.rmeta: examples/operator_model.rs Cargo.toml

examples/operator_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
