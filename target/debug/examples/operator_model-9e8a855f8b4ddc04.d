/root/repo/target/debug/examples/operator_model-9e8a855f8b4ddc04.d: examples/operator_model.rs Cargo.toml

/root/repo/target/debug/examples/liboperator_model-9e8a855f8b4ddc04.rmeta: examples/operator_model.rs Cargo.toml

examples/operator_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
