/root/repo/target/debug/examples/parallelism_lab-851feb4cb276914f.d: examples/parallelism_lab.rs Cargo.toml

/root/repo/target/debug/examples/libparallelism_lab-851feb4cb276914f.rmeta: examples/parallelism_lab.rs Cargo.toml

examples/parallelism_lab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
