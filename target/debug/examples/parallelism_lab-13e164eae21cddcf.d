/root/repo/target/debug/examples/parallelism_lab-13e164eae21cddcf.d: examples/parallelism_lab.rs

/root/repo/target/debug/examples/parallelism_lab-13e164eae21cddcf: examples/parallelism_lab.rs

examples/parallelism_lab.rs:
