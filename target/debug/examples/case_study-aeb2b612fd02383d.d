/root/repo/target/debug/examples/case_study-aeb2b612fd02383d.d: examples/case_study.rs

/root/repo/target/debug/examples/case_study-aeb2b612fd02383d: examples/case_study.rs

examples/case_study.rs:
