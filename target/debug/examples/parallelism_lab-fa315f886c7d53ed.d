/root/repo/target/debug/examples/parallelism_lab-fa315f886c7d53ed.d: examples/parallelism_lab.rs Cargo.toml

/root/repo/target/debug/examples/libparallelism_lab-fa315f886c7d53ed.rmeta: examples/parallelism_lab.rs Cargo.toml

examples/parallelism_lab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
