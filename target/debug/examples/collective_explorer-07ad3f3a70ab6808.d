/root/repo/target/debug/examples/collective_explorer-07ad3f3a70ab6808.d: examples/collective_explorer.rs

/root/repo/target/debug/examples/collective_explorer-07ad3f3a70ab6808: examples/collective_explorer.rs

examples/collective_explorer.rs:
