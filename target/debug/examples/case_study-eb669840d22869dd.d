/root/repo/target/debug/examples/case_study-eb669840d22869dd.d: examples/case_study.rs

/root/repo/target/debug/examples/case_study-eb669840d22869dd: examples/case_study.rs

examples/case_study.rs:
