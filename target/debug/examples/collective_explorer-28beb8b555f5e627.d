/root/repo/target/debug/examples/collective_explorer-28beb8b555f5e627.d: examples/collective_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libcollective_explorer-28beb8b555f5e627.rmeta: examples/collective_explorer.rs Cargo.toml

examples/collective_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
