/root/repo/target/debug/examples/paper_figures-250aa40f5b32355f.d: examples/paper_figures.rs Cargo.toml

/root/repo/target/debug/examples/libpaper_figures-250aa40f5b32355f.rmeta: examples/paper_figures.rs Cargo.toml

examples/paper_figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
