/root/repo/target/debug/examples/paper_figures-32a352d756628c4b.d: examples/paper_figures.rs

/root/repo/target/debug/examples/paper_figures-32a352d756628c4b: examples/paper_figures.rs

examples/paper_figures.rs:
