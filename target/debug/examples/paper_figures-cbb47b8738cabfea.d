/root/repo/target/debug/examples/paper_figures-cbb47b8738cabfea.d: examples/paper_figures.rs

/root/repo/target/debug/examples/paper_figures-cbb47b8738cabfea: examples/paper_figures.rs

examples/paper_figures.rs:
