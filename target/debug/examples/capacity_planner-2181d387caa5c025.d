/root/repo/target/debug/examples/capacity_planner-2181d387caa5c025.d: examples/capacity_planner.rs

/root/repo/target/debug/examples/capacity_planner-2181d387caa5c025: examples/capacity_planner.rs

examples/capacity_planner.rs:
