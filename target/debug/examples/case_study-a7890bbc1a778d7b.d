/root/repo/target/debug/examples/case_study-a7890bbc1a778d7b.d: examples/case_study.rs Cargo.toml

/root/repo/target/debug/examples/libcase_study-a7890bbc1a778d7b.rmeta: examples/case_study.rs Cargo.toml

examples/case_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
