/root/repo/target/debug/examples/capacity_planner-c27b4dcf325a679d.d: examples/capacity_planner.rs Cargo.toml

/root/repo/target/debug/examples/libcapacity_planner-c27b4dcf325a679d.rmeta: examples/capacity_planner.rs Cargo.toml

examples/capacity_planner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
