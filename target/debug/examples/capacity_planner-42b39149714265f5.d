/root/repo/target/debug/examples/capacity_planner-42b39149714265f5.d: examples/capacity_planner.rs

/root/repo/target/debug/examples/capacity_planner-42b39149714265f5: examples/capacity_planner.rs

examples/capacity_planner.rs:
