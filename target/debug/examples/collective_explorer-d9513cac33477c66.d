/root/repo/target/debug/examples/collective_explorer-d9513cac33477c66.d: examples/collective_explorer.rs

/root/repo/target/debug/examples/collective_explorer-d9513cac33477c66: examples/collective_explorer.rs

examples/collective_explorer.rs:
