/root/repo/target/debug/examples/parallelism_lab-d89dc0e91d0dc208.d: examples/parallelism_lab.rs

/root/repo/target/debug/examples/parallelism_lab-d89dc0e91d0dc208: examples/parallelism_lab.rs

examples/parallelism_lab.rs:
