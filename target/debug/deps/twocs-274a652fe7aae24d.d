/root/repo/target/debug/deps/twocs-274a652fe7aae24d.d: src/bin/twocs.rs

/root/repo/target/debug/deps/twocs-274a652fe7aae24d: src/bin/twocs.rs

src/bin/twocs.rs:
