/root/repo/target/debug/deps/proptest_stats-ae105fa176354860.d: crates/opmodel/tests/proptest_stats.rs

/root/repo/target/debug/deps/proptest_stats-ae105fa176354860: crates/opmodel/tests/proptest_stats.rs

crates/opmodel/tests/proptest_stats.rs:
