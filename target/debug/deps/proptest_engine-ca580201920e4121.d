/root/repo/target/debug/deps/proptest_engine-ca580201920e4121.d: crates/sim/tests/proptest_engine.rs

/root/repo/target/debug/deps/proptest_engine-ca580201920e4121: crates/sim/tests/proptest_engine.rs

crates/sim/tests/proptest_engine.rs:
