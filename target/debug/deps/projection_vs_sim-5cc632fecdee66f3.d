/root/repo/target/debug/deps/projection_vs_sim-5cc632fecdee66f3.d: tests/projection_vs_sim.rs Cargo.toml

/root/repo/target/debug/deps/libprojection_vs_sim-5cc632fecdee66f3.rmeta: tests/projection_vs_sim.rs Cargo.toml

tests/projection_vs_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
