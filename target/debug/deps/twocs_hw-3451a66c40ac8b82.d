/root/repo/target/debug/deps/twocs_hw-3451a66c40ac8b82.d: crates/hw/src/lib.rs crates/hw/src/cache.rs crates/hw/src/device.rs crates/hw/src/error.rs crates/hw/src/evolution.rs crates/hw/src/gemm.rs crates/hw/src/memops.rs crates/hw/src/network.rs crates/hw/src/precision.rs crates/hw/src/roofline.rs crates/hw/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libtwocs_hw-3451a66c40ac8b82.rmeta: crates/hw/src/lib.rs crates/hw/src/cache.rs crates/hw/src/device.rs crates/hw/src/error.rs crates/hw/src/evolution.rs crates/hw/src/gemm.rs crates/hw/src/memops.rs crates/hw/src/network.rs crates/hw/src/precision.rs crates/hw/src/roofline.rs crates/hw/src/topology.rs Cargo.toml

crates/hw/src/lib.rs:
crates/hw/src/cache.rs:
crates/hw/src/device.rs:
crates/hw/src/error.rs:
crates/hw/src/evolution.rs:
crates/hw/src/gemm.rs:
crates/hw/src/memops.rs:
crates/hw/src/network.rs:
crates/hw/src/precision.rs:
crates/hw/src/roofline.rs:
crates/hw/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
