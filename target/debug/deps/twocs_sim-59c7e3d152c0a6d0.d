/root/repo/target/debug/deps/twocs_sim-59c7e3d152c0a6d0.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/graph.rs crates/sim/src/interference.rs crates/sim/src/metrics.rs crates/sim/src/task.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/twocs_sim-59c7e3d152c0a6d0: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/graph.rs crates/sim/src/interference.rs crates/sim/src/metrics.rs crates/sim/src/task.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/graph.rs:
crates/sim/src/interference.rs:
crates/sim/src/metrics.rs:
crates/sim/src/task.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
