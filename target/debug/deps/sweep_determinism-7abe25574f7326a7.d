/root/repo/target/debug/deps/sweep_determinism-7abe25574f7326a7.d: tests/sweep_determinism.rs

/root/repo/target/debug/deps/sweep_determinism-7abe25574f7326a7: tests/sweep_determinism.rs

tests/sweep_determinism.rs:

# env-dep:CARGO_BIN_EXE_twocs=/root/repo/target/debug/twocs
