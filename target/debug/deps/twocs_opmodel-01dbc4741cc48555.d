/root/repo/target/debug/deps/twocs_opmodel-01dbc4741cc48555.d: crates/opmodel/src/lib.rs crates/opmodel/src/cost_accounting.rs crates/opmodel/src/model.rs crates/opmodel/src/profile.rs crates/opmodel/src/projection.rs crates/opmodel/src/stats.rs crates/opmodel/src/validation.rs Cargo.toml

/root/repo/target/debug/deps/libtwocs_opmodel-01dbc4741cc48555.rmeta: crates/opmodel/src/lib.rs crates/opmodel/src/cost_accounting.rs crates/opmodel/src/model.rs crates/opmodel/src/profile.rs crates/opmodel/src/projection.rs crates/opmodel/src/stats.rs crates/opmodel/src/validation.rs Cargo.toml

crates/opmodel/src/lib.rs:
crates/opmodel/src/cost_accounting.rs:
crates/opmodel/src/model.rs:
crates/opmodel/src/profile.rs:
crates/opmodel/src/projection.rs:
crates/opmodel/src/stats.rs:
crates/opmodel/src/validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
