/root/repo/target/debug/deps/twocs_hw-caf5d92c7fed3390.d: crates/hw/src/lib.rs crates/hw/src/cache.rs crates/hw/src/device.rs crates/hw/src/error.rs crates/hw/src/evolution.rs crates/hw/src/gemm.rs crates/hw/src/memops.rs crates/hw/src/network.rs crates/hw/src/precision.rs crates/hw/src/roofline.rs crates/hw/src/topology.rs

/root/repo/target/debug/deps/libtwocs_hw-caf5d92c7fed3390.rlib: crates/hw/src/lib.rs crates/hw/src/cache.rs crates/hw/src/device.rs crates/hw/src/error.rs crates/hw/src/evolution.rs crates/hw/src/gemm.rs crates/hw/src/memops.rs crates/hw/src/network.rs crates/hw/src/precision.rs crates/hw/src/roofline.rs crates/hw/src/topology.rs

/root/repo/target/debug/deps/libtwocs_hw-caf5d92c7fed3390.rmeta: crates/hw/src/lib.rs crates/hw/src/cache.rs crates/hw/src/device.rs crates/hw/src/error.rs crates/hw/src/evolution.rs crates/hw/src/gemm.rs crates/hw/src/memops.rs crates/hw/src/network.rs crates/hw/src/precision.rs crates/hw/src/roofline.rs crates/hw/src/topology.rs

crates/hw/src/lib.rs:
crates/hw/src/cache.rs:
crates/hw/src/device.rs:
crates/hw/src/error.rs:
crates/hw/src/evolution.rs:
crates/hw/src/gemm.rs:
crates/hw/src/memops.rs:
crates/hw/src/network.rs:
crates/hw/src/precision.rs:
crates/hw/src/roofline.rs:
crates/hw/src/topology.rs:
