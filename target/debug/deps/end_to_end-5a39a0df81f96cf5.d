/root/repo/target/debug/deps/end_to_end-5a39a0df81f96cf5.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-5a39a0df81f96cf5: tests/end_to_end.rs

tests/end_to_end.rs:
