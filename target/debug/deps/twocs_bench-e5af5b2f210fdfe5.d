/root/repo/target/debug/deps/twocs_bench-e5af5b2f210fdfe5.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libtwocs_bench-e5af5b2f210fdfe5.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libtwocs_bench-e5af5b2f210fdfe5.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
