/root/repo/target/debug/deps/proptest_models-28336c79b9addf99.d: crates/hw/tests/proptest_models.rs

/root/repo/target/debug/deps/proptest_models-28336c79b9addf99: crates/hw/tests/proptest_models.rs

crates/hw/tests/proptest_models.rs:
