/root/repo/target/debug/deps/proptest_engine-da966b5bed9bfda2.d: crates/sim/tests/proptest_engine.rs

/root/repo/target/debug/deps/proptest_engine-da966b5bed9bfda2: crates/sim/tests/proptest_engine.rs

crates/sim/tests/proptest_engine.rs:
