/root/repo/target/debug/deps/twocs_collectives-6afd70dfb091571f.d: crates/collectives/src/lib.rs crates/collectives/src/algorithm.rs crates/collectives/src/cost.rs crates/collectives/src/dataplane.rs crates/collectives/src/error.rs crates/collectives/src/schedule.rs Cargo.toml

/root/repo/target/debug/deps/libtwocs_collectives-6afd70dfb091571f.rmeta: crates/collectives/src/lib.rs crates/collectives/src/algorithm.rs crates/collectives/src/cost.rs crates/collectives/src/dataplane.rs crates/collectives/src/error.rs crates/collectives/src/schedule.rs Cargo.toml

crates/collectives/src/lib.rs:
crates/collectives/src/algorithm.rs:
crates/collectives/src/cost.rs:
crates/collectives/src/dataplane.rs:
crates/collectives/src/error.rs:
crates/collectives/src/schedule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
