/root/repo/target/debug/deps/twocs-10637bacd00301d0.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtwocs-10637bacd00301d0.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
