/root/repo/target/debug/deps/projection_vs_sim-b6e48e14e783e086.d: tests/projection_vs_sim.rs

/root/repo/target/debug/deps/projection_vs_sim-b6e48e14e783e086: tests/projection_vs_sim.rs

tests/projection_vs_sim.rs:
