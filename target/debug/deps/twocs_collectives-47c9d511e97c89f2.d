/root/repo/target/debug/deps/twocs_collectives-47c9d511e97c89f2.d: crates/collectives/src/lib.rs crates/collectives/src/algorithm.rs crates/collectives/src/cost.rs crates/collectives/src/dataplane.rs crates/collectives/src/error.rs crates/collectives/src/schedule.rs

/root/repo/target/debug/deps/libtwocs_collectives-47c9d511e97c89f2.rlib: crates/collectives/src/lib.rs crates/collectives/src/algorithm.rs crates/collectives/src/cost.rs crates/collectives/src/dataplane.rs crates/collectives/src/error.rs crates/collectives/src/schedule.rs

/root/repo/target/debug/deps/libtwocs_collectives-47c9d511e97c89f2.rmeta: crates/collectives/src/lib.rs crates/collectives/src/algorithm.rs crates/collectives/src/cost.rs crates/collectives/src/dataplane.rs crates/collectives/src/error.rs crates/collectives/src/schedule.rs

crates/collectives/src/lib.rs:
crates/collectives/src/algorithm.rs:
crates/collectives/src/cost.rs:
crates/collectives/src/dataplane.rs:
crates/collectives/src/error.rs:
crates/collectives/src/schedule.rs:
