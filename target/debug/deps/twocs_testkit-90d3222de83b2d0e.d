/root/repo/target/debug/deps/twocs_testkit-90d3222de83b2d0e.d: crates/testkit/src/lib.rs

/root/repo/target/debug/deps/libtwocs_testkit-90d3222de83b2d0e.rlib: crates/testkit/src/lib.rs

/root/repo/target/debug/deps/libtwocs_testkit-90d3222de83b2d0e.rmeta: crates/testkit/src/lib.rs

crates/testkit/src/lib.rs:
