/root/repo/target/debug/deps/twocs_sim-ae7121a505a3d11c.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/graph.rs crates/sim/src/interference.rs crates/sim/src/metrics.rs crates/sim/src/task.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libtwocs_sim-ae7121a505a3d11c.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/graph.rs crates/sim/src/interference.rs crates/sim/src/metrics.rs crates/sim/src/task.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/graph.rs:
crates/sim/src/interference.rs:
crates/sim/src/metrics.rs:
crates/sim/src/task.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
