/root/repo/target/debug/deps/twocs-e9c80f307a20470f.d: src/lib.rs

/root/repo/target/debug/deps/libtwocs-e9c80f307a20470f.rlib: src/lib.rs

/root/repo/target/debug/deps/libtwocs-e9c80f307a20470f.rmeta: src/lib.rs

src/lib.rs:
