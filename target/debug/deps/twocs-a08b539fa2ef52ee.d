/root/repo/target/debug/deps/twocs-a08b539fa2ef52ee.d: src/bin/twocs.rs

/root/repo/target/debug/deps/twocs-a08b539fa2ef52ee: src/bin/twocs.rs

src/bin/twocs.rs:
