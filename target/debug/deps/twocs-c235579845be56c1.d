/root/repo/target/debug/deps/twocs-c235579845be56c1.d: src/bin/twocs.rs Cargo.toml

/root/repo/target/debug/deps/libtwocs-c235579845be56c1.rmeta: src/bin/twocs.rs Cargo.toml

src/bin/twocs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
