/root/repo/target/debug/deps/twocs-6166e3e48c5aa984.d: src/lib.rs

/root/repo/target/debug/deps/twocs-6166e3e48c5aa984: src/lib.rs

src/lib.rs:
