/root/repo/target/debug/deps/proptest_collectives-87d97faf7d66e695.d: crates/collectives/tests/proptest_collectives.rs

/root/repo/target/debug/deps/proptest_collectives-87d97faf7d66e695: crates/collectives/tests/proptest_collectives.rs

crates/collectives/tests/proptest_collectives.rs:
