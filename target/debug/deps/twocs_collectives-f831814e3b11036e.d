/root/repo/target/debug/deps/twocs_collectives-f831814e3b11036e.d: crates/collectives/src/lib.rs crates/collectives/src/algorithm.rs crates/collectives/src/cost.rs crates/collectives/src/dataplane.rs crates/collectives/src/error.rs crates/collectives/src/schedule.rs Cargo.toml

/root/repo/target/debug/deps/libtwocs_collectives-f831814e3b11036e.rmeta: crates/collectives/src/lib.rs crates/collectives/src/algorithm.rs crates/collectives/src/cost.rs crates/collectives/src/dataplane.rs crates/collectives/src/error.rs crates/collectives/src/schedule.rs Cargo.toml

crates/collectives/src/lib.rs:
crates/collectives/src/algorithm.rs:
crates/collectives/src/cost.rs:
crates/collectives/src/dataplane.rs:
crates/collectives/src/error.rs:
crates/collectives/src/schedule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
