/root/repo/target/debug/deps/golden_figures-eef4b76c3d3f06f4.d: tests/golden_figures.rs

/root/repo/target/debug/deps/golden_figures-eef4b76c3d3f06f4: tests/golden_figures.rs

tests/golden_figures.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
