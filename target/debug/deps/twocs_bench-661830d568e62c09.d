/root/repo/target/debug/deps/twocs_bench-661830d568e62c09.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/twocs_bench-661830d568e62c09: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
