/root/repo/target/debug/deps/twocs_testkit-f7255d7472dd2bec.d: crates/testkit/src/lib.rs crates/testkit/src/trace.rs

/root/repo/target/debug/deps/libtwocs_testkit-f7255d7472dd2bec.rlib: crates/testkit/src/lib.rs crates/testkit/src/trace.rs

/root/repo/target/debug/deps/libtwocs_testkit-f7255d7472dd2bec.rmeta: crates/testkit/src/lib.rs crates/testkit/src/trace.rs

crates/testkit/src/lib.rs:
crates/testkit/src/trace.rs:
