/root/repo/target/debug/deps/twocs-d2a97c910b7a6b6a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtwocs-d2a97c910b7a6b6a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
