/root/repo/target/debug/deps/twocs_opmodel-9b65804f9bfb3faf.d: crates/opmodel/src/lib.rs crates/opmodel/src/cost_accounting.rs crates/opmodel/src/model.rs crates/opmodel/src/profile.rs crates/opmodel/src/projection.rs crates/opmodel/src/stats.rs crates/opmodel/src/validation.rs

/root/repo/target/debug/deps/libtwocs_opmodel-9b65804f9bfb3faf.rlib: crates/opmodel/src/lib.rs crates/opmodel/src/cost_accounting.rs crates/opmodel/src/model.rs crates/opmodel/src/profile.rs crates/opmodel/src/projection.rs crates/opmodel/src/stats.rs crates/opmodel/src/validation.rs

/root/repo/target/debug/deps/libtwocs_opmodel-9b65804f9bfb3faf.rmeta: crates/opmodel/src/lib.rs crates/opmodel/src/cost_accounting.rs crates/opmodel/src/model.rs crates/opmodel/src/profile.rs crates/opmodel/src/projection.rs crates/opmodel/src/stats.rs crates/opmodel/src/validation.rs

crates/opmodel/src/lib.rs:
crates/opmodel/src/cost_accounting.rs:
crates/opmodel/src/model.rs:
crates/opmodel/src/profile.rs:
crates/opmodel/src/projection.rs:
crates/opmodel/src/stats.rs:
crates/opmodel/src/validation.rs:
