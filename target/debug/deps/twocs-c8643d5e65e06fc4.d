/root/repo/target/debug/deps/twocs-c8643d5e65e06fc4.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtwocs-c8643d5e65e06fc4.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
