/root/repo/target/debug/deps/substrate_consistency-6fa269c5cc366fff.d: tests/substrate_consistency.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrate_consistency-6fa269c5cc366fff.rmeta: tests/substrate_consistency.rs Cargo.toml

tests/substrate_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
