/root/repo/target/debug/deps/twocs_collectives-cb366bf77bdd9ee7.d: crates/collectives/src/lib.rs crates/collectives/src/algorithm.rs crates/collectives/src/cost.rs crates/collectives/src/dataplane.rs crates/collectives/src/error.rs crates/collectives/src/schedule.rs

/root/repo/target/debug/deps/twocs_collectives-cb366bf77bdd9ee7: crates/collectives/src/lib.rs crates/collectives/src/algorithm.rs crates/collectives/src/cost.rs crates/collectives/src/dataplane.rs crates/collectives/src/error.rs crates/collectives/src/schedule.rs

crates/collectives/src/lib.rs:
crates/collectives/src/algorithm.rs:
crates/collectives/src/cost.rs:
crates/collectives/src/dataplane.rs:
crates/collectives/src/error.rs:
crates/collectives/src/schedule.rs:
