/root/repo/target/debug/deps/twocs-1c7d84b3fc6d4ecd.d: src/bin/twocs.rs

/root/repo/target/debug/deps/twocs-1c7d84b3fc6d4ecd: src/bin/twocs.rs

src/bin/twocs.rs:
