/root/repo/target/debug/deps/twocs-13313cf0b0393390.d: src/bin/twocs.rs Cargo.toml

/root/repo/target/debug/deps/libtwocs-13313cf0b0393390.rmeta: src/bin/twocs.rs Cargo.toml

src/bin/twocs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
