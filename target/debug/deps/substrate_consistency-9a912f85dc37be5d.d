/root/repo/target/debug/deps/substrate_consistency-9a912f85dc37be5d.d: tests/substrate_consistency.rs

/root/repo/target/debug/deps/substrate_consistency-9a912f85dc37be5d: tests/substrate_consistency.rs

tests/substrate_consistency.rs:
