/root/repo/target/debug/deps/twocs_transformer-06b8fffb8a1451e1.d: crates/transformer/src/lib.rs crates/transformer/src/backward.rs crates/transformer/src/error.rs crates/transformer/src/graph_builder.rs crates/transformer/src/hyper.rs crates/transformer/src/layer.rs crates/transformer/src/memory.rs crates/transformer/src/moe.rs crates/transformer/src/ops.rs crates/transformer/src/parallel.rs crates/transformer/src/pipeline.rs crates/transformer/src/zoo.rs Cargo.toml

/root/repo/target/debug/deps/libtwocs_transformer-06b8fffb8a1451e1.rmeta: crates/transformer/src/lib.rs crates/transformer/src/backward.rs crates/transformer/src/error.rs crates/transformer/src/graph_builder.rs crates/transformer/src/hyper.rs crates/transformer/src/layer.rs crates/transformer/src/memory.rs crates/transformer/src/moe.rs crates/transformer/src/ops.rs crates/transformer/src/parallel.rs crates/transformer/src/pipeline.rs crates/transformer/src/zoo.rs Cargo.toml

crates/transformer/src/lib.rs:
crates/transformer/src/backward.rs:
crates/transformer/src/error.rs:
crates/transformer/src/graph_builder.rs:
crates/transformer/src/hyper.rs:
crates/transformer/src/layer.rs:
crates/transformer/src/memory.rs:
crates/transformer/src/moe.rs:
crates/transformer/src/ops.rs:
crates/transformer/src/parallel.rs:
crates/transformer/src/pipeline.rs:
crates/transformer/src/zoo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
