/root/repo/target/debug/deps/proptest_collectives-f13cbf90ea861a85.d: crates/collectives/tests/proptest_collectives.rs

/root/repo/target/debug/deps/proptest_collectives-f13cbf90ea861a85: crates/collectives/tests/proptest_collectives.rs

crates/collectives/tests/proptest_collectives.rs:
