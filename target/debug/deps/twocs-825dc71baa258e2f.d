/root/repo/target/debug/deps/twocs-825dc71baa258e2f.d: src/bin/twocs.rs Cargo.toml

/root/repo/target/debug/deps/libtwocs-825dc71baa258e2f.rmeta: src/bin/twocs.rs Cargo.toml

src/bin/twocs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
