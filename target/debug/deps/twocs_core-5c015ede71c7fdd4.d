/root/repo/target/debug/deps/twocs_core-5c015ede71c7fdd4.d: crates/core/src/lib.rs crates/core/src/accuracy.rs crates/core/src/algorithmic.rs crates/core/src/case_study.rs crates/core/src/evolution.rs crates/core/src/experiments.rs crates/core/src/inference.rs crates/core/src/overlapped.rs crates/core/src/report.rs crates/core/src/sensitivity.rs crates/core/src/serialized.rs crates/core/src/sweep.rs crates/core/src/techniques.rs crates/core/src/trends.rs

/root/repo/target/debug/deps/twocs_core-5c015ede71c7fdd4: crates/core/src/lib.rs crates/core/src/accuracy.rs crates/core/src/algorithmic.rs crates/core/src/case_study.rs crates/core/src/evolution.rs crates/core/src/experiments.rs crates/core/src/inference.rs crates/core/src/overlapped.rs crates/core/src/report.rs crates/core/src/sensitivity.rs crates/core/src/serialized.rs crates/core/src/sweep.rs crates/core/src/techniques.rs crates/core/src/trends.rs

crates/core/src/lib.rs:
crates/core/src/accuracy.rs:
crates/core/src/algorithmic.rs:
crates/core/src/case_study.rs:
crates/core/src/evolution.rs:
crates/core/src/experiments.rs:
crates/core/src/inference.rs:
crates/core/src/overlapped.rs:
crates/core/src/report.rs:
crates/core/src/sensitivity.rs:
crates/core/src/serialized.rs:
crates/core/src/sweep.rs:
crates/core/src/techniques.rs:
crates/core/src/trends.rs:
