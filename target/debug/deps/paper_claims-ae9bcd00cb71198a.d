/root/repo/target/debug/deps/paper_claims-ae9bcd00cb71198a.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-ae9bcd00cb71198a: tests/paper_claims.rs

tests/paper_claims.rs:
