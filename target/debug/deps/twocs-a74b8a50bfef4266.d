/root/repo/target/debug/deps/twocs-a74b8a50bfef4266.d: src/lib.rs

/root/repo/target/debug/deps/libtwocs-a74b8a50bfef4266.rlib: src/lib.rs

/root/repo/target/debug/deps/libtwocs-a74b8a50bfef4266.rmeta: src/lib.rs

src/lib.rs:
