/root/repo/target/debug/deps/proptest_stats-fbeda64a6224160f.d: crates/opmodel/tests/proptest_stats.rs

/root/repo/target/debug/deps/proptest_stats-fbeda64a6224160f: crates/opmodel/tests/proptest_stats.rs

crates/opmodel/tests/proptest_stats.rs:
