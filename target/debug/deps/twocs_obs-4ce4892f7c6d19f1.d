/root/repo/target/debug/deps/twocs_obs-4ce4892f7c6d19f1.d: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/clock.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/twocs_obs-4ce4892f7c6d19f1: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/clock.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/chrome.rs:
crates/obs/src/clock.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/span.rs:
