/root/repo/target/debug/deps/twocs_testkit-4ade34111a1ef18b.d: crates/testkit/src/lib.rs

/root/repo/target/debug/deps/twocs_testkit-4ade34111a1ef18b: crates/testkit/src/lib.rs

crates/testkit/src/lib.rs:
