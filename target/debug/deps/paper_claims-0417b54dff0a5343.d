/root/repo/target/debug/deps/paper_claims-0417b54dff0a5343.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-0417b54dff0a5343: tests/paper_claims.rs

tests/paper_claims.rs:
