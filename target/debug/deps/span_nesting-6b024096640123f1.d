/root/repo/target/debug/deps/span_nesting-6b024096640123f1.d: crates/core/tests/span_nesting.rs

/root/repo/target/debug/deps/span_nesting-6b024096640123f1: crates/core/tests/span_nesting.rs

crates/core/tests/span_nesting.rs:
