/root/repo/target/debug/deps/projection_vs_sim-3b8ad81363ac9914.d: tests/projection_vs_sim.rs

/root/repo/target/debug/deps/projection_vs_sim-3b8ad81363ac9914: tests/projection_vs_sim.rs

tests/projection_vs_sim.rs:
