/root/repo/target/debug/deps/twocs_obs-01498be6e507a0dd.d: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/clock.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libtwocs_obs-01498be6e507a0dd.rmeta: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/clock.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/span.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/chrome.rs:
crates/obs/src/clock.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
