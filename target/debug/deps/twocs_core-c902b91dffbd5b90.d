/root/repo/target/debug/deps/twocs_core-c902b91dffbd5b90.d: crates/core/src/lib.rs crates/core/src/accuracy.rs crates/core/src/algorithmic.rs crates/core/src/case_study.rs crates/core/src/evolution.rs crates/core/src/experiments.rs crates/core/src/inference.rs crates/core/src/overlapped.rs crates/core/src/report.rs crates/core/src/sensitivity.rs crates/core/src/serialized.rs crates/core/src/sweep.rs crates/core/src/techniques.rs crates/core/src/trends.rs Cargo.toml

/root/repo/target/debug/deps/libtwocs_core-c902b91dffbd5b90.rmeta: crates/core/src/lib.rs crates/core/src/accuracy.rs crates/core/src/algorithmic.rs crates/core/src/case_study.rs crates/core/src/evolution.rs crates/core/src/experiments.rs crates/core/src/inference.rs crates/core/src/overlapped.rs crates/core/src/report.rs crates/core/src/sensitivity.rs crates/core/src/serialized.rs crates/core/src/sweep.rs crates/core/src/techniques.rs crates/core/src/trends.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/accuracy.rs:
crates/core/src/algorithmic.rs:
crates/core/src/case_study.rs:
crates/core/src/evolution.rs:
crates/core/src/experiments.rs:
crates/core/src/inference.rs:
crates/core/src/overlapped.rs:
crates/core/src/report.rs:
crates/core/src/sensitivity.rs:
crates/core/src/serialized.rs:
crates/core/src/sweep.rs:
crates/core/src/techniques.rs:
crates/core/src/trends.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
