/root/repo/target/debug/deps/twocs-0c46f33d23276624.d: src/lib.rs

/root/repo/target/debug/deps/twocs-0c46f33d23276624: src/lib.rs

src/lib.rs:
