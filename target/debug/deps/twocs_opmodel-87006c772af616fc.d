/root/repo/target/debug/deps/twocs_opmodel-87006c772af616fc.d: crates/opmodel/src/lib.rs crates/opmodel/src/cost_accounting.rs crates/opmodel/src/model.rs crates/opmodel/src/profile.rs crates/opmodel/src/projection.rs crates/opmodel/src/stats.rs crates/opmodel/src/validation.rs

/root/repo/target/debug/deps/twocs_opmodel-87006c772af616fc: crates/opmodel/src/lib.rs crates/opmodel/src/cost_accounting.rs crates/opmodel/src/model.rs crates/opmodel/src/profile.rs crates/opmodel/src/projection.rs crates/opmodel/src/stats.rs crates/opmodel/src/validation.rs

crates/opmodel/src/lib.rs:
crates/opmodel/src/cost_accounting.rs:
crates/opmodel/src/model.rs:
crates/opmodel/src/profile.rs:
crates/opmodel/src/projection.rs:
crates/opmodel/src/stats.rs:
crates/opmodel/src/validation.rs:
