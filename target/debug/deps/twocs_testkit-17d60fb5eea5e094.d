/root/repo/target/debug/deps/twocs_testkit-17d60fb5eea5e094.d: crates/testkit/src/lib.rs crates/testkit/src/trace.rs

/root/repo/target/debug/deps/twocs_testkit-17d60fb5eea5e094: crates/testkit/src/lib.rs crates/testkit/src/trace.rs

crates/testkit/src/lib.rs:
crates/testkit/src/trace.rs:
