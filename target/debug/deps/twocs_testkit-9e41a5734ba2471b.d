/root/repo/target/debug/deps/twocs_testkit-9e41a5734ba2471b.d: crates/testkit/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtwocs_testkit-9e41a5734ba2471b.rmeta: crates/testkit/src/lib.rs Cargo.toml

crates/testkit/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
