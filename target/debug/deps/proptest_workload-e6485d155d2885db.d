/root/repo/target/debug/deps/proptest_workload-e6485d155d2885db.d: crates/transformer/tests/proptest_workload.rs

/root/repo/target/debug/deps/proptest_workload-e6485d155d2885db: crates/transformer/tests/proptest_workload.rs

crates/transformer/tests/proptest_workload.rs:
