/root/repo/target/debug/deps/twocs_hw-7f7b0134e3357f8f.d: crates/hw/src/lib.rs crates/hw/src/cache.rs crates/hw/src/device.rs crates/hw/src/error.rs crates/hw/src/evolution.rs crates/hw/src/gemm.rs crates/hw/src/memops.rs crates/hw/src/network.rs crates/hw/src/precision.rs crates/hw/src/roofline.rs crates/hw/src/topology.rs

/root/repo/target/debug/deps/twocs_hw-7f7b0134e3357f8f: crates/hw/src/lib.rs crates/hw/src/cache.rs crates/hw/src/device.rs crates/hw/src/error.rs crates/hw/src/evolution.rs crates/hw/src/gemm.rs crates/hw/src/memops.rs crates/hw/src/network.rs crates/hw/src/precision.rs crates/hw/src/roofline.rs crates/hw/src/topology.rs

crates/hw/src/lib.rs:
crates/hw/src/cache.rs:
crates/hw/src/device.rs:
crates/hw/src/error.rs:
crates/hw/src/evolution.rs:
crates/hw/src/gemm.rs:
crates/hw/src/memops.rs:
crates/hw/src/network.rs:
crates/hw/src/precision.rs:
crates/hw/src/roofline.rs:
crates/hw/src/topology.rs:
