/root/repo/target/debug/deps/proptest_workload-28d9ca185075dab0.d: crates/transformer/tests/proptest_workload.rs

/root/repo/target/debug/deps/proptest_workload-28d9ca185075dab0: crates/transformer/tests/proptest_workload.rs

crates/transformer/tests/proptest_workload.rs:
