/root/repo/target/debug/deps/twocs_transformer-9bc61122ec4cb958.d: crates/transformer/src/lib.rs crates/transformer/src/backward.rs crates/transformer/src/error.rs crates/transformer/src/graph_builder.rs crates/transformer/src/hyper.rs crates/transformer/src/layer.rs crates/transformer/src/memory.rs crates/transformer/src/moe.rs crates/transformer/src/ops.rs crates/transformer/src/parallel.rs crates/transformer/src/pipeline.rs crates/transformer/src/zoo.rs

/root/repo/target/debug/deps/libtwocs_transformer-9bc61122ec4cb958.rlib: crates/transformer/src/lib.rs crates/transformer/src/backward.rs crates/transformer/src/error.rs crates/transformer/src/graph_builder.rs crates/transformer/src/hyper.rs crates/transformer/src/layer.rs crates/transformer/src/memory.rs crates/transformer/src/moe.rs crates/transformer/src/ops.rs crates/transformer/src/parallel.rs crates/transformer/src/pipeline.rs crates/transformer/src/zoo.rs

/root/repo/target/debug/deps/libtwocs_transformer-9bc61122ec4cb958.rmeta: crates/transformer/src/lib.rs crates/transformer/src/backward.rs crates/transformer/src/error.rs crates/transformer/src/graph_builder.rs crates/transformer/src/hyper.rs crates/transformer/src/layer.rs crates/transformer/src/memory.rs crates/transformer/src/moe.rs crates/transformer/src/ops.rs crates/transformer/src/parallel.rs crates/transformer/src/pipeline.rs crates/transformer/src/zoo.rs

crates/transformer/src/lib.rs:
crates/transformer/src/backward.rs:
crates/transformer/src/error.rs:
crates/transformer/src/graph_builder.rs:
crates/transformer/src/hyper.rs:
crates/transformer/src/layer.rs:
crates/transformer/src/memory.rs:
crates/transformer/src/moe.rs:
crates/transformer/src/ops.rs:
crates/transformer/src/parallel.rs:
crates/transformer/src/pipeline.rs:
crates/transformer/src/zoo.rs:
