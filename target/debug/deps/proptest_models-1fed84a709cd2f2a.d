/root/repo/target/debug/deps/proptest_models-1fed84a709cd2f2a.d: crates/hw/tests/proptest_models.rs

/root/repo/target/debug/deps/proptest_models-1fed84a709cd2f2a: crates/hw/tests/proptest_models.rs

crates/hw/tests/proptest_models.rs:
