/root/repo/target/debug/deps/twocs_testkit-73f0c796f0113fb7.d: crates/testkit/src/lib.rs crates/testkit/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libtwocs_testkit-73f0c796f0113fb7.rmeta: crates/testkit/src/lib.rs crates/testkit/src/trace.rs Cargo.toml

crates/testkit/src/lib.rs:
crates/testkit/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
