/root/repo/target/debug/deps/twocs_collectives-73ed0208a5bb3a48.d: crates/collectives/src/lib.rs crates/collectives/src/algorithm.rs crates/collectives/src/cost.rs crates/collectives/src/dataplane.rs crates/collectives/src/error.rs crates/collectives/src/schedule.rs

/root/repo/target/debug/deps/libtwocs_collectives-73ed0208a5bb3a48.rlib: crates/collectives/src/lib.rs crates/collectives/src/algorithm.rs crates/collectives/src/cost.rs crates/collectives/src/dataplane.rs crates/collectives/src/error.rs crates/collectives/src/schedule.rs

/root/repo/target/debug/deps/libtwocs_collectives-73ed0208a5bb3a48.rmeta: crates/collectives/src/lib.rs crates/collectives/src/algorithm.rs crates/collectives/src/cost.rs crates/collectives/src/dataplane.rs crates/collectives/src/error.rs crates/collectives/src/schedule.rs

crates/collectives/src/lib.rs:
crates/collectives/src/algorithm.rs:
crates/collectives/src/cost.rs:
crates/collectives/src/dataplane.rs:
crates/collectives/src/error.rs:
crates/collectives/src/schedule.rs:
