/root/repo/target/debug/deps/sweep_determinism-8bf81138ec415acd.d: tests/sweep_determinism.rs

/root/repo/target/debug/deps/sweep_determinism-8bf81138ec415acd: tests/sweep_determinism.rs

tests/sweep_determinism.rs:

# env-dep:CARGO_BIN_EXE_twocs=/root/repo/target/debug/twocs
