/root/repo/target/debug/deps/twocs-421f637c07393b37.d: src/bin/twocs.rs

/root/repo/target/debug/deps/twocs-421f637c07393b37: src/bin/twocs.rs

src/bin/twocs.rs:
