/root/repo/target/debug/deps/sweep_determinism-8469c64cc8e81a97.d: tests/sweep_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libsweep_determinism-8469c64cc8e81a97.rmeta: tests/sweep_determinism.rs Cargo.toml

tests/sweep_determinism.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_twocs=placeholder:twocs
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
