/root/repo/target/debug/deps/twocs-3b8c36650356e1cd.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtwocs-3b8c36650356e1cd.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
