/root/repo/target/debug/deps/substrate_consistency-93a9a3cb5136ab27.d: tests/substrate_consistency.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrate_consistency-93a9a3cb5136ab27.rmeta: tests/substrate_consistency.rs Cargo.toml

tests/substrate_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
