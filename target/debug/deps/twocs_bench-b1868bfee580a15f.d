/root/repo/target/debug/deps/twocs_bench-b1868bfee580a15f.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/twocs_bench-b1868bfee580a15f: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
