/root/repo/target/debug/deps/sweep_determinism-26cf9b26c2844f39.d: tests/sweep_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libsweep_determinism-26cf9b26c2844f39.rmeta: tests/sweep_determinism.rs Cargo.toml

tests/sweep_determinism.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_twocs=placeholder:twocs
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
