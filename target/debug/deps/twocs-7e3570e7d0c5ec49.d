/root/repo/target/debug/deps/twocs-7e3570e7d0c5ec49.d: src/bin/twocs.rs Cargo.toml

/root/repo/target/debug/deps/libtwocs-7e3570e7d0c5ec49.rmeta: src/bin/twocs.rs Cargo.toml

src/bin/twocs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
