/root/repo/target/debug/deps/twocs_opmodel-a92046a220b0bffc.d: crates/opmodel/src/lib.rs crates/opmodel/src/cost_accounting.rs crates/opmodel/src/model.rs crates/opmodel/src/profile.rs crates/opmodel/src/projection.rs crates/opmodel/src/stats.rs crates/opmodel/src/validation.rs

/root/repo/target/debug/deps/twocs_opmodel-a92046a220b0bffc: crates/opmodel/src/lib.rs crates/opmodel/src/cost_accounting.rs crates/opmodel/src/model.rs crates/opmodel/src/profile.rs crates/opmodel/src/projection.rs crates/opmodel/src/stats.rs crates/opmodel/src/validation.rs

crates/opmodel/src/lib.rs:
crates/opmodel/src/cost_accounting.rs:
crates/opmodel/src/model.rs:
crates/opmodel/src/profile.rs:
crates/opmodel/src/projection.rs:
crates/opmodel/src/stats.rs:
crates/opmodel/src/validation.rs:
