/root/repo/target/debug/deps/substrate_consistency-3ef020a2aacccdfe.d: tests/substrate_consistency.rs

/root/repo/target/debug/deps/substrate_consistency-3ef020a2aacccdfe: tests/substrate_consistency.rs

tests/substrate_consistency.rs:
