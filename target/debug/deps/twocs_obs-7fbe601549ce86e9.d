/root/repo/target/debug/deps/twocs_obs-7fbe601549ce86e9.d: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/clock.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/libtwocs_obs-7fbe601549ce86e9.rlib: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/clock.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/libtwocs_obs-7fbe601549ce86e9.rmeta: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/clock.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/chrome.rs:
crates/obs/src/clock.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/span.rs:
