/root/repo/target/debug/deps/twocs_bench-7f9183d4937cb563.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libtwocs_bench-7f9183d4937cb563.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libtwocs_bench-7f9183d4937cb563.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
