/root/repo/target/debug/deps/proptest_engine-b5e5601068f47bff.d: crates/sim/tests/proptest_engine.rs

/root/repo/target/debug/deps/proptest_engine-b5e5601068f47bff: crates/sim/tests/proptest_engine.rs

crates/sim/tests/proptest_engine.rs:
