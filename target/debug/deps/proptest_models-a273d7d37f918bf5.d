/root/repo/target/debug/deps/proptest_models-a273d7d37f918bf5.d: crates/hw/tests/proptest_models.rs

/root/repo/target/debug/deps/proptest_models-a273d7d37f918bf5: crates/hw/tests/proptest_models.rs

crates/hw/tests/proptest_models.rs:
