/root/repo/target/debug/deps/end_to_end-2f490f561187220a.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-2f490f561187220a: tests/end_to_end.rs

tests/end_to_end.rs:
