//! Capacity planner: given a published model and a device, find the
//! parallel configuration it needs and what it costs in communication.
//!
//! ```text
//! cargo run --release --example capacity_planner -- GPT-3
//! cargo run --release --example capacity_planner            # whole zoo
//! ```
//!
//! For each model: the per-device training memory at increasing TP, the
//! smallest TP that fits an MI210, and the resulting serialized-
//! communication share of a training iteration.

use twocs_hw::DeviceSpec;
use twocs_sim::Engine;
use twocs_transformer::graph_builder::IterationBuilder;
use twocs_transformer::memory::{self, ActivationPolicy, ZeroStage};
use twocs_transformer::{zoo, ParallelConfig};

const TP_CANDIDATES: [u64; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

fn plan(model: &zoo::ZooModel, device: &DeviceSpec) {
    let hyper = model.hyperparams(1);
    println!(
        "\n=== {} ({} , {:.1}B params reported, H={}, SL={}) ===",
        model.name, model.year, model.reported_params_b, model.hidden, model.seq_len
    );

    match memory::required_tp(&hyper, device, &TP_CANDIDATES) {
        Ok(tp) => {
            let parallel = ParallelConfig::new().tensor(tp).data(8);
            let mem =
                memory::training_memory_with(&hyper, &parallel, ActivationPolicy::Checkpointed);
            println!("fits {} at TP = {tp}: {mem}", device.name());
            // Could ZeRO-3 over the DP group buy a smaller TP?
            for &smaller in TP_CANDIDATES.iter().filter(|&&c| c < tp) {
                let p = ParallelConfig::new().tensor(smaller).data(8);
                if p.validate(&hyper).is_ok()
                    && memory::training_memory_zero(
                        &hyper,
                        &p,
                        ActivationPolicy::Checkpointed,
                        ZeroStage::Parameters,
                    )
                    .total()
                        <= device.mem_capacity() * 9 / 10
                {
                    println!("with ZeRO-3 over DP=8 it would already fit at TP = {smaller}");
                    break;
                }
            }

            // Simulate a few layers to estimate the communication share.
            let sim_hyper = hyper.clone();
            let graph = IterationBuilder::new(&sim_hyper, &parallel, device)
                .layers(4.min(hyper.layers()))
                .optimizer(false)
                .build_training();
            match Engine::new().run(&graph) {
                Ok(report) => println!(
                    "serialized communication: {:.1}% of iteration time",
                    100.0 * report.comm_fraction()
                ),
                Err(e) => println!("simulation failed: {e}"),
            }
        }
        Err(e) => println!("does not fit {} at any studied TP: {e}", device.name()),
    }
}

fn main() {
    let device = DeviceSpec::mi210();
    println!(
        "device: {} ({} GiB)",
        device.name(),
        device.mem_capacity() >> 30
    );

    if let Some(name) = std::env::args().nth(1) {
        match zoo::by_name(&name) {
            Some(model) => plan(&model, &device),
            None => {
                eprintln!("unknown model `{name}`; available:");
                for m in zoo::all() {
                    eprintln!("  {}", m.name);
                }
                std::process::exit(1);
            }
        }
    } else {
        for model in zoo::all() {
            plan(&model, &device);
        }
    }
}
