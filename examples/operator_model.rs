//! The paper's empirical strategy, step by step (§4.2): profile one
//! baseline, fit operator models, project future models, and check the
//! projections against "ground truth".
//!
//! ```text
//! cargo run --release --example operator_model
//! ```

use twocs_hw::DeviceSpec;
use twocs_opmodel::projection::ProjectionModel;
use twocs_opmodel::{FittedOpModel, Profiler};
use twocs_sim::Engine;
use twocs_transformer::graph_builder::IterationBuilder;
use twocs_transformer::layer::encoder_layer_forward;
use twocs_transformer::{Hyperparams, ParallelConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = DeviceSpec::mi210();

    // Step 1 — profile a BERT-like baseline once, at the operator level.
    let baseline = Hyperparams::builder(1024)
        .heads(16)
        .seq_len(512)
        .batch(4)
        .build()?;
    let profiler = Profiler::new(device.clone());
    let profile = profiler.profile_layer(&baseline, &ParallelConfig::new());
    println!("step 1: baseline profile ({}):", baseline);
    for record in profile.forward.iter().take(6) {
        println!("  {:<18} {:>9.1} us", record.name, 1e6 * record.time);
    }
    println!(
        "  ... ({} ops total per layer)\n",
        profile.forward.len() + profile.backward.len()
    );

    // Step 2 — fit an operator model: GEMM runtime is linear in SL.
    let samples: Vec<(f64, f64)> = [512u64, 1024, 2048, 8192]
        .iter()
        .map(|&sl| {
            let hyper = baseline.clone().with_seq_len(sl);
            let t = encoder_layer_forward(&hyper, &ParallelConfig::new())
                .iter()
                .find(|o| o.name() == "fc1_gemm")
                .map(|o| profiler.profile_op(o, &hyper).time)
                .expect("fc1_gemm exists");
            (sl as f64, t)
        })
        .collect();
    let fitted = FittedOpModel::fit(&samples, 1).expect("well-posed fit");
    println!(
        "step 2: fc1_gemm vs SL fits a line with R^2 = {:.4}; predicted t(SL=4096) = {:.1} us\n",
        fitted.r_squared(),
        1e6 * fitted.predict(4096.0)
    );

    // Step 3 — project a future model without running it.
    let model = ProjectionModel::from_baseline(&baseline, &device);
    let future = Hyperparams::builder(16_384)
        .heads(256)
        .layers(2)
        .seq_len(2048)
        .batch(1)
        .build()?;
    let parallel = ParallelConfig::new().tensor(64);
    let projected = model.project(&future, &parallel);
    println!("step 3: projected PaLM-1x-class layer (H=16K, TP=64):");
    println!(
        "  compute {:.2} ms + serialized comm {:.2} ms -> {:.1}% communication",
        1e3 * projected.compute_per_layer,
        1e3 * projected.serialized_comm_per_layer,
        100.0 * projected.serialized_comm_fraction()
    );

    // Step 4 — compare against ground truth (the simulator).
    let graph = IterationBuilder::new(&future, &parallel, &device)
        .optimizer(false)
        .build_training();
    let measured = Engine::new().run(&graph)?;
    println!(
        "step 4: simulated ground truth -> {:.1}% communication ({} per iteration)",
        100.0 * measured.comm_fraction(),
        measured.makespan()
    );
    println!(
        "        (the gap is the paper's own \u{00a7}4.3.8 caveat: the projection keeps the\n\
         baseline's GEMM efficiency and the 4-GPU all-reduce curve, both of which\n\
         are optimistic at 64-way slicing; see EXPERIMENTS.md and\n\
         tests/projection_vs_sim.rs)\n"
    );

    // Step 5 — hardware evolution is one multiplication away.
    for ratio in [2.0, 4.0] {
        let evolved = projected.with_flop_vs_bw(ratio);
        println!(
            "step 5: at {ratio}x flop-vs-bw the projection gives {:.1}% communication",
            100.0 * evolved.serialized_comm_fraction()
        );
    }
    Ok(())
}
