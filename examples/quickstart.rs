//! Quickstart: how much of a future Transformer's training time goes to
//! communication?
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a PaLM-1×-class model (H = 16K), shards it TP = 64 / DP = 8 on
//! MI210-class hardware, simulates one training iteration, and prints the
//! compute/communication breakdown — today and under the paper's 4×
//! flop-vs.-bw hardware evolution.

use twocs_hw::{DeviceSpec, HwEvolution};
use twocs_sim::Engine;
use twocs_transformer::graph_builder::IterationBuilder;
use twocs_transformer::{Hyperparams, ParallelConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A futuristic PaLM-1x-class Transformer: H = 16K, SL = 2K, B = 1.
    let hyper = Hyperparams::builder(16_384)
        .heads(128)
        .layers(8) // per-layer structure repeats; 8 layers keep the demo fast
        .seq_len(2048)
        .batch(1)
        .build()?;
    let parallel = ParallelConfig::new().tensor(64).data(8);
    parallel.validate(&hyper)?;

    println!("model:    {hyper}");
    println!("parallel: {parallel} ({} devices)\n", parallel.devices());

    for (label, device) in [
        ("today (MI210 node)", DeviceSpec::mi210()),
        (
            "future (4x flop-vs-bw)",
            HwEvolution::flop_vs_bw(4.0).apply(&DeviceSpec::mi210()),
        ),
    ] {
        let graph = IterationBuilder::new(&hyper, &parallel, &device).build_training();
        let report = Engine::new().run(&graph)?;
        println!("--- {label} ---");
        println!(
            "iteration: {}   compute: {}   comm: {} (exposed {})",
            report.makespan(),
            report.compute_time(),
            report.comm_time(),
            report.exposed_comm_time(),
        );
        println!(
            "=> {:.1}% of training time is communication on the critical path\n",
            100.0 * report.comm_fraction()
        );
    }
    Ok(())
}
