//! Parallelism lab: compare the distributed-training mechanisms the paper
//! discusses (§2.3, §6.1) on one model under the simulator.
//!
//! ```text
//! cargo run --release --example parallelism_lab
//! ```
//!
//! For an 8-layer H=8K model: DDP all-reduce vs. ZeRO-sharded DP, dense vs.
//! MoE layers, and a GPipe pipeline at several micro-batch counts.

use twocs_hw::DeviceSpec;
use twocs_sim::Engine;
use twocs_transformer::graph_builder::{DpStrategy, IterationBuilder};
use twocs_transformer::moe::MoeConfig;
use twocs_transformer::pipeline::{build_pipeline_forward, PipelineSchedule};
use twocs_transformer::{Hyperparams, ParallelConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = DeviceSpec::mi210();
    let hyper = Hyperparams::builder(8192)
        .heads(64)
        .layers(8)
        .seq_len(2048)
        .batch(1)
        .build()?;
    let parallel = ParallelConfig::new().tensor(16).data(8);

    println!("model: {hyper}\nparallel: {parallel}\n");

    // 1. DDP all-reduce vs ZeRO-sharded data parallelism.
    println!("-- data-parallel gradient synchronization --");
    for (label, strategy) in [
        ("DDP all-reduce (overlapped)", DpStrategy::AllReduce),
        ("ZeRO shard (RS + param AG)", DpStrategy::ZeroShard),
    ] {
        let graph = IterationBuilder::new(&hyper, &parallel, &device)
            .dp_strategy(strategy)
            .build_training();
        let r = Engine::new().run(&graph)?;
        println!(
            "{label:<30} iter {:>9}  comm {:>9} (exposed {:>9})",
            r.makespan(),
            r.comm_time(),
            r.exposed_comm_time()
        );
    }

    // 2. Dense vs MoE layers (equal hidden size, 8 experts).
    println!("\n-- dense vs mixture-of-experts --");
    let moe_parallel = ParallelConfig::new().tensor(16).data(2).expert(8);
    let builder = IterationBuilder::new(&hyper, &moe_parallel, &device).optimizer(false);
    let dense = Engine::new().run(&builder.build_training())?;
    let moe = Engine::new().run(&builder.build_moe_training(&MoeConfig::switch(8)))?;
    println!(
        "dense layers                   iter {:>9}  exposed comm {:>9} ({:.1}%)",
        dense.makespan(),
        dense.exposed_comm_time(),
        100.0 * dense.comm_fraction()
    );
    println!(
        "MoE layers (8 experts, top-1)  iter {:>9}  exposed comm {:>9} ({:.1}%)",
        moe.makespan(),
        moe.exposed_comm_time(),
        100.0 * moe.comm_fraction()
    );

    // 3. Pipeline bubble vs micro-batch count.
    println!("\n-- GPipe pipeline (4 stages), forward pass --");
    let pp_hyper = hyper.clone().with_batch(16);
    let pp_parallel = ParallelConfig::new().pipeline(4);
    for micro in [2u64, 4, 8, 32] {
        let schedule = PipelineSchedule::new(4, micro);
        let g = build_pipeline_forward(&pp_hyper, &pp_parallel, &device, &schedule);
        let r = Engine::new().run(&g)?;
        println!(
            "micro-batches {micro:>3}: iter {:>9}  (analytic bubble {:.0}%)",
            r.makespan(),
            100.0 * schedule.bubble_fraction()
        );
    }
    Ok(())
}
