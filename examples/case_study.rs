//! The paper's §4.3.7 end-to-end case study (Figure 14), with a Chrome
//! trace export for visual inspection.
//!
//! ```text
//! cargo run --release --example case_study
//! ```
//!
//! Simulates a futuristic Transformer (H = 64K, SL = 4K, B = 1) at
//! TP = 128 + DP on 4×-flop-vs-bw hardware, under three scenarios:
//! serialized TP only, TP + intra-node DP, and TP + slow inter-node DP
//! with interference. Writes `out/case_study_trace.json` (load it at
//! `chrome://tracing` or ui.perfetto.dev).

use std::fs;
use twocs_core::case_study::{self, Scenario};
use twocs_hw::{DeviceSpec, HwEvolution};
use twocs_sim::Engine;
use twocs_transformer::graph_builder::IterationBuilder;
use twocs_transformer::ParallelConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Case study: H=64K, B=1, SL=4K, TP=128, flop-vs-bw = 4x\n");

    let scenarios = [
        ("TP + intra-node DP", Scenario::IntraNode),
        (
            "TP + inter-node DP (8x slower links)",
            Scenario::InterNode {
                slowdown: 8.0,
                interference: false,
            },
        ),
        (
            "TP + inter-node DP + interference",
            Scenario::InterNode {
                slowdown: 8.0,
                interference: true,
            },
        ),
    ];
    println!(
        "{:<40} {:>9} {:>12} {:>12} {:>10} {:>14}",
        "scenario", "iter", "serialized", "overlapped", "exposedDP", "critical comm"
    );
    for (label, scenario) in scenarios {
        let r = case_study::run(scenario, 4.0);
        println!(
            "{:<40} {:>7.1}ms {:>11.1}% {:>11.1}% {:>9.1}% {:>13.1}%",
            label,
            1e3 * r.makespan,
            100.0 * r.serialized_fraction,
            100.0 * r.overlapped_fraction,
            100.0 * r.exposed_dp_fraction,
            100.0 * r.critical_comm_fraction(),
        );
    }

    // Export a kernel timeline of the intra-node scenario.
    let device = HwEvolution::flop_vs_bw(4.0).apply(&DeviceSpec::mi210());
    let hyper = case_study::case_hyper();
    let parallel = ParallelConfig::new().tensor(128).data(4);
    let graph = IterationBuilder::new(&hyper, &parallel, &device)
        .optimizer(false)
        .build_training();
    let timeline = Engine::new().run_trace(&graph)?;
    println!("\ntimeline (intra-node scenario):");
    print!("{}", timeline.to_ascii_gantt(100));
    println!("\ntop kernels:");
    for stat in timeline.kernel_summary(6) {
        println!("  {stat}");
    }
    fs::create_dir_all("out")?;
    fs::write("out/case_study_trace.json", timeline.to_chrome_trace())?;
    println!(
        "\nwrote out/case_study_trace.json ({} kernel records) — open in chrome://tracing",
        timeline.records().len()
    );
    Ok(())
}
