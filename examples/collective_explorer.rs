//! Collective explorer: execute all-reduce algorithms over real buffers
//! and compare their schedules and costs.
//!
//! ```text
//! cargo run --release --example collective_explorer
//! ```
//!
//! Demonstrates the collectives substrate in isolation: functional
//! correctness on the data plane, per-rank traffic vs. the analytic lower
//! bounds, and algorithm crossover (ring vs. tree vs. halving-doubling)
//! across message sizes.

use twocs_collectives::algorithm::{multi_ring_allreduce, Algorithm, Collective};
use twocs_collectives::{dataplane, CollectiveCostModel};
use twocs_hw::network::LinkSpec;
use twocs_hw::DeviceSpec;
use twocs_sim::Engine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 8usize;
    let elements = 1 << 16;

    // 1. Functional check: every algorithm reduces to the same sums.
    let inputs: Vec<Vec<f32>> = (0..n)
        .map(|r| (0..elements).map(|i| ((r * 7 + i) % 13) as f32).collect())
        .collect();
    println!("all-reduce over {n} ranks x {elements} f32:");
    for alg in [Algorithm::Ring, Algorithm::Tree, Algorithm::HalvingDoubling] {
        let outputs = dataplane::run_allreduce(alg, &inputs)?;
        let checksum: f64 = outputs[0].iter().map(|&v| f64::from(v)).sum();
        println!("  {:<16} rank-0 checksum {checksum:.0}", format!("{alg:?}"));
    }

    // 2. Traffic accounting vs the bandwidth-optimal lower bound.
    println!("\nper-rank traffic (elements sent), payload {elements} elems:");
    for alg in [Algorithm::Ring, Algorithm::Tree, Algorithm::HalvingDoubling] {
        let schedule = alg.schedule(Collective::AllReduce, n, elements)?;
        let max_rank = (0..n)
            .map(|r| schedule.elements_sent_by(r))
            .max()
            .unwrap_or(0);
        let bound = Collective::AllReduce.bytes_per_device(elements as u64, n);
        println!(
            "  {:<16} busiest rank sends {max_rank} (lower bound {bound:.0}), {} steps",
            format!("{alg:?}"),
            schedule.steps().len()
        );
    }

    // 3. Cost crossover across message sizes on MI210 links.
    let dev = DeviceSpec::mi210();
    let link = dev.network().intra_node();
    let model = CollectiveCostModel::default();
    println!("\nall-reduce time on {} links, 64 ranks:", dev.name());
    println!(
        "{:>12} {:>12} {:>12} {:>12}",
        "bytes", "ring", "tree", "halv-doub"
    );
    for shift in [12u32, 16, 20, 24, 28] {
        let bytes = 1u64 << shift;
        let t = |alg| 1e6 * model.time_on_link(Collective::AllReduce, alg, bytes, 64, &link);
        println!(
            "{:>12} {:>10.1}us {:>10.1}us {:>10.1}us",
            bytes,
            t(Algorithm::Ring),
            t(Algorithm::Tree),
            t(Algorithm::HalvingDoubling)
        );
    }
    // 4. Multi-ring all-reduce: how the paper's node turns 100 GB/s links
    //    into 150 GB/s of algorithmic bandwidth.
    let idealized = LinkSpec::new(50e9, 0.0, 0.0)?;
    println!("\nmulti-ring all-reduce on a fully-connected 4-GPU node (32 MiB):");
    for rings in [1usize, 2, 3] {
        let schedule = multi_ring_allreduce(4, 8 << 20, rings);
        let (graph, _) = schedule.to_task_graph(4, &idealized);
        let t = Engine::new().run(&graph)?.makespan().as_secs_f64();
        println!(
            "  {rings} ring(s): {:>8.1} us  (algorithmic bw {:>5.1} GB/s)",
            1e6 * t,
            (8u64 << 20) as f64 * 4.0 / t / 1e9
        );
    }
    Ok(())
}
