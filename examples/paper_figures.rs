//! Regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run --release --example paper_figures            # all artifacts
//! cargo run --release --example paper_figures -- fig10   # one artifact
//! ```
//!
//! Prints each artifact as an ASCII table and writes CSVs to `out/`.

use std::fs;
use std::path::Path;
use twocs_core::experiments;
use twocs_hw::DeviceSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let filter: Option<String> = std::env::args().nth(1);
    let device = DeviceSpec::mi210();
    let out_dir = Path::new("out");
    fs::create_dir_all(out_dir)?;

    for def in experiments::all() {
        if let Some(f) = &filter {
            if def.id != f {
                continue;
            }
        }
        eprintln!("running {} ...", def.id);
        let output = (def.run)(&device);
        println!("{}", "=".repeat(72));
        println!("{} — {}", def.id, def.title);
        println!("paper claim: {}", def.paper_claim);
        println!("{}", "-".repeat(72));
        println!("{}", output.to_ascii());
        let csv_path = out_dir.join(format!("{}.csv", def.id));
        fs::write(&csv_path, output.to_csv())?;
        eprintln!("wrote {}", csv_path.display());
    }
    Ok(())
}
