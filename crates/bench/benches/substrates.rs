//! Microbenchmarks of the substrates: simulator engine throughput,
//! collective schedule generation and execution, and hardware-model
//! evaluation.

use std::time::Duration;
use twocs_bench::harness::{BenchmarkId, Criterion};
use twocs_bench::{criterion_group, criterion_main};
use twocs_collectives::algorithm::{Algorithm, Collective};
use twocs_collectives::dataplane;
use twocs_hw::gemm::GemmShape;
use twocs_hw::{DeviceSpec, Precision};
use twocs_sim::graph::TaskGraph;
use twocs_sim::task::{DeviceId, OpClass};
use twocs_sim::Engine;
use twocs_transformer::graph_builder::IterationBuilder;
use twocs_transformer::{Hyperparams, ParallelConfig};

fn engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_engine");
    group.measurement_time(Duration::from_secs(4));
    for &tasks in &[100usize, 1000, 10_000] {
        let mut g = TaskGraph::new(4);
        for i in 0..tasks {
            let dev = DeviceId(i % 4);
            let dep = if i >= 4 {
                vec![twocs_sim::TaskId(i - 4)]
            } else {
                vec![]
            };
            g.compute(dev, format!("k{i}"), OpClass::Gemm, 1e-5, &dep);
        }
        group.bench_with_input(BenchmarkId::new("tasks", tasks), &g, |b, g| {
            b.iter(|| Engine::new().run(std::hint::black_box(g)).unwrap());
        });
    }
    group.finish();
}

fn iteration_graph_build_and_run(c: &mut Criterion) {
    let hyper = Hyperparams::builder(8192)
        .heads(64)
        .layers(24)
        .seq_len(2048)
        .batch(1)
        .build()
        .unwrap();
    let par = ParallelConfig::new().tensor(16).data(8);
    let dev = DeviceSpec::mi210();
    let mut group = c.benchmark_group("sim_engine");
    group.measurement_time(Duration::from_secs(4));
    group.bench_function("training_iteration_24_layers", |b| {
        b.iter(|| {
            let g = IterationBuilder::new(&hyper, &par, &dev).build_training();
            Engine::new().run(std::hint::black_box(&g)).unwrap()
        });
    });
    group.finish();
}

fn collective_schedules(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives");
    group.measurement_time(Duration::from_secs(4));
    for &n in &[8usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("ring_schedule", n), &n, |b, &n| {
            b.iter(|| {
                Algorithm::Ring
                    .schedule(Collective::AllReduce, n, 1 << 20)
                    .unwrap()
            });
        });
    }
    group.bench_function("dataplane_allreduce_8x64k", |b| {
        let inputs: Vec<Vec<f32>> = (0..8).map(|r| vec![r as f32; 65_536]).collect();
        b.iter(|| {
            dataplane::run_allreduce(Algorithm::Ring, std::hint::black_box(&inputs)).unwrap()
        });
    });
    group.finish();
}

fn hardware_models(c: &mut Criterion) {
    let dev = DeviceSpec::mi210();
    let mut group = c.benchmark_group("hw_models");
    group.measurement_time(Duration::from_secs(4));
    group.bench_function("gemm_time", |b| {
        b.iter(|| {
            dev.gemm_time(
                std::hint::black_box(GemmShape::new(4096, 4096, 4096)),
                Precision::Fp16,
            )
        });
    });
    group.finish();
}

criterion_group!(
    substrates,
    engine_throughput,
    iteration_graph_build_and_run,
    collective_schedules,
    hardware_models
);
criterion_main!(substrates);
