//! Design-choice ablations (see DESIGN.md §5).
//!
//! Each ablation prints the comparison it makes (the quantitative
//! takeaway) and then times the cheap variant under Criterion so the
//! harness stays fast.

use std::time::Duration;
use twocs_bench::harness::Criterion;
use twocs_bench::{criterion_group, criterion_main};
use twocs_collectives::algorithm::Algorithm;
use twocs_collectives::{Collective, CollectiveCostModel};
use twocs_hw::gemm::GemmShape;
use twocs_hw::{DeviceSpec, Precision};
use twocs_sim::interference::InterferenceModel;
use twocs_sim::Engine;
use twocs_transformer::graph_builder::IterationBuilder;
use twocs_transformer::{Hyperparams, ParallelConfig};

/// Ablation 1 — collective algorithm choice across message sizes.
fn ablation_collectives(c: &mut Criterion) {
    let dev = DeviceSpec::mi210();
    let link = dev.network().intra_node();
    let model = CollectiveCostModel::default();
    println!("== ablation: collective algorithm (all-reduce time, 64 ranks) ==");
    println!(
        "{:>12}  {:>10}  {:>10}  {:>10}",
        "bytes", "ring", "tree", "halv-doub"
    );
    for shift in [14u32, 20, 26, 30] {
        let bytes = 1u64 << shift;
        let t = |alg| model.time_on_link(Collective::AllReduce, alg, bytes, 64, &link);
        println!(
            "{:>12}  {:>9.1}us  {:>9.1}us  {:>9.1}us",
            bytes,
            1e6 * t(Algorithm::Ring),
            1e6 * t(Algorithm::Tree),
            1e6 * t(Algorithm::HalvingDoubling),
        );
    }
    let mut group = c.benchmark_group("ablations");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(20);
    group.bench_function("collective_cost_eval", |b| {
        b.iter(|| {
            model.time_on_link(
                Collective::AllReduce,
                Algorithm::Ring,
                std::hint::black_box(1 << 26),
                64,
                &link,
            )
        });
    });
    group.finish();
}

/// Ablation 2 — GEMM efficiency model vs ideal peak: the source of the
/// operator model's error (paper §4.3.8).
fn ablation_gemm_efficiency(c: &mut Criterion) {
    let dev = DeviceSpec::mi210();
    println!("== ablation: GEMM kernel-catalog efficiency vs ideal peak ==");
    println!(
        "{:>24}  {:>10}  {:>10}  {:>6}",
        "shape", "modelled", "ideal", "eff"
    );
    for shape in [
        GemmShape::new(512, 512, 512),
        GemmShape::new(2048, 1024, 256),
        GemmShape::new(4096, 4096, 4096),
        GemmShape::new(16_384, 768, 65_536),
    ] {
        let t = dev.gemm_time(shape, Precision::Fp16);
        let ideal = shape.flops() as f64 / dev.peak_flops(Precision::Fp16);
        println!(
            "{:>24}  {:>8.1}us  {:>8.1}us  {:>5.0}%",
            shape.to_string(),
            1e6 * t,
            1e6 * ideal,
            100.0 * ideal / t
        );
    }
    let mut group = c.benchmark_group("ablations");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(20);
    group.bench_function("gemm_model_eval", |b| {
        b.iter(|| {
            dev.gemm_time(
                std::hint::black_box(GemmShape::new(4096, 4096, 4096)),
                Precision::Fp16,
            )
        });
    });
    group.finish();
}

/// Ablation 3 — interference model on/off for an overlapped iteration.
fn ablation_interference(c: &mut Criterion) {
    let hyper = Hyperparams::builder(8192)
        .heads(64)
        .layers(8)
        .seq_len(2048)
        .batch(1)
        .build()
        .unwrap();
    let par = ParallelConfig::new().tensor(16).data(8);
    let dev = DeviceSpec::mi210();
    let graph = IterationBuilder::new(&hyper, &par, &dev).build_training();
    let clean = Engine::new().run(&graph).unwrap();
    let noisy = Engine::new()
        .with_interference(InterferenceModel::typical())
        .run(&graph)
        .unwrap();
    println!("== ablation: compute/comm interference ==");
    println!(
        "makespan clean {:.3} ms vs with interference {:.3} ms ({:+.1}%)",
        clean.makespan().as_millis_f64(),
        noisy.makespan().as_millis_f64(),
        100.0 * (noisy.makespan().as_secs_f64() / clean.makespan().as_secs_f64() - 1.0),
    );
    let mut group = c.benchmark_group("ablations");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    group.bench_function("interference_run", |b| {
        b.iter(|| {
            Engine::new()
                .with_interference(InterferenceModel::typical())
                .run(std::hint::black_box(&graph))
                .unwrap()
        });
    });
    group.finish();
}

/// Ablation 4 — per-layer gradient all-reduce vs whole-model flushing:
/// bucket granularity controls how much DP communication can hide.
fn ablation_buckets(c: &mut Criterion) {
    use twocs_sim::graph::TaskGraph;
    use twocs_sim::task::{DeviceId, OpClass};

    let dev = DeviceSpec::mi210();
    let hyper = Hyperparams::builder(8192)
        .heads(64)
        .layers(8)
        .seq_len(2048)
        .batch(1)
        .build()
        .unwrap();
    let par = ParallelConfig::new().tensor(16).data(8);

    // Per-layer buckets: built by the standard iteration builder.
    let bucketed = IterationBuilder::new(&hyper, &par, &dev)
        .optimizer(false)
        .build_training();
    let bucketed_report = Engine::new().run(&bucketed).unwrap();

    // Single flush: one big all-reduce after the whole backward pass.
    let mut flushed = TaskGraph::new(1);
    let single_dp = ParallelConfig::new().tensor(16); // no per-layer ARs
    let base = IterationBuilder::new(&hyper, &single_dp, &dev)
        .optimizer(false)
        .build_training();
    for t in base.tasks() {
        flushed.push(
            t.name.clone(),
            t.class,
            t.kind.clone(),
            t.duration,
            &t.deps.clone(),
        );
    }
    let comm_model = CollectiveCostModel::default();
    let grad_bytes = twocs_transformer::layer::layer_weight_elements(&hyper, &par)
        * hyper.precision().bytes()
        * hyper.layers();
    let secs = comm_model.allreduce_time(grad_bytes, 8, dev.network());
    let last = twocs_sim::TaskId(flushed.len() - 1);
    flushed.collective_on(vec![DeviceId(0)], "flush_all_grads", secs, &[last], true);
    // A token optimizer-like barrier so the flush is on the critical path.
    let flush_id = twocs_sim::TaskId(flushed.len() - 1);
    flushed.compute(DeviceId(0), "apply", OpClass::Other, 1e-6, &[flush_id]);
    let flushed_report = Engine::new().run(&flushed).unwrap();

    println!("== ablation: per-layer gradient buckets vs single flush ==");
    println!(
        "per-layer buckets: {:.3} ms (exposed comm {:.3} ms) | single flush: {:.3} ms (exposed comm {:.3} ms)",
        bucketed_report.makespan().as_millis_f64(),
        bucketed_report.exposed_comm_time().as_millis_f64(),
        flushed_report.makespan().as_millis_f64(),
        flushed_report.exposed_comm_time().as_millis_f64(),
    );

    let mut group = c.benchmark_group("ablations");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    group.bench_function("bucketed_iteration", |b| {
        b.iter(|| Engine::new().run(std::hint::black_box(&bucketed)).unwrap());
    });
    group.finish();
}

/// Ablation 5 — kernel fusion (paper §2.1): fusing element-wise epilogues
/// speeds compute and thereby *raises* communication's share.
fn ablation_fusion(c: &mut Criterion) {
    use twocs_hw::Precision;
    use twocs_transformer::layer::{encoder_layer_forward_fused, Fusion};

    let dev = DeviceSpec::mi210();
    let cm = CollectiveCostModel::default();
    let hyper = Hyperparams::builder(8192)
        .heads(64)
        .seq_len(2048)
        .batch(1)
        .build()
        .unwrap();
    let par = ParallelConfig::new().tensor(16);
    println!("== ablation: kernel fusion (one forward layer, H=8K, TP=16) ==");
    for fusion in [Fusion::None, Fusion::Epilogue, Fusion::Flash] {
        let ops = encoder_layer_forward_fused(&hyper, &par, fusion);
        let total: f64 = ops
            .iter()
            .map(|o| o.time_on(&dev, Precision::Fp16, &cm))
            .sum();
        let comm: f64 = ops
            .iter()
            .filter(|o| o.is_comm())
            .map(|o| o.time_on(&dev, Precision::Fp16, &cm))
            .sum();
        println!(
            "{:<10} {:>2} kernels, {:>7.1}us/layer, comm share {:>4.1}%",
            format!("{fusion:?}"),
            ops.len(),
            1e6 * total,
            100.0 * comm / total
        );
    }
    let mut group = c.benchmark_group("ablations");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(20);
    group.bench_function("fused_layer_generation", |b| {
        b.iter(|| encoder_layer_forward_fused(&hyper, &par, std::hint::black_box(Fusion::Flash)));
    });
    group.finish();
}

criterion_group!(
    ablations,
    ablation_collectives,
    ablation_gemm_efficiency,
    ablation_interference,
    ablation_buckets,
    ablation_fusion
);
criterion_main!(ablations);
