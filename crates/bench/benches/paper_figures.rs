//! One benchmark group per paper table/figure. Each group prints the
//! regenerated artifact once (the reproduction output), then times its
//! generator under Criterion.

use std::time::Duration;
use twocs_bench::harness::Criterion;
use twocs_bench::render_experiment;
use twocs_bench::{criterion_group, criterion_main};
use twocs_core::experiments;
use twocs_hw::DeviceSpec;

fn bench_experiment(c: &mut Criterion, id: &'static str) {
    // Print the artifact once so `cargo bench` output contains the
    // regenerated rows/series.
    println!("{}", render_experiment(id));

    let def = experiments::by_id(id).expect("registered experiment");
    let device = DeviceSpec::mi210();
    let mut group = c.benchmark_group("paper");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    group.bench_function(id, |b| b.iter(|| std::hint::black_box((def.run)(&device))));
    group.finish();
}

fn table2(c: &mut Criterion) {
    bench_experiment(c, "table2");
}
fn table3(c: &mut Criterion) {
    bench_experiment(c, "table3");
}
fn fig06(c: &mut Criterion) {
    bench_experiment(c, "fig06");
}
fn fig07(c: &mut Criterion) {
    bench_experiment(c, "fig07");
}
fn fig09b(c: &mut Criterion) {
    bench_experiment(c, "fig09b");
}
fn fig10(c: &mut Criterion) {
    bench_experiment(c, "fig10");
}
fn fig11(c: &mut Criterion) {
    bench_experiment(c, "fig11");
}
fn fig12(c: &mut Criterion) {
    bench_experiment(c, "fig12");
}
fn fig13(c: &mut Criterion) {
    bench_experiment(c, "fig13");
}
fn fig14(c: &mut Criterion) {
    bench_experiment(c, "fig14");
}
fn fig15(c: &mut Criterion) {
    bench_experiment(c, "fig15");
}
fn speedup(c: &mut Criterion) {
    bench_experiment(c, "speedup");
}
fn techniques(c: &mut Criterion) {
    bench_experiment(c, "techniques");
}
fn sensitivity(c: &mut Criterion) {
    bench_experiment(c, "sensitivity");
}

criterion_group!(
    paper,
    table2,
    table3,
    fig06,
    fig07,
    fig09b,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    speedup,
    techniques,
    sensitivity
);
criterion_main!(paper);
