//! # twocs-bench — the benchmark harness
//!
//! Three bench binaries, driven by the in-repo [`harness`] (a small,
//! std-only Criterion-compatible timer so the workspace builds offline):
//!
//! * `paper_figures` — one benchmark group per paper table/figure. Each
//!   group first *prints* the regenerated rows/series (the reproduction
//!   artifact) and then times the generator.
//! * `substrates` — microbenchmarks of the substrates themselves: the
//!   discrete-event engine, collective schedule generation, the data
//!   plane, and the GEMM model.
//! * `ablations` — the design-choice ablations called out in `DESIGN.md`:
//!   collective algorithm selection, GEMM efficiency modelling on/off,
//!   interference on/off, and gradient-bucketing granularity.
//!
//! Run everything with `cargo bench -p twocs-bench`.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod harness;

use twocs_core::experiments;
use twocs_hw::DeviceSpec;

/// Run one registered experiment on the MI210 testbed and return its
/// rendered ASCII output (used by the benches to print reproduction
/// artifacts before timing).
///
/// # Panics
/// Panics if `id` is not a registered experiment.
#[must_use]
pub fn render_experiment(id: &str) -> String {
    let def = experiments::by_id(id).unwrap_or_else(|| panic!("unknown experiment `{id}`"));
    let device = DeviceSpec::mi210();
    let out = (def.run)(&device);
    format!(
        "== {} — {}\n   paper: {}\n{}",
        def.id,
        def.title,
        def.paper_claim,
        out.to_ascii()
    )
}

/// Experiment ids that are cheap enough to time under Criterion many
/// times (the rest are still printed once).
#[must_use]
pub fn cheap_experiments() -> Vec<&'static str> {
    vec!["table2", "fig06", "fig07", "fig09b"]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_works_for_cheap_experiments() {
        for id in cheap_experiments() {
            let s = render_experiment(id);
            assert!(s.contains(id), "{id}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_experiment_panics() {
        let _ = render_experiment("fig99");
    }
}
