//! A small, std-only benchmark timer with a Criterion-compatible surface.
//!
//! The workspace must build with no registry access, so it cannot depend
//! on `criterion`. This module provides the subset of its API the bench
//! binaries use — [`Criterion::benchmark_group`], `sample_size`,
//! `measurement_time`, `bench_function`, `bench_with_input`,
//! [`BenchmarkId`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros — backed by plain [`std::time::Instant`] sampling.
//!
//! Each benchmark is calibrated so one sample takes roughly 10 ms, then
//! up to `sample_size` samples are collected within the group's
//! measurement-time budget. Mean / min / max per-iteration times are
//! printed in a human unit.
//!
//! [`criterion_group!`]: crate::criterion_group
//! [`criterion_main!`]: crate::criterion_main

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver (stands in for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
        }
    }

    /// Every result collected so far, in run order. Bench binaries that
    /// export machine-readable artifacts (e.g. `sweep_perf` writing
    /// `BENCH_sweep.json`) read statistics from here after running.
    #[must_use]
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Print a one-line-per-benchmark summary of everything run so far.
    pub fn print_summary(&self) {
        if self.results.is_empty() {
            return;
        }
        println!("\n== benchmark summary ==");
        for r in &self.results {
            println!("{r}");
        }
    }
}

/// A benchmark identifier made of a function name and an input label
/// (stands in for `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Identifier for `name` at input `parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            name: name.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.parameter)
    }
}

/// One benchmark's collected timing statistics.
#[derive(Debug, Clone)]
pub struct BenchResult {
    group: String,
    id: String,
    samples: usize,
    iters_per_sample: u64,
    mean: Duration,
    min: Duration,
    max: Duration,
}

impl BenchResult {
    /// Group name this benchmark ran under.
    #[must_use]
    pub fn group(&self) -> &str {
        &self.group
    }

    /// Benchmark id within the group.
    #[must_use]
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Samples collected.
    #[must_use]
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Iterations timed per sample.
    #[must_use]
    pub fn iters_per_sample(&self) -> u64 {
        self.iters_per_sample
    }

    /// Mean per-iteration time.
    #[must_use]
    pub fn mean(&self) -> Duration {
        self.mean
    }

    /// Fastest sample's per-iteration time.
    #[must_use]
    pub fn min(&self) -> Duration {
        self.min
    }

    /// Slowest sample's per-iteration time.
    #[must_use]
    pub fn max(&self) -> Duration {
        self.max
    }
}

impl fmt::Display for BenchResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<44} {:>12}/iter (min {}, max {}, {} samples x {} iters)",
            format!("{}/{}", self.group, self.id),
            fmt_duration(self.mean),
            fmt_duration(self.min),
            fmt_duration(self.max),
            self.samples,
            self.iters_per_sample,
        )
    }
}

/// Render a duration in the most readable unit.
fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if ns >= 1_000 {
        format!("{:.3} us", d.as_secs_f64() * 1e6)
    } else {
        format!("{ns} ns")
    }
}

/// A named group of benchmarks sharing sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the per-benchmark measurement-time budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Time `f`, which receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            result: None,
        };
        f(&mut bencher);
        self.record(id.to_string(), bencher);
        self
    }

    /// Time `f` with an explicit input (stands in for Criterion's
    /// `bench_with_input`).
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            result: None,
        };
        f(&mut bencher, input);
        self.record(id.to_string(), bencher);
        self
    }

    fn record(&mut self, id: String, bencher: Bencher) {
        if let Some((samples, iters, mean, min, max)) = bencher.result {
            let result = BenchResult {
                group: self.name.clone(),
                id,
                samples,
                iters_per_sample: iters,
                mean,
                min,
                max,
            };
            println!("{result}");
            self.criterion.results.push(result);
        }
    }

    /// Finish the group (retained for Criterion API compatibility).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the code
/// under test.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    /// `(samples, iters_per_sample, mean, min, max)` once measured.
    result: Option<(usize, u64, Duration, Duration, Duration)>,
}

/// Target wall time for one sample; short enough that even one sample
/// gives a usable number, long enough to amortize timer overhead.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(10);

impl Bencher {
    /// Run `f` repeatedly and record per-iteration statistics.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // Warm up and calibrate: how long does one iteration take?
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters_per_sample =
            (TARGET_SAMPLE_TIME.as_nanos() / once.as_nanos()).clamp(1, 1 << 20) as u64;

        let budget = Instant::now();
        let mut durations: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            durations.push(t0.elapsed() / u32::try_from(iters_per_sample).unwrap_or(u32::MAX));
            if budget.elapsed() > self.measurement_time {
                break;
            }
        }
        let samples = durations.len().max(1);
        let total: Duration = durations.iter().sum();
        let mean = total / u32::try_from(samples).unwrap_or(u32::MAX);
        let min = durations.iter().min().copied().unwrap_or(once);
        let max = durations.iter().max().copied().unwrap_or(once);
        self.result = Some((samples, iters_per_sample, mean, min, max));
    }
}

/// Define a bench group function from a list of benchmark functions
/// (stands in for `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name(c: &mut $crate::harness::Criterion) {
            $( $bench(c); )+
        }
    };
}

/// Define `main` from one or more bench groups (stands in for
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::harness::Criterion::default();
            $( $group(&mut c); )+
            c.print_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_statistics() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].mean > Duration::ZERO);
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("tasks", 100).to_string(), "tasks/100");
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert!(fmt_duration(Duration::from_nanos(5)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(5)).ends_with("us"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).ends_with(" s"));
    }
}
