//! End-to-end sweep performance benchmark, emitting `BENCH_sweep.json`.
//!
//! Times the fig10-class projection grid (26 points after realism
//! pruning) through every execution surface:
//!
//! * **cold / warm local sweeps** — `GridSweep::run_mode` under the
//!   naive per-point planner and the factored per-axis planner, with
//!   the global memo caches (`gemm_time`, collective `node_time`,
//!   slack-ROI profiles) dropped before each cold sample;
//! * **the serve path** — an in-process `GET /v1/sweep` through
//!   `twocs_serve::handlers::handle`, once per planner;
//! * **distributed-chunk evaluation** — `twocs_core::eval_chunk` over
//!   the same grid split into lease-sized chunks, i.e. exactly what a
//!   `twocs worker` computes per lease.
//!
//! Before timing anything it asserts the planner contract: the naive
//! and factored CSV bodies must be byte-identical. The emitted JSON
//! records per-benchmark mean/min/max nanoseconds plus the derived
//! `warm_speedup_factored_vs_naive`, the number the CI smoke gate and
//! README performance section quote.
//!
//! Usage: `sweep_perf [--out PATH] [--jobs N] [--smoke]
//! [--baseline PATH [--max-regress PCT]]`
//! (`--smoke` collects fewer samples for CI; the JSON shape is
//! unchanged. `--baseline` compares this run's `sweep_warm` and
//! `dist_chunks` means against a committed `BENCH_sweep.json` and exits
//! nonzero when any is more than `--max-regress` percent — default
//! 20 — slower: the CI perf-regression gate.)

use std::time::Duration;

use twocs_bench::harness::Criterion;
use twocs_core::serialized::Method;
use twocs_core::sweep::{eval_chunk, GridSweep};
use twocs_core::PlannerMode;
use twocs_hw::DeviceSpec;
use twocs_serve::handlers::{handle, HandlerConfig};
use twocs_serve::http::Request;

/// The fig10-class benchmark grid: the paper's studied hidden sizes and
/// sequence lengths across the full TP ladder on today's hardware.
fn bench_grid() -> GridSweep {
    GridSweep {
        hs: vec![4096, 16_384, 65_536],
        sls: vec![2048, 4096],
        tps: vec![4, 8, 16, 32, 64, 128, 256],
        flop_vs_bw: vec![1.0],
        // Exercise the MoE and pipeline axis tables: 4x the legacy point
        // count, so the perf gate holds on the enlarged grid.
        experts: vec![1, 8],
        stages: vec![1, 2],
        batch: 1,
        method: Method::Projection,
        ..GridSweep::default()
    }
}

/// Drop every global memo cache so the next sweep is a true cold run.
fn clear_caches() {
    twocs_hw::cache::clear_gemm_time_cache();
    twocs_collectives::clear_node_time_cache();
    twocs_opmodel::clear_slack_roi_cache();
}

fn sweep_query(grid: &GridSweep, jobs: usize, planner: PlannerMode) -> String {
    let join = |xs: &[u64]| {
        xs.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(",")
    };
    format!(
        "h={}&sl={}&tp={}&flop_vs_bw=1&experts={}&top_k={}&stages={}&micro_batches={}&sp={}\
         &method=proj&planner={planner}&jobs={jobs}&format=csv",
        join(&grid.hs),
        join(&grid.sls),
        join(&grid.tps),
        join(&grid.experts),
        join(&grid.top_ks),
        join(&grid.stages),
        join(&grid.micro_batches),
        join(&grid.sps),
    )
}

fn serve_once(cfg: &HandlerConfig, raw_query: &str) -> String {
    // `HandlerConfig::default()` carries no response cache, so this
    // keeps benchmarking the sweep engine, not a body memcpy.
    let req = Request::get("/v1/sweep", raw_query);
    let resp = handle(&req, cfg);
    assert_eq!(resp.status, 200, "/v1/sweep failed: {}", resp.body);
    resp.body
}

#[derive(Debug)]
struct Options {
    out: String,
    jobs: usize,
    smoke: bool,
    baseline: Option<String>,
    max_regress: f64,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        out: "BENCH_sweep.json".to_owned(),
        jobs: 4,
        smoke: false,
        baseline: None,
        max_regress: 20.0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                opts.out = args.next().ok_or("--out requires a path")?;
            }
            "--jobs" => {
                let raw = args.next().ok_or("--jobs requires a value")?;
                opts.jobs = raw
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--jobs {raw}: expected a positive integer"))?;
            }
            "--smoke" => opts.smoke = true,
            "--baseline" => {
                opts.baseline = Some(args.next().ok_or("--baseline requires a path")?);
            }
            "--max-regress" => {
                let raw = args.next().ok_or("--max-regress requires a percentage")?;
                opts.max_regress = raw
                    .parse::<f64>()
                    .ok()
                    .filter(|p| p.is_finite() && *p >= 0.0)
                    .ok_or_else(|| {
                        format!("--max-regress {raw}: expected a non-negative percentage")
                    })?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: sweep_perf [--out PATH] [--jobs N] [--smoke] \
                     [--baseline PATH [--max-regress PCT]]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// Benchmark groups the CI regression gate compares against the
/// committed baseline: the warm factored/naive sweeps and the
/// distributed-chunk path. Cold and serve numbers are too
/// machine-sensitive to gate on.
const GATED_GROUPS: &[&str] = &["sweep_warm", "dist_chunks"];

/// Compare this run's means against the committed baseline and exit
/// nonzero on any regression beyond the budget.
fn run_gate(c: &Criterion, baseline_path: &str, max_regress: f64) {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
    let baseline = twocs_bench::baseline::parse_results(&text)
        .unwrap_or_else(|e| panic!("parse baseline {baseline_path}: {e}"));
    let current: Vec<twocs_bench::baseline::BaselineEntry> = c
        .results()
        .iter()
        .map(|r| twocs_bench::baseline::BaselineEntry {
            group: r.group().to_owned(),
            id: r.id().to_owned(),
            mean_ns: r.mean().as_nanos(),
        })
        .collect();
    let checks = match twocs_bench::baseline::gate(&baseline, &current, GATED_GROUPS, max_regress) {
        Ok(checks) => checks,
        Err(e) => {
            eprintln!("sweep_perf: perf gate is unusable: {e}");
            std::process::exit(2);
        }
    };
    eprintln!("sweep_perf: perf gate vs {baseline_path} (max regress {max_regress}%):");
    for check in &checks {
        eprintln!("  {check}");
    }
    let regressed = checks.iter().filter(|c| c.regressed).count();
    if regressed > 0 {
        eprintln!(
            "sweep_perf: PERF REGRESSION — {regressed} benchmark(s) slower than the committed \
             baseline by more than {max_regress}%"
        );
        std::process::exit(1);
    }
    eprintln!("sweep_perf: perf gate passed");
}

/// Escape and serialize one benchmark result as a JSON object.
fn result_json(r: &twocs_bench::harness::BenchResult) -> String {
    format!(
        "    {{\"group\": \"{}\", \"id\": \"{}\", \"samples\": {}, \"iters_per_sample\": {}, \
         \"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
        twocs_obs::chrome::escape_json(r.group()),
        twocs_obs::chrome::escape_json(r.id()),
        r.samples(),
        r.iters_per_sample(),
        r.mean().as_nanos(),
        r.min().as_nanos(),
        r.max().as_nanos(),
    )
}

fn mean_ns(c: &Criterion, group: &str, id: &str) -> u128 {
    c.results()
        .iter()
        .find(|r| r.group() == group && r.id() == id)
        .map(|r| r.mean().as_nanos())
        .unwrap_or_else(|| panic!("benchmark {group}/{id} did not run"))
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("sweep_perf: {e}");
            std::process::exit(2);
        }
    };
    let grid = bench_grid();
    let device = DeviceSpec::mi210();
    let points = grid.points();
    let jobs = opts.jobs;
    eprintln!(
        "sweep_perf: {} grid points, {jobs} worker thread(s){}",
        points.len(),
        if opts.smoke { ", smoke mode" } else { "" }
    );

    // The planner contract, checked before any timing: identical CSV
    // bytes from the naive and factored paths, locally and over serve.
    let naive_csv = grid.run_mode(&device, jobs, PlannerMode::Naive).0.to_csv();
    let factored_csv = grid
        .run_mode(&device, jobs, PlannerMode::Factored)
        .0
        .to_csv();
    assert_eq!(
        naive_csv, factored_csv,
        "factored planner must be byte-identical to naive"
    );
    let cfg = HandlerConfig::default();
    let serve_naive = serve_once(&cfg, &sweep_query(&grid, jobs, PlannerMode::Naive));
    let serve_factored = serve_once(&cfg, &sweep_query(&grid, jobs, PlannerMode::Factored));
    assert_eq!(
        serve_naive, serve_factored,
        "serve planner choice must not change the body"
    );
    assert_eq!(
        serve_naive.trim_end(),
        naive_csv.trim_end(),
        "serve body must match the local CSV"
    );
    eprintln!("sweep_perf: byte-identity holds (local naive == local factored == serve)");

    // Smoke mode still collects enough samples for a usable mean: the
    // perf gate compares smoke means against the committed full-run
    // baseline, and 3x400ms samples were noisy enough to flake a 20%
    // budget on loaded runners.
    let (samples, budget) = if opts.smoke {
        (5, Duration::from_secs(1))
    } else {
        (12, Duration::from_secs(4))
    };

    let mut c = Criterion::default();
    {
        let mut group = c.benchmark_group("sweep_cold");
        group.sample_size(samples).measurement_time(budget);
        for mode in [PlannerMode::Naive, PlannerMode::Factored] {
            group.bench_function(mode.to_string(), |b| {
                b.iter(|| {
                    clear_caches();
                    std::hint::black_box(grid.run_mode(&device, jobs, mode))
                });
            });
        }
        group.finish();
    }
    {
        // Prewarm once; every sample below hits warm caches.
        clear_caches();
        let _ = grid.run_mode(&device, jobs, PlannerMode::Naive);
        let mut group = c.benchmark_group("sweep_warm");
        group.sample_size(samples).measurement_time(budget);
        for mode in [PlannerMode::Naive, PlannerMode::Factored] {
            group.bench_function(mode.to_string(), |b| {
                b.iter(|| std::hint::black_box(grid.run_mode(&device, jobs, mode)));
            });
        }
        group.finish();
    }
    {
        let mut group = c.benchmark_group("serve_sweep");
        group.sample_size(samples).measurement_time(budget);
        for mode in [PlannerMode::Naive, PlannerMode::Factored] {
            let query = sweep_query(&grid, jobs, mode);
            group.bench_function(mode.to_string(), |b| {
                b.iter(|| std::hint::black_box(serve_once(&cfg, &query)));
            });
        }
        group.finish();
    }
    {
        // Lease-sized chunks, evaluated back to back the way one
        // distributed worker drains them.
        let chunks = grid.chunks(8);
        let mut group = c.benchmark_group("dist_chunks");
        group.sample_size(samples).measurement_time(budget);
        group.bench_function("eval_chunk", |b| {
            b.iter(|| {
                for chunk in &chunks {
                    std::hint::black_box(eval_chunk(
                        &device,
                        &chunk.points,
                        grid.batch,
                        grid.method,
                        grid.workload,
                    ));
                }
            });
        });
        group.finish();
    }
    c.print_summary();

    let warm_naive = mean_ns(&c, "sweep_warm", "naive");
    let warm_factored = mean_ns(&c, "sweep_warm", "factored").max(1);
    #[allow(clippy::cast_precision_loss)]
    let speedup = warm_naive as f64 / warm_factored as f64;
    eprintln!("sweep_perf: warm factored vs naive speedup = {speedup:.2}x");

    let results: Vec<String> = c.results().iter().map(result_json).collect();
    let json = format!(
        "{{\n  \"benchmark\": \"sweep_perf\",\n  \"grid\": {{\"points\": {}, \"h\": [{}], \
         \"sl\": [{}], \"tp\": [{}], \"flop_vs_bw\": [1.0], \"experts\": [{}], \
         \"stages\": [{}], \"batch\": {}, \"method\": \"projection\"}},\n  \"jobs\": {},\n  \"smoke\": {},\n  \
         \"byte_identical_naive_factored\": true,\n  \"results\": [\n{}\n  ],\n  \
         \"warm_speedup_factored_vs_naive\": {:.4}\n}}\n",
        points.len(),
        grid.hs
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", "),
        grid.sls
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", "),
        grid.tps
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", "),
        grid.experts
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", "),
        grid.stages
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", "),
        grid.batch,
        jobs,
        opts.smoke,
        results.join(",\n"),
        speedup,
    );
    twocs_obs::json::validate(&json).expect("BENCH_sweep.json must be well-formed JSON");
    std::fs::write(&opts.out, &json).unwrap_or_else(|e| panic!("write {}: {e}", opts.out));
    eprintln!("sweep_perf: wrote {}", opts.out);

    if let Some(baseline_path) = &opts.baseline {
        run_gate(&c, baseline_path, opts.max_regress);
    }
}
