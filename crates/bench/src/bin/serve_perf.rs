//! Serve front-end performance benchmark, emitting `BENCH_serve.json`.
//!
//! Unlike `sweep_perf` (which times the sweep engine in-process), this
//! binary measures the HTTP surface end to end: it binds a real
//! `twocs_serve::Server` on an ephemeral port and drives it with raw
//! `TcpStream` clients over four scenarios:
//!
//! * **cold_cache** — distinct `/v1/sweep` queries, each a response-cache
//!   miss that computes the projection grid;
//! * **warm_cache** — the same query repeated on one keep-alive
//!   connection, so every answer after the first is a cached-body hit;
//! * **keepalive_warm_sustained** — hundreds of concurrent keep-alive
//!   connections hammering one warm-cache query for a fixed window:
//!   sustained RPS plus pooled p50/p99 latency;
//! * **close_nocache_sustained** — the pre-keep-alive baseline: response
//!   cache disabled, one connection per request (`Connection: close`),
//!   same query, same window.
//!
//! The derived `keepalive_warm_vs_close_nocache_rps_ratio` is the number
//! the README quotes: how much faster the keep-alive + cache front end
//! answers warm repeat queries than the connection-per-request server it
//! replaced.
//!
//! Usage: `serve_perf [--out PATH] [--jobs N] [--smoke]`
//! (`--smoke` shrinks connection counts and measurement windows for CI;
//! the JSON shape is unchanged.)

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use twocs_serve::{HandlerConfig, ServeStats, Server, ServerConfig, ShutdownHandle};

/// The benched query: a fig10-class projection slice, small enough that
/// a cold compute is tens of milliseconds, large enough that the cached
/// body is a real CSV table rather than a trivial line.
const SWEEP_QUERY: &str = "h=4096,16384&sl=2048&tp=4,8,16,32&method=proj&format=csv";

fn bench_server(jobs: usize, cache_responses: bool) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        jobs,
        // Deep queue and wide budget: the benchmark measures latency and
        // throughput, not load shedding, so a 503 here is a bug.
        queue: 4096,
        request_timeout: Duration::from_secs(30),
        handler: HandlerConfig::default(),
        max_connections: 2048,
        max_requests_per_conn: u64::MAX,
        cache_responses,
        ..ServerConfig::default()
    }
}

fn start(config: ServerConfig) -> (String, ShutdownHandle, std::thread::JoinHandle<ServeStats>) {
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let shutdown = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run());
    (addr, shutdown, join)
}

fn connect(addr: &str) -> TcpStream {
    let conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    conn.set_nodelay(true).expect("nodelay");
    conn
}

/// Issue one keep-alive request and read the full response (head +
/// `Content-Length` body), leaving the connection usable. Panics on any
/// non-200 status: shed or errored requests would corrupt the numbers.
fn keepalive_request(conn: &mut TcpStream, target: &str, buf: &mut Vec<u8>) {
    write!(conn, "GET {target} HTTP/1.1\r\nHost: twocs\r\n\r\n").expect("send");
    buf.clear();
    let mut chunk = [0u8; 16 * 1024];
    let mut head_end = None;
    let total = loop {
        if head_end.is_none() {
            if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = std::str::from_utf8(&buf[..pos + 4]).expect("utf-8 head");
                assert!(
                    head.starts_with("HTTP/1.1 200 "),
                    "non-200 under benchmark load: {head}"
                );
                let len: usize = head
                    .lines()
                    .find_map(|l| l.strip_prefix("Content-Length: "))
                    .expect("Content-Length")
                    .trim()
                    .parse()
                    .expect("numeric length");
                head_end = Some(pos + 4 + len);
            }
        }
        if let Some(total) = head_end {
            if buf.len() >= total {
                break total;
            }
        }
        let n = conn.read(&mut chunk).expect("read");
        assert!(n > 0, "server hung up mid-response");
        buf.extend_from_slice(&chunk[..n]);
    };
    assert_eq!(buf.len(), total, "pipelined bytes beyond one response");
}

/// One full connection-per-request exchange: the `Connection: close`
/// baseline the old server forced on every client.
fn close_request(addr: &str, target: &str) {
    let mut conn = connect(addr);
    write!(
        conn,
        "GET {target} HTTP/1.1\r\nHost: twocs\r\nConnection: close\r\n\r\n"
    )
    .expect("send");
    let mut raw = Vec::new();
    conn.read_to_end(&mut raw).expect("read to EOF");
    let head = std::str::from_utf8(&raw[..raw.len().min(64)]).unwrap_or("");
    assert!(
        head.starts_with("HTTP/1.1 200 "),
        "non-200 under benchmark load: {head}"
    );
}

#[derive(Debug)]
struct Scenario {
    id: &'static str,
    connections: usize,
    requests: u64,
    elapsed: Duration,
    latencies_us: Vec<u64>,
}

impl Scenario {
    #[allow(clippy::cast_precision_loss)]
    fn rps(&self) -> f64 {
        self.requests as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    fn percentile(&self, p: f64) -> u64 {
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        if sorted.is_empty() {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        #[allow(clippy::cast_sign_loss)]
        let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    }

    fn json(&self) -> String {
        format!(
            "    {{\"id\": \"{}\", \"connections\": {}, \"requests\": {}, \
             \"elapsed_ms\": {}, \"rps\": {:.1}, \"p50_us\": {}, \"p99_us\": {}}}",
            self.id,
            self.connections,
            self.requests,
            self.elapsed.as_millis(),
            self.rps(),
            self.percentile(50.0),
            self.percentile(99.0),
        )
    }

    fn report(&self) {
        eprintln!(
            "serve_perf: {:<26} {:>8.0} req/s  p50 {:>7} us  p99 {:>7} us  \
             ({} requests, {} conns, {:?})",
            self.id,
            self.rps(),
            self.percentile(50.0),
            self.percentile(99.0),
            self.requests,
            self.connections,
            self.elapsed,
        );
    }
}

/// Sequential single-connection scenario: `n` requests, each timed.
fn run_sequential(
    id: &'static str,
    addr: &str,
    n: usize,
    mut target: impl FnMut(usize) -> String,
) -> Scenario {
    let mut conn = connect(addr);
    let mut buf = Vec::new();
    let mut latencies_us = Vec::with_capacity(n);
    let start = Instant::now();
    for i in 0..n {
        let t0 = Instant::now();
        keepalive_request(&mut conn, &target(i), &mut buf);
        latencies_us.push(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
    }
    Scenario {
        id,
        connections: 1,
        requests: n as u64,
        elapsed: start.elapsed(),
        latencies_us,
    }
}

/// Concurrent sustained-load scenario: `conns` client threads hammer the
/// server for `window`, all starting together on a barrier. `keep_alive`
/// chooses one persistent connection per thread versus a fresh
/// `Connection: close` exchange per request.
fn run_sustained(
    id: &'static str,
    addr: &str,
    target: &str,
    conns: usize,
    window: Duration,
    keep_alive: bool,
) -> Scenario {
    let barrier = Barrier::new(conns + 1);
    let total = AtomicU64::new(0);
    let mut elapsed = Duration::ZERO;
    let mut latencies_us = Vec::new();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..conns)
            .map(|_| {
                let barrier = &barrier;
                let total = &total;
                scope.spawn(move || {
                    let mut conn = keep_alive.then(|| connect(addr));
                    let mut buf = Vec::new();
                    let mut lats = Vec::new();
                    barrier.wait();
                    let deadline = Instant::now() + window;
                    while Instant::now() < deadline {
                        let t0 = Instant::now();
                        match conn.as_mut() {
                            Some(c) => keepalive_request(c, target, &mut buf),
                            None => close_request(addr, target),
                        }
                        lats.push(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
                    }
                    total.fetch_add(lats.len() as u64, Ordering::Relaxed);
                    lats
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        for w in workers {
            latencies_us.extend(w.join().expect("client thread"));
        }
        elapsed = start.elapsed();
    });
    Scenario {
        id,
        connections: conns,
        requests: total.load(Ordering::Relaxed),
        elapsed,
        latencies_us,
    }
}

#[derive(Debug)]
struct Options {
    out: String,
    jobs: usize,
    smoke: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        out: "BENCH_serve.json".to_owned(),
        jobs: 4,
        smoke: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                opts.out = args.next().ok_or("--out requires a path")?;
            }
            "--jobs" => {
                let raw = args.next().ok_or("--jobs requires a value")?;
                opts.jobs = raw
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--jobs {raw}: expected a positive integer"))?;
            }
            "--smoke" => opts.smoke = true,
            "--help" | "-h" => {
                println!("usage: serve_perf [--out PATH] [--jobs N] [--smoke]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("serve_perf: {e}");
            std::process::exit(2);
        }
    };
    // Scenario sizes: full runs push hundreds of concurrent keep-alive
    // connections; smoke keeps CI under a few seconds.
    let (cold_n, warm_n, sustained_conns, close_conns, window) = if opts.smoke {
        (4, 50, 16, 8, Duration::from_millis(500))
    } else {
        (32, 400, 256, 64, Duration::from_secs(4))
    };
    eprintln!(
        "serve_perf: {} worker thread(s), {sustained_conns} keep-alive connections{}",
        opts.jobs,
        if opts.smoke { ", smoke mode" } else { "" }
    );

    let target = format!("/v1/sweep?{SWEEP_QUERY}");

    // Cached, keep-alive server: the front end this PR ships.
    let (addr, shutdown, join) = start(bench_server(opts.jobs, true));
    // Cold misses: vary flop_vs_bw so every query canonicalizes to a
    // fresh cache key and computes its grid.
    let cold = run_sequential("cold_cache", &addr, cold_n, |i| {
        format!("/v1/sweep?{SWEEP_QUERY}&flop_vs_bw=1.{:04}", i + 1)
    });
    cold.report();
    let warm = run_sequential("warm_cache", &addr, warm_n, |_| target.clone());
    warm.report();
    let sustained = run_sustained(
        "keepalive_warm_sustained",
        &addr,
        &target,
        sustained_conns,
        window,
        true,
    );
    sustained.report();
    shutdown.trigger();
    let stats = join.join().expect("server thread");
    assert_eq!(stats.rejected, 0, "load was shed during the benchmark");

    // Baseline server: no response cache, and clients reconnect per
    // request — the behavior of the pre-keep-alive front end.
    let (addr, shutdown, join) = start(bench_server(opts.jobs, false));
    // Prewarm the engine-level memo caches (gemm/collective tables) so
    // the comparison isolates the serve layer, not first-touch compute.
    close_request(&addr, &target);
    let baseline = run_sustained(
        "close_nocache_sustained",
        &addr,
        &target,
        close_conns,
        window,
        false,
    );
    baseline.report();
    shutdown.trigger();
    join.join().expect("server thread");

    let ratio = sustained.rps() / baseline.rps().max(1e-9);
    eprintln!("serve_perf: keep-alive+cache vs close+no-cache sustained RPS ratio = {ratio:.1}x");

    let scenarios = [cold, warm, sustained, baseline];
    let json = format!(
        "{{\n  \"benchmark\": \"serve_perf\",\n  \"query\": \"/v1/sweep?{}\",\n  \
         \"jobs\": {},\n  \"smoke\": {},\n  \"scenarios\": [\n{}\n  ],\n  \
         \"keepalive_warm_vs_close_nocache_rps_ratio\": {:.2}\n}}\n",
        SWEEP_QUERY.replace('&', "&"),
        opts.jobs,
        opts.smoke,
        scenarios
            .iter()
            .map(Scenario::json)
            .collect::<Vec<_>>()
            .join(",\n"),
        ratio,
    );
    twocs_obs::json::validate(&json).expect("BENCH_serve.json must be well-formed JSON");
    std::fs::write(&opts.out, &json).unwrap_or_else(|e| panic!("write {}: {e}", opts.out));
    eprintln!("serve_perf: wrote {}", opts.out);
}
