//! Distributed-fabric latency-tolerance benchmark, emitting
//! `BENCH_dist.json`.
//!
//! Runs the same sweep through a real TCP coordinator + 4 in-process
//! workers under injected per-message latency (0 / 1 / 5 ms round
//! trip), once in **lockstep** (`pipeline = 1`: one chunk lease per
//! round-trip, the v3 behaviour) and once **pipelined** (`pipeline =
//! 4`, the v4 default: a credit window deep enough to hide a whole
//! round-trip behind compute). The headline numbers are the
//! `pipelined_speedup_rtt*` ratios — how much sweep throughput the
//! credit window recovers once the fabric's own communication stops
//! being free, the paper's exposed-vs-hidden communication story told
//! about the tool's own wires.
//!
//! Latency is injected at the worker (`WorkerConfig::injected_latency`,
//! or `TWOCS_DIST_RTT_MS` for external processes) as pure propagation
//! delay: frames are *visible* half an RTT after they arrive and are
//! *released* half an RTT after they are queued, without serializing
//! occupancy — two grants in one window cost one RTT, not two.
//!
//! Before timing anything it asserts the byte-identity contract: the
//! pipelined distributed CSV at 1 ms RTT must equal the local run.
//!
//! Usage: `dist_perf [--out PATH] [--smoke]
//! [--baseline PATH [--max-regress PCT]]`
//! (`--smoke` collects fewer samples for CI; the JSON shape is
//! unchanged. `--baseline` compares this run's `dist_sweep` means
//! against a committed `BENCH_dist.json` and exits nonzero when any is
//! more than `--max-regress` percent — default 20 — slower: the CI
//! perf-regression gate.)

use std::time::Duration;

use twocs_bench::harness::Criterion;
use twocs_core::serialized::Method;
use twocs_core::sweep::GridSweep;
use twocs_dist::coordinator::{Coordinator, CoordinatorConfig};
use twocs_dist::worker::{run_worker, WorkerConfig, WorkerReport};
use twocs_hw::DeviceSpec;

/// Chunk size under test: small chunks make round-trips frequent, which
/// is exactly the regime where lockstep leasing drowns in latency.
const CHUNK: usize = 2;

/// Worker processes per fabric — the acceptance configuration.
const WORKERS: usize = 4;

/// The v4 default credit window.
const WINDOW: usize = 4;

/// Injected round-trip times under test.
const RTTS_MS: &[u64] = &[0, 1, 5];

/// A mid-sized projection grid (64 points after realism pruning, 32
/// chunks): enough chunks per worker that steady-state throughput
/// dominates ramp-up, small enough that a lockstep run at 5 ms RTT
/// stays well under a second.
fn bench_grid() -> GridSweep {
    GridSweep {
        hs: vec![4096, 16_384],
        sls: vec![2048, 4096],
        tps: vec![4, 8, 16, 32, 64, 128],
        flop_vs_bw: vec![1.0, 4.0],
        experts: vec![1, 8],
        batch: 1,
        method: Method::Projection,
        ..GridSweep::default()
    }
}

/// A live coordinator + worker threads, reused across bench iterations
/// so setup cost stays out of the timed region.
struct Fabric {
    coordinator: Coordinator,
    workers: Vec<std::thread::JoinHandle<Result<WorkerReport, String>>>,
}

impl Fabric {
    fn spawn(pipeline: usize, rtt: Duration) -> Self {
        let coordinator = Coordinator::bind(CoordinatorConfig {
            chunk_size: CHUNK,
            pipeline,
            ..CoordinatorConfig::default()
        })
        .expect("bind ephemeral coordinator port");
        let addr = coordinator.local_addr().to_string();
        let workers = (0..WORKERS)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut cfg = WorkerConfig::new(addr, 1);
                    cfg.injected_latency = (rtt > Duration::ZERO).then_some(rtt);
                    run_worker(&cfg)
                })
            })
            .collect();
        let present = coordinator.wait_for_workers(WORKERS, Duration::from_secs(10));
        assert_eq!(present, WORKERS, "all {WORKERS} workers registered");
        Self {
            coordinator,
            workers,
        }
    }

    fn teardown(self) {
        self.coordinator.shutdown();
        for w in self.workers {
            w.join().unwrap().expect("worker exits cleanly on Done");
        }
    }
}

#[derive(Debug)]
struct Options {
    out: String,
    smoke: bool,
    baseline: Option<String>,
    max_regress: f64,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        out: "BENCH_dist.json".to_owned(),
        smoke: false,
        baseline: None,
        max_regress: 20.0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                opts.out = args.next().ok_or("--out requires a path")?;
            }
            "--smoke" => opts.smoke = true,
            "--baseline" => {
                opts.baseline = Some(args.next().ok_or("--baseline requires a path")?);
            }
            "--max-regress" => {
                let raw = args.next().ok_or("--max-regress requires a percentage")?;
                opts.max_regress = raw
                    .parse::<f64>()
                    .ok()
                    .filter(|p| p.is_finite() && *p >= 0.0)
                    .ok_or_else(|| {
                        format!("--max-regress {raw}: expected a non-negative percentage")
                    })?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: dist_perf [--out PATH] [--smoke] [--baseline PATH [--max-regress PCT]]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// The gate compares only the pipelined 5 ms run: it is the product
/// configuration in the regime the feature exists for, and its mean is
/// pinned by the injected latency (wall ≈ chunks/workers/window × RTT)
/// rather than by how loaded the runner is — yet a broken credit window
/// would still show up as a ~4x jump. The 0/1 ms entries are partly or
/// wholly compute-bound and swing with runner load, so they inform but
/// do not gate.
const GATED_GROUPS: &[&str] = &["dist_pipelined"];
const UNGATED_IDS: &[&str] = &["rtt0ms", "rtt1ms"];

/// Compare this run's means against the committed baseline and exit
/// nonzero on any regression beyond the budget.
fn run_gate(c: &Criterion, baseline_path: &str, max_regress: f64) {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
    let baseline = twocs_bench::baseline::parse_results(&text)
        .unwrap_or_else(|e| panic!("parse baseline {baseline_path}: {e}"));
    let current: Vec<twocs_bench::baseline::BaselineEntry> = c
        .results()
        .iter()
        .filter(|r| !UNGATED_IDS.contains(&r.id()))
        .map(|r| twocs_bench::baseline::BaselineEntry {
            group: r.group().to_owned(),
            id: r.id().to_owned(),
            mean_ns: r.mean().as_nanos(),
        })
        .collect();
    let checks = match twocs_bench::baseline::gate(&baseline, &current, GATED_GROUPS, max_regress) {
        Ok(checks) => checks,
        Err(e) => {
            eprintln!("dist_perf: perf gate is unusable: {e}");
            std::process::exit(2);
        }
    };
    eprintln!("dist_perf: perf gate vs {baseline_path} (max regress {max_regress}%):");
    for check in &checks {
        eprintln!("  {check}");
    }
    let regressed = checks.iter().filter(|c| c.regressed).count();
    if regressed > 0 {
        eprintln!(
            "dist_perf: PERF REGRESSION — {regressed} benchmark(s) slower than the committed \
             baseline by more than {max_regress}%"
        );
        std::process::exit(1);
    }
    eprintln!("dist_perf: perf gate passed");
}

/// Escape and serialize one benchmark result as a JSON object.
fn result_json(r: &twocs_bench::harness::BenchResult) -> String {
    format!(
        "    {{\"group\": \"{}\", \"id\": \"{}\", \"samples\": {}, \"iters_per_sample\": {}, \
         \"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
        twocs_obs::chrome::escape_json(r.group()),
        twocs_obs::chrome::escape_json(r.id()),
        r.samples(),
        r.iters_per_sample(),
        r.mean().as_nanos(),
        r.min().as_nanos(),
        r.max().as_nanos(),
    )
}

fn mean_ns(c: &Criterion, group: &str, id: &str) -> u128 {
    c.results()
        .iter()
        .find(|r| r.group() == group && r.id() == id)
        .map(|r| r.mean().as_nanos())
        .unwrap_or_else(|| panic!("benchmark {group}/{id} did not run"))
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("dist_perf: {e}");
            std::process::exit(2);
        }
    };
    let grid = bench_grid();
    let device = DeviceSpec::mi210();
    let points = grid.points();
    let n_chunks = points.len().div_ceil(CHUNK);
    eprintln!(
        "dist_perf: {} grid points in {n_chunks} chunks of {CHUNK}, {WORKERS} workers, \
         window {WINDOW}{}",
        points.len(),
        if opts.smoke { ", smoke mode" } else { "" }
    );

    // The contract, checked before any timing: a pipelined distributed
    // run under injected latency is byte-identical to the local sweep.
    let local_csv = grid.run(&device, WORKERS).0.to_csv();
    {
        let fabric = Fabric::spawn(WINDOW, Duration::from_millis(1));
        let (table, summary) = fabric
            .coordinator
            .run_sweep(&grid, &device)
            .expect("distributed sweep runs");
        assert_eq!(
            table.to_csv(),
            local_csv,
            "pipelined distributed CSV must be byte-identical to local"
        );
        assert_eq!(summary.reassigned, 0, "healthy fabric reassigns nothing");
        fabric.teardown();
    }
    eprintln!("dist_perf: byte-identity holds (pipelined @1ms RTT == local)");

    let (samples, budget) = if opts.smoke {
        (5, Duration::from_secs(1))
    } else {
        (10, Duration::from_secs(3))
    };

    let mut c = Criterion::default();
    for (group_name, pipeline) in [("dist_lockstep", 1), ("dist_pipelined", WINDOW)] {
        let mut group = c.benchmark_group(group_name);
        group.sample_size(samples).measurement_time(budget);
        for &rtt_ms in RTTS_MS {
            let fabric = Fabric::spawn(pipeline, Duration::from_millis(rtt_ms));
            group.bench_function(format!("rtt{rtt_ms}ms"), |b| {
                b.iter(|| {
                    std::hint::black_box(
                        fabric
                            .coordinator
                            .run_sweep(&grid, &device)
                            .expect("distributed sweep runs"),
                    )
                });
            });
            fabric.teardown();
        }
        group.finish();
    }
    c.print_summary();

    // Headline ratios: wall-time speedup == points/s speedup (same grid).
    #[allow(clippy::cast_precision_loss)]
    let speedup = |rtt_ms: u64| {
        let lockstep = mean_ns(&c, "dist_lockstep", &format!("rtt{rtt_ms}ms"));
        let pipelined = mean_ns(&c, "dist_pipelined", &format!("rtt{rtt_ms}ms")).max(1);
        lockstep as f64 / pipelined as f64
    };
    let speedups: Vec<(u64, f64)> = RTTS_MS.iter().map(|&ms| (ms, speedup(ms))).collect();
    for &(ms, s) in &speedups {
        eprintln!("dist_perf: pipelined vs lockstep speedup @ {ms} ms RTT = {s:.2}x");
    }
    let at_1ms = speedups
        .iter()
        .find(|&&(ms, _)| ms == 1)
        .map(|&(_, s)| s)
        .expect("1 ms RTT was measured");
    // The acceptance floor. Smoke runs on loaded CI runners only warn:
    // the committed full-run baseline is the binding record.
    if at_1ms < 2.0 {
        let msg = format!("pipelining must be >= 2x lockstep at 1 ms RTT, measured {at_1ms:.2}x");
        assert!(opts.smoke, "{msg}");
        eprintln!("dist_perf: WARNING (smoke): {msg}");
    }

    let results: Vec<String> = c.results().iter().map(result_json).collect();
    let speedup_fields: Vec<String> = speedups
        .iter()
        .map(|(ms, s)| format!("  \"pipelined_speedup_rtt{ms}ms\": {s:.4}"))
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"dist_perf\",\n  \"grid\": {{\"points\": {}, \"chunks\": {n_chunks}, \
         \"chunk_size\": {CHUNK}, \"method\": \"projection\"}},\n  \"workers\": {WORKERS},\n  \
         \"pipeline\": {WINDOW},\n  \"rtts_ms\": [{}],\n  \"smoke\": {},\n  \
         \"byte_identical_dist_local\": true,\n  \"results\": [\n{}\n  ],\n{}\n}}\n",
        points.len(),
        RTTS_MS
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", "),
        opts.smoke,
        results.join(",\n"),
        speedup_fields.join(",\n"),
    );
    twocs_obs::json::validate(&json).expect("BENCH_dist.json must be well-formed JSON");
    std::fs::write(&opts.out, &json).unwrap_or_else(|e| panic!("write {}: {e}", opts.out));
    eprintln!("dist_perf: wrote {}", opts.out);

    if let Some(baseline_path) = &opts.baseline {
        run_gate(&c, baseline_path, opts.max_regress);
    }
}
