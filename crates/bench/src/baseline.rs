//! Perf-regression gate support: parse a committed `BENCH_sweep.json`
//! baseline and compare a fresh run's means against it.
//!
//! The workspace has no JSON value parser (only the
//! [`twocs_obs::json::validate`] well-formedness checker), so this
//! module scans the one shape `sweep_perf` emits: a top-level
//! `"results"` array of flat objects carrying `"group"`, `"id"` and
//! `"mean_ns"` fields. The scanner is string- and escape-aware, so a
//! reformatted (but well-formed) baseline still parses.
//!
//! [`gate`] is the CI policy: for every `(group, id)` pair present in
//! **both** the baseline and the current run and belonging to one of the
//! gated groups, the current mean must not exceed the baseline mean by
//! more than the allowed percentage. An empty intersection is an error,
//! not a pass — a renamed benchmark must not silently disable the gate.

use std::fmt;

/// One benchmark mean from a `BENCH_sweep.json` results array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Benchmark group (e.g. `sweep_warm`).
    pub group: String,
    /// Benchmark id within the group (e.g. `factored`).
    pub id: String,
    /// Mean wall time per iteration, nanoseconds.
    pub mean_ns: u128,
}

/// Outcome of gating one `(group, id)` pair against the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct GateCheck {
    /// Benchmark group.
    pub group: String,
    /// Benchmark id.
    pub id: String,
    /// Committed baseline mean, nanoseconds.
    pub baseline_ns: u128,
    /// This run's mean, nanoseconds.
    pub current_ns: u128,
    /// Relative slowdown in percent (negative = faster than baseline).
    pub slowdown_pct: f64,
    /// Whether the slowdown exceeds the allowed regression.
    pub regressed: bool,
}

impl fmt::Display for GateCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}: baseline {} ns, current {} ns ({:+.1}%) {}",
            self.group,
            self.id,
            self.baseline_ns,
            self.current_ns,
            self.slowdown_pct,
            if self.regressed { "REGRESSED" } else { "ok" },
        )
    }
}

/// Extract the text between the brackets of the top-level `"results"`
/// array, honouring strings and escapes.
fn results_array(json: &str) -> Result<&str, String> {
    let key = json
        .find("\"results\"")
        .ok_or("no \"results\" array in baseline")?;
    let bytes = json.as_bytes();
    let mut i = key + "\"results\"".len();
    while i < bytes.len() && bytes[i] != b'[' {
        i += 1;
    }
    if i == bytes.len() {
        return Err("\"results\" key has no array value".to_owned());
    }
    let open = i;
    let (mut depth, mut in_str, mut esc) = (0i32, false, false);
    while i < bytes.len() {
        let b = bytes[i];
        if in_str {
            if esc {
                esc = false;
            } else if b == b'\\' {
                esc = true;
            } else if b == b'"' {
                in_str = false;
            }
        } else {
            match b {
                b'"' => in_str = true,
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(&json[open + 1..i]);
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    Err("unterminated \"results\" array".to_owned())
}

/// Split a flat-object array body into one `{...}` slice per object.
fn objects(array: &str) -> Vec<&str> {
    let bytes = array.as_bytes();
    let mut out = Vec::new();
    let (mut start, mut depth, mut in_str, mut esc) = (None, 0i32, false, false);
    for (i, &b) in bytes.iter().enumerate() {
        if in_str {
            if esc {
                esc = false;
            } else if b == b'\\' {
                esc = true;
            } else if b == b'"' {
                in_str = false;
            }
            continue;
        }
        match b {
            b'"' => in_str = true,
            b'{' => {
                if depth == 0 {
                    start = Some(i);
                }
                depth += 1;
            }
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    if let Some(s) = start.take() {
                        out.push(&array[s..=i]);
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// The string value of `key` in a flat JSON object slice. `sweep_perf`
/// never emits quotes inside group/id names, so the value ends at the
/// first unescaped `"`.
fn string_field(obj: &str, key: &str) -> Option<String> {
    let rest = field_value(obj, key)?;
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_owned())
}

/// The non-negative integer value of `key` in a flat JSON object slice.
fn integer_field(obj: &str, key: &str) -> Option<u128> {
    let rest = field_value(obj, key)?;
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// The raw text following `"key":` in a flat JSON object slice.
fn field_value<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let rest = &obj[obj.find(&needle)? + needle.len()..];
    Some(rest.trim_start().strip_prefix(':')?.trim_start())
}

/// Parse every `(group, id, mean_ns)` triple out of a `BENCH_sweep.json`
/// document.
///
/// # Errors
/// Returns an error when the document is not well-formed JSON, has no
/// `"results"` array, or a results entry is missing one of the three
/// gated fields.
pub fn parse_results(json: &str) -> Result<Vec<BaselineEntry>, String> {
    twocs_obs::json::validate(json).map_err(|e| format!("malformed baseline JSON: {e}"))?;
    let array = results_array(json)?;
    objects(array)
        .into_iter()
        .enumerate()
        .map(|(i, obj)| {
            Ok(BaselineEntry {
                group: string_field(obj, "group")
                    .ok_or_else(|| format!("results[{i}]: missing \"group\""))?,
                id: string_field(obj, "id")
                    .ok_or_else(|| format!("results[{i}]: missing \"id\""))?,
                mean_ns: integer_field(obj, "mean_ns")
                    .ok_or_else(|| format!("results[{i}]: missing \"mean_ns\""))?,
            })
        })
        .collect()
}

/// Gate `current` against `baseline`: every `(group, id)` present in
/// both and whose group is listed in `groups` must not be slower than
/// `baseline` by more than `max_regress_pct` percent. Checks come back
/// in `current` order, pass and fail alike, so callers can print the
/// full comparison.
///
/// # Errors
/// Returns an error when the gated intersection is empty — a missing or
/// renamed benchmark must fail loudly instead of waving the gate
/// through.
pub fn gate(
    baseline: &[BaselineEntry],
    current: &[BaselineEntry],
    groups: &[&str],
    max_regress_pct: f64,
) -> Result<Vec<GateCheck>, String> {
    let checks: Vec<GateCheck> = current
        .iter()
        .filter(|c| groups.contains(&c.group.as_str()))
        .filter_map(|c| {
            let base = baseline
                .iter()
                .find(|b| b.group == c.group && b.id == c.id)?;
            #[allow(clippy::cast_precision_loss)]
            let slowdown_pct = (c.mean_ns as f64 / (base.mean_ns.max(1)) as f64 - 1.0) * 100.0;
            Some(GateCheck {
                group: c.group.clone(),
                id: c.id.clone(),
                baseline_ns: base.mean_ns,
                current_ns: c.mean_ns,
                slowdown_pct,
                regressed: slowdown_pct > max_regress_pct,
            })
        })
        .collect();
    if checks.is_empty() {
        return Err(format!(
            "no benchmarks in groups {groups:?} are present in both the baseline and this run"
        ));
    }
    Ok(checks)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The emitted `BENCH_sweep.json` shape, abridged.
    const DOC: &str = r#"{
  "benchmark": "sweep_perf",
  "grid": {"points": 26, "h": [4096], "method": "projection"},
  "jobs": 4,
  "smoke": false,
  "byte_identical_naive_factored": true,
  "results": [
    {"group": "sweep_cold", "id": "naive", "samples": 12, "mean_ns": 2000000, "min_ns": 1, "max_ns": 3},
    {"group": "sweep_warm", "id": "naive", "samples": 12, "mean_ns": 572047, "min_ns": 1, "max_ns": 3},
    {"group": "sweep_warm", "id": "factored", "samples": 12, "mean_ns": 154178, "min_ns": 1, "max_ns": 3},
    {"group": "dist_chunks", "id": "eval_chunk", "samples": 12, "mean_ns": 61865, "min_ns": 1, "max_ns": 3}
  ],
  "warm_speedup_factored_vs_naive": 3.7103
}
"#;

    fn entry(group: &str, id: &str, mean_ns: u128) -> BaselineEntry {
        BaselineEntry {
            group: group.to_owned(),
            id: id.to_owned(),
            mean_ns,
        }
    }

    #[test]
    fn parses_the_emitted_shape() {
        let entries = parse_results(DOC).unwrap();
        assert_eq!(entries.len(), 4);
        assert_eq!(entries[1], entry("sweep_warm", "naive", 572047));
        assert_eq!(entries[3], entry("dist_chunks", "eval_chunk", 61865));
    }

    #[test]
    fn rejects_malformed_json_and_missing_fields() {
        assert!(parse_results("{\"results\": [").is_err());
        assert!(parse_results("{\"benchmark\": \"x\"}").is_err());
        let no_mean = r#"{"results": [{"group": "g", "id": "i"}]}"#;
        assert!(parse_results(no_mean).unwrap_err().contains("mean_ns"));
    }

    #[test]
    fn identical_run_passes_the_gate() {
        let base = parse_results(DOC).unwrap();
        let checks = gate(&base, &base, &["sweep_warm", "dist_chunks"], 20.0).unwrap();
        assert_eq!(checks.len(), 3);
        assert!(checks.iter().all(|c| !c.regressed));
        assert!(checks.iter().all(|c| c.slowdown_pct.abs() < 1e-9));
    }

    #[test]
    fn injected_slowdown_fails_the_gate() {
        let base = parse_results(DOC).unwrap();
        // 30% slower warm factored run: over the 20% budget.
        let current = vec![
            entry("sweep_warm", "naive", 572047),
            entry("sweep_warm", "factored", 154178 * 13 / 10),
            entry("dist_chunks", "eval_chunk", 61865),
        ];
        let checks = gate(&base, &current, &["sweep_warm", "dist_chunks"], 20.0).unwrap();
        let bad: Vec<_> = checks.iter().filter(|c| c.regressed).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].id, "factored");
        assert!(bad[0].slowdown_pct > 20.0, "{}", bad[0].slowdown_pct);
        // The same slowdown passes a looser budget.
        let loose = gate(&base, &current, &["sweep_warm", "dist_chunks"], 50.0).unwrap();
        assert!(loose.iter().all(|c| !c.regressed));
    }

    #[test]
    fn speedups_are_not_regressions() {
        let base = parse_results(DOC).unwrap();
        let current = vec![entry("sweep_warm", "factored", 80_000)];
        let checks = gate(&base, &current, &["sweep_warm"], 20.0).unwrap();
        assert!(!checks[0].regressed);
        assert!(checks[0].slowdown_pct < 0.0);
    }

    #[test]
    fn ungated_groups_are_ignored() {
        let base = parse_results(DOC).unwrap();
        // sweep_cold is 100x slower but not a gated group.
        let current = vec![
            entry("sweep_cold", "naive", 200_000_000),
            entry("sweep_warm", "naive", 572047),
        ];
        let checks = gate(&base, &current, &["sweep_warm", "dist_chunks"], 20.0).unwrap();
        assert_eq!(checks.len(), 1);
        assert_eq!(checks[0].group, "sweep_warm");
    }

    #[test]
    fn empty_intersection_is_an_error_not_a_pass() {
        let base = parse_results(DOC).unwrap();
        let current = vec![entry("sweep_warm", "renamed", 1)];
        assert!(gate(&base, &current, &["sweep_warm"], 20.0).is_err());
        assert!(gate(&base, &[], &["sweep_warm"], 20.0).is_err());
    }
}
