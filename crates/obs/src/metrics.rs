//! A small metrics registry: named counters, gauges, and histograms.
//!
//! Handles are `Arc`-backed and lock-free to update; the registry is a
//! name → handle map consulted only at registration time, so hot paths
//! (memo-cache lookups, pool bookkeeping) pay one atomic op per event.
//! [`MetricsRegistry::summary`] renders a human-oriented report for the
//! `--metrics` flag; `<name>.hits` / `<name>.misses` counter pairs are
//! collapsed into a single hit-rate line, preserving the cache report the
//! sweep summary used to print ad hoc.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, LazyLock, PoisonError, RwLock};

/// A monotonically increasing event count.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not registered anywhere (for tests or optional wiring).
    #[must_use]
    pub fn detached() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add a wall-time duration as whole microseconds (saturating), the
    /// convention for `*_us` busy/latency counters throughout the stack.
    pub fn add_duration_us(&self, d: std::time::Duration) {
        self.add(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero (used by cache `clear()` so stats windows restart).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins instantaneous value.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A gauge not registered anywhere.
    #[must_use]
    pub fn detached() -> Self {
        Self::default()
    }

    /// Set the current value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Read the current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

const BUCKETS: usize = 65;

#[derive(Debug)]
struct HistInner {
    /// Power-of-two buckets: index 0 holds zeros, index `k` holds values
    /// in `[2^(k-1), 2^k)`.
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A log₂-bucketed histogram of non-negative integer samples
/// (microseconds, queue depths, ...).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistInner>);

impl Default for Histogram {
    fn default() -> Self {
        Self(Arc::new(HistInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }
}

fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

impl Histogram {
    /// A histogram not registered anywhere.
    #[must_use]
    pub fn detached() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn observe(&self, v: u64) {
        let inner = &self.0;
        inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a wall-time duration as whole microseconds (saturating),
    /// the convention for `*_us` latency histograms throughout the stack.
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Mean sample value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.0.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Largest sample seen.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Lower bound of the bucket containing quantile `q` (0 when empty).
    /// Approximate by construction: resolution is one power of two.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, b) in self.0.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << (i - 1) };
            }
        }
        self.max()
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A name → metric map. Registration is idempotent: asking for an
/// existing name returns a handle to the same underlying metric.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or register the counter `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_insert(name, || Metric::Counter(Counter::detached())) {
            Metric::Counter(c) => c,
            other => panic!("metric `{name}` is not a counter: {other:?}"),
        }
    }

    /// Get or register the gauge `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_insert(name, || Metric::Gauge(Gauge::detached())) {
            Metric::Gauge(g) => g,
            other => panic!("metric `{name}` is not a gauge: {other:?}"),
        }
    }

    /// Get or register the histogram `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.get_or_insert(name, || Metric::Histogram(Histogram::detached())) {
            Metric::Histogram(h) => h,
            other => panic!("metric `{name}` is not a histogram: {other:?}"),
        }
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        if let Some(m) = self
            .metrics
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
        {
            return m.clone();
        }
        self.metrics
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(name.to_owned())
            .or_insert_with(make)
            .clone()
    }

    /// Registered metric names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.metrics
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .keys()
            .cloned()
            .collect()
    }

    /// Render a human-readable summary (no trailing newline).
    ///
    /// `<base>.hits` / `<base>.misses` counter pairs collapse to one
    /// `H hits / M misses (R% hit rate)` line under `<base>`.
    #[must_use]
    pub fn summary(&self) -> String {
        let metrics = self
            .metrics
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let mut lines = vec!["metrics:".to_owned()];
        let mut consumed: Vec<String> = Vec::new();
        for (name, metric) in &metrics {
            if consumed.iter().any(|c| c == name) {
                continue;
            }
            if let (Some(base), Metric::Counter(hits)) = (name.strip_suffix(".hits"), metric) {
                let miss_name = format!("{base}.misses");
                if let Some(Metric::Counter(misses)) = metrics.get(&miss_name) {
                    let (h, m) = (hits.get(), misses.get());
                    let total = h + m;
                    let rate = if total == 0 {
                        0.0
                    } else {
                        100.0 * h as f64 / total as f64
                    };
                    lines.push(format!(
                        "  {base}: {h} hits / {m} misses ({rate:.1}% hit rate)"
                    ));
                    consumed.push(miss_name);
                    continue;
                }
            }
            match metric {
                Metric::Counter(c) => lines.push(format!("  {name} = {}", c.get())),
                Metric::Gauge(g) => lines.push(format!("  {name} = {:.3}", g.get())),
                Metric::Histogram(h) => lines.push(format!(
                    "  {name}: n={} mean={:.1} p50={} p99={} max={}",
                    h.count(),
                    h.mean(),
                    h.quantile(0.5),
                    h.quantile(0.99),
                    h.max()
                )),
            }
        }
        lines.join("\n")
    }

    /// Render the registry as one JSON object, metric names sorted:
    /// counters as integers, gauges as floats (`null` when non-finite,
    /// which JSON cannot carry), histograms as
    /// `{"count":…,"mean":…,"p50":…,"p99":…,"max":…}`.
    ///
    /// Built for machine consumers such as `twocs serve`'s
    /// `/v1/metrics?format=json`; always a single well-formed JSON value
    /// (the exporter tests run it through [`crate::json::validate`]).
    #[must_use]
    pub fn to_json(&self) -> String {
        use crate::chrome::escape_json;
        use std::fmt::Write as _;
        let metrics = self
            .metrics
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let mut out = String::from("{");
        for (i, (name, metric)) in metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":", escape_json(name));
            match metric {
                Metric::Counter(c) => {
                    let _ = write!(out, "{}", c.get());
                }
                Metric::Gauge(g) => {
                    let v = g.get();
                    if v.is_finite() {
                        let _ = write!(out, "{v}");
                    } else {
                        out.push_str("null");
                    }
                }
                Metric::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{{\"count\":{},\"mean\":{:.3},\"p50\":{},\"p99\":{},\"max\":{}}}",
                        h.count(),
                        h.mean(),
                        h.quantile(0.5),
                        h.quantile(0.99),
                        h.max()
                    );
                }
            }
        }
        out.push('}');
        out
    }
}

static GLOBAL: LazyLock<MetricsRegistry> = LazyLock::new(MetricsRegistry::new);

/// The process-wide registry. Memo caches and the sweep pool register
/// here so one `--metrics` flag surfaces everything.
#[must_use]
pub fn global() -> &'static MetricsRegistry {
    &GLOBAL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip_and_identity() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        a.reset();
        assert_eq!(b.get(), 0);
    }

    #[test]
    fn gauge_stores_floats() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("util");
        g.set(0.75);
        assert!((reg.gauge("util").get() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles_are_bucket_lower_bounds() {
        let h = Histogram::detached();
        for v in [0, 1, 2, 3, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 512); // 1000 lives in [512, 1024)
        assert!(h.mean() > 180.0 && h.mean() < 190.0);
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.gauge("m");
        let _ = reg.counter("m");
    }

    #[test]
    fn summary_collapses_hit_miss_pairs() {
        let reg = MetricsRegistry::new();
        reg.counter("cache.gemm.hits").add(3);
        reg.counter("cache.gemm.misses").add(1);
        reg.counter("tasks").add(7);
        let s = reg.summary();
        assert!(s.contains("cache.gemm: 3 hits / 1 misses (75.0% hit rate)"));
        assert!(s.contains("tasks = 7"));
        assert!(!s.contains("cache.gemm.hits ="));
        assert!(!s.contains("cache.gemm.misses"));
    }

    #[test]
    fn to_json_is_well_formed_and_typed() {
        let reg = MetricsRegistry::new();
        reg.counter("serve.requests_total").add(12);
        reg.gauge("util").set(0.5);
        reg.gauge("bad \"name\"").set(f64::NAN);
        let h = reg.histogram("latency_us");
        h.observe(100);
        h.observe(900);
        let json = reg.to_json();
        crate::json::validate(&json).expect("metrics JSON must be well-formed");
        assert!(json.contains("\"serve.requests_total\":12"), "{json}");
        assert!(json.contains("\"util\":0.5"), "{json}");
        assert!(json.contains("\"bad \\\"name\\\"\":null"), "{json}");
        assert!(json.contains("\"latency_us\":{\"count\":2"), "{json}");
    }

    #[test]
    fn empty_registry_renders_an_empty_object() {
        let reg = MetricsRegistry::new();
        assert_eq!(reg.to_json(), "{}");
        crate::json::validate(&reg.to_json()).unwrap();
    }

    #[test]
    fn summary_handles_orphan_hits() {
        let reg = MetricsRegistry::new();
        reg.counter("lonely.hits").add(2);
        assert!(reg.summary().contains("lonely.hits = 2"));
    }
}
