//! # twocs-obs — observability for the Comp-vs-Comm stack
//!
//! Std-only tracing and metrics, threaded through the sweep pool, the
//! discrete-event simulator, and the memo caches:
//!
//! * [`span`] — a span/event tracer with task scopes, RAII phase guards,
//!   and simulator-timeline capture. Two clock modes: real monotonic time
//!   for humans, and a deterministic logical clock so test traces are
//!   byte-identical at any worker count.
//! * [`metrics`] — a registry of named counters, gauges, and histograms;
//!   the memo caches in `twocs-hw`, `twocs-collectives`, and
//!   `twocs-opmodel` register their hit/miss counters here, as do the
//!   sweep pool's queue-depth and per-worker utilization stats.
//! * [`chrome`] — a Chrome-trace (`chrome://tracing` / Perfetto) JSON
//!   writer for the `--trace <path>` CLI flag.
//! * [`json`] — a dependency-free JSON validator backing the exporter
//!   tests.
//!
//! Everything here stays off stdout: traces go to files, metrics
//! summaries to stderr, so the CSV output contract of `twocs run` /
//! `twocs sweep` is untouched.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod clock;
pub mod json;
pub mod metrics;
pub mod span;

pub use clock::{Clock, LogicalClock, MonotonicClock};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use span::{
    current_tracer, enter_worker, install_global, note_cache_hit, note_cache_miss, pool_seed,
    set_thread_tracer, span, task_scope, uninstall_global, PoolSeed, SimSpan, SpanGuard,
    SpanRecord, TaskObservation, TaskScope, TraceMode, TraceSnapshot, Tracer,
};
