//! Span tracing: task lifecycles, phases, and simulator timelines.
//!
//! A [`Tracer`] collects [`SpanRecord`]s from three kinds of sources:
//!
//! * **task scopes** ([`task_scope`]) — the sweep pool opens one per task
//!   it executes; the scope also accumulates the memo-cache hits/misses
//!   observed on its worker thread (see [`note_cache_miss`]), which is how
//!   the sweep summary attributes cache-warm vs cache-cold timings
//!   *exactly*, with no cross-thread bleed;
//! * **phase spans** ([`span`]) — RAII guards for named phases inside a
//!   task (graph build, serialized metric, overlap metric, ...). Guards
//!   record on `Drop`, so a panicking task still closes every open span
//!   and nesting stays balanced;
//! * **simulator timelines** ([`Tracer::push_sim_spans`]) — the
//!   discrete-event engine feeds each executed timeline in as its own
//!   Chrome-trace process, laid out sequentially when one task runs
//!   several simulations.
//!
//! ## Determinism
//!
//! In [`TraceMode::Wall`] spans carry real timestamps and worker-thread
//! lanes — the view a human wants. In [`TraceMode::Logical`] timestamps
//! come from *per-task* logical tick counters inside disjoint windows
//! derived from the task index, worker identity is erased, and simulator
//! timestamps are virtual (deterministic by construction) — so the
//! exported trace is byte-identical for any `--jobs` count.
//!
//! Tracer selection is thread-inherited: a worker pool snapshots the
//! parent thread's tracer and scope path ([`pool_seed`]) and seeds each
//! worker ([`enter_worker`]), so nested pools keep attributing spans to
//! the right tracer and window even though they spawn fresh threads.

use crate::clock::{Clock, LogicalClock, MonotonicClock};
use crate::metrics;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, LazyLock, Mutex, PoisonError, RwLock};

/// How the tracer stamps time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Real monotonic microseconds; worker threads become trace lanes.
    Wall,
    /// Deterministic logical ticks in per-task windows; lane identity is
    /// erased so traces are byte-identical across worker counts.
    Logical,
}

/// One completed span, in Chrome-trace terms.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (task label, phase name, or kernel name).
    pub name: String,
    /// Category (`task`, `phase`, or a simulator op class).
    pub cat: String,
    /// Chrome-trace process lane.
    pub pid: u64,
    /// Chrome-trace thread lane within the process.
    pub tid: u64,
    /// Start, microseconds (wall, logical ticks, or simulated time).
    pub start_us: f64,
    /// Duration, microseconds.
    pub dur_us: f64,
    /// Extra key/value annotations (rendered as Chrome-trace `args`).
    pub args: Vec<(String, String)>,
}

impl SpanRecord {
    /// End timestamp (`start_us + dur_us`).
    #[must_use]
    pub fn end_us(&self) -> f64 {
        self.start_us + self.dur_us
    }
}

/// One simulator kernel record, in tracer-neutral form. Produced by
/// `twocs-sim`'s timeline adapter and consumed by
/// [`Tracer::push_sim_spans`].
#[derive(Debug, Clone, PartialEq)]
pub struct SimSpan {
    /// Kernel name.
    pub name: String,
    /// Op class (`gemm`, `comm`, ...).
    pub cat: &'static str,
    /// Lane within the simulated process (device × stream).
    pub tid: u64,
    /// Simulated start, microseconds.
    pub start_us: f64,
    /// Simulated duration, microseconds.
    pub dur_us: f64,
}

/// Sorted, export-ready view of a tracer's contents.
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// All spans in deterministic export order.
    pub spans: Vec<SpanRecord>,
    /// Process-lane display names, by pid.
    pub process_names: BTreeMap<u64, String>,
}

/// Spacing between sibling task windows at nesting depth `d` (logical
/// mode): top-level tasks are 1 s apart, nested pool tasks 1 ms, anything
/// deeper packs at 1 µs.
fn stride(depth: usize) -> u64 {
    match depth {
        0 => 1_000_000,
        1 => 1_000,
        _ => 1,
    }
}

/// Logical-mode window base for a scope path (task indices, outermost
/// first).
fn window_base(path: &[usize]) -> u64 {
    path.iter()
        .enumerate()
        .map(|(d, &i)| (i as u64 + 1) * stride(d))
        .sum()
}

/// Chrome-trace pid for simulator timelines executed under a scope path.
/// Path-derived (not allocator-based) so it is identical whatever worker
/// ran the task.
fn sim_pid(path: &[usize]) -> u64 {
    path.iter()
        .fold(0u64, |acc, &i| {
            acc.wrapping_mul(4096).wrapping_add(i as u64 + 1)
        })
        .wrapping_add(1)
}

/// Hard per-scope cap on captured simulator spans; beyond it the rest of
/// the timeline is dropped (counted in the `trace.sim_spans_dropped`
/// metric). Per-scope, so what is kept is deterministic.
const MAX_SIM_SPANS_PER_SCOPE: usize = 100_000;

/// Global cap on total recorded spans — a runaway-workload backstop.
const MAX_EVENTS: usize = 4_000_000;

/// Collects spans. Cheap to share (`Arc`); all methods take `&self`.
#[derive(Debug)]
pub struct Tracer {
    mode: TraceMode,
    clock: Box<dyn Clock>,
    records: Mutex<Vec<SpanRecord>>,
    process_names: Mutex<BTreeMap<u64, String>>,
    sim_capture: bool,
    dropped: AtomicU64,
}

impl Tracer {
    /// A tracer stamping real wall time.
    #[must_use]
    pub fn wall() -> Arc<Self> {
        Arc::new(Self::new(TraceMode::Wall))
    }

    /// A tracer with deterministic logical time.
    #[must_use]
    pub fn logical() -> Arc<Self> {
        Arc::new(Self::new(TraceMode::Logical))
    }

    /// Create a tracer in `mode` with simulator capture enabled.
    #[must_use]
    pub fn new(mode: TraceMode) -> Self {
        let clock: Box<dyn Clock> = match mode {
            TraceMode::Wall => Box::new(MonotonicClock::new()),
            TraceMode::Logical => Box::new(LogicalClock::new()),
        };
        Self {
            mode,
            clock,
            records: Mutex::new(Vec::new()),
            process_names: Mutex::new(BTreeMap::new()),
            sim_capture: true,
            dropped: AtomicU64::new(0),
        }
    }

    /// Disable (or re-enable) capture of simulator timelines; task and
    /// phase spans are always captured.
    #[must_use]
    pub fn with_sim_capture(mut self, capture: bool) -> Self {
        self.sim_capture = capture;
        self
    }

    /// The tracer's time mode.
    #[must_use]
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    /// Whether simulator timelines should be fed in.
    #[must_use]
    pub fn sim_enabled(&self) -> bool {
        self.sim_capture
    }

    /// Spans dropped by the per-scope and global caps.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Register a display name for a Chrome-trace process lane. First
    /// registration wins.
    pub fn name_process(&self, pid: u64, name: &str) {
        self.process_names
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(pid)
            .or_insert_with(|| name.to_owned());
    }

    /// Append a finished span.
    pub fn push(&self, record: SpanRecord) {
        let mut records = self.records.lock().unwrap_or_else(PoisonError::into_inner);
        if records.len() >= MAX_EVENTS {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        records.push(record);
    }

    /// Feed one simulator timeline, attributed to the calling thread's
    /// current task scope: it becomes (part of) a dedicated Chrome-trace
    /// process, with consecutive timelines of the same scope laid out
    /// sequentially. No-op when simulator capture is disabled.
    pub fn push_sim_spans(&self, spans: &[SimSpan]) {
        if !self.sim_capture || spans.is_empty() {
            return;
        }
        let (pid, label, offset, budget) = CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            let path = ctx.full_path();
            let pid = sim_pid(&path);
            let frame = ctx.top_frame_mut();
            let budget = MAX_SIM_SPANS_PER_SCOPE.saturating_sub(frame.sim_spans_pushed);
            let taken = spans.len().min(budget);
            frame.sim_spans_pushed += taken;
            let offset = frame.sim_cursor_us;
            let max_end = spans
                .iter()
                .take(taken)
                .map(SimSpanExt::end_us)
                .fold(0.0f64, f64::max);
            frame.sim_cursor_us += max_end.ceil() + 10.0;
            (pid, frame.label.clone(), offset, taken)
        });
        if budget < spans.len() {
            metrics::global()
                .counter("trace.sim_spans_dropped")
                .add((spans.len() - budget) as u64);
            self.dropped
                .fetch_add((spans.len() - budget) as u64, Ordering::Relaxed);
        }
        let display = if label.is_empty() {
            "sim".to_owned()
        } else {
            format!("{label} · sim")
        };
        self.name_process(pid, &display);
        for s in spans.iter().take(budget) {
            self.push(SpanRecord {
                name: s.name.clone(),
                cat: s.cat.to_owned(),
                pid,
                tid: s.tid,
                start_us: offset + s.start_us,
                dur_us: s.dur_us,
                args: Vec::new(),
            });
        }
    }

    /// Snapshot the trace in deterministic export order: sorted by
    /// `(pid, tid, start, -dur, name, cat)` so parents precede children
    /// and ties resolve identically however workers interleaved.
    #[must_use]
    pub fn snapshot(&self) -> TraceSnapshot {
        let mut spans = self
            .records
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        spans.sort_by(|a, b| {
            (a.pid, a.tid)
                .cmp(&(b.pid, b.tid))
                .then(a.start_us.total_cmp(&b.start_us))
                .then(b.dur_us.total_cmp(&a.dur_us))
                .then(a.name.cmp(&b.name))
                .then(a.cat.cmp(&b.cat))
                .then(a.args.cmp(&b.args))
        });
        let process_names = self
            .process_names
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        TraceSnapshot {
            spans,
            process_names,
        }
    }

    /// Number of spans recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether no spans have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

trait SimSpanExt {
    fn end_us(&self) -> f64;
}
impl SimSpanExt for SimSpan {
    fn end_us(&self) -> f64 {
        self.start_us + self.dur_us
    }
}

// ---------------------------------------------------------------------------
// Thread context: which tracer, which worker lane, which scope path.
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct ScopeFrame {
    index: usize,
    label: String,
    /// Logical-mode tick allocator; starts at 1 so phase spans sit
    /// strictly inside their task window.
    tick: u64,
    cache_hits: u64,
    cache_misses: u64,
    sim_cursor_us: f64,
    sim_spans_pushed: usize,
}

impl ScopeFrame {
    fn root() -> Self {
        Self {
            index: 0,
            label: String::new(),
            tick: 1,
            cache_hits: 0,
            cache_misses: 0,
            sim_cursor_us: 0.0,
            sim_spans_pushed: 0,
        }
    }
}

#[derive(Debug)]
struct ThreadCtx {
    tracer: Option<Arc<Tracer>>,
    /// Scope-path prefix inherited from the thread that spawned this
    /// worker pool.
    base_path: Vec<usize>,
    worker: u64,
    root: ScopeFrame,
    frames: Vec<ScopeFrame>,
}

impl ThreadCtx {
    fn new() -> Self {
        Self {
            tracer: None,
            base_path: Vec::new(),
            worker: 0,
            root: ScopeFrame::root(),
            frames: Vec::new(),
        }
    }

    fn full_path(&self) -> Vec<usize> {
        let mut p = self.base_path.clone();
        p.extend(self.frames.iter().map(|f| f.index));
        p
    }

    fn top_frame_mut(&mut self) -> &mut ScopeFrame {
        self.frames.last_mut().unwrap_or(&mut self.root)
    }
}

thread_local! {
    static CTX: RefCell<ThreadCtx> = RefCell::new(ThreadCtx::new());
}

static GLOBAL: LazyLock<RwLock<Option<Arc<Tracer>>>> = LazyLock::new(|| RwLock::new(None));

/// Install a process-wide tracer. Threads without a thread-local tracer
/// (see [`set_thread_tracer`]) fall back to it.
pub fn install_global(tracer: Arc<Tracer>) {
    *GLOBAL.write().unwrap_or_else(PoisonError::into_inner) = Some(tracer);
}

/// Remove the process-wide tracer.
pub fn uninstall_global() {
    *GLOBAL.write().unwrap_or_else(PoisonError::into_inner) = None;
}

/// The process-wide tracer, if any.
#[must_use]
pub fn global() -> Option<Arc<Tracer>> {
    GLOBAL
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// Bind (or clear) a tracer for the current thread only. Worker pools
/// seeded from this thread inherit it, so tests can trace a pool without
/// touching process-global state.
pub fn set_thread_tracer(tracer: Option<Arc<Tracer>>) {
    CTX.with(|ctx| ctx.borrow_mut().tracer = tracer);
}

/// The tracer in effect on this thread: the thread-local one if bound,
/// else the process-global one.
#[must_use]
pub fn current_tracer() -> Option<Arc<Tracer>> {
    CTX.with(|ctx| ctx.borrow().tracer.clone()).or_else(global)
}

/// Snapshot of the calling thread's tracing context, for seeding the
/// worker threads of a pool it is about to spawn.
#[derive(Debug, Clone)]
pub struct PoolSeed {
    tracer: Option<Arc<Tracer>>,
    path: Vec<usize>,
}

/// Capture the current thread's tracer and scope path.
#[must_use]
pub fn pool_seed() -> PoolSeed {
    CTX.with(|ctx| {
        let ctx = ctx.borrow();
        PoolSeed {
            tracer: ctx.tracer.clone(),
            path: ctx.full_path(),
        }
    })
}

/// Initialise a worker thread from its pool's seed: inherit the tracer
/// and scope path, and take lane `worker`.
pub fn enter_worker(seed: &PoolSeed, worker: usize) {
    CTX.with(|ctx| {
        let mut ctx = ctx.borrow_mut();
        ctx.tracer = seed.tracer.clone();
        ctx.base_path = seed.path.clone();
        ctx.worker = worker as u64;
        ctx.root = ScopeFrame::root();
        ctx.frames.clear();
    });
}

/// Record a memo-cache hit against the current task scope.
pub fn note_cache_hit() {
    CTX.with(|ctx| ctx.borrow_mut().top_frame_mut().cache_hits += 1);
}

/// Record a memo-cache miss against the current task scope. The sweep
/// summary classifies a task as *cache-cold* when at least one miss was
/// charged to it.
pub fn note_cache_miss() {
    CTX.with(|ctx| ctx.borrow_mut().top_frame_mut().cache_misses += 1);
}

/// What a completed task scope observed while it ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaskObservation {
    /// Memo-cache hits charged to the task.
    pub cache_hits: u64,
    /// Memo-cache misses charged to the task (`> 0` ⇒ cache-cold).
    pub cache_misses: u64,
}

/// RAII scope for one pool task. Also the unit of cache-hit/miss
/// attribution and (in logical mode) the owner of a deterministic time
/// window. Created by [`task_scope`]; closed by [`TaskScope::finish`] or
/// `Drop`.
#[derive(Debug)]
pub struct TaskScope {
    tracer: Option<Arc<Tracer>>,
    /// Full path including this scope's own index.
    path: Vec<usize>,
    label: String,
    start_us: u64,
    worker: u64,
    finished: bool,
}

/// Open a task scope for task `index` with a display `label`.
///
/// Works with no tracer bound (cache attribution still functions); spans
/// are only recorded when a tracer is in effect.
#[must_use]
pub fn task_scope(index: usize, label: &str) -> TaskScope {
    let tracer = current_tracer();
    let (path, worker) = CTX.with(|ctx| {
        let mut ctx = ctx.borrow_mut();
        ctx.frames.push(ScopeFrame {
            index,
            label: label.to_owned(),
            ..ScopeFrame::root()
        });
        (ctx.full_path(), ctx.worker)
    });
    let start_us = match &tracer {
        Some(t) if t.mode() == TraceMode::Wall => t.clock.now_us(),
        _ => 0,
    };
    TaskScope {
        tracer,
        path,
        label: label.to_owned(),
        start_us,
        worker,
        finished: false,
    }
}

impl TaskScope {
    /// Close the scope and return what it observed.
    pub fn finish(mut self) -> TaskObservation {
        self.close()
    }

    fn close(&mut self) -> TaskObservation {
        if self.finished {
            return TaskObservation::default();
        }
        self.finished = true;
        let frame = CTX.with(|ctx| ctx.borrow_mut().frames.pop());
        let frame = frame.unwrap_or_else(ScopeFrame::root);
        let observation = TaskObservation {
            cache_hits: frame.cache_hits,
            cache_misses: frame.cache_misses,
        };
        if let Some(tracer) = &self.tracer {
            let depth = self.path.len().saturating_sub(1);
            let (start_us, dur_us, tid, args) = match tracer.mode() {
                TraceMode::Logical => (
                    window_base(&self.path) as f64,
                    stride(depth) as f64,
                    0,
                    Vec::new(),
                ),
                TraceMode::Wall => {
                    let end = tracer.clock.now_us();
                    (
                        self.start_us as f64,
                        end.saturating_sub(self.start_us) as f64,
                        self.worker,
                        vec![
                            ("worker".to_owned(), self.worker.to_string()),
                            ("cache_misses".to_owned(), frame.cache_misses.to_string()),
                        ],
                    )
                }
            };
            tracer.name_process(0, "sweep-pool");
            tracer.push(SpanRecord {
                name: self.label.clone(),
                cat: "task".to_owned(),
                pid: 0,
                tid,
                start_us,
                dur_us,
                args,
            });
        }
        observation
    }
}

impl Drop for TaskScope {
    fn drop(&mut self) {
        let _ = self.close();
    }
}

/// RAII guard for a named phase inside the current task scope. Records a
/// span on drop (so panics still close it); a no-op when no tracer is in
/// effect.
#[derive(Debug)]
pub struct SpanGuard {
    tracer: Option<Arc<Tracer>>,
    name: String,
    cat: &'static str,
    /// Wall: real start. Logical: window base + open tick.
    start_us: u64,
    tid: u64,
}

/// Open a phase span named `name` under category `cat`.
#[must_use]
pub fn span(name: &str, cat: &'static str) -> SpanGuard {
    let tracer = current_tracer();
    let Some(t) = tracer else {
        return SpanGuard {
            tracer: None,
            name: String::new(),
            cat,
            start_us: 0,
            tid: 0,
        };
    };
    let (start_us, tid) = match t.mode() {
        TraceMode::Wall => (t.clock.now_us(), CTX.with(|ctx| ctx.borrow().worker)),
        TraceMode::Logical => CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            let base = window_base(&ctx.full_path());
            let frame = ctx.top_frame_mut();
            let tick = frame.tick;
            frame.tick += 1;
            (base + tick, 0)
        }),
    };
    SpanGuard {
        tracer: Some(t),
        name: name.to_owned(),
        cat,
        start_us,
        tid,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(tracer) = self.tracer.take() else {
            return;
        };
        let end_us = match tracer.mode() {
            TraceMode::Wall => tracer.clock.now_us(),
            TraceMode::Logical => CTX.with(|ctx| {
                let mut ctx = ctx.borrow_mut();
                let base = window_base(&ctx.full_path());
                let frame = ctx.top_frame_mut();
                let tick = frame.tick;
                frame.tick += 1;
                base + tick
            }),
        };
        tracer.name_process(0, "sweep-pool");
        tracer.push(SpanRecord {
            name: std::mem::take(&mut self.name),
            cat: self.cat.to_owned(),
            pid: 0,
            tid: self.tid,
            start_us: self.start_us as f64,
            dur_us: end_us.saturating_sub(self.start_us) as f64,
            args: Vec::new(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_tracer<R>(mode: TraceMode, f: impl FnOnce(&Arc<Tracer>) -> R) -> R {
        let tracer = Arc::new(Tracer::new(mode));
        set_thread_tracer(Some(tracer.clone()));
        let out = f(&tracer);
        set_thread_tracer(None);
        out
    }

    #[test]
    fn logical_task_scopes_use_disjoint_windows() {
        let spans = with_tracer(TraceMode::Logical, |t| {
            for i in 0..3 {
                let scope = task_scope(i, &format!("task {i}"));
                let _phase = span("work", "phase");
                drop(_phase);
                let _ = scope.finish();
            }
            t.snapshot().spans
        });
        let tasks: Vec<&SpanRecord> = spans.iter().filter(|s| s.cat == "task").collect();
        assert_eq!(tasks.len(), 3);
        for (i, s) in tasks.iter().enumerate() {
            assert_eq!(s.start_us, ((i as u64 + 1) * 1_000_000) as f64);
            assert_eq!(s.dur_us, 1_000_000.0);
            assert_eq!(s.tid, 0);
        }
        let phases: Vec<&SpanRecord> = spans.iter().filter(|s| s.cat == "phase").collect();
        assert_eq!(phases.len(), 3);
        for (task, phase) in tasks.iter().zip(&phases) {
            assert!(phase.start_us > task.start_us);
            assert!(phase.end_us() < task.end_us());
        }
    }

    #[test]
    fn cache_events_attribute_to_the_open_scope() {
        let scope = task_scope(0, "t");
        note_cache_miss();
        note_cache_hit();
        note_cache_hit();
        let inner = task_scope(1, "inner");
        note_cache_miss();
        let inner_obs = inner.finish();
        let outer_obs = scope.finish();
        assert_eq!(inner_obs.cache_misses, 1);
        assert_eq!(inner_obs.cache_hits, 0);
        assert_eq!(outer_obs.cache_misses, 1);
        assert_eq!(outer_obs.cache_hits, 2);
    }

    #[test]
    fn drop_closes_unfinished_scopes() {
        let spans = with_tracer(TraceMode::Logical, |t| {
            {
                let _scope = task_scope(0, "dropped");
                let _phase = span("inner", "phase");
                // both dropped here without finish()
            }
            t.snapshot().spans
        });
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().any(|s| s.name == "dropped"));
        assert!(spans.iter().any(|s| s.name == "inner"));
    }

    #[test]
    fn sim_spans_land_in_a_path_derived_process() {
        let snap = with_tracer(TraceMode::Logical, |t| {
            let scope = task_scope(2, "fig10");
            t.push_sim_spans(&[SimSpan {
                name: "gemm_k".into(),
                cat: "gemm",
                tid: 4,
                start_us: 0.0,
                dur_us: 5.0,
            }]);
            // Second timeline in the same scope lays out after the first.
            t.push_sim_spans(&[SimSpan {
                name: "gemm_k".into(),
                cat: "gemm",
                tid: 4,
                start_us: 0.0,
                dur_us: 5.0,
            }]);
            let _ = scope.finish();
            t.snapshot()
        });
        let sims: Vec<&SpanRecord> = snap.spans.iter().filter(|s| s.cat == "gemm").collect();
        assert_eq!(sims.len(), 2);
        assert_eq!(sims[0].pid, sims[1].pid);
        assert_eq!(sims[0].pid, 4); // path [2] -> 3 + 1
        assert!(sims[1].start_us >= sims[0].end_us());
        assert_eq!(snap.process_names.get(&4).unwrap(), "fig10 · sim");
    }

    #[test]
    fn pool_seed_propagates_path_and_tracer_to_workers() {
        let snap = with_tracer(TraceMode::Logical, |t| {
            let outer = task_scope(1, "outer");
            let seed = pool_seed();
            std::thread::scope(|s| {
                s.spawn(|| {
                    enter_worker(&seed, 0);
                    let inner = task_scope(3, "inner");
                    let _ = inner.finish();
                });
            });
            let _ = outer.finish();
            t.snapshot()
        });
        let inner = snap.spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = snap.spans.iter().find(|s| s.name == "outer").unwrap();
        // Inner window: (1+1)*1e6 + (3+1)*1e3.
        assert_eq!(inner.start_us, 2_004_000.0);
        assert_eq!(inner.dur_us, 1_000.0);
        assert!(inner.start_us >= outer.start_us && inner.end_us() <= outer.end_us());
    }

    #[test]
    fn wall_mode_tags_worker_lane_and_misses() {
        let spans = with_tracer(TraceMode::Wall, |t| {
            let scope = task_scope(0, "t0");
            note_cache_miss();
            let _ = scope.finish();
            t.snapshot().spans
        });
        assert_eq!(spans.len(), 1);
        let args: std::collections::BTreeMap<_, _> = spans[0].args.iter().cloned().collect();
        assert_eq!(args.get("cache_misses").map(String::as_str), Some("1"));
        assert!(args.contains_key("worker"));
    }

    #[test]
    fn no_tracer_means_no_spans_but_scopes_still_work() {
        set_thread_tracer(None);
        let scope = task_scope(0, "untraced");
        note_cache_miss();
        let _phase = span("p", "phase");
        drop(_phase);
        assert_eq!(scope.finish().cache_misses, 1);
    }

    #[test]
    fn global_install_and_uninstall() {
        // Thread-scoped so parallel tests with thread tracers are unaffected.
        let t = Tracer::logical();
        install_global(t.clone());
        std::thread::scope(|s| {
            s.spawn(|| {
                let scope = task_scope(7, "global");
                let _ = scope.finish();
            });
        });
        uninstall_global();
        assert!(t.snapshot().spans.iter().any(|s| s.name == "global"));
    }

    #[test]
    fn snapshot_order_is_deterministic() {
        let t = Tracer::logical();
        for rev in [false, true] {
            let mut spans = vec![
                SpanRecord {
                    name: "b".into(),
                    cat: "x".into(),
                    pid: 0,
                    tid: 0,
                    start_us: 5.0,
                    dur_us: 1.0,
                    args: Vec::new(),
                },
                SpanRecord {
                    name: "a".into(),
                    cat: "x".into(),
                    pid: 0,
                    tid: 0,
                    start_us: 5.0,
                    dur_us: 1.0,
                    args: Vec::new(),
                },
            ];
            if rev {
                spans.reverse();
            }
            let tracer = Tracer::logical();
            for s in spans {
                tracer.push(s);
            }
            let names: Vec<String> = tracer
                .snapshot()
                .spans
                .into_iter()
                .map(|s| s.name)
                .collect();
            assert_eq!(names, vec!["a".to_owned(), "b".to_owned()]);
        }
        drop(t);
    }
}
