//! Chrome-trace (`chrome://tracing` / Perfetto) JSON rendering.
//!
//! Produces the object form of the trace event format:
//!
//! ```json
//! {"traceEvents": [ {"ph":"M", ...process names...},
//!                   {"ph":"X", ...complete events...} ],
//!  "displayTimeUnit": "ms"}
//! ```
//!
//! Every number and key is written in a fixed order from the sorted
//! [`TraceSnapshot`], so rendering the same snapshot always yields the
//! same bytes — the property the `--trace` determinism tests pin down.

use crate::span::{SpanRecord, TraceSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape a string for embedding in a JSON string literal. Control
/// characters are replaced by spaces (span names never need them).
#[must_use]
pub fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => vec![' '],
            c => vec![c],
        })
        .collect()
}

fn write_event(out: &mut String, s: &SpanRecord) {
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":{},\"tid\":{}",
        escape_json(&s.name),
        escape_json(&s.cat),
        s.start_us,
        s.dur_us,
        s.pid,
        s.tid
    );
    if !s.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in s.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", escape_json(k), escape_json(v));
        }
        out.push('}');
    }
    out.push('}');
}

fn write_process_name(out: &mut String, pid: u64, name: &str) {
    let _ = write!(
        out,
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
        escape_json(name)
    );
}

/// Render a snapshot as a complete Chrome-trace JSON document.
#[must_use]
pub fn render(snapshot: &TraceSnapshot) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for (pid, name) in &snapshot.process_names {
        if !first {
            out.push(',');
        }
        first = false;
        write_process_name(&mut out, *pid, name);
    }
    for s in &snapshot.spans {
        if !first {
            out.push(',');
        }
        first = false;
        write_event(&mut out, s);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Render bare complete-events as a JSON array (the legacy shape the
/// simulator's `Timeline::to_chrome_trace` emits and `chrome://tracing`
/// also accepts).
#[must_use]
pub fn render_events_array(spans: &[SpanRecord]) -> String {
    let mut out = String::from("[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_event(&mut out, s);
    }
    out.push(']');
    out
}

/// Convenience: render a snapshot with extra process names merged in
/// (callers that synthesize pids outside the tracer).
#[must_use]
pub fn render_with_names(snapshot: &TraceSnapshot, extra: &BTreeMap<u64, String>) -> String {
    let mut merged = snapshot.clone();
    for (pid, name) in extra {
        merged
            .process_names
            .entry(*pid)
            .or_insert_with(|| name.clone());
    }
    render(&merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample_snapshot() -> TraceSnapshot {
        TraceSnapshot {
            spans: vec![
                SpanRecord {
                    name: "table2".into(),
                    cat: "task".into(),
                    pid: 0,
                    tid: 0,
                    start_us: 1_000_000.0,
                    dur_us: 1_000_000.0,
                    args: vec![("worker".into(), "3".into())],
                },
                SpanRecord {
                    name: "l0.\"fc1\"\\gemm".into(),
                    cat: "gemm".into(),
                    pid: 2,
                    tid: 1,
                    start_us: 0.5,
                    dur_us: 12.25,
                    args: Vec::new(),
                },
            ],
            process_names: [(0, "sweep-pool".to_owned()), (2, "table2 · sim".to_owned())]
                .into_iter()
                .collect(),
        }
    }

    #[test]
    fn render_is_valid_json_with_metadata() {
        let doc = render(&sample_snapshot());
        json::validate(&doc).expect("chrome trace must be valid JSON");
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.contains("\"ph\":\"M\""));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("sweep-pool"));
        assert!(doc.contains("\"args\":{\"worker\":\"3\"}"));
        assert!(doc.ends_with("\"displayTimeUnit\":\"ms\"}\n"));
    }

    #[test]
    fn escaping_survives_quotes_and_backslashes() {
        let doc = render(&sample_snapshot());
        json::validate(&doc).unwrap();
        assert!(doc.contains("l0.\\\"fc1\\\"\\\\gemm"));
    }

    #[test]
    fn events_array_form_is_valid() {
        let arr = render_events_array(&sample_snapshot().spans);
        json::validate(&arr).unwrap();
        assert!(arr.starts_with('['));
        assert!(arr.ends_with(']'));
    }

    #[test]
    fn empty_snapshot_renders_empty_document() {
        let doc = render(&TraceSnapshot {
            spans: Vec::new(),
            process_names: BTreeMap::new(),
        });
        json::validate(&doc).unwrap();
        assert_eq!(doc, "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}\n");
    }

    #[test]
    fn rendering_is_deterministic() {
        let snap = sample_snapshot();
        assert_eq!(render(&snap), render(&snap));
    }
}
