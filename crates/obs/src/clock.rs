//! Pluggable time sources for the tracer.
//!
//! Two clocks cover the two audiences of a trace:
//!
//! * [`MonotonicClock`] — real wall time (microseconds since the clock was
//!   created) for humans inspecting a run in `chrome://tracing`;
//! * [`LogicalClock`] — a deterministic tick counter for tests, so traces
//!   of the same workload are byte-identical run-to-run regardless of
//!   scheduling, machine speed, or worker-thread count.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic microsecond source.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Microseconds elapsed on this clock. Monotonic per clock instance.
    fn now_us(&self) -> u64;
}

/// Real wall time: microseconds since the clock was constructed.
#[derive(Debug)]
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    /// A clock whose zero is "now".
    #[must_use]
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// A deterministic logical clock: every reading advances time by one tick.
///
/// Reproducible only when read from a deterministic call sequence; the
/// tracer therefore keeps *per-task* logical tick counters and reserves
/// this type for single-threaded uses.
#[derive(Debug, Default)]
pub struct LogicalClock {
    tick: AtomicU64,
}

impl LogicalClock {
    /// A clock starting at tick zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Clock for LogicalClock {
    fn now_us(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_never_goes_backwards() {
        let c = MonotonicClock::new();
        let mut last = 0;
        for _ in 0..1000 {
            let now = c.now_us();
            assert!(now >= last);
            last = now;
        }
    }

    #[test]
    fn logical_ticks_by_one() {
        let c = LogicalClock::new();
        assert_eq!(c.now_us(), 0);
        assert_eq!(c.now_us(), 1);
        assert_eq!(c.now_us(), 2);
    }
}
