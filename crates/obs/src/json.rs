//! A minimal JSON validator (no value tree, no allocation per token).
//!
//! The exporter tests and the CLI's `--trace` path use it to assert that
//! emitted Chrome-trace documents are well-formed without pulling in a
//! JSON dependency — the workspace is std-only.

/// Check that `input` is exactly one well-formed JSON value (per RFC
/// 8259), returning a byte offset and message on failure.
pub fn validate(input: &str) -> Result<(), String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(())
}

const MAX_DEPTH: usize = 256;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("invalid JSON at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => {
                self.depth += 1;
                let r = self.object();
                self.depth -= 1;
                r
            }
            Some(b'[') => {
                self.depth += 1;
                let r = self.array();
                self.depth -= 1;
                r
            }
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(()),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `}` in object"));
                }
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(()),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `]` in array"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.bump() {
                Some(b'"') => return Ok(()),
                Some(b'\\') => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    Some(b'u') => {
                        for _ in 0..4 {
                            match self.bump() {
                                Some(c) if c.is_ascii_hexdigit() => {}
                                _ => return Err(self.err("invalid \\u escape")),
                            }
                        }
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {}
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.digits(),
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after `.`"));
            }
            self.digits();
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            self.digits();
        }
        Ok(())
    }

    fn digits(&mut self) {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::validate;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "null",
            "true",
            "[]",
            "{}",
            "-1.5e-3",
            "\"a\\n\\u00e9\"",
            "[1,2,{\"a\":[null,false]}]",
            "{\"traceEvents\":[{\"ph\":\"X\",\"ts\":0.001}],\"displayTimeUnit\":\"ms\"}",
            "  [ 1 , 2 ]  ",
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "[1,]",
            "{\"a\":}",
            "{a:1}",
            "[1 2]",
            "01",
            "1.",
            "\"unterminated",
            "\"bad\\escape\"",
            "nul",
            "[1],",
            "{\"a\":1,}",
        ] {
            assert!(validate(doc).is_err(), "should reject: {doc}");
        }
    }

    #[test]
    fn errors_carry_position() {
        let err = validate("[1,]").unwrap_err();
        assert!(err.contains("byte 3"), "{err}");
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(validate(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        validate(&ok).unwrap();
    }
}
