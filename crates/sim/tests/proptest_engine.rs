//! Property-based tests for the discrete-event engine, on the std-only
//! `twocs-testkit` case driver.
//!
//! Random DAGs over a handful of devices must always satisfy the engine's
//! core invariants, whatever the shapes of the graphs:
//! 1. dependencies are respected,
//! 2. tasks on one stream never overlap,
//! 3. makespan is at least the critical path and at most total work,
//! 4. execution is deterministic.

use std::collections::HashMap;
use twocs_sim::graph::TaskGraph;
use twocs_sim::task::{DeviceId, OpClass, StreamKind, TaskId};
use twocs_sim::time::SimTime;
use twocs_sim::Engine;
use twocs_testkit::{cases, Rng};

/// A compact description of a random task used to build graphs.
#[derive(Debug, Clone)]
struct TaskDesc {
    device: usize,
    micros: u64,
    comm: bool,
    /// Dependencies as offsets back from this task's index.
    dep_offsets: Vec<usize>,
}

fn task_desc(rng: &mut Rng) -> TaskDesc {
    TaskDesc {
        device: rng.usize_in(0..4),
        micros: rng.u64_in(1..500),
        comm: rng.bool(),
        dep_offsets: {
            let n = rng.usize_in(0..3);
            rng.vec_of(n, |r| r.usize_in(1..8))
        },
    }
}

fn task_descs(rng: &mut Rng, max: usize) -> Vec<TaskDesc> {
    let n = rng.usize_in(1..max);
    rng.vec_of(n, task_desc)
}

fn build_graph(descs: &[TaskDesc]) -> TaskGraph {
    let mut g = TaskGraph::new(4);
    for (i, d) in descs.iter().enumerate() {
        let deps: Vec<TaskId> = d
            .dep_offsets
            .iter()
            .filter_map(|&off| i.checked_sub(off).map(TaskId))
            .collect();
        let secs = d.micros as f64 * 1e-6;
        if d.comm {
            g.collective(
                vec![DeviceId(d.device), DeviceId((d.device + 1) % 4)],
                format!("ar{i}"),
                secs,
                &deps,
            );
        } else {
            g.compute(
                DeviceId(d.device),
                format!("k{i}"),
                OpClass::Gemm,
                secs,
                &deps,
            );
        }
    }
    g
}

#[test]
fn dependencies_are_respected() {
    cases(64, |rng| {
        let descs = task_descs(rng, 40);
        let g = build_graph(&descs);
        let timeline = Engine::new().run_trace(&g).unwrap();
        // Map task -> (min start, max end) across its per-device records.
        let mut span: HashMap<usize, (SimTime, SimTime)> = HashMap::new();
        for r in timeline.records() {
            let e = span.entry(r.task.0).or_insert((r.start, r.end));
            e.0 = e.0.min(r.start);
            e.1 = e.1.max(r.end);
        }
        for t in g.tasks() {
            if let Some(&(start, _)) = span.get(&t.id.0) {
                for dep in &t.deps {
                    if let Some(&(_, dep_end)) = span.get(&dep.0) {
                        assert!(
                            start >= dep_end,
                            "task {} started {start} before dep {} finished {dep_end}",
                            t.id,
                            dep
                        );
                    }
                }
            }
        }
    });
}

#[test]
fn streams_never_overlap() {
    cases(64, |rng| {
        let descs = task_descs(rng, 40);
        let g = build_graph(&descs);
        let timeline = Engine::new().run_trace(&g).unwrap();
        let mut by_stream: HashMap<(DeviceId, StreamKind), Vec<(u64, u64)>> = HashMap::new();
        for r in timeline.records() {
            by_stream
                .entry((r.device, r.stream))
                .or_default()
                .push((r.start.as_ps(), r.end.as_ps()));
        }
        for ((dev, stream), mut intervals) in by_stream {
            intervals.sort_unstable();
            for w in intervals.windows(2) {
                assert!(
                    w[0].1 <= w[1].0,
                    "overlap on {dev:?}/{stream:?}: {:?} vs {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    });
}

#[test]
fn makespan_bounds() {
    cases(64, |rng| {
        let descs = task_descs(rng, 40);
        let g = build_graph(&descs);
        let r = Engine::new().run(&g).unwrap();
        assert!(r.makespan() >= g.critical_path());
        assert!(r.makespan() <= g.total_work());
    });
}

#[test]
fn execution_is_deterministic() {
    cases(64, |rng| {
        let descs = task_descs(rng, 30);
        let g = build_graph(&descs);
        let t1 = Engine::new().run_trace(&g).unwrap();
        let t2 = Engine::new().run_trace(&g).unwrap();
        assert_eq!(t1.records(), t2.records());
    });
}

#[test]
fn exposed_plus_overlapped_equals_comm_busy() {
    cases(64, |rng| {
        let descs = task_descs(rng, 40);
        let g = build_graph(&descs);
        let timeline = Engine::new().run_trace(&g).unwrap();
        for dev in timeline.devices() {
            let comm = timeline.comm_busy(dev);
            let exposed = timeline.exposed_comm(dev);
            let overlapped = timeline.overlapped_comm(dev);
            assert_eq!(exposed + overlapped, comm);
            assert!(exposed <= comm);
        }
    });
}
