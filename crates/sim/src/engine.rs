//! The discrete-event scheduler.
//!
//! [`Engine::run`] executes a [`TaskGraph`] to completion:
//!
//! 1. tasks become *ready* when all dependencies have finished;
//! 2. a ready task starts at `max(ready_time, availability of all its
//!    resources)` — resources are the per-device FIFO streams and, for
//!    point-to-point transfers, the directed link;
//! 3. ties between ready tasks break by task id (insertion order), making
//!    execution fully deterministic.
//!
//! The optional [`InterferenceModel`] stretches a task when the opposite
//! stream of one of its devices is still busy at its start time.

use crate::error::SimError;
use crate::graph::TaskGraph;
use crate::interference::InterferenceModel;
use crate::metrics::SimReport;
use crate::task::{DeviceId, StreamKind, TaskKind};
use crate::time::SimTime;
use crate::trace::{KernelRecord, Timeline};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Executes task graphs.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    interference: InterferenceModel,
}

impl Engine {
    /// An engine with no interference model.
    #[must_use]
    pub fn new() -> Self {
        Self {
            interference: InterferenceModel::none(),
        }
    }

    /// Use `model` to slow down concurrently executing compute/comm.
    #[must_use]
    pub fn with_interference(mut self, model: InterferenceModel) -> Self {
        self.interference = model;
        self
    }

    /// Execute `graph`, returning the aggregated [`SimReport`].
    ///
    /// # Errors
    /// Returns a [`SimError`] if the graph fails validation.
    pub fn run(&self, graph: &TaskGraph) -> Result<SimReport, SimError> {
        Ok(SimReport::from_timeline(&self.run_trace(graph)?))
    }

    /// Execute `graph`, returning the full kernel [`Timeline`].
    ///
    /// # Errors
    /// Returns a [`SimError`] if the graph fails validation.
    pub fn run_trace(&self, graph: &TaskGraph) -> Result<Timeline, SimError> {
        graph.validate()?;

        let n = graph.len();
        let mut indegree = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for task in graph.tasks() {
            indegree[task.id.0] = task.deps.len();
            for dep in &task.deps {
                dependents[dep.0].push(task.id.0);
            }
        }

        // Ready queue ordered by (ready_time, id) — min-heap via Reverse.
        let mut ready: BinaryHeap<Reverse<(SimTime, usize)>> = BinaryHeap::new();
        for task in graph.tasks() {
            if task.deps.is_empty() {
                ready.push(Reverse((SimTime::ZERO, task.id.0)));
            }
        }

        let mut stream_avail: HashMap<(DeviceId, StreamKind), SimTime> = HashMap::new();
        let mut link_avail: HashMap<(DeviceId, DeviceId), SimTime> = HashMap::new();
        let mut finish: Vec<Option<SimTime>> = vec![None; n];
        let mut timeline = Timeline::new();
        let mut executed = 0usize;

        while let Some(Reverse((ready_time, idx))) = ready.pop() {
            let task = &graph.tasks()[idx];

            // Resource availability. Point-to-point transfers are
            // DMA-driven: they occupy the directed link, not the comm
            // stream (a device can feed several links concurrently).
            let is_transfer = matches!(task.kind, TaskKind::Transfer { .. });
            let mut start = ready_time;
            if is_transfer {
                if let TaskKind::Transfer { src, dst } = task.kind {
                    let avail = link_avail
                        .get(&(src, dst))
                        .copied()
                        .unwrap_or(SimTime::ZERO);
                    start = start.max(avail);
                }
            } else {
                for dev in task.devices() {
                    if let Some(stream) = task.stream_on(dev) {
                        let avail = stream_avail
                            .get(&(dev, stream))
                            .copied()
                            .unwrap_or(SimTime::ZERO);
                        start = start.max(avail);
                    }
                }
            }

            // Interference: stretch duration if the opposite stream of any
            // involved device is busy past our start time.
            let mut duration = task.duration;
            if !self.interference.is_none() && duration > SimTime::ZERO {
                let slowdown =
                    match task.stream_on(task.devices().first().copied().unwrap_or(DeviceId(0))) {
                        Some(StreamKind::Comm | StreamKind::CommAlt) => {
                            let concurrent = task.devices().iter().any(|&d| {
                                stream_avail
                                    .get(&(d, StreamKind::Compute))
                                    .is_some_and(|&t| t > start)
                            });
                            if concurrent {
                                self.interference.comm_slowdown
                            } else {
                                1.0
                            }
                        }
                        Some(StreamKind::Compute) => {
                            let concurrent = task.devices().iter().any(|&d| {
                                [StreamKind::Comm, StreamKind::CommAlt]
                                    .iter()
                                    .any(|&s| stream_avail.get(&(d, s)).is_some_and(|&t| t > start))
                            });
                            if concurrent {
                                self.interference.compute_slowdown
                            } else {
                                1.0
                            }
                        }
                        None => 1.0,
                    };
                duration = duration.scale(slowdown);
            }

            let end = start + duration;

            // Occupy resources and record per-device stream activity.
            // Transfers only hold their link; the record is attributed to
            // the source's comm stream for accounting without serializing
            // other DMA channels.
            for dev in task.devices() {
                if let Some(stream) = task.stream_on(dev) {
                    if !is_transfer {
                        stream_avail.insert((dev, stream), end);
                    }
                    timeline.push(KernelRecord {
                        task: task.id,
                        name: task.name.clone(),
                        class: task.class,
                        device: dev,
                        stream,
                        start,
                        end,
                    });
                }
            }
            if let TaskKind::Transfer { src, dst } = task.kind {
                link_avail.insert((src, dst), end);
            }

            finish[idx] = Some(end);
            executed += 1;

            for &dep_idx in &dependents[idx] {
                indegree[dep_idx] -= 1;
                if indegree[dep_idx] == 0 {
                    let ready_at = graph.tasks()[dep_idx]
                        .deps
                        .iter()
                        .map(|d| finish[d.0].expect("dependency finished before dependent"))
                        .max()
                        .unwrap_or(SimTime::ZERO);
                    ready.push(Reverse((ready_at, dep_idx)));
                }
            }
        }

        if executed != n {
            return Err(SimError::CyclicDependencies {
                stuck: n - executed,
            });
        }
        // Feed the executed timeline to the observability layer (a no-op
        // without an active tracer). Simulated timestamps are virtual and
        // deterministic, so this never perturbs trace reproducibility.
        if let Some(tracer) = twocs_obs::current_tracer() {
            if tracer.sim_enabled() {
                tracer.push_sim_spans(&timeline.to_obs_spans());
            }
        }
        Ok(timeline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::OpClass;

    fn d(i: usize) -> DeviceId {
        DeviceId(i)
    }

    #[test]
    fn chain_executes_serially() {
        let mut g = TaskGraph::new(1);
        let a = g.compute(d(0), "a", OpClass::Gemm, 1e-3, &[]);
        let _b = g.compute(d(0), "b", OpClass::Gemm, 2e-3, &[a]);
        let r = Engine::new().run(&g).unwrap();
        assert_eq!(r.makespan(), SimTime::from_secs_f64(3e-3));
    }

    #[test]
    fn same_stream_serializes_even_without_deps() {
        let mut g = TaskGraph::new(1);
        g.compute(d(0), "a", OpClass::Gemm, 1e-3, &[]);
        g.compute(d(0), "b", OpClass::Gemm, 1e-3, &[]);
        let r = Engine::new().run(&g).unwrap();
        assert_eq!(r.makespan(), SimTime::from_secs_f64(2e-3));
    }

    #[test]
    fn different_devices_run_in_parallel() {
        let mut g = TaskGraph::new(2);
        g.compute(d(0), "a", OpClass::Gemm, 1e-3, &[]);
        g.compute(d(1), "b", OpClass::Gemm, 1e-3, &[]);
        let r = Engine::new().run(&g).unwrap();
        assert_eq!(r.makespan(), SimTime::from_secs_f64(1e-3));
    }

    #[test]
    fn comm_overlaps_compute_on_same_device() {
        let mut g = TaskGraph::new(1);
        g.compute(d(0), "gemm", OpClass::Gemm, 2e-3, &[]);
        g.collective(vec![d(0)], "ar", 1e-3, &[]);
        let r = Engine::new().run(&g).unwrap();
        assert_eq!(r.makespan(), SimTime::from_secs_f64(2e-3));
        assert_eq!(r.exposed_comm_time(), SimTime::ZERO);
    }

    #[test]
    fn serialized_collective_blocks_compute() {
        // TP pattern: gemm -> AR -> gemm; comm fully exposed.
        let mut g = TaskGraph::new(1);
        let a = g.compute(d(0), "g1", OpClass::Gemm, 1e-3, &[]);
        let ar = g.collective(vec![d(0)], "ar", 1e-3, &[a]);
        let _b = g.compute(d(0), "g2", OpClass::Gemm, 1e-3, &[ar]);
        let r = Engine::new().run(&g).unwrap();
        assert_eq!(r.makespan(), SimTime::from_secs_f64(3e-3));
        assert_eq!(r.exposed_comm_time(), SimTime::from_secs_f64(1e-3));
    }

    #[test]
    fn collective_waits_for_all_participants() {
        let mut g = TaskGraph::new(2);
        let a0 = g.compute(d(0), "a0", OpClass::Gemm, 1e-3, &[]);
        let a1 = g.compute(d(1), "a1", OpClass::Gemm, 3e-3, &[]);
        let _ar = g.collective(vec![d(0), d(1)], "ar", 1e-3, &[a0, a1]);
        let r = Engine::new().run(&g).unwrap();
        // AR starts when the slowest participant finishes.
        assert_eq!(r.makespan(), SimTime::from_secs_f64(4e-3));
    }

    #[test]
    fn transfers_share_links() {
        let mut g = TaskGraph::new(2);
        g.transfer(d(0), d(1), "x", 1e-3, &[]);
        g.transfer(d(0), d(1), "y", 1e-3, &[]);
        let r = Engine::new().run(&g).unwrap();
        // Same directed link: serialized.
        assert_eq!(r.makespan(), SimTime::from_secs_f64(2e-3));
    }

    #[test]
    fn opposite_direction_links_are_independent() {
        let mut g = TaskGraph::new(2);
        g.transfer(d(0), d(1), "x", 1e-3, &[]);
        g.transfer(d(1), d(0), "y", 1e-3, &[]);
        let r = Engine::new().run(&g).unwrap();
        assert_eq!(r.makespan(), SimTime::from_secs_f64(1e-3));
    }

    #[test]
    fn interference_stretches_overlapped_comm() {
        let mut g = TaskGraph::new(1);
        g.compute(d(0), "gemm", OpClass::Gemm, 10e-3, &[]);
        g.collective(vec![d(0)], "ar", 4e-3, &[]);
        let clean = Engine::new().run(&g).unwrap();
        let noisy = Engine::new()
            .with_interference(InterferenceModel::new(2.0, 1.0))
            .run(&g)
            .unwrap();
        assert_eq!(clean.comm_time(), SimTime::from_secs_f64(4e-3));
        assert_eq!(noisy.comm_time(), SimTime::from_secs_f64(8e-3));
        // Still hidden under the 10ms GEMM.
        assert_eq!(noisy.makespan(), SimTime::from_secs_f64(10e-3));
    }

    #[test]
    fn isolated_comm_not_stretched() {
        let mut g = TaskGraph::new(1);
        g.collective(vec![d(0)], "ar", 4e-3, &[]);
        let r = Engine::new()
            .with_interference(InterferenceModel::new(2.0, 2.0))
            .run(&g)
            .unwrap();
        assert_eq!(r.makespan(), SimTime::from_secs_f64(4e-3));
    }

    #[test]
    fn executed_timeline_is_captured_by_active_tracer() {
        let tracer = std::sync::Arc::new(twocs_obs::Tracer::new(twocs_obs::TraceMode::Logical));
        twocs_obs::set_thread_tracer(Some(tracer.clone()));
        let mut g = TaskGraph::new(1);
        let a = g.compute(d(0), "g1", OpClass::Gemm, 1e-3, &[]);
        g.collective(vec![d(0)], "ar", 1e-3, &[a]);
        let timeline = Engine::new().run_trace(&g).unwrap();
        twocs_obs::set_thread_tracer(None);
        let snap = tracer.snapshot();
        assert_eq!(snap.spans.len(), timeline.records().len());
        assert!(snap.spans.iter().any(|s| s.name == "g1" && s.cat == "gemm"));
        assert!(snap.spans.iter().any(|s| s.name == "ar" && s.cat == "comm"));
    }

    #[test]
    fn determinism() {
        let mut g = TaskGraph::new(4);
        for i in 0..50 {
            let dev = d(i % 4);
            g.compute(
                dev,
                format!("k{i}"),
                OpClass::Gemm,
                1e-4 * (i % 7 + 1) as f64,
                &[],
            );
            if i % 5 == 0 {
                g.collective(vec![d(0), d(1), d(2), d(3)], format!("ar{i}"), 2e-4, &[]);
            }
        }
        let e = Engine::new();
        let t1 = e.run_trace(&g).unwrap();
        let t2 = e.run_trace(&g).unwrap();
        assert_eq!(t1.records(), t2.records());
    }

    #[test]
    fn makespan_never_below_critical_path() {
        let mut g = TaskGraph::new(2);
        let a = g.compute(d(0), "a", OpClass::Gemm, 1e-3, &[]);
        let b = g.compute(d(1), "b", OpClass::Gemm, 5e-4, &[a]);
        let _ = g.collective(vec![d(0), d(1)], "ar", 7e-4, &[b]);
        let r = Engine::new().run(&g).unwrap();
        assert!(r.makespan() >= g.critical_path());
    }
}
