//! Aggregated execution metrics.
//!
//! [`SimReport`] condenses a [`Timeline`] into the quantities the paper's
//! analysis consumes: makespan, compute/communication busy time, exposed
//! (critical-path) communication, and the serialized-communication
//! fraction of Figure 10 / 12.

use crate::task::{DeviceId, OpClass, StreamKind};
use crate::time::SimTime;
use crate::trace::Timeline;
use std::collections::BTreeMap;
use std::fmt;

/// Per-device execution statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceStats {
    /// The device.
    pub device: DeviceId,
    /// Union busy time of the compute stream.
    pub compute_busy: SimTime,
    /// Union busy time of the comm stream.
    pub comm_busy: SimTime,
    /// Communication time not hidden behind compute.
    pub exposed_comm: SimTime,
}

impl DeviceStats {
    /// Communication time hidden behind compute.
    #[must_use]
    pub fn overlapped_comm(&self) -> SimTime {
        self.comm_busy - self.exposed_comm
    }
}

/// Aggregated result of one simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    makespan: SimTime,
    per_device: Vec<DeviceStats>,
    class_totals: BTreeMap<&'static str, SimTime>,
}

impl SimReport {
    /// Build a report from a completed timeline.
    #[must_use]
    pub fn from_timeline(timeline: &Timeline) -> Self {
        let per_device = timeline
            .devices()
            .into_iter()
            .map(|device| DeviceStats {
                device,
                compute_busy: timeline.stream_busy(device, StreamKind::Compute),
                comm_busy: timeline.comm_busy(device),
                exposed_comm: timeline.exposed_comm(device),
            })
            .collect();
        Self {
            makespan: timeline.makespan(),
            per_device,
            class_totals: timeline.class_duration_totals(),
        }
    }

    /// End-to-end wall-clock time.
    #[must_use]
    pub fn makespan(&self) -> SimTime {
        self.makespan
    }

    /// Stats per device, ascending device id.
    #[must_use]
    pub fn per_device(&self) -> &[DeviceStats] {
        &self.per_device
    }

    /// Summed durations per op class across all devices (not a union).
    #[must_use]
    pub fn class_totals(&self) -> &BTreeMap<&'static str, SimTime> {
        &self.class_totals
    }

    /// Stats of the *bottleneck* device: the one with the largest total
    /// busy time. Symmetric distributed graphs (our common case) make this
    /// representative of every device.
    #[must_use]
    pub fn bottleneck(&self) -> Option<&DeviceStats> {
        self.per_device
            .iter()
            .max_by_key(|s| (s.compute_busy + s.comm_busy, s.device))
    }

    /// Compute busy time of the bottleneck device.
    #[must_use]
    pub fn compute_time(&self) -> SimTime {
        self.bottleneck().map_or(SimTime::ZERO, |s| s.compute_busy)
    }

    /// Communication busy time of the bottleneck device.
    #[must_use]
    pub fn comm_time(&self) -> SimTime {
        self.bottleneck().map_or(SimTime::ZERO, |s| s.comm_busy)
    }

    /// Exposed (critical-path) communication time of the bottleneck device.
    #[must_use]
    pub fn exposed_comm_time(&self) -> SimTime {
        self.bottleneck().map_or(SimTime::ZERO, |s| s.exposed_comm)
    }

    /// Fraction of the makespan spent in *exposed* communication on the
    /// bottleneck device — the paper's "fraction of serialized
    /// communication time" (Figures 10 and 12). Returns 0 for an empty run.
    #[must_use]
    pub fn comm_fraction(&self) -> f64 {
        if self.makespan == SimTime::ZERO {
            return 0.0;
        }
        self.exposed_comm_time().as_secs_f64() / self.makespan.as_secs_f64()
    }

    /// Overlapped communication as a fraction of compute busy time — the
    /// paper's Figure 11/13 metric. Returns 0 when there is no compute.
    #[must_use]
    pub fn overlap_ratio(&self) -> f64 {
        let c = self.compute_time();
        if c == SimTime::ZERO {
            return 0.0;
        }
        self.bottleneck()
            .map_or(0.0, |s| s.comm_busy.as_secs_f64() / c.as_secs_f64())
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "makespan: {}", self.makespan)?;
        writeln!(
            f,
            "compute: {}, comm: {} (exposed {}), comm fraction {:.1}%",
            self.compute_time(),
            self.comm_time(),
            self.exposed_comm_time(),
            self.comm_fraction() * 100.0
        )?;
        for (class, t) in &self.class_totals {
            writeln!(f, "  {class}: {t}")?;
        }
        Ok(())
    }
}

/// Convenience: classes that appear in reports.
#[must_use]
pub fn class_label(class: OpClass) -> &'static str {
    class.name()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskGraph;
    use crate::Engine;

    fn d(i: usize) -> DeviceId {
        DeviceId(i)
    }

    #[test]
    fn report_fractions() {
        let mut g = TaskGraph::new(1);
        let a = g.compute(d(0), "g1", OpClass::Gemm, 3e-3, &[]);
        let ar = g.collective(vec![d(0)], "ar", 1e-3, &[a]);
        let _ = g.compute(d(0), "g2", OpClass::Gemm, 0e-3 + 1e-3, &[ar]);
        let r = Engine::new().run(&g).unwrap();
        assert_eq!(r.makespan(), SimTime::from_secs_f64(5e-3));
        assert!((r.comm_fraction() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_picks_busiest_device() {
        let mut g = TaskGraph::new(2);
        g.compute(d(0), "small", OpClass::Gemm, 1e-3, &[]);
        g.compute(d(1), "big", OpClass::Gemm, 5e-3, &[]);
        let r = Engine::new().run(&g).unwrap();
        assert_eq!(r.bottleneck().unwrap().device, d(1));
        assert_eq!(r.compute_time(), SimTime::from_secs_f64(5e-3));
    }

    #[test]
    fn overlap_ratio_matches_figure11_definition() {
        let mut g = TaskGraph::new(1);
        g.compute(d(0), "wg", OpClass::Gemm, 4e-3, &[]);
        g.collective(vec![d(0)], "grad_ar", 1e-3, &[]);
        let r = Engine::new().run(&g).unwrap();
        assert!((r.overlap_ratio() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn display_contains_breakdown() {
        let mut g = TaskGraph::new(1);
        g.compute(d(0), "g", OpClass::Gemm, 1e-3, &[]);
        let r = Engine::new().run(&g).unwrap();
        let s = r.to_string();
        assert!(s.contains("makespan"));
        assert!(s.contains("gemm"));
    }

    #[test]
    fn empty_report() {
        let g = TaskGraph::new(1);
        let r = Engine::new().run(&g).unwrap();
        assert_eq!(r.comm_fraction(), 0.0);
        assert_eq!(r.overlap_ratio(), 0.0);
        assert!(r.bottleneck().is_none());
    }
}
