//! # twocs-sim — a deterministic discrete-event cluster simulator
//!
//! This crate plays the role of the paper's GPU node + rocProf: it executes
//! *task graphs* (kernels, transfers, collectives with precomputed costs)
//! over a set of devices, each with a **compute stream** and a **comm
//! stream**, and records a kernel-level [`Timeline`](trace::Timeline) from
//! which compute/communication breakdowns are derived.
//!
//! Key properties:
//!
//! * **Deterministic** — identical inputs produce identical timelines;
//!   time is integer picoseconds ([`SimTime`]).
//! * **Streams are FIFO resources** — two kernels on the same stream
//!   never overlap; tasks on different streams of one device may (this is
//!   what lets DP gradient all-reduces hide behind backprop GEMMs).
//!   Point-to-point transfers are DMA-driven: they serialize on their
//!   *directed link* rather than the comm stream, so one device can feed
//!   several links concurrently (multi-ring collectives rely on this).
//! * **Dependencies are respected** — a task starts only after all of its
//!   graph predecessors finish.
//! * **Interference is modellable** — an optional
//!   [`InterferenceModel`](interference::InterferenceModel) slows down
//!   communication that executes concurrently with compute (and vice
//!   versa), as studied in the paper's §4.3.7 case study.
//!
//! ## Example
//!
//! ```
//! use twocs_sim::{graph::TaskGraph, engine::Engine, task::{DeviceId, OpClass}};
//!
//! let mut g = TaskGraph::new(1);
//! let a = g.compute(DeviceId(0), "gemm_a", OpClass::Gemm, 1e-3, &[]);
//! let b = g.compute(DeviceId(0), "gemm_b", OpClass::Gemm, 2e-3, &[a]);
//! // An all-reduce that may overlap with `b` (no dependency between them).
//! let _c = g.collective(vec![DeviceId(0)], "allreduce", 1.5e-3, &[a]);
//! let report = Engine::new().run(&g).expect("valid graph");
//! // b and c overlap: makespan = 1ms + 2ms, the 1.5ms all-reduce is hidden.
//! assert_eq!(report.makespan().as_secs_f64(), 3e-3);
//! assert!(report.exposed_comm_time().as_secs_f64() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod error;
pub mod graph;
pub mod interference;
pub mod metrics;
pub mod task;
pub mod time;
pub mod trace;

pub use engine::Engine;
pub use error::SimError;
pub use graph::TaskGraph;
pub use metrics::SimReport;
pub use task::{DeviceId, OpClass, StreamKind, TaskId};
pub use time::SimTime;
