//! Compute/communication interference.
//!
//! When communication kernels run concurrently with compute on the same
//! accelerator they contend for memory bandwidth, caches, and compute units
//! used by the reduction. The paper's §4.3.7 case study shows that such
//! interference (plus slower inter-node links) can push "hidden" DP
//! communication back onto the critical path.
//!
//! [`InterferenceModel`] stretches a task's duration when, at its start
//! time, the opposite stream of (any of) its device(s) is still busy. This
//! is a deliberately simple issue-time approximation: it captures the
//! first-order effect (overlapped comm is slower than isolated comm)
//! without rate-based preemptive resimulation.

/// Slowdown factors applied to concurrently executing work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterferenceModel {
    /// Factor (≥ 1) applied to a communication task that starts while
    /// compute is running on one of its devices.
    pub comm_slowdown: f64,
    /// Factor (≥ 1) applied to a compute task that starts while
    /// communication is running on its device.
    pub compute_slowdown: f64,
}

impl InterferenceModel {
    /// No interference: overlapping work proceeds at full speed.
    #[must_use]
    pub fn none() -> Self {
        Self {
            comm_slowdown: 1.0,
            compute_slowdown: 1.0,
        }
    }

    /// Create a model with the given factors.
    ///
    /// # Panics
    /// Panics if either factor is < 1 or non-finite.
    #[must_use]
    pub fn new(comm_slowdown: f64, compute_slowdown: f64) -> Self {
        assert!(
            comm_slowdown.is_finite() && comm_slowdown >= 1.0,
            "comm_slowdown must be >= 1, got {comm_slowdown}"
        );
        assert!(
            compute_slowdown.is_finite() && compute_slowdown >= 1.0,
            "compute_slowdown must be >= 1, got {compute_slowdown}"
        );
        Self {
            comm_slowdown,
            compute_slowdown,
        }
    }

    /// A moderate default drawn from the literature the paper cites
    /// (Rashidi et al. \[53\] observe noticeable collective slowdowns when
    /// co-located with compute): communication 1.3× slower, compute 1.1×
    /// slower while overlapped.
    #[must_use]
    pub fn typical() -> Self {
        Self::new(1.3, 1.1)
    }

    /// Whether this model is a no-op.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.comm_slowdown == 1.0 && self.compute_slowdown == 1.0
    }
}

impl Default for InterferenceModel {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_identity() {
        let m = InterferenceModel::none();
        assert!(m.is_none());
        assert_eq!(m.comm_slowdown, 1.0);
    }

    #[test]
    fn typical_slows_comm_more_than_compute() {
        let m = InterferenceModel::typical();
        assert!(m.comm_slowdown > m.compute_slowdown);
        assert!(!m.is_none());
    }

    #[test]
    #[should_panic(expected = "comm_slowdown")]
    fn speedup_rejected() {
        let _ = InterferenceModel::new(0.9, 1.0);
    }
}
