//! Tasks: the unit of simulated work.
//!
//! A task occupies one or more *resources* (streams, links) for a duration
//! and may depend on other tasks. Costs are computed by callers (usually
//! from `twocs-hw` models or `twocs-collectives` cost formulas) — the
//! simulator itself is agnostic to what the work is.

use crate::time::SimTime;
use std::fmt;

/// Identifier of a task within one [`TaskGraph`](crate::graph::TaskGraph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub usize);

/// Identifier of a device (GPU) in the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub usize);

/// Which hardware queue of a device a task occupies.
///
/// Real GPUs expose many streams; two suffice to express the paper's
/// scenarios: kernels serialize on the compute stream, collectives on the
/// comm stream, and the two may overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StreamKind {
    /// Math kernels (GEMMs, element-wise ops).
    Compute,
    /// Communication (collectives, p2p transfers).
    Comm,
    /// Secondary communication queue — real frameworks run DP gradient
    /// collectives on a separate stream/channel so they do not contend
    /// with critical-path (TP) collectives.
    CommAlt,
}

/// Coarse operator class, used for time breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum OpClass {
    /// Matrix multiplication.
    Gemm,
    /// Bandwidth-bound compute (LayerNorm, GeLU, …).
    MemOp,
    /// Collective or point-to-point communication.
    Comm,
    /// Optimizer step and other bookkeeping.
    Other,
}

impl OpClass {
    /// Whether this class counts as communication in breakdowns.
    #[must_use]
    pub fn is_comm(self) -> bool {
        matches!(self, OpClass::Comm)
    }

    /// Canonical lowercase name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Gemm => "gemm",
            OpClass::MemOp => "memop",
            OpClass::Comm => "comm",
            OpClass::Other => "other",
        }
    }

    /// All classes.
    #[must_use]
    pub const fn all() -> [OpClass; 4] {
        [OpClass::Gemm, OpClass::MemOp, OpClass::Comm, OpClass::Other]
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What a task does and which resources it holds.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TaskKind {
    /// A kernel on one device's compute stream.
    Compute {
        /// The executing device.
        device: DeviceId,
    },
    /// A collective occupying a comm stream of every participant for the
    /// same duration (cost precomputed by the caller, e.g. from the
    /// `twocs-collectives` cost model).
    Collective {
        /// All participating devices.
        devices: Vec<DeviceId>,
        /// Run on the secondary comm stream ([`StreamKind::CommAlt`]),
        /// as frameworks do for overlappable DP gradient collectives.
        alt_stream: bool,
    },
    /// A point-to-point transfer occupying the source's comm stream and
    /// the directed link `src -> dst`.
    Transfer {
        /// Sending device.
        src: DeviceId,
        /// Receiving device.
        dst: DeviceId,
    },
    /// A zero-cost synchronization point (occupies nothing).
    Barrier,
}

/// A node in the task graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// This task's id.
    pub id: TaskId,
    /// Display name, e.g. `"fc1_gemm"`.
    pub name: String,
    /// Operator class for breakdowns.
    pub class: OpClass,
    /// What the task does.
    pub kind: TaskKind,
    /// Unmodified duration (interference may stretch it at run time).
    pub duration: SimTime,
    /// Ids of tasks that must finish before this one starts.
    pub deps: Vec<TaskId>,
}

impl Task {
    /// The stream this task occupies on `device`, if any.
    #[must_use]
    pub fn stream_on(&self, device: DeviceId) -> Option<StreamKind> {
        match &self.kind {
            TaskKind::Compute { device: d } => (*d == device).then_some(StreamKind::Compute),
            TaskKind::Collective {
                devices,
                alt_stream,
            } => devices.contains(&device).then_some(if *alt_stream {
                StreamKind::CommAlt
            } else {
                StreamKind::Comm
            }),
            TaskKind::Transfer { src, .. } => (*src == device).then_some(StreamKind::Comm),
            TaskKind::Barrier => None,
        }
    }

    /// Devices whose streams this task occupies.
    #[must_use]
    pub fn devices(&self) -> Vec<DeviceId> {
        match &self.kind {
            TaskKind::Compute { device } => vec![*device],
            TaskKind::Collective { devices, .. } => devices.clone(),
            TaskKind::Transfer { src, .. } => vec![*src],
            TaskKind::Barrier => Vec::new(),
        }
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_task_occupies_compute_stream() {
        let t = Task {
            id: TaskId(0),
            name: "k".into(),
            class: OpClass::Gemm,
            kind: TaskKind::Compute {
                device: DeviceId(1),
            },
            duration: SimTime::from_micros(1),
            deps: vec![],
        };
        assert_eq!(t.stream_on(DeviceId(1)), Some(StreamKind::Compute));
        assert_eq!(t.stream_on(DeviceId(0)), None);
        assert_eq!(t.devices(), vec![DeviceId(1)]);
    }

    #[test]
    fn collective_occupies_all_participants() {
        let t = Task {
            id: TaskId(0),
            name: "ar".into(),
            class: OpClass::Comm,
            kind: TaskKind::Collective {
                devices: vec![DeviceId(0), DeviceId(1)],
                alt_stream: false,
            },
            duration: SimTime::from_micros(5),
            deps: vec![],
        };
        assert_eq!(t.stream_on(DeviceId(0)), Some(StreamKind::Comm));
        assert_eq!(t.stream_on(DeviceId(1)), Some(StreamKind::Comm));
        assert_eq!(t.stream_on(DeviceId(2)), None);
    }

    #[test]
    fn transfer_occupies_source_comm_stream() {
        let t = Task {
            id: TaskId(0),
            name: "p2p".into(),
            class: OpClass::Comm,
            kind: TaskKind::Transfer {
                src: DeviceId(0),
                dst: DeviceId(1),
            },
            duration: SimTime::from_micros(5),
            deps: vec![],
        };
        assert_eq!(t.stream_on(DeviceId(0)), Some(StreamKind::Comm));
        assert_eq!(t.stream_on(DeviceId(1)), None);
    }

    #[test]
    fn ids_format_compactly() {
        assert_eq!(TaskId(7).to_string(), "t7");
        assert_eq!(DeviceId(3).to_string(), "gpu3");
    }

    #[test]
    fn class_names() {
        assert!(OpClass::Comm.is_comm());
        assert!(!OpClass::Gemm.is_comm());
        assert_eq!(OpClass::all().len(), 4);
    }
}
