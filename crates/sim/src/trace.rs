//! Execution timelines — the simulator's equivalent of a rocProf trace.
//!
//! Every executed task produces a [`KernelRecord`] with its stream and
//! start/end times. [`Timeline`] offers the interval arithmetic the
//! analysis needs: per-stream busy time, per-class busy time, and
//! **exposed communication** (wall-clock periods where a device is
//! communicating but not computing — i.e. communication on the critical
//! path), plus a Chrome-trace JSON export for visual inspection.

use crate::task::{DeviceId, OpClass, StreamKind, TaskId};
use crate::time::SimTime;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One executed task instance.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRecord {
    /// The originating task.
    pub task: TaskId,
    /// Task display name.
    pub name: String,
    /// Operator class.
    pub class: OpClass,
    /// Device whose stream this record occupies.
    pub device: DeviceId,
    /// Stream occupied.
    pub stream: StreamKind,
    /// Start time.
    pub start: SimTime,
    /// End time.
    pub end: SimTime,
}

impl KernelRecord {
    /// Duration of this record.
    #[must_use]
    pub fn duration(&self) -> SimTime {
        self.end - self.start
    }
}

/// Aggregated statistics for one kernel name in a timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelStat {
    /// Base kernel name (per-layer instances aggregated).
    pub name: String,
    /// Number of invocations.
    pub calls: usize,
    /// Summed duration across invocations.
    pub total: SimTime,
}

impl std::fmt::Display for KernelStat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:<24} x{:<5} {}", self.name, self.calls, self.total)
    }
}

/// A completed execution trace.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    records: Vec<KernelRecord>,
}

impl Timeline {
    /// Create an empty timeline.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record (engine-internal, but public for custom frontends).
    pub fn push(&mut self, record: KernelRecord) {
        self.records.push(record);
    }

    /// All records in execution-start order is *not* guaranteed; records
    /// appear in completion-of-scheduling order.
    #[must_use]
    pub fn records(&self) -> &[KernelRecord] {
        &self.records
    }

    /// Latest end time across all records.
    #[must_use]
    pub fn makespan(&self) -> SimTime {
        self.records
            .iter()
            .map(|r| r.end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Devices that appear in the trace, ascending.
    #[must_use]
    pub fn devices(&self) -> Vec<DeviceId> {
        let mut v: Vec<DeviceId> = self.records.iter().map(|r| r.device).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Union busy time of one stream on one device.
    #[must_use]
    pub fn stream_busy(&self, device: DeviceId, stream: StreamKind) -> SimTime {
        let intervals = self.intervals(device, Some(stream), None);
        union_length(&intervals)
    }

    /// Union busy time of a given op class on one device (may span both
    /// streams).
    #[must_use]
    pub fn class_busy(&self, device: DeviceId, class: OpClass) -> SimTime {
        let intervals = self.intervals(device, None, Some(class));
        union_length(&intervals)
    }

    /// Sum (not union) of record durations per class across all devices.
    #[must_use]
    pub fn class_duration_totals(&self) -> BTreeMap<&'static str, SimTime> {
        let mut m = BTreeMap::new();
        for r in &self.records {
            *m.entry(r.class.name()).or_insert(SimTime::ZERO) += r.duration();
        }
        m
    }

    /// Union busy time of all communication (both comm streams) on one
    /// device.
    #[must_use]
    pub fn comm_busy(&self, device: DeviceId) -> SimTime {
        union_length(&self.comm_intervals(device))
    }

    /// Time where `device` is communicating (either comm stream) but its
    /// compute stream is idle: communication that is *exposed* on the
    /// critical path rather than hidden behind compute (paper Figure 3).
    #[must_use]
    pub fn exposed_comm(&self, device: DeviceId) -> SimTime {
        let comm = union(self.comm_intervals(device));
        let compute = union(self.intervals(device, Some(StreamKind::Compute), None));
        subtract_length(&comm, &compute)
    }

    /// Time where `device` communicates and computes simultaneously:
    /// communication hidden behind compute.
    #[must_use]
    pub fn overlapped_comm(&self, device: DeviceId) -> SimTime {
        self.comm_busy(device) - self.exposed_comm(device)
    }

    fn comm_intervals(&self, device: DeviceId) -> Vec<(u64, u64)> {
        self.records
            .iter()
            .filter(|r| {
                r.device == device
                    && matches!(r.stream, StreamKind::Comm | StreamKind::CommAlt)
                    && r.end > r.start
            })
            .map(|r| (r.start.as_ps(), r.end.as_ps()))
            .collect()
    }

    fn intervals(
        &self,
        device: DeviceId,
        stream: Option<StreamKind>,
        class: Option<OpClass>,
    ) -> Vec<(u64, u64)> {
        self.records
            .iter()
            .filter(|r| {
                r.device == device
                    && stream.is_none_or(|s| r.stream == s)
                    && class.is_none_or(|c| r.class == c)
                    && r.end > r.start
            })
            .map(|r| (r.start.as_ps(), r.end.as_ps()))
            .collect()
    }

    /// Aggregate per-kernel statistics (rocProf-style): for each distinct
    /// base name (the part after the last `.`, so per-layer instances of
    /// one operator aggregate together), the call count and total time,
    /// sorted by total time descending, truncated to `top_n`.
    #[must_use]
    pub fn kernel_summary(&self, top_n: usize) -> Vec<KernelStat> {
        let mut by_name: BTreeMap<&str, (usize, SimTime)> = BTreeMap::new();
        for r in &self.records {
            let base = r.name.rsplit('.').next().unwrap_or(&r.name);
            let entry = by_name.entry(base).or_insert((0, SimTime::ZERO));
            entry.0 += 1;
            entry.1 += r.duration();
        }
        let mut stats: Vec<KernelStat> = by_name
            .into_iter()
            .map(|(name, (calls, total))| KernelStat {
                name: name.to_owned(),
                calls,
                total,
            })
            .collect();
        stats.sort_by(|a, b| b.total.cmp(&a.total).then(a.name.cmp(&b.name)));
        stats.truncate(top_n);
        stats
    }

    /// Render an ASCII Gantt chart: one row per `(device, stream)`,
    /// `width` time buckets across the makespan. A bucket shows the class
    /// of the longest task touching it (`G` gemm, `M` mem-op, `C` comm,
    /// `o` other) or `.` when nothing does — a coarse eyeballing tool,
    /// not an exact accounting (use the report metrics for that).
    #[must_use]
    pub fn to_ascii_gantt(&self, width: usize) -> String {
        let width = width.max(1);
        let span = self.makespan().as_ps().max(1);
        let bucket = span.div_ceil(width as u64).max(1);
        let mut rows: BTreeMap<(DeviceId, u8), Vec<(u64, char)>> = BTreeMap::new();
        for r in &self.records {
            if r.end <= r.start {
                continue;
            }
            let lane = match r.stream {
                StreamKind::Compute => 0u8,
                StreamKind::Comm => 1,
                StreamKind::CommAlt => 2,
            };
            let glyph = match r.class {
                OpClass::Gemm => 'G',
                OpClass::MemOp => 'M',
                OpClass::Comm => 'C',
                _ => 'o',
            };
            let cells = rows
                .entry((r.device, lane))
                .or_insert_with(|| vec![(0, ' '); width]);
            let first = (r.start.as_ps() / bucket) as usize;
            let last = ((r.end.as_ps() - 1) / bucket) as usize;
            for cell in cells.iter_mut().take(last.min(width - 1) + 1).skip(first) {
                // Majority-ish: keep the glyph covering the most time by
                // counting overlap length per bucket.
                let covered = r.duration().as_ps();
                if covered >= cell.0 {
                    *cell = (covered, glyph);
                }
            }
        }
        let mut out = String::new();
        for ((device, lane), cells) in rows {
            let stream = match lane {
                0 => "compute",
                1 => "comm   ",
                _ => "comm2  ",
            };
            let _ = write!(out, "{device} {stream} |");
            for (covered, glyph) in cells {
                out.push(if covered == 0 { '.' } else { glyph });
            }
            out.push_str("|\n");
        }
        let _ = writeln!(
            out,
            "(each column = {}; G gemm, M memop, C comm, o other)",
            SimTime::from_ps(bucket)
        );
        out
    }

    /// Convert to tracer-neutral spans for `twocs-obs` capture. The whole
    /// timeline lands in one Chrome-trace process, so the thread lane
    /// encodes both device and stream (`device × 3 + stream`).
    #[must_use]
    pub fn to_obs_spans(&self) -> Vec<twocs_obs::SimSpan> {
        self.records
            .iter()
            .map(|r| {
                let lane = match r.stream {
                    StreamKind::Compute => 0,
                    StreamKind::Comm => 1,
                    StreamKind::CommAlt => 2,
                };
                twocs_obs::SimSpan {
                    name: r.name.clone(),
                    cat: r.class.name(),
                    tid: (r.device.0 as u64) * 3 + lane,
                    start_us: r.start.as_micros_f64(),
                    dur_us: r.duration().as_micros_f64(),
                }
            })
            .collect()
    }

    /// Export as a Chrome `chrome://tracing` / Perfetto JSON string.
    /// Devices map to processes, streams to threads.
    #[must_use]
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("[");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let tid = match r.stream {
                StreamKind::Compute => 0,
                StreamKind::Comm => 1,
                StreamKind::CommAlt => 2,
            };
            // Chrome traces use microseconds.
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":{},\"tid\":{}}}",
                escape_json(&r.name),
                r.class.name(),
                r.start.as_micros_f64(),
                r.duration().as_micros_f64(),
                r.device.0,
                tid
            );
        }
        out.push(']');
        out
    }
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => vec![' '],
            c => vec![c],
        })
        .collect()
}

/// Sort and merge overlapping/adjacent intervals.
fn union(mut intervals: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    intervals.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(intervals.len());
    for (s, e) in intervals {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Total length of the union of `intervals`.
fn union_length(intervals: &[(u64, u64)]) -> SimTime {
    let merged = union(intervals.to_vec());
    SimTime::from_ps(merged.iter().map(|(s, e)| e - s).sum())
}

/// Length of `a \ b` where both are already-merged interval unions.
fn subtract_length(a: &[(u64, u64)], b: &[(u64, u64)]) -> SimTime {
    let mut total = 0u64;
    let mut bi = 0usize;
    for &(s, e) in a {
        let mut cur = s;
        while bi < b.len() && b[bi].1 <= cur {
            bi += 1;
        }
        let mut bj = bi;
        while cur < e {
            if bj >= b.len() || b[bj].0 >= e {
                total += e - cur;
                break;
            }
            let (bs, be) = b[bj];
            if bs > cur {
                total += bs - cur;
            }
            cur = cur.max(be);
            bj += 1;
        }
    }
    SimTime::from_ps(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        device: usize,
        stream: StreamKind,
        class: OpClass,
        start: u64,
        end: u64,
    ) -> KernelRecord {
        KernelRecord {
            task: TaskId(0),
            name: "k".into(),
            class,
            device: DeviceId(device),
            stream,
            start: SimTime::from_ps(start),
            end: SimTime::from_ps(end),
        }
    }

    #[test]
    fn busy_time_unions_overlaps() {
        let mut t = Timeline::new();
        t.push(rec(0, StreamKind::Compute, OpClass::Gemm, 0, 10));
        t.push(rec(0, StreamKind::Compute, OpClass::Gemm, 5, 15));
        t.push(rec(0, StreamKind::Compute, OpClass::Gemm, 20, 30));
        assert_eq!(t.stream_busy(DeviceId(0), StreamKind::Compute).as_ps(), 25);
        assert_eq!(t.makespan().as_ps(), 30);
    }

    #[test]
    fn exposed_comm_is_comm_minus_compute() {
        let mut t = Timeline::new();
        // Compute busy [0, 10); comm busy [5, 20).
        t.push(rec(0, StreamKind::Compute, OpClass::Gemm, 0, 10));
        t.push(rec(0, StreamKind::Comm, OpClass::Comm, 5, 20));
        assert_eq!(t.exposed_comm(DeviceId(0)).as_ps(), 10);
        assert_eq!(t.overlapped_comm(DeviceId(0)).as_ps(), 5);
    }

    #[test]
    fn fully_hidden_comm_has_zero_exposure() {
        let mut t = Timeline::new();
        t.push(rec(0, StreamKind::Compute, OpClass::Gemm, 0, 100));
        t.push(rec(0, StreamKind::Comm, OpClass::Comm, 10, 60));
        assert_eq!(t.exposed_comm(DeviceId(0)), SimTime::ZERO);
        assert_eq!(t.overlapped_comm(DeviceId(0)).as_ps(), 50);
    }

    #[test]
    fn exposure_with_multiple_gaps() {
        let mut t = Timeline::new();
        t.push(rec(0, StreamKind::Compute, OpClass::Gemm, 10, 20));
        t.push(rec(0, StreamKind::Compute, OpClass::Gemm, 40, 50));
        t.push(rec(0, StreamKind::Comm, OpClass::Comm, 0, 60));
        // comm = 60, hidden = 20 -> exposed 40.
        assert_eq!(t.exposed_comm(DeviceId(0)).as_ps(), 40);
    }

    #[test]
    fn per_device_isolation() {
        let mut t = Timeline::new();
        t.push(rec(0, StreamKind::Comm, OpClass::Comm, 0, 10));
        t.push(rec(1, StreamKind::Compute, OpClass::Gemm, 0, 10));
        assert_eq!(t.exposed_comm(DeviceId(0)).as_ps(), 10);
        assert_eq!(t.exposed_comm(DeviceId(1)).as_ps(), 0);
        assert_eq!(t.devices(), vec![DeviceId(0), DeviceId(1)]);
    }

    #[test]
    fn class_totals_sum_durations() {
        let mut t = Timeline::new();
        t.push(rec(0, StreamKind::Compute, OpClass::Gemm, 0, 10));
        t.push(rec(0, StreamKind::Compute, OpClass::MemOp, 10, 14));
        t.push(rec(1, StreamKind::Compute, OpClass::Gemm, 0, 6));
        let totals = t.class_duration_totals();
        assert_eq!(totals["gemm"].as_ps(), 16);
        assert_eq!(totals["memop"].as_ps(), 4);
    }

    #[test]
    fn kernel_summary_aggregates_by_base_name() {
        let mut t = Timeline::new();
        for (name, dur) in [("l0.fc1_gemm", 10u64), ("l1.fc1_gemm", 12), ("l0.ln1", 3)] {
            t.push(KernelRecord {
                task: TaskId(0),
                name: name.into(),
                class: OpClass::Gemm,
                device: DeviceId(0),
                stream: StreamKind::Compute,
                start: SimTime::ZERO,
                end: SimTime::from_ps(dur),
            });
        }
        let stats = t.kernel_summary(10);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].name, "fc1_gemm");
        assert_eq!(stats[0].calls, 2);
        assert_eq!(stats[0].total.as_ps(), 22);
        assert_eq!(stats[1].name, "ln1");
        // top_n truncation
        assert_eq!(t.kernel_summary(1).len(), 1);
    }

    #[test]
    fn chrome_trace_is_valid_shape() {
        let mut t = Timeline::new();
        t.push(rec(0, StreamKind::Compute, OpClass::Gemm, 0, 1_000_000));
        let json = t.to_chrome_trace();
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"pid\":0"));
    }

    #[test]
    fn ascii_gantt_shows_lanes_and_idle() {
        let mut t = Timeline::new();
        t.push(rec(0, StreamKind::Compute, OpClass::Gemm, 0, 50));
        t.push(rec(0, StreamKind::Comm, OpClass::Comm, 50, 100));
        let gantt = t.to_ascii_gantt(20);
        let lines: Vec<&str> = gantt.lines().collect();
        assert_eq!(lines.len(), 3); // two lanes + legend
        assert!(lines[0].contains('G'));
        assert!(lines[0].contains('.'), "compute lane idles in second half");
        assert!(lines[1].contains('C'));
        assert!(lines[2].contains("legend") || lines[2].contains("column"));
    }

    #[test]
    fn empty_timeline() {
        let t = Timeline::new();
        assert_eq!(t.makespan(), SimTime::ZERO);
        assert_eq!(t.exposed_comm(DeviceId(0)), SimTime::ZERO);
        assert_eq!(t.to_chrome_trace(), "[]");
    }
}
