//! Integer simulation time.
//!
//! All simulator arithmetic uses [`SimTime`], a count of **picoseconds**
//! stored in a `u64`. Picosecond resolution keeps rounding error negligible
//! for microsecond-scale kernels while still allowing simulations of more
//! than 200 days of virtual time before overflow.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in (or duration of) simulated time, in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// Picoseconds per second.
const PS_PER_SEC: f64 = 1e12;

impl SimTime {
    /// The zero instant.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw picoseconds.
    #[must_use]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Construct from (fractional) seconds, rounding to the nearest
    /// picosecond.
    ///
    /// # Panics
    /// Panics if `secs` is negative, NaN, or too large to represent.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime requires a non-negative finite duration, got {secs}"
        );
        let ps = secs * PS_PER_SEC;
        assert!(
            ps < u64::MAX as f64,
            "duration {secs}s overflows SimTime (max ~213 days)"
        );
        SimTime(ps.round() as u64)
    }

    /// Construct from microseconds.
    #[must_use]
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Raw picoseconds.
    #[must_use]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Value in seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC
    }

    /// Value in microseconds.
    #[must_use]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Value in milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction (zero floor).
    #[must_use]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// The later of two instants.
    #[must_use]
    pub fn max(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.max(rhs.0))
    }

    /// The earlier of two instants.
    #[must_use]
    pub fn min(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.min(rhs.0))
    }

    /// Multiply a duration by a non-negative factor, rounding.
    ///
    /// # Panics
    /// Panics if `factor` is negative or NaN, or on overflow.
    #[must_use]
    pub fn scale(self, factor: f64) -> SimTime {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be non-negative, got {factor}"
        );
        let ps = self.0 as f64 * factor;
        assert!(ps < u64::MAX as f64, "scaled duration overflows SimTime");
        SimTime(ps.round() as u64)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime addition overflowed"),
        )
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    /// Panics on underflow; use [`SimTime::saturating_sub`] when the
    /// ordering is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflowed"),
        )
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    /// Human scale: picks ns/µs/ms/s automatically.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0 as f64;
        if ps < 1e3 {
            write!(f, "{ps:.0} ps")
        } else if ps < 1e6 {
            write!(f, "{:.2} ns", ps / 1e3)
        } else if ps < 1e9 {
            write!(f, "{:.2} us", ps / 1e6)
        } else if ps < 1e12 {
            write!(f, "{:.3} ms", ps / 1e9)
        } else {
            write!(f, "{:.4} s", ps / 1e12)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_round_trip() {
        let t = SimTime::from_secs_f64(1.5e-3);
        assert_eq!(t.as_ps(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5e-3).abs() < 1e-15);
        assert!((t.as_millis_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(4);
        assert_eq!((a + b).as_micros_f64(), 14.0);
        assert_eq!((a - b).as_micros_f64(), 6.0);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimTime = (1..=4).map(SimTime::from_micros).sum();
        assert_eq!(total, SimTime::from_micros(10));
    }

    #[test]
    fn scale_rounds() {
        let t = SimTime::from_ps(10).scale(0.25);
        assert_eq!(t.as_ps(), 3); // 2.5 rounds to 3 (round half up)
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_seconds_rejected() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    #[should_panic(expected = "underflowed")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_ps(1) - SimTime::from_ps(2);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_ps(500).to_string(), "500 ps");
        assert_eq!(SimTime::from_micros(3).to_string(), "3.00 us");
        assert!(SimTime::from_secs_f64(0.25).to_string().contains("ms"));
        assert!(SimTime::from_secs_f64(2.5).to_string().contains(" s"));
    }
}
