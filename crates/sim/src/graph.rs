//! Task-graph construction.
//!
//! [`TaskGraph`] is an append-only DAG builder. The convenience methods
//! ([`TaskGraph::compute`], [`TaskGraph::collective`], …) take durations in
//! seconds and return the new [`TaskId`], making graph-building code read
//! like the operator sequence it represents.

use crate::error::SimError;
use crate::task::{DeviceId, OpClass, Task, TaskId, TaskKind};
use crate::time::SimTime;

/// An append-only DAG of tasks over a fixed set of devices.
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    devices: usize,
    tasks: Vec<Task>,
}

impl TaskGraph {
    /// Create an empty graph over `devices` devices.
    #[must_use]
    pub fn new(devices: usize) -> Self {
        Self {
            devices,
            tasks: Vec::new(),
        }
    }

    /// Number of devices.
    #[must_use]
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// Number of tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph has no tasks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// All tasks in insertion order.
    #[must_use]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Look up a task.
    #[must_use]
    pub fn get(&self, id: TaskId) -> Option<&Task> {
        self.tasks.get(id.0)
    }

    /// Add an arbitrary task.
    pub fn push(
        &mut self,
        name: impl Into<String>,
        class: OpClass,
        kind: TaskKind,
        duration: SimTime,
        deps: &[TaskId],
    ) -> TaskId {
        let id = TaskId(self.tasks.len());
        self.tasks.push(Task {
            id,
            name: name.into(),
            class,
            kind,
            duration,
            deps: deps.to_vec(),
        });
        id
    }

    /// Add a compute kernel of `secs` seconds on `device`.
    pub fn compute(
        &mut self,
        device: DeviceId,
        name: impl Into<String>,
        class: OpClass,
        secs: f64,
        deps: &[TaskId],
    ) -> TaskId {
        self.push(
            name,
            class,
            TaskKind::Compute { device },
            SimTime::from_secs_f64(secs),
            deps,
        )
    }

    /// Add a collective of `secs` seconds across `devices` on the primary
    /// comm stream.
    pub fn collective(
        &mut self,
        devices: Vec<DeviceId>,
        name: impl Into<String>,
        secs: f64,
        deps: &[TaskId],
    ) -> TaskId {
        self.collective_on(devices, name, secs, deps, false)
    }

    /// Add a collective, choosing the comm stream: `alt_stream` places it
    /// on the secondary queue used for overlappable (DP) collectives.
    pub fn collective_on(
        &mut self,
        devices: Vec<DeviceId>,
        name: impl Into<String>,
        secs: f64,
        deps: &[TaskId],
        alt_stream: bool,
    ) -> TaskId {
        self.push(
            name,
            OpClass::Comm,
            TaskKind::Collective {
                devices,
                alt_stream,
            },
            SimTime::from_secs_f64(secs),
            deps,
        )
    }

    /// Add a point-to-point transfer of `secs` seconds from `src` to `dst`.
    pub fn transfer(
        &mut self,
        src: DeviceId,
        dst: DeviceId,
        name: impl Into<String>,
        secs: f64,
        deps: &[TaskId],
    ) -> TaskId {
        self.push(
            name,
            OpClass::Comm,
            TaskKind::Transfer { src, dst },
            SimTime::from_secs_f64(secs),
            deps,
        )
    }

    /// Add a zero-cost barrier joining `deps`.
    pub fn barrier(&mut self, name: impl Into<String>, deps: &[TaskId]) -> TaskId {
        self.push(name, OpClass::Other, TaskKind::Barrier, SimTime::ZERO, deps)
    }

    /// Validate ids, devices, and (implicitly at run time) acyclicity.
    ///
    /// # Errors
    /// Returns the first [`SimError`] found: an unknown dependency id, a
    /// forward/self dependency (which would make the insertion order not a
    /// topological order), or an out-of-range device.
    pub fn validate(&self) -> Result<(), SimError> {
        for task in &self.tasks {
            for &dep in &task.deps {
                if dep.0 >= self.tasks.len() || dep.0 >= task.id.0 {
                    // Insertion order is our topological order; forward or
                    // self references are rejected outright, which also
                    // guarantees acyclicity.
                    return Err(SimError::UnknownDependency { task: task.id, dep });
                }
            }
            for d in task.devices() {
                if d.0 >= self.devices {
                    return Err(SimError::UnknownDevice {
                        task: task.id,
                        device: d.0,
                        count: self.devices,
                    });
                }
            }
        }
        Ok(())
    }

    /// Length (in time) of the longest dependency chain — a lower bound on
    /// the makespan of any execution.
    #[must_use]
    pub fn critical_path(&self) -> SimTime {
        let mut finish = vec![SimTime::ZERO; self.tasks.len()];
        let mut best = SimTime::ZERO;
        for task in &self.tasks {
            let ready = task
                .deps
                .iter()
                .map(|d| finish[d.0])
                .max()
                .unwrap_or(SimTime::ZERO);
            let f = ready + task.duration;
            finish[task.id.0] = f;
            best = best.max(f);
        }
        best
    }

    /// Sum of all task durations (the serial execution time).
    #[must_use]
    pub fn total_work(&self) -> SimTime {
        self.tasks.iter().map(|t| t.duration).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_chain_dependencies() {
        let mut g = TaskGraph::new(2);
        let a = g.compute(DeviceId(0), "a", OpClass::Gemm, 1e-3, &[]);
        let b = g.compute(DeviceId(1), "b", OpClass::Gemm, 1e-3, &[a]);
        let c = g.collective(vec![DeviceId(0), DeviceId(1)], "ar", 2e-3, &[b]);
        let d = g.barrier("join", &[c]);
        assert_eq!(g.len(), 4);
        assert_eq!(g.get(d).unwrap().deps, vec![c]);
        g.validate().unwrap();
    }

    #[test]
    fn forward_dependency_rejected() {
        let mut g = TaskGraph::new(1);
        let _a = g.push(
            "a",
            OpClass::Gemm,
            TaskKind::Compute {
                device: DeviceId(0),
            },
            SimTime::from_micros(1),
            &[TaskId(5)],
        );
        assert!(matches!(
            g.validate(),
            Err(SimError::UnknownDependency { .. })
        ));
    }

    #[test]
    fn self_dependency_rejected() {
        let mut g = TaskGraph::new(1);
        let _ = g.push(
            "a",
            OpClass::Gemm,
            TaskKind::Compute {
                device: DeviceId(0),
            },
            SimTime::from_micros(1),
            &[TaskId(0)],
        );
        assert!(g.validate().is_err());
    }

    #[test]
    fn out_of_range_device_rejected() {
        let mut g = TaskGraph::new(1);
        g.compute(DeviceId(3), "a", OpClass::Gemm, 1e-3, &[]);
        assert!(matches!(g.validate(), Err(SimError::UnknownDevice { .. })));
    }

    #[test]
    fn critical_path_of_chain_and_diamond() {
        let mut g = TaskGraph::new(1);
        let a = g.compute(DeviceId(0), "a", OpClass::Gemm, 1e-3, &[]);
        let b = g.compute(DeviceId(0), "b", OpClass::Gemm, 2e-3, &[a]);
        let c = g.compute(DeviceId(0), "c", OpClass::Gemm, 1e-3, &[a]);
        let _d = g.barrier("join", &[b, c]);
        // Longest chain: a (1ms) -> b (2ms) = 3ms.
        assert_eq!(g.critical_path(), SimTime::from_secs_f64(3e-3));
        assert_eq!(g.total_work(), SimTime::from_secs_f64(4e-3));
    }

    #[test]
    fn empty_graph() {
        let g = TaskGraph::new(4);
        assert!(g.is_empty());
        assert_eq!(g.critical_path(), SimTime::ZERO);
        g.validate().unwrap();
    }
}
