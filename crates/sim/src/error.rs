//! Error type for simulator construction and execution.

use crate::task::TaskId;
use std::error::Error;
use std::fmt;

/// Error produced when validating or executing a task graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A task depends on an id that does not exist in the graph.
    UnknownDependency {
        /// The task declaring the dependency.
        task: TaskId,
        /// The missing dependency.
        dep: TaskId,
    },
    /// The dependency graph contains a cycle; `stuck` tasks could never
    /// become ready.
    CyclicDependencies {
        /// Number of tasks that never became ready.
        stuck: usize,
    },
    /// A task references a device outside the graph's device count.
    UnknownDevice {
        /// The offending task.
        task: TaskId,
        /// The referenced device index.
        device: usize,
        /// The graph's device count.
        count: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownDependency { task, dep } => {
                write!(f, "task {task} depends on unknown task {dep}")
            }
            SimError::CyclicDependencies { stuck } => {
                write!(
                    f,
                    "dependency cycle detected: {stuck} tasks never became ready"
                )
            }
            SimError::UnknownDevice {
                task,
                device,
                count,
            } => write!(
                f,
                "task {task} references device {device}, but the graph has {count} devices"
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::UnknownDependency {
            task: TaskId(3),
            dep: TaskId(9),
        };
        assert!(e.to_string().contains("t3"));
        assert!(e.to_string().contains("t9"));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<SimError>();
    }
}
