//! Strict query-string parsing for the projection endpoints.
//!
//! The cost models silently clamp or panic on out-of-range inputs (see
//! the pinned tests in `twocs-core::overlapped`), so the service layer
//! validates aggressively instead: percent-decoding errors, duplicate
//! keys, unparsable numbers, and **unknown parameter names** are all
//! rejected with a message suitable for a `400` body — a typo like
//! `?hs=4096` fails loudly rather than silently sweeping the default
//! grid.

/// Parsed `key=value` pairs of one query string.
#[derive(Debug, Clone, Default)]
pub struct Query {
    pairs: Vec<(String, String)>,
}

impl Query {
    /// Parse a raw query string (without the leading `?`).
    ///
    /// Splits on `&`, percent-decodes keys and values, treats `+` as a
    /// space, and rejects duplicate keys.
    pub fn parse(raw: &str) -> Result<Self, String> {
        let mut pairs: Vec<(String, String)> = Vec::new();
        for part in raw.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = part.split_once('=').unwrap_or((part, ""));
            let k = percent_decode(k)?;
            let v = percent_decode(v)?;
            if pairs.iter().any(|(existing, _)| *existing == k) {
                return Err(format!("duplicate query parameter `{k}`"));
            }
            pairs.push((k, v));
        }
        Ok(Self { pairs })
    }

    /// The raw string value of `name`, if present.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Fail on any parameter name outside `allowed` — typos must not
    /// silently fall back to defaults.
    pub fn reject_unknown(&self, allowed: &[&str]) -> Result<(), String> {
        for (k, _) in &self.pairs {
            if !allowed.contains(&k.as_str()) {
                return Err(format!(
                    "unknown query parameter `{k}` (expected one of: {})",
                    allowed.join(", ")
                ));
            }
        }
        Ok(())
    }

    /// `name` as a `u64`, if present.
    pub fn u64(&self, name: &str) -> Result<Option<u64>, String> {
        self.get(name)
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("invalid value `{v}` for `{name}` (expected an integer)"))
            })
            .transpose()
    }

    /// `name` as an `f64`, if present. Rejects non-finite values.
    pub fn f64(&self, name: &str) -> Result<Option<f64>, String> {
        self.get(name)
            .map(|v| match v.parse::<f64>() {
                Ok(x) if x.is_finite() => Ok(x),
                _ => Err(format!(
                    "invalid value `{v}` for `{name}` (expected a finite number)"
                )),
            })
            .transpose()
    }

    /// `name` as a comma-separated `u64` list, if present.
    pub fn u64_list(&self, name: &str) -> Result<Option<Vec<u64>>, String> {
        self.get(name)
            .map(|raw| {
                raw.split(',')
                    .map(|v| {
                        v.trim().parse().map_err(|_| {
                            format!("invalid value `{v}` in `{name}` (expected integers)")
                        })
                    })
                    .collect()
            })
            .transpose()
    }

    /// `name` as a comma-separated `f64` list, if present. Rejects
    /// non-finite values.
    pub fn f64_list(&self, name: &str) -> Result<Option<Vec<f64>>, String> {
        self.get(name)
            .map(|raw| {
                raw.split(',')
                    .map(|v| match v.trim().parse::<f64>() {
                        Ok(x) if x.is_finite() => Ok(x),
                        _ => Err(format!(
                            "invalid value `{v}` in `{name}` (expected finite numbers)"
                        )),
                    })
                    .collect()
            })
            .transpose()
    }
}

/// Decode `%XX` escapes and `+` (space) per the HTML form convention.
fn percent_decode(s: &str) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .ok_or_else(|| format!("truncated percent-escape in `{s}`"))?;
                let hi = hex_val(hex[0]).ok_or_else(|| format!("bad percent-escape in `{s}`"))?;
                let lo = hex_val(hex[1]).ok_or_else(|| format!("bad percent-escape in `{s}`"))?;
                out.push(hi * 16 + lo);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| format!("percent-escapes in `{s}` are not UTF-8"))
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_typed_values_and_lists() {
        let q = Query::parse("h=4096,16384&tp=16&flop_vs_bw=1.5,4&method=proj").unwrap();
        assert_eq!(q.u64_list("h").unwrap().unwrap(), vec![4096, 16384]);
        assert_eq!(q.u64("tp").unwrap(), Some(16));
        assert_eq!(q.f64_list("flop_vs_bw").unwrap().unwrap(), vec![1.5, 4.0]);
        assert_eq!(q.get("method"), Some("proj"));
        assert_eq!(q.u64("absent").unwrap(), None);
    }

    #[test]
    fn percent_decoding_roundtrips() {
        let q = Query::parse("h=4096%2C8192&name=a+b%21").unwrap();
        assert_eq!(q.u64_list("h").unwrap().unwrap(), vec![4096, 8192]);
        assert_eq!(q.get("name"), Some("a b!"));
    }

    #[test]
    fn rejects_duplicates_bad_numbers_and_escapes() {
        assert!(Query::parse("h=1&h=2").unwrap_err().contains("duplicate"));
        assert!(Query::parse("h=%zz").is_err());
        assert!(Query::parse("h=%4").is_err());
        let q = Query::parse("h=abc&r=inf").unwrap();
        assert!(q.u64("h").is_err());
        assert!(q.f64("r").is_err());
    }

    #[test]
    fn unknown_parameters_fail_loudly() {
        let q = Query::parse("hs=4096").unwrap();
        let err = q.reject_unknown(&["h", "sl", "tp"]).unwrap_err();
        assert!(err.contains("unknown query parameter `hs`"), "{err}");
        assert!(err.contains("h, sl, tp"), "{err}");
        assert!(Query::parse("h=1").unwrap().reject_unknown(&["h"]).is_ok());
    }
}
