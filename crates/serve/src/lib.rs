//! `twocs-serve` — a std-only HTTP/1.1 query service over the paper's
//! projection models.
//!
//! The repo's sweeps answer "render every point of a figure"; this crate
//! answers the complementary interactive question — "what does the model
//! say about *this* configuration?" — without paying process startup and
//! cold caches per query. A long-running `twocs serve` process keeps the
//! `gemm_time` / collective / slack-ROI memo caches warm, and memoizes
//! whole rendered bodies in a [`ResponseCache`], so repeat queries are
//! answered without touching the models at all (visible in
//! `/v1/metrics` as `serve.cache.*`).
//!
//! Endpoints (`GET` and `HEAD`):
//!
//! | path             | answers                                              |
//! |------------------|------------------------------------------------------|
//! | `/v1/serialized` | grid sweep, CSV byte-identical to `twocs sweep --csv`|
//! | `/v1/sweep`      | alias for `/v1/serialized`                           |
//! | `/v1/overlapped` | §4.3.5 slack-ROI percentage for one configuration    |
//! | `/v1/evolve`     | both metrics on flop-vs-bw-evolved hardware (§4.3.6) |
//! | `/v1/healthz`    | liveness probe                                       |
//! | `/v1/metrics`    | the `twocs-obs` metrics registry (text or JSON)      |
//!
//! # Architecture
//!
//! One **event-loop thread** multiplexes every connection over
//! `poll(2)` (see [`poll`]): sockets are nonblocking, each connection
//! runs a small state machine (read-head → dispatched → write-response
//! → idle, with idle/read deadlines and a max-requests-per-connection
//! cap), and HTTP/1.1 keep-alive lets one connection carry many
//! requests — including pipelined ones. Request **compute** stays off
//! the event loop: parsed requests are handed to `jobs` worker threads
//! through a bounded queue ([`pool::Bounded`], spawned via
//! `twocs_core::sweep::run_tasks_labeled` so requests inherit sweep-
//! style span attribution and panic isolation); finished responses come
//! back over a completion list and a self-pipe [`poll::Waker`], so a
//! response hits the socket as soon as it is computed, not on the next
//! poll tick.
//!
//! Overload sheds instead of buffering: a full work queue answers
//! `503 Connection: close` per request, and connections beyond
//! [`ServerConfig::max_connections`] are shed at accept with a
//! best-effort `503`. On shutdown (signal or
//! [`ShutdownHandle::trigger`]) the loop stops accepting, closes the
//! work queue, lets dispatched requests finish and their responses
//! flush, then joins the workers before [`Server::run`] returns.
//!
//! Everything is std: the HTTP parser, percent-decoding, JSON
//! rendering, the queue, and two narrow libc FFIs (`signal` in
//! [`shutdown`], `poll`/`pipe` in [`poll`]).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod handlers;
pub mod http;
pub mod poll;
pub mod pool;
pub mod query;
pub mod router;
pub mod shutdown;

pub use cache::ResponseCache;
pub use handlers::HandlerConfig;
pub use shutdown::{install_signal_handler, ShutdownHandle};

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use http::{scan_head, HeadScan, Request, Response, MAX_HEAD_BYTES};
use poll::{Interest, Poller, Source, Waker};
use pool::Bounded;

/// Tuning knobs for one [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:7878` (`:0` picks an ephemeral
    /// port, reported by [`Server::local_addr`]).
    pub addr: String,
    /// Request worker threads.
    pub jobs: usize,
    /// Dispatched-request queue depth; beyond it requests get `503`.
    pub queue: usize,
    /// Deadline for reading a started request head and for flushing a
    /// response to a slow client.
    pub request_timeout: Duration,
    /// How long a keep-alive connection may sit idle between requests
    /// before the server closes it.
    pub idle_timeout: Duration,
    /// Connection budget: accepts beyond this many concurrent
    /// connections are shed with a best-effort `503 Connection: close`.
    pub max_connections: usize,
    /// Requests served on one connection before the server closes it
    /// (bounds per-connection resource lifetime).
    pub max_requests_per_conn: u64,
    /// Whether to memoize full response bodies in a [`ResponseCache`]
    /// (`serve.cache.*` metrics). Disabled, every request recomputes.
    pub cache_responses: bool,
    /// Handler limits (grid-point cap, per-request jobs cap, debug
    /// endpoints, executor, cache injection).
    pub handler: HandlerConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_owned(),
            jobs: 4,
            queue: 64,
            request_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(5),
            max_connections: 512,
            max_requests_per_conn: 1024,
            cache_responses: true,
            handler: HandlerConfig::default(),
        }
    }
}

/// What a server did over its lifetime, returned by [`Server::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests handed to a worker (whatever status they were answered
    /// with).
    pub served: u64,
    /// Requests or connections shed with `503` (full work queue, or
    /// over the connection budget).
    pub rejected: u64,
}

/// A bound-but-not-yet-running query service.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    shutdown: ShutdownHandle,
    poller: Poller,
}

/// Upper bound on one poll wait. The shutdown flag is only a signal-set
/// atomic (it cannot wake the poller), so this caps shutdown latency;
/// everything else — accepts, request bytes, worker completions — wakes
/// the loop immediately.
const TICK: Duration = Duration::from_millis(25);

/// Grace period spent discarding a half-sent request after an error
/// response, so closing with unread bytes does not turn into a kernel
/// `RST` that destroys the `431`/`408` before the client reads it.
const DRAIN_GRACE: Duration = Duration::from_millis(250);

/// Accepts drained per listener-readable event, so one accept storm
/// cannot starve connected clients of loop time.
const ACCEPT_BURST: usize = 64;

/// Body text for shed responses (tests and dashboards grep "capacity").
const AT_CAPACITY: &str = "server is at capacity; retry shortly";

impl Server {
    /// Bind `config.addr` and prepare to serve. The listener is
    /// nonblocking; the self-pipe waker is created here so binding
    /// reports fd exhaustion as an error instead of a panic later.
    pub fn bind(config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        Ok(Self {
            listener,
            config,
            shutdown: ShutdownHandle::new(),
            poller: Poller::new()?,
        })
    }

    /// The actual bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A trigger that stops this server gracefully from another thread.
    #[must_use]
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.shutdown.clone()
    }

    /// Serve until shutdown is triggered (handle or signal), then let
    /// in-flight requests finish and flush before returning lifetime
    /// stats.
    ///
    /// Blocks the calling thread: the poll event loop runs on it
    /// directly, while the `jobs` request workers run on a scoped
    /// `run_tasks_labeled` pool so every request is traced and counted
    /// like a sweep task.
    pub fn run(self) -> ServeStats {
        let metrics = twocs_obs::metrics::global();
        let mut handler = self.config.handler.clone();
        if self.config.cache_responses && handler.cache.is_none() {
            handler.cache = Some(Arc::new(ResponseCache::new()));
        }
        let work: Arc<Bounded<Job>> = Arc::new(Bounded::with_gauge(
            self.config.queue,
            metrics.gauge("serve.queue_depth"),
        ));
        let completions: Arc<Mutex<Vec<Completion>>> = Arc::default();
        let waker = self.poller.waker();
        let jobs = self.config.jobs.max(1);
        let ctx = LoopCtx {
            work: &work,
            request_timeout: self.config.request_timeout,
            idle_timeout: self.config.idle_timeout,
            max_requests_per_conn: self.config.max_requests_per_conn.max(1),
        };
        let mut stats = ServeStats::default();
        std::thread::scope(|scope| {
            let workers = {
                let work = Arc::clone(&work);
                let completions = Arc::clone(&completions);
                let handler = &handler;
                let worker_waker = waker.clone();
                scope.spawn(move || {
                    twocs_core::sweep::run_tasks_labeled(
                        jobs,
                        jobs,
                        |w| format!("serve worker {w}"),
                        |_w| worker_loop(&work, handler, &completions, &worker_waker),
                    );
                })
            };

            let mut conns: HashMap<u64, Conn> = HashMap::new();
            let mut next_token: u64 = 0;
            let mut draining = false;
            loop {
                if !draining && self.shutdown.is_triggered() {
                    draining = true;
                    // No new requests; queued jobs still drain, workers
                    // exit once the queue is empty.
                    work.close();
                    // Connections waiting for a (next) request will
                    // never get one served; drop them now. Dispatched
                    // and Writing connections flush first.
                    conns.retain(|_, c| {
                        matches!(c.state, ConnState::Dispatched | ConnState::Writing { .. })
                    });
                }
                if draining && conns.is_empty() && completions.lock().unwrap().is_empty() {
                    break;
                }

                let sources: Vec<Source> = conns
                    .iter()
                    .filter_map(|(&token, c)| {
                        let interest = Interest {
                            read: matches!(c.state, ConnState::Reading | ConnState::Draining),
                            write: matches!(c.state, ConnState::Writing { .. }),
                        };
                        (interest.read || interest.write)
                            .then(|| Source::new(token, &c.stream, interest))
                    })
                    .collect();
                let listener = (!draining).then_some(&self.listener);
                let wait = match self.poller.wait(listener, &sources, TICK) {
                    Ok(wait) => wait,
                    Err(_) => {
                        // Poll failing outright (fd limit churn) is
                        // transient; back off one tick instead of
                        // spinning.
                        std::thread::sleep(TICK);
                        continue;
                    }
                };

                // 1. Worker completions → responses start writing.
                let done: Vec<Completion> = std::mem::take(&mut *completions.lock().unwrap());
                for completion in done {
                    let Some(conn) = conns.get_mut(&completion.token) else {
                        continue;
                    };
                    let close = conn.pending_close || draining;
                    let bytes = completion.response.to_bytes(!close, conn.head_only);
                    conn.state = ConnState::Writing {
                        bytes,
                        off: 0,
                        close,
                        drain: false,
                    };
                    conn.deadline = Some(Instant::now() + ctx.request_timeout);
                    if matches!(advance(conn, &ctx, &mut stats), Io::Close) {
                        conns.remove(&completion.token);
                    }
                }

                // 2. New connections (accepted in bounded bursts).
                if wait.listener_ready {
                    for _ in 0..ACCEPT_BURST {
                        match self.listener.accept() {
                            Ok((stream, _peer)) => {
                                if stream.set_nonblocking(true).is_err() {
                                    continue;
                                }
                                if conns.len() >= self.config.max_connections {
                                    shed_connection(stream, &mut stats);
                                    continue;
                                }
                                conns.insert(
                                    next_token,
                                    Conn {
                                        token: next_token,
                                        stream,
                                        buf: Vec::new(),
                                        state: ConnState::Reading,
                                        served: 0,
                                        deadline: Some(Instant::now() + ctx.idle_timeout),
                                        pending_close: false,
                                        head_only: false,
                                    },
                                );
                                next_token += 1;
                            }
                            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == ErrorKind::Interrupted => {}
                            Err(_) => break,
                        }
                    }
                }

                // 3. Socket readiness.
                for ev in &wait.events {
                    let Some(conn) = conns.get_mut(&ev.token) else {
                        continue;
                    };
                    let io = if ev.readable {
                        on_readable(conn, &ctx, &mut stats)
                    } else if ev.writable {
                        advance(conn, &ctx, &mut stats)
                    } else if ev.hangup {
                        Io::Close
                    } else {
                        Io::Continue
                    };
                    if matches!(io, Io::Close) {
                        conns.remove(&ev.token);
                    }
                }

                // 4. Deadlines: idle closes, mid-head 408s, stalled
                //    writers and expired drains dropped.
                let now = Instant::now();
                let expired: Vec<u64> = conns
                    .iter()
                    .filter(|(_, c)| c.deadline.is_some_and(|d| d <= now))
                    .map(|(&t, _)| t)
                    .collect();
                for token in expired {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue;
                    };
                    let io = match &conn.state {
                        // Idle between requests (or never spoke): close
                        // silently, that is what keep-alive timeouts do.
                        ConnState::Reading if conn.buf.is_empty() => Io::Close,
                        // Mid-head stall: tell the client before closing.
                        ConnState::Reading => {
                            count_status(408);
                            start_response(
                                conn,
                                Response::error(408, "timed out reading the request"),
                                true,
                                true,
                                &ctx,
                                &mut stats,
                            )
                        }
                        _ => Io::Close,
                    };
                    if matches!(io, Io::Close) {
                        conns.remove(&token);
                    }
                }
            }
            workers.join().expect("serve worker pool panicked");
        });
        stats
    }
}

/// One dispatched request, queued for the worker pool.
struct Job {
    token: u64,
    request: Request,
}

/// A finished response on its way back to the event loop.
struct Completion {
    token: u64,
    response: Response,
}

/// Per-connection state machine.
enum ConnState {
    /// Waiting for (more of) a request head.
    Reading,
    /// A request from this connection is in the worker pool; reading is
    /// paused until its response is written (pipelined bytes stay
    /// buffered).
    Dispatched,
    /// A serialized response is being flushed.
    Writing {
        /// Full wire bytes of the response.
        bytes: Vec<u8>,
        /// How many of them have been written so far.
        off: usize,
        /// Close (instead of returning to `Reading`) once flushed.
        close: bool,
        /// After flushing, linger in [`ConnState::Draining`] to absorb
        /// the rest of a half-sent request before closing.
        drain: bool,
    },
    /// Discarding unread request bytes before close (see
    /// [`DRAIN_GRACE`]).
    Draining,
}

struct Conn {
    /// This connection's key in the event loop's map, echoed on jobs so
    /// completions find their way back.
    token: u64,
    stream: TcpStream,
    /// Read-but-unconsumed bytes (partial heads, pipelined requests).
    buf: Vec<u8>,
    state: ConnState,
    /// Requests answered on this connection so far.
    served: u64,
    deadline: Option<Instant>,
    /// Close after the in-flight response (`Connection: close`, the
    /// per-connection request cap, or shutdown).
    pending_close: bool,
    /// The in-flight request was `HEAD`: serialize headers only.
    head_only: bool,
}

/// Shared loop parameters, bundled so helpers stay free functions.
struct LoopCtx<'a> {
    work: &'a Bounded<Job>,
    request_timeout: Duration,
    idle_timeout: Duration,
    max_requests_per_conn: u64,
}

/// What a connection-level step decided about the connection's fate.
enum Io {
    /// Keep the connection registered.
    Continue,
    /// Remove and drop it.
    Close,
}

/// One request worker: pop jobs until the queue closes and drains,
/// answer each through the handlers, hand the response back to the
/// event loop and wake it. Handler panics become `500`s so one bad
/// request cannot take a worker down.
fn worker_loop(
    work: &Bounded<Job>,
    handler: &HandlerConfig,
    completions: &Mutex<Vec<Completion>>,
    waker: &Waker,
) {
    let metrics = twocs_obs::metrics::global();
    while let Some(job) = work.pop() {
        let start = Instant::now();
        let response = {
            let _span = twocs_obs::span(
                &format!("{} {}", job.request.method, job.request.path),
                "serve",
            );
            catch_unwind(AssertUnwindSafe(|| handlers::handle(&job.request, handler)))
                .unwrap_or_else(|_| Response::error(500, "internal error answering this request"))
        };
        count_status(response.status);
        metrics
            .histogram("serve.request_us")
            .observe_duration(start.elapsed());
        completions.lock().unwrap().push(Completion {
            token: job.token,
            response,
        });
        waker.wake();
    }
}

fn count_status(status: u16) {
    twocs_obs::metrics::global()
        .counter(&format!("serve.responses.{}xx", status / 100))
        .inc();
}

/// Over the connection budget: best-effort one-shot `503` and drop. The
/// client has not sent anything yet (it just connected), so there are
/// no unread bytes to trigger an `RST` — the `503` survives the close.
fn shed_connection(mut stream: TcpStream, stats: &mut ServeStats) {
    stats.rejected += 1;
    let metrics = twocs_obs::metrics::global();
    metrics.counter("serve.rejected_total").inc();
    count_status(503);
    let _ = stream.write(&Response::error(503, AT_CAPACITY).to_bytes(false, false));
}

/// Readable socket: pull bytes according to state.
fn on_readable(conn: &mut Conn, ctx: &LoopCtx, stats: &mut ServeStats) -> Io {
    match conn.state {
        ConnState::Reading => {
            // Cap the read at the remaining head budget so the server
            // never buffers a single byte past MAX_HEAD_BYTES — the 431
            // boundary is exact.
            let want = (MAX_HEAD_BYTES - conn.buf.len()).min(4096);
            let mut tmp = [0u8; 4096];
            match conn.stream.read(&mut tmp[..want.max(1)]) {
                // EOF: nothing more will arrive, and if a partial head
                // is buffered there is no one left to answer.
                Ok(0) => Io::Close,
                Ok(n) => {
                    if conn.buf.is_empty() {
                        // First bytes of a new request: idle deadline
                        // becomes a (shorter) read deadline.
                        conn.deadline = Some(Instant::now() + ctx.request_timeout);
                    }
                    conn.buf.extend_from_slice(&tmp[..n]);
                    advance(conn, ctx, stats)
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::Interrupted) => {
                    Io::Continue
                }
                Err(_) => Io::Close,
            }
        }
        ConnState::Draining => {
            let mut tmp = [0u8; 4096];
            match conn.stream.read(&mut tmp) {
                Ok(0) => Io::Close,
                Ok(_) => Io::Continue,
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::Interrupted) => {
                    Io::Continue
                }
                Err(_) => Io::Close,
            }
        }
        // Stale readiness for a paused/writing connection: ignore.
        _ => Io::Continue,
    }
}

/// Drive a connection as far as it can go without blocking: scan
/// buffered bytes for a head, dispatch it, flush response bytes, and —
/// on a completed keep-alive response — loop straight into the next
/// pipelined request.
fn advance(conn: &mut Conn, ctx: &LoopCtx, stats: &mut ServeStats) -> Io {
    loop {
        match &mut conn.state {
            ConnState::Reading => match scan_head(&conn.buf) {
                HeadScan::Partial => return Io::Continue,
                HeadScan::Complete(Ok(request), consumed) => {
                    conn.buf.drain(..consumed);
                    match dispatch(conn, request, ctx, stats) {
                        Io::Continue => return Io::Continue,
                        Io::Close => return Io::Close,
                    }
                }
                HeadScan::Complete(Err(e), consumed) => {
                    conn.buf.drain(..consumed);
                    count_status(e.status());
                    let drain = !conn.buf.is_empty();
                    conn.buf.clear();
                    match start_response(
                        conn,
                        Response::error(e.status(), &e.message()),
                        true,
                        drain,
                        ctx,
                        stats,
                    ) {
                        Io::Continue => return Io::Continue,
                        Io::Close => return Io::Close,
                    }
                }
                HeadScan::TooLarge => {
                    count_status(431);
                    conn.buf.clear();
                    let message = format!("request head exceeds {MAX_HEAD_BYTES} bytes");
                    match start_response(
                        conn,
                        Response::error(431, &message),
                        true,
                        true,
                        ctx,
                        stats,
                    ) {
                        Io::Continue => return Io::Continue,
                        Io::Close => return Io::Close,
                    }
                }
            },
            ConnState::Writing {
                bytes,
                off,
                close,
                drain,
            } => match conn.stream.write(&bytes[*off..]) {
                Ok(0) => return Io::Close,
                Ok(n) => {
                    *off += n;
                    if *off < bytes.len() {
                        continue;
                    }
                    conn.served += 1;
                    if *close {
                        if *drain {
                            conn.state = ConnState::Draining;
                            conn.deadline = Some(Instant::now() + DRAIN_GRACE);
                            return Io::Continue;
                        }
                        return Io::Close;
                    }
                    // Keep-alive: back to reading; pipelined bytes (if
                    // any) are scanned immediately on the next loop
                    // iteration, no extra poll round.
                    conn.state = ConnState::Reading;
                    conn.deadline = Some(Instant::now() + ctx.idle_timeout);
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock) => return Io::Continue,
                Err(e) if matches!(e.kind(), ErrorKind::Interrupted) => continue,
                Err(_) => return Io::Close,
            },
            ConnState::Dispatched | ConnState::Draining => return Io::Continue,
        }
    }
}

/// Hand a parsed request to the worker pool (or shed it with `503` if
/// the queue is full).
fn dispatch(conn: &mut Conn, request: Request, ctx: &LoopCtx, stats: &mut ServeStats) -> Io {
    let metrics = twocs_obs::metrics::global();
    metrics.counter("serve.requests_total").inc();
    conn.head_only = request.method == "HEAD";
    conn.pending_close = request.close || conn.served + 1 >= ctx.max_requests_per_conn;
    match ctx.work.try_push(Job {
        token: conn.token,
        request,
    }) {
        Ok(()) => {
            stats.served += 1;
            conn.state = ConnState::Dispatched;
            // No deadline while the handler runs: slow sweeps finish at
            // their own pace, exactly like the thread-per-connection
            // server behaved.
            conn.deadline = None;
            Io::Continue
        }
        Err(_job) => {
            stats.rejected += 1;
            metrics.counter("serve.rejected_total").inc();
            count_status(503);
            start_response(
                conn,
                Response::error(503, AT_CAPACITY),
                true,
                false,
                ctx,
                stats,
            )
        }
    }
}

/// Put `response` on the wire: serialize under the connection's close
/// and `HEAD` semantics, switch to `Writing`, and flush as much as the
/// socket takes right now.
fn start_response(
    conn: &mut Conn,
    response: Response,
    close: bool,
    drain: bool,
    ctx: &LoopCtx,
    stats: &mut ServeStats,
) -> Io {
    let close = close || conn.pending_close;
    let bytes = response.to_bytes(!close, conn.head_only);
    conn.state = ConnState::Writing {
        bytes,
        off: 0,
        close,
        drain,
    };
    conn.deadline = Some(Instant::now() + ctx.request_timeout);
    advance(conn, ctx, stats)
}
