//! `twocs-serve` — a std-only HTTP/1.1 query service over the paper's
//! projection models.
//!
//! The repo's sweeps answer "render every point of a figure"; this crate
//! answers the complementary interactive question — "what does the model
//! say about *this* configuration?" — without paying process startup and
//! cold caches per query. A long-running `twocs serve` process keeps the
//! `gemm_time` / collective / slack-ROI memo caches warm, so repeat
//! queries are answered from cache (visible in `/v1/metrics`).
//!
//! Endpoints (all `GET`):
//!
//! | path             | answers                                              |
//! |------------------|------------------------------------------------------|
//! | `/v1/serialized` | grid sweep, CSV byte-identical to `twocs sweep --csv`|
//! | `/v1/sweep`      | alias for `/v1/serialized`                           |
//! | `/v1/overlapped` | §4.3.5 slack-ROI percentage for one configuration    |
//! | `/v1/evolve`     | both metrics on flop-vs-bw-evolved hardware (§4.3.6) |
//! | `/v1/healthz`    | liveness probe                                       |
//! | `/v1/metrics`    | the `twocs-obs` metrics registry (text or JSON)      |
//!
//! Architecture: one accept loop + `jobs` request workers, joined by a
//! bounded handoff queue ([`pool::Bounded`]). The workers are spawned
//! through `twocs_core::sweep::run_tasks_labeled` — the same scoped
//! worker pool the sweeps use — so request handling inherits its span
//! attribution and panic isolation for free. When the queue is full the
//! accept loop answers `503` immediately (backpressure, never unbounded
//! buffering); on shutdown (signal or [`ShutdownHandle::trigger`]) the
//! accept loop stops, the queue drains, and in-flight requests complete
//! before [`Server::run`] returns.
//!
//! Everything is std: the HTTP parser, percent-decoding, JSON rendering,
//! the queue, and the signal hook (a two-symbol libc FFI, the crate's
//! only `unsafe`).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod handlers;
pub mod http;
pub mod pool;
pub mod query;
pub mod router;
pub mod shutdown;

pub use handlers::HandlerConfig;
pub use shutdown::{install_signal_handler, ShutdownHandle};

use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use http::{read_request, Response};
use pool::Bounded;

/// Tuning knobs for one [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:7878` (`:0` picks an ephemeral
    /// port, reported by [`Server::local_addr`]).
    pub addr: String,
    /// Request worker threads.
    pub jobs: usize,
    /// Accepted-connection queue depth; beyond it clients get `503`.
    pub queue: usize,
    /// Per-request socket read/write timeout.
    pub request_timeout: Duration,
    /// Handler limits (grid-point cap, per-request jobs cap, debug
    /// endpoints).
    pub handler: HandlerConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_owned(),
            jobs: 4,
            queue: 64,
            request_timeout: Duration::from_secs(10),
            handler: HandlerConfig::default(),
        }
    }
}

/// What a server did over its lifetime, returned by [`Server::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests handed to a worker (whatever status they were answered
    /// with).
    pub served: u64,
    /// Connections refused with `503` because the queue was full.
    pub rejected: u64,
}

/// A bound-but-not-yet-running query service.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    shutdown: ShutdownHandle,
}

/// How long the accept loop sleeps between polls of the (nonblocking)
/// listener and the shutdown flag. Bounds shutdown latency.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

impl Server {
    /// Bind `config.addr` and prepare to serve. The listener is
    /// nonblocking so the accept loop can interleave shutdown checks.
    pub fn bind(config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        Ok(Self {
            listener,
            config,
            shutdown: ShutdownHandle::new(),
        })
    }

    /// The actual bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A trigger that stops this server gracefully from another thread.
    #[must_use]
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.shutdown.clone()
    }

    /// Serve until shutdown is triggered (handle or signal), then drain
    /// queued and in-flight requests and return lifetime stats.
    ///
    /// Blocks the calling thread: the accept loop runs on it directly,
    /// while the `jobs` request workers run on a scoped
    /// `run_tasks_labeled` pool so every request is traced and counted
    /// like a sweep task.
    pub fn run(self) -> ServeStats {
        let queue: Arc<Bounded<TcpStream>> = Arc::new(Bounded::new(self.config.queue));
        let metrics = twocs_obs::metrics::global();
        let mut stats = ServeStats::default();
        let jobs = self.config.jobs.max(1);
        std::thread::scope(|scope| {
            let worker_queue = Arc::clone(&queue);
            let config = &self.config;
            let workers = scope.spawn(move || {
                twocs_core::sweep::run_tasks_labeled(
                    jobs,
                    jobs,
                    |w| format!("serve worker {w}"),
                    |_w| worker_loop(&worker_queue, config),
                );
            });
            // Accept loop, on this thread. Nonblocking accept + sleep
            // keeps shutdown latency under ~ACCEPT_POLL without platform
            // poll/epoll FFI.
            loop {
                if self.shutdown.is_triggered() {
                    break;
                }
                match self.listener.accept() {
                    Ok((conn, _peer)) => {
                        metrics.gauge("serve.queue_depth").set(queue.len() as f64);
                        match queue.try_push(conn) {
                            Ok(()) => stats.served += 1,
                            Err(conn) => {
                                stats.rejected += 1;
                                metrics.counter("serve.rejected_total").inc();
                                reject_overloaded(conn, self.config.request_timeout);
                            }
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        // Transient accept failure (e.g. aborted
                        // connection); don't spin at full speed on it.
                        std::thread::sleep(ACCEPT_POLL);
                    }
                }
            }
            // Graceful drain: no new connections, queued ones complete.
            queue.close();
            workers.join().expect("serve worker pool panicked");
        });
        stats
    }
}

/// One worker: pop connections until the queue closes, answer each.
fn worker_loop(queue: &Bounded<TcpStream>, config: &ServerConfig) {
    while let Some(conn) = queue.pop() {
        handle_connection(conn, config);
    }
}

/// Answer a single connection end-to-end: socket setup, parse, dispatch,
/// respond. Never panics out — handler panics become `500`s so one bad
/// request cannot take a worker down.
fn handle_connection(mut conn: TcpStream, config: &ServerConfig) {
    let metrics = twocs_obs::metrics::global();
    metrics.counter("serve.requests_total").inc();
    let start = Instant::now();
    // A nonblocking listener hands out nonblocking streams on some
    // platforms; request handling wants blocking reads with a timeout.
    let _ = conn.set_nonblocking(false);
    let _ = conn.set_read_timeout(Some(config.request_timeout));
    let _ = conn.set_write_timeout(Some(config.request_timeout));
    let response = match read_request(&mut conn) {
        Ok(req) => {
            let _span = twocs_obs::span(&format!("GET {}", req.path), "serve");
            catch_unwind(AssertUnwindSafe(|| handlers::handle(&req, &config.handler)))
                .unwrap_or_else(|_| Response::error(500, "internal error answering this request"))
        }
        Err(e) => Response::error(e.status(), &e.message()),
    };
    metrics
        .counter(&format!("serve.responses.{}xx", response.status / 100))
        .inc();
    let _ = response.write_to(&mut conn);
    metrics
        .histogram("serve.request_us")
        .observe_duration(start.elapsed());
}

/// Tell an over-queue client to back off.
///
/// The request head is drained first: closing with unread bytes in the
/// receive buffer makes the kernel send `RST`, which discards the `503`
/// before the client can read it. The drain runs under a short timeout
/// (not the full request timeout) so a slow client cannot stall the
/// accept loop; errors are ignored throughout — the client may already
/// be gone.
fn reject_overloaded(mut conn: TcpStream, timeout: Duration) {
    let _ = conn.set_nonblocking(false);
    let reject_timeout = timeout.min(Duration::from_millis(250));
    let _ = conn.set_read_timeout(Some(reject_timeout));
    let _ = conn.set_write_timeout(Some(reject_timeout));
    let _ = read_request(&mut conn);
    let _ = Response::error(503, "server is at capacity; retry shortly").write_to(&mut conn);
}
