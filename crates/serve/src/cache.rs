//! Full-body response cache over the `twocs-hw` memo-cache machinery.
//!
//! The projection models are cheap per point, but a popular dashboard
//! asking the same `/v1/sweep` query thousands of times a second should
//! not recompute the grid every time. This module memoizes **entire
//! rendered bodies** (CSV/JSON/ASCII, plus their `Content-Type`) keyed
//! by a canonical form of the already-validated query.
//!
//! Canonicalization happens in the handlers, *after* validation and
//! default-folding: two spellings of the same query — `flop_vs_bw=1`
//! vs. `flop_vs_bw=1.0`, parameters omitted vs. spelled out as their
//! defaults, list orderings preserved — resolve to one key and one
//! cached entry. Parameters that cannot change the body (`jobs`,
//! `planner` — the factored planner is bit-identical to naive by
//! contract) are excluded from keys entirely.
//!
//! Because the store is a [`MemoCache`], the serve cache inherits its
//! concurrency story wholesale: per-thread L1 tables make warm hits
//! lock-free, and in-flight miss deduplication means a stampede of
//! identical cold queries computes the body **once** while the other
//! request workers wait for it. Counters publish to `/v1/metrics` as
//! `serve.cache.{hits,misses,entries}`.
//!
//! Only infallible compute paths go through the cache: handlers
//! validate first (every `400` happens before the cache), and the
//! executor-backed sweep path (`twocs serve --listen`), whose `500`s
//! must never be replayed, bypasses it.

use crate::http::Response;
use std::fmt::Write as _;
use twocs_hw::cache::{CacheStats, MemoCache};

/// A memoized store of fully-rendered responses, keyed by canonical
/// query strings.
pub struct ResponseCache {
    store: MemoCache<String, Response>,
}

impl std::fmt::Debug for ResponseCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResponseCache")
            .field("stats", &self.stats())
            .finish()
    }
}

impl ResponseCache {
    /// A cache publishing `serve.cache.{hits,misses,entries}` to the
    /// global metrics registry (what a real server runs).
    #[must_use]
    pub fn new() -> Self {
        Self {
            store: MemoCache::with_metric_prefix("serve.cache"),
        }
    }

    /// A cache with detached (unpublished) counters, for tests that
    /// must not touch the shared global registry.
    #[must_use]
    pub fn detached() -> Self {
        Self {
            store: MemoCache::new(),
        }
    }

    /// Return the response for `key`, computing (and remembering) it
    /// with `compute` on first sight. Concurrent misses on the same key
    /// compute once; the rest wait and share the result.
    #[must_use]
    pub fn get_or_compute(&self, key: String, compute: impl FnOnce() -> Response) -> Response {
        self.store.get_or_insert_with(key, compute)
    }

    /// Hit/miss/entry counters (exact, in compute-invocation terms).
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.store.stats()
    }
}

impl Default for ResponseCache {
    fn default() -> Self {
        Self::new()
    }
}

/// Builder for canonical cache keys: `endpoint|name=value|...` with
/// every value already validated and default-folded by the caller.
///
/// `f64` values are keyed by their IEEE-754 bit pattern, so `1`, `1.0`,
/// and `1.000` (which all parse to the same float) share an entry while
/// genuinely distinct values never collide.
#[derive(Debug)]
pub struct KeyBuilder {
    key: String,
}

impl KeyBuilder {
    /// Start a key for `endpoint` (e.g. `sweep`).
    #[must_use]
    pub fn new(endpoint: &str) -> Self {
        Self {
            key: endpoint.to_owned(),
        }
    }

    /// Append a display-formatted field (integers, enum tokens).
    #[must_use]
    pub fn field(mut self, name: &str, value: impl std::fmt::Display) -> Self {
        let _ = write!(self.key, "|{name}={value}");
        self
    }

    /// Append an `f64` by bit pattern.
    #[must_use]
    pub fn f64(mut self, name: &str, value: f64) -> Self {
        let _ = write!(self.key, "|{name}={:016x}", value.to_bits());
        self
    }

    /// Append a `u64` list (order-preserving — axis order is part of
    /// the response bytes).
    #[must_use]
    pub fn u64s(mut self, name: &str, values: &[u64]) -> Self {
        let _ = write!(self.key, "|{name}=");
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.key.push(',');
            }
            let _ = write!(self.key, "{v}");
        }
        self
    }

    /// Append an `f64` list by bit patterns.
    #[must_use]
    pub fn f64s(mut self, name: &str, values: &[f64]) -> Self {
        let _ = write!(self.key, "|{name}=");
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.key.push(',');
            }
            let _ = write!(self.key, "{:016x}", v.to_bits());
        }
        self
    }

    /// The finished key.
    #[must_use]
    pub fn finish(self) -> String {
        self.key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_float_different_spelling_same_key() {
        let a = KeyBuilder::new("sweep").f64s("r", &[1.0, 2.0]).finish();
        let b = KeyBuilder::new("sweep")
            .f64s("r", &["1".parse().unwrap(), "2.000".parse().unwrap()])
            .finish();
        assert_eq!(a, b);
        let c = KeyBuilder::new("sweep").f64s("r", &[1.5, 2.0]).finish();
        assert_ne!(a, c);
    }

    #[test]
    fn list_order_is_part_of_the_key() {
        // Axis order changes row order in the CSV, so it must miss.
        let a = KeyBuilder::new("sweep").u64s("tp", &[16, 32]).finish();
        let b = KeyBuilder::new("sweep").u64s("tp", &[32, 16]).finish();
        assert_ne!(a, b);
    }

    #[test]
    fn cache_computes_once_per_key() {
        let cache = ResponseCache::detached();
        let mut computes = 0;
        for _ in 0..3 {
            let r = cache.get_or_compute("k".to_owned(), || {
                computes += 1;
                Response::text(200, "body")
            });
            assert_eq!(r.body, "body");
        }
        assert_eq!(computes, 1);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (2, 1, 1));
    }
}
