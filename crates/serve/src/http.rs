//! Minimal HTTP/1.1 wire handling: a hand-rolled request parser and a
//! response serializer, std-only (mirroring the JSON work in `twocs-obs`).
//!
//! Scope is deliberately narrow — the service speaks exactly the subset
//! it needs:
//!
//! * `GET` and `HEAD` requests (anything else is answered `405` with an
//!   `Allow: GET, HEAD` header);
//! * request heads are capped at exactly [`MAX_HEAD_BYTES`] (`431`
//!   beyond that — the cap is enforced on buffered bytes, so a client
//!   can never get the server to hold more than the cap);
//! * HTTP/1.1 keep-alive: the connection default follows the request
//!   version (`1.1` persists, `1.0` closes) and the `Connection` header
//!   overrides it either way;
//! * request bodies are ignored (a `GET` query service has no use for
//!   them).
//!
//! Parsing is **incremental**: the event loop accumulates bytes into a
//! per-connection buffer and calls [`scan_head`] after every read; the
//! scanner either finds the `\r\n\r\n` terminator and parses, reports
//! the head still partial, or reports the cap exceeded. This is what
//! lets one thread multiplex hundreds of half-arrived requests without
//! blocking on any of them.

use std::io::Write;
use std::net::TcpStream;

/// Maximum accepted size of a request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// A parsed request head: everything the router and handlers need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// HTTP method, uppercase as received (`GET`, `HEAD`, `POST`, ...).
    pub method: String,
    /// Decoded-later path component, e.g. `/v1/serialized`.
    pub path: String,
    /// Raw query string (no leading `?`; empty when absent).
    pub raw_query: String,
    /// Whether the connection must close after this response: requested
    /// via `Connection: close`, or implied by HTTP/1.0 without
    /// `Connection: keep-alive`.
    pub close: bool,
}

impl Request {
    /// A plain HTTP/1.1 `GET` (keep-alive), convenient for tests and
    /// benches that call handlers directly.
    #[must_use]
    pub fn get(path: &str, raw_query: &str) -> Self {
        Self {
            method: "GET".to_owned(),
            path: path.to_owned(),
            raw_query: raw_query.to_owned(),
            close: false,
        }
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The connection sat idle past its deadline mid-head.
    Timeout,
    /// The head exceeded [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// The bytes were not a plausible HTTP/1.x request.
    Malformed(String),
    /// The connection failed mid-read.
    Io(std::io::Error),
}

impl HttpError {
    /// The status code this error should be answered with.
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Timeout => 408,
            HttpError::HeadTooLarge => 431,
            HttpError::Malformed(_) => 400,
            HttpError::Io(_) => 400,
        }
    }

    /// Human-oriented description for the error body.
    #[must_use]
    pub fn message(&self) -> String {
        match self {
            HttpError::Timeout => "timed out reading the request".to_owned(),
            HttpError::HeadTooLarge => {
                format!("request head exceeds {MAX_HEAD_BYTES} bytes")
            }
            HttpError::Malformed(m) => m.clone(),
            HttpError::Io(e) => format!("connection error: {e}"),
        }
    }
}

/// Result of scanning a connection buffer for one request head.
#[derive(Debug)]
pub enum HeadScan {
    /// A full head was present: the parse outcome plus the number of
    /// buffer bytes it consumed (strip them before scanning for the
    /// next pipelined request).
    Complete(Result<Request, HttpError>, usize),
    /// No terminator yet and room left under the cap — keep reading.
    Partial,
    /// [`MAX_HEAD_BYTES`] buffered without a terminator: answer `431`.
    TooLarge,
}

/// Incrementally scan `buf` for a complete request head.
///
/// The cap check is on *buffered* bytes, so callers that also cap their
/// reads at `MAX_HEAD_BYTES - buf.len()` enforce the limit exactly: a
/// head of `MAX_HEAD_BYTES` parses, one byte more is rejected.
#[must_use]
pub fn scan_head(buf: &[u8]) -> HeadScan {
    match find_head_end(buf) {
        Some(end) => HeadScan::Complete(parse_head(&buf[..end]), end),
        None if buf.len() >= MAX_HEAD_BYTES => HeadScan::TooLarge,
        None => HeadScan::Partial,
    }
}

/// Byte offset just past the `\r\n\r\n` terminator, if present.
fn find_head_end(head: &[u8]) -> Option<usize> {
    head.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
}

fn parse_head(head: &[u8]) -> Result<Request, HttpError> {
    let end = find_head_end(head).unwrap_or(head.len());
    let text = std::str::from_utf8(&head[..end])
        .map_err(|_| HttpError::Malformed("request head is not UTF-8".to_owned()))?;
    let mut lines = text.lines();
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request".to_owned()))?;
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing method".to_owned()))?;
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".to_owned()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing HTTP version".to_owned()))?;
    // Exactly `HTTP/1.<digit>` — a bare prefix test would wave through
    // garbage like `HTTP/1.1x` or `HTTP/1.999`.
    let minor = match version.strip_prefix("HTTP/1.") {
        Some(m) if m.len() == 1 && m.as_bytes()[0].is_ascii_digit() => m.as_bytes()[0] - b'0',
        _ => {
            return Err(HttpError::Malformed(format!(
                "unsupported protocol `{version}`"
            )))
        }
    };
    if !target.starts_with('/') {
        return Err(HttpError::Malformed(format!(
            "request target `{target}` must be origin-form (start with `/`)"
        )));
    }
    let (path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    // Persistence: HTTP/1.0 closes unless `keep-alive` is requested;
    // HTTP/1.1+ persists unless `close` is requested.
    let mut close = minor == 0;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if !name.trim().eq_ignore_ascii_case("connection") {
            continue;
        }
        for token in value.split(',') {
            let token = token.trim();
            if token.eq_ignore_ascii_case("close") {
                close = true;
            } else if token.eq_ignore_ascii_case("keep-alive") {
                close = false;
            }
        }
    }
    Ok(Request {
        method: method.to_owned(),
        path: path.to_owned(),
        raw_query: raw_query.to_owned(),
        close,
    })
}

/// An HTTP response ready to be serialized to a socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code (`200`, `400`, `503`, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
    /// `Allow` header value, required on `405` responses.
    pub allow: Option<&'static str>,
}

impl Response {
    /// A JSON response.
    #[must_use]
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into(),
            allow: None,
        }
    }

    /// A plain-text response.
    #[must_use]
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            allow: None,
        }
    }

    /// A CSV response.
    #[must_use]
    pub fn csv(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/csv; charset=utf-8",
            body: body.into(),
            allow: None,
        }
    }

    /// A JSON error body `{"error": "..."}` under `status`.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Self {
        Self::json(
            status,
            format!(
                "{{\"error\":\"{}\"}}",
                twocs_obs::chrome::escape_json(message)
            ),
        )
    }

    /// Attach an `Allow` header (RFC 9110 requires one on `405`).
    #[must_use]
    pub fn with_allow(mut self, allow: &'static str) -> Self {
        self.allow = Some(allow);
        self
    }

    /// Serialize to wire bytes: status line, `Content-Type`,
    /// `Content-Length`, optional `Allow`, `Connection`, body.
    ///
    /// `head_only` answers `HEAD`: identical header block — including
    /// the `Content-Length` of the full body — with no body bytes.
    #[must_use]
    pub fn to_bytes(&self, keep_alive: bool, head_only: bool) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        );
        if let Some(allow) = self.allow {
            head.push_str("Allow: ");
            head.push_str(allow);
            head.push_str("\r\n");
        }
        head.push_str(if keep_alive {
            "Connection: keep-alive\r\n\r\n"
        } else {
            "Connection: close\r\n\r\n"
        });
        let mut bytes = head.into_bytes();
        if !head_only {
            bytes.extend_from_slice(self.body.as_bytes());
        }
        bytes
    }

    /// Blocking convenience writer: the full close-delimited response,
    /// as the pre-keep-alive server sent for every request.
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        stream.write_all(&self.to_bytes(false, false))?;
        stream.flush()
    }
}

/// Canonical reason phrase for the status codes this service emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        parse_head(raw.as_bytes())
    }

    #[test]
    fn parses_request_line_with_query() {
        let req = parse("GET /v1/serialized?h=4096&tp=16 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/serialized");
        assert_eq!(req.raw_query, "h=4096&tp=16");
        assert!(!req.close, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_bare_path_without_query() {
        let req = parse("GET /v1/healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.raw_query, "");
        assert_eq!(req.path, "/v1/healthz");
    }

    #[test]
    fn connection_header_controls_persistence() {
        let req = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(req.close);
        let req = parse("GET / HTTP/1.1\r\nCONNECTION: Close\r\n\r\n").unwrap();
        assert!(req.close, "header name and value are case-insensitive");
        let req = parse("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(req.close, "HTTP/1.0 defaults to close");
        let req = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(!req.close, "HTTP/1.0 + keep-alive persists");
        let req = parse("GET / HTTP/1.1\r\nConnection: foo, close\r\n\r\n").unwrap();
        assert!(req.close, "close is found in a token list");
    }

    #[test]
    fn rejects_non_http_preamble() {
        assert!(matches!(
            parse("NOT A REQUEST\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /x SPDY/3\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET example.com/x HTTP/1.1\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_garbage_after_valid_version_prefix() {
        for version in ["HTTP/1.1x", "HTTP/1.", "HTTP/1.11", "HTTP/1.x"] {
            assert!(
                matches!(
                    parse(&format!("GET /v1/healthz {version}\r\n\r\n")),
                    Err(HttpError::Malformed(_))
                ),
                "`{version}` must be rejected"
            );
        }
        assert!(parse("GET /v1/healthz HTTP/1.0\r\n\r\n").is_ok());
        assert!(parse("GET /v1/healthz HTTP/1.1\r\n\r\n").is_ok());
    }

    #[test]
    fn scan_reports_partial_then_complete_with_consumed_length() {
        let wire = b"GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\nGET /next";
        for cut in 1..37 {
            assert!(
                matches!(scan_head(&wire[..cut]), HeadScan::Partial),
                "split at {cut} must be partial"
            );
        }
        match scan_head(wire) {
            HeadScan::Complete(Ok(req), consumed) => {
                assert_eq!(req.path, "/v1/healthz");
                assert_eq!(consumed, 37, "pipelined tail must not be consumed");
            }
            other => panic!("expected complete head, got {other:?}"),
        }
    }

    #[test]
    fn head_cap_is_exact_at_the_boundary() {
        // Exactly MAX_HEAD_BYTES including the terminator: parses.
        let line = "GET /v1/healthz HTTP/1.1\r\n";
        let pad = MAX_HEAD_BYTES - line.len() - "x: \r\n\r\n".len();
        let head = format!("{line}x: {}\r\n\r\n", "p".repeat(pad));
        assert_eq!(head.len(), MAX_HEAD_BYTES);
        assert!(matches!(
            scan_head(head.as_bytes()),
            HeadScan::Complete(Ok(_), _)
        ));
        // MAX_HEAD_BYTES buffered with no terminator: too large, while
        // one byte fewer is still (correctly) just partial.
        let unterminated = vec![b'a'; MAX_HEAD_BYTES];
        assert!(matches!(scan_head(&unterminated), HeadScan::TooLarge));
        assert!(matches!(
            scan_head(&unterminated[..MAX_HEAD_BYTES - 1]),
            HeadScan::Partial
        ));
    }

    #[test]
    fn error_statuses_map_sensibly() {
        assert_eq!(HttpError::Timeout.status(), 408);
        assert_eq!(HttpError::HeadTooLarge.status(), 431);
        assert_eq!(HttpError::Malformed(String::new()).status(), 400);
    }

    #[test]
    fn response_error_bodies_are_json_escaped() {
        let r = Response::error(400, "bad \"h\" value");
        assert_eq!(r.body, "{\"error\":\"bad \\\"h\\\" value\"}");
        assert!(twocs_obs::json::validate(&r.body).is_ok());
    }

    #[test]
    fn to_bytes_covers_keep_alive_head_only_and_allow() {
        let r = Response::text(200, "hello");
        let close = String::from_utf8(r.to_bytes(false, false)).unwrap();
        assert!(close.contains("Connection: close\r\n"));
        assert!(close.ends_with("\r\n\r\nhello"));
        let keep = String::from_utf8(r.to_bytes(true, false)).unwrap();
        assert!(keep.contains("Connection: keep-alive\r\n"));
        assert!(keep.contains("Content-Length: 5\r\n"));
        let head = String::from_utf8(r.to_bytes(true, true)).unwrap();
        assert!(
            head.contains("Content-Length: 5\r\n") && head.ends_with("\r\n\r\n"),
            "HEAD keeps the full-body Content-Length but sends no body"
        );
        let denied = Response::error(405, "no").with_allow("GET, HEAD");
        let denied = String::from_utf8(denied.to_bytes(false, false)).unwrap();
        assert!(denied.contains("Allow: GET, HEAD\r\n"));
    }
}
