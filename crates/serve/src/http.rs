//! Minimal HTTP/1.1 wire handling: a hand-rolled request parser and a
//! response writer, std-only (mirroring the JSON work in `twocs-obs`).
//!
//! Scope is deliberately narrow — the service speaks exactly the subset
//! it needs:
//!
//! * `GET` requests only (anything else is answered `405`);
//! * request heads are capped at [`MAX_HEAD_BYTES`] (`431` beyond that);
//! * one request per connection, answered with `Connection: close` — no
//!   keep-alive state machine, which keeps worker logic trivially correct
//!   under concurrency;
//! * request bodies are ignored (a `GET` query service has no use for
//!   them).
//!
//! Socket read/write timeouts are configured by the server before
//! parsing, so a stalled client surfaces as [`HttpError::Timeout`]
//! (answered `408`) instead of wedging a worker.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;

/// Maximum accepted size of a request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// A parsed request line: everything the router and handlers need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// HTTP method, uppercase as received (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded-later path component, e.g. `/v1/serialized`.
    pub path: String,
    /// Raw query string (no leading `?`; empty when absent).
    pub raw_query: String,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The socket timed out before a full head arrived.
    Timeout,
    /// The head exceeded [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// The bytes were not a plausible HTTP/1.x request.
    Malformed(String),
    /// The connection failed mid-read.
    Io(std::io::Error),
}

impl HttpError {
    /// The status code this error should be answered with.
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Timeout => 408,
            HttpError::HeadTooLarge => 431,
            HttpError::Malformed(_) => 400,
            HttpError::Io(_) => 400,
        }
    }

    /// Human-oriented description for the error body.
    #[must_use]
    pub fn message(&self) -> String {
        match self {
            HttpError::Timeout => "timed out reading the request".to_owned(),
            HttpError::HeadTooLarge => {
                format!("request head exceeds {MAX_HEAD_BYTES} bytes")
            }
            HttpError::Malformed(m) => m.clone(),
            HttpError::Io(e) => format!("connection error: {e}"),
        }
    }
}

/// Read and parse one request head from `stream`.
///
/// Reads until the `\r\n\r\n` head terminator, [`MAX_HEAD_BYTES`], EOF,
/// or the socket's read timeout — whichever comes first. Any body the
/// client may send afterwards is ignored (the connection is closed after
/// the response).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut head: Vec<u8> = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    loop {
        if find_head_end(&head).is_some() {
            break;
        }
        if head.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        let n = match stream.read(&mut buf) {
            Ok(0) => {
                return Err(HttpError::Malformed(
                    "connection closed before a full request head".to_owned(),
                ))
            }
            Ok(n) => n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return Err(HttpError::Timeout)
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(HttpError::Io(e)),
        };
        head.extend_from_slice(&buf[..n]);
    }
    parse_head(&head)
}

/// Byte offset just past the `\r\n\r\n` terminator, if present.
fn find_head_end(head: &[u8]) -> Option<usize> {
    head.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
}

fn parse_head(head: &[u8]) -> Result<Request, HttpError> {
    let end = find_head_end(head).unwrap_or(head.len());
    let text = std::str::from_utf8(&head[..end])
        .map_err(|_| HttpError::Malformed("request head is not UTF-8".to_owned()))?;
    let request_line = text
        .lines()
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request".to_owned()))?;
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing method".to_owned()))?;
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".to_owned()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing HTTP version".to_owned()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported protocol `{version}`"
        )));
    }
    if !target.starts_with('/') {
        return Err(HttpError::Malformed(format!(
            "request target `{target}` must be origin-form (start with `/`)"
        )));
    }
    let (path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    Ok(Request {
        method: method.to_owned(),
        path: path.to_owned(),
        raw_query: raw_query.to_owned(),
    })
}

/// An HTTP response ready to be written to a socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code (`200`, `400`, `503`, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A JSON response.
    #[must_use]
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into(),
        }
    }

    /// A plain-text response.
    #[must_use]
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    /// A CSV response.
    #[must_use]
    pub fn csv(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/csv; charset=utf-8",
            body: body.into(),
        }
    }

    /// A JSON error body `{"error": "..."}` under `status`.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Self {
        Self::json(
            status,
            format!(
                "{{\"error\":\"{}\"}}",
                twocs_obs::chrome::escape_json(message)
            ),
        )
    }

    /// Serialize to the wire: status line, minimal headers
    /// (`Content-Type`, `Content-Length`, `Connection: close`), body.
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

/// Canonical reason phrase for the status codes this service emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        parse_head(raw.as_bytes())
    }

    #[test]
    fn parses_request_line_with_query() {
        let req = parse("GET /v1/serialized?h=4096&tp=16 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/serialized");
        assert_eq!(req.raw_query, "h=4096&tp=16");
    }

    #[test]
    fn parses_bare_path_without_query() {
        let req = parse("GET /v1/healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.raw_query, "");
        assert_eq!(req.path, "/v1/healthz");
    }

    #[test]
    fn rejects_non_http_preamble() {
        assert!(matches!(
            parse("NOT A REQUEST\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /x SPDY/3\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET example.com/x HTTP/1.1\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn error_statuses_map_sensibly() {
        assert_eq!(HttpError::Timeout.status(), 408);
        assert_eq!(HttpError::HeadTooLarge.status(), 431);
        assert_eq!(HttpError::Malformed(String::new()).status(), 400);
    }

    #[test]
    fn response_error_bodies_are_json_escaped() {
        let r = Response::error(400, "bad \"h\" value");
        assert_eq!(r.body, "{\"error\":\"bad \\\"h\\\" value\"}");
        assert!(twocs_obs::json::validate(&r.body).is_ok());
    }
}
