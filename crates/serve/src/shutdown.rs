//! Graceful-shutdown plumbing: a per-server trigger plus an optional
//! process-wide signal hook.
//!
//! Two layers because they have different owners: in-process tests (and
//! embedders) trigger a [`ShutdownHandle`] directly, while the `twocs
//! serve` binary additionally installs a `SIGINT`/`SIGTERM` handler that
//! flips one process-global flag every handle also observes. The handler
//! itself only stores to an atomic — the accept loop polls the flag, so
//! no async-signal-unsafe work happens in signal context.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Set by the signal handler; observed by every [`ShutdownHandle`].
static SIGNAL: AtomicBool = AtomicBool::new(false);

/// Whether a second signal should hard-exit (set once a first signal has
/// been seen, so a stuck drain can still be interrupted).
static SIGNAL_SEEN: AtomicBool = AtomicBool::new(false);

/// A cloneable trigger for stopping one server.
#[derive(Debug, Clone, Default)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// A fresh, untriggered handle.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Request shutdown: the accept loop stops, queued requests drain,
    /// workers exit.
    pub fn trigger(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested, either on this handle or by
    /// a delivered signal.
    #[must_use]
    pub fn is_triggered(&self) -> bool {
        self.flag.load(Ordering::SeqCst) || SIGNAL.load(Ordering::SeqCst)
    }
}

/// Raw signal plumbing. The one place in the workspace that needs FFI:
/// libc is already linked into every Rust binary, so declaring `signal`
/// and `_exit` adds no dependency.
#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    use super::{Ordering, SIGNAL, SIGNAL_SEEN};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn _exit(status: i32) -> !;
    }

    /// Async-signal-safe: two atomic stores, or a direct `_exit` on the
    /// second delivery (the drain is stuck; mimic the default handler's
    /// 128+SIGINT exit status).
    extern "C" fn on_signal(_signum: i32) {
        if SIGNAL_SEEN.swap(true, Ordering::SeqCst) {
            unsafe { _exit(130) };
        }
        SIGNAL.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

/// Install the process-wide `SIGINT`/`SIGTERM` handler (first signal:
/// graceful drain; second: immediate exit with status 130). Only the
/// `twocs serve` binary calls this — library users and tests drive
/// [`ShutdownHandle::trigger`] instead. No-op on non-Unix targets.
pub fn install_signal_handler() {
    #[cfg(unix)]
    sys::install();
}

/// Test hook: reset the process-global signal flag so independent tests
/// do not observe each other's triggers.
#[cfg(test)]
pub(crate) fn reset_signal_flag() {
    SIGNAL.store(false, Ordering::SeqCst);
    SIGNAL_SEEN.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Both tests touch the process-global flag; serialize them so the
    /// parallel test harness cannot interleave their resets.
    static GLOBAL_FLAG: Mutex<()> = Mutex::new(());

    #[test]
    fn handles_trigger_independently() {
        let _guard = GLOBAL_FLAG.lock().unwrap();
        reset_signal_flag();
        let a = ShutdownHandle::new();
        let b = ShutdownHandle::new();
        assert!(!a.is_triggered());
        a.trigger();
        assert!(a.is_triggered());
        assert!(!b.is_triggered(), "handles are per-server");
        let clone = b.clone();
        clone.trigger();
        assert!(b.is_triggered(), "clones share the flag");
    }

    #[test]
    fn signal_flag_reaches_every_handle() {
        let _guard = GLOBAL_FLAG.lock().unwrap();
        reset_signal_flag();
        let h = ShutdownHandle::new();
        assert!(!h.is_triggered());
        SIGNAL.store(true, Ordering::SeqCst);
        assert!(h.is_triggered(), "a delivered signal stops all servers");
        reset_signal_flag();
    }
}
