//! Endpoint implementations over the `twocs-core` generators and
//! `twocs-opmodel` projections.
//!
//! Every handler validates its query aggressively (see
//! [`crate::query`]) before touching a cost model: the models clamp or
//! panic on out-of-range inputs (behavior pinned by tests in
//! `twocs-core::overlapped`), and a query service must turn those cases
//! into `400`s, not misleading numbers or `500`s.
//!
//! Warm-query speed comes from two cache tiers. The existing global
//! memo caches (`gemm_time` in `twocs-hw`, collective `node_time` in
//! `twocs-collectives`, slack-ROI profiles in `twocs-opmodel`) make
//! repeated *configurations* cheap: handlers call the same
//! `comm_fraction` / `overlap_pct` entry points as the CLI. Above them,
//! an optional [`ResponseCache`] memoizes entire rendered bodies keyed
//! by canonicalized queries, so a repeated *request* skips the model
//! entirely. Canonical keys are built **after** validation from the
//! fully-resolved parameters (defaults folded in, body-neutral params
//! like `jobs`/`planner` excluded), which also guarantees only
//! infallible `200` paths are ever cached; the executor-backed sweep
//! path (`twocs serve --listen`) bypasses the cache because its `500`s
//! must never be replayed.

use crate::cache::{KeyBuilder, ResponseCache};
use crate::http::{Request, Response};
use crate::query::Query;
use crate::router::{Route, ENDPOINTS};
use std::sync::Arc;
use twocs_core::overlapped::{overlap_pct, roi_hyper};
use twocs_core::serialized::{comm_fraction, sweep_hyper, Method};
use twocs_core::sweep::{GridSweep, Workload};
use twocs_hw::{DeviceSpec, HwEvolution};
use twocs_obs::chrome::escape_json;
use twocs_transformer::ParallelConfig;

/// Handler-level limits and switches, set by the server configuration.
#[derive(Clone)]
pub struct HandlerConfig {
    /// Maximum grid points one sweep request may evaluate (`400` beyond).
    pub max_grid_points: usize,
    /// Cap on the per-request `jobs` fan-out through the sweep pool.
    pub max_request_jobs: usize,
    /// Whether `/v1/debug/sleep` is enabled (tests and backpressure
    /// drills only).
    pub enable_debug: bool,
    /// Pluggable sweep evaluation substrate for `/v1/sweep` and
    /// `/v1/serialized` (e.g. the distributed coordinator behind
    /// `twocs serve --listen`). `None` evaluates in-process with the
    /// request's `jobs`. Either way the CSV body is byte-identical —
    /// that is the executor contract.
    pub executor: Option<std::sync::Arc<dyn twocs_core::sweep::GridExecutor>>,
    /// Full-body response cache for the projection endpoints. `None`
    /// recomputes every request (benches use this to measure the
    /// engine, `twocs serve --no-response-cache` exposes it).
    pub cache: Option<Arc<ResponseCache>>,
    /// Directory for `/v1/sweep?journal=<name>` journals (`twocs serve
    /// --journal-dir`). `None` rejects journaled requests with a `400`.
    pub journal_dir: Option<std::path::PathBuf>,
}

impl std::fmt::Debug for HandlerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HandlerConfig")
            .field("max_grid_points", &self.max_grid_points)
            .field("max_request_jobs", &self.max_request_jobs)
            .field("enable_debug", &self.enable_debug)
            .field(
                "executor",
                &self
                    .executor
                    .as_deref()
                    .map(twocs_core::sweep::GridExecutor::describe),
            )
            .field("cache", &self.cache.is_some())
            .field("journal_dir", &self.journal_dir)
            .finish()
    }
}

impl Default for HandlerConfig {
    fn default() -> Self {
        Self {
            max_grid_points: 4096,
            max_request_jobs: 8,
            enable_debug: false,
            executor: None,
            cache: None,
            journal_dir: None,
        }
    }
}

/// Dispatch one parsed request to its handler and build the response.
///
/// Infallible by construction: parse/validation failures become `400`s,
/// unknown paths `404`s, non-`GET`/`HEAD` methods `405`s with the
/// RFC-required `Allow` header. (Handler panics are caught one level
/// up, in the worker loop.)
///
/// `HEAD` runs the same handler as `GET` — the wire layer drops the
/// body at serialization time but keeps the full-body `Content-Length`,
/// so a `HEAD` probe sees exactly the headers the `GET` would carry.
#[must_use]
pub fn handle(req: &Request, cfg: &HandlerConfig) -> Response {
    let Some(route) = Route::parse(&req.path) else {
        return Response::error(
            404,
            &format!(
                "no such endpoint `{}`; try {}",
                req.path,
                ENDPOINTS.join(", ")
            ),
        );
    };
    if req.method != "GET" && req.method != "HEAD" {
        return Response::error(
            405,
            &format!("{} is not supported; use GET or HEAD", req.method),
        )
        .with_allow("GET, HEAD");
    }
    let query = match Query::parse(&req.raw_query) {
        Ok(q) => q,
        Err(e) => return Response::error(400, &e),
    };
    let result = match route {
        Route::Serialized | Route::Sweep => sweep_response(&query, cfg),
        Route::Overlapped => overlapped_response(&query, cfg),
        Route::Evolve => evolve_response(&query, cfg),
        Route::Healthz => Ok(Response::json(200, "{\"status\":\"ok\"}")),
        Route::Metrics => metrics_response(&query),
        Route::DebugSleep => debug_sleep_response(&query, cfg),
    };
    result.unwrap_or_else(|e| Response::error(400, &e))
}

/// Output encodings shared by the projection endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Csv,
    Json,
    Ascii,
}

fn parse_format(q: &Query, default: Format) -> Result<Format, String> {
    match q.get("format") {
        None => Ok(default),
        Some("csv") => Ok(Format::Csv),
        Some("json") => Ok(Format::Json),
        Some("ascii") => Ok(Format::Ascii),
        Some(other) => Err(format!("unknown format `{other}` (csv|json|ascii)")),
    }
}

fn parse_method(q: &Query) -> Result<Method, String> {
    match q.get("method") {
        None | Some("sim") => Ok(Method::Simulation),
        Some("proj") => Ok(Method::Projection),
        Some(other) => Err(format!("unknown method `{other}` (sim|proj)")),
    }
}

/// `/v1/serialized` and `/v1/sweep`: the `(H, SL, TP, flop-vs-bw)` grid
/// sweep, evaluated through [`GridSweep`] exactly like `twocs sweep`.
///
/// The default CSV body is **byte-identical to the stdout of the
/// equivalent CLI invocation** (`twocs sweep ... --csv`), which is what
/// the CI smoke test diffs.
fn sweep_response(q: &Query, cfg: &HandlerConfig) -> Result<Response, String> {
    q.reject_unknown(&[
        "h",
        "sl",
        "tp",
        "flop_vs_bw",
        "experts",
        "top_k",
        "stages",
        "micro_batches",
        "sp",
        "workload",
        "b",
        "method",
        "planner",
        "jobs",
        "format",
        "stream",
        "journal",
    ])?;
    let format = parse_format(q, Format::Csv)?;
    // Canonicalization contract: every omitted parameter assigns the same
    // default `GridSweep::default()` (and the CLI) uses, so pre-axis query
    // strings and cached keys keep producing byte-identical bodies.
    let mut grid = GridSweep::default();
    if let Some(hs) = q.u64_list("h")? {
        grid.hs = hs;
    }
    if let Some(sls) = q.u64_list("sl")? {
        grid.sls = sls;
    }
    if let Some(tps) = q.u64_list("tp")? {
        grid.tps = tps;
    }
    if let Some(ratios) = q.f64_list("flop_vs_bw")? {
        grid.flop_vs_bw = ratios;
    }
    if let Some(experts) = q.u64_list("experts")? {
        grid.experts = experts;
    }
    if let Some(top_ks) = q.u64_list("top_k")? {
        grid.top_ks = top_ks;
    }
    if let Some(stages) = q.u64_list("stages")? {
        grid.stages = stages;
    }
    if let Some(micro_batches) = q.u64_list("micro_batches")? {
        grid.micro_batches = micro_batches;
    }
    if let Some(sps) = q.u64_list("sp")? {
        grid.sps = sps;
    }
    if let Some(raw) = q.get("workload") {
        grid.workload = raw.parse::<Workload>()?;
    }
    if let Some(b) = q.u64("b")? {
        grid.batch = b;
    }
    grid.method = parse_method(q)?;
    // Planner choice never changes the body (factored output is
    // bit-identical to naive), only how fast the in-process path
    // evaluates; a custom executor picks its own planner.
    let planner = match q.get("planner") {
        None => twocs_core::PlannerMode::Auto,
        Some(raw) => raw.parse::<twocs_core::PlannerMode>()?,
    };
    // Mirror the CLI's axis validation so bad axes 400 instead of being
    // silently pruned to a smaller grid.
    if let Some(h) = grid.hs.iter().find(|&&h| h == 0 || h % 256 != 0) {
        return Err(format!(
            "h={h}: hidden sizes must be non-zero multiples of 256 (the sweep fixes 256-way head sharding)"
        ));
    }
    if grid.sls.contains(&0) || grid.tps.contains(&0) || grid.batch == 0 {
        return Err("sl, tp, and b values must be non-zero".to_owned());
    }
    if grid.flop_vs_bw.iter().any(|&r| r < 1.0) {
        return Err("flop_vs_bw ratios must be >= 1 (1 = today's hardware)".to_owned());
    }
    if [
        &grid.experts,
        &grid.top_ks,
        &grid.stages,
        &grid.micro_batches,
        &grid.sps,
    ]
    .iter()
    .any(|axis| axis.contains(&0))
    {
        return Err(
            "experts, top_k, stages, micro_batches, and sp values must be non-zero".to_owned(),
        );
    }
    // `points()` prunes top_k > experts pairs; if *no* pair survives the
    // request is contradictory, so answer 400 instead of an empty grid.
    if !grid
        .experts
        .iter()
        .any(|&e| grid.top_ks.iter().any(|&k| k <= e))
    {
        return Err("top_k exceeds experts for every requested combination".to_owned());
    }
    // The discrete-event simulation models the dense TP training
    // iteration only; extended axes and inference workloads need the
    // projection method. The CLI enforces the same rule.
    let extended_axes = grid.experts.iter().any(|&e| e > 1)
        || grid.stages.iter().any(|&s| s > 1)
        || grid.sps.iter().any(|&s| s > 1);
    if grid.method == Method::Simulation && grid.workload != Workload::Training {
        return Err(format!(
            "workload={} requires method=proj (the simulation engine models training only)",
            grid.workload
        ));
    }
    if grid.method == Method::Simulation && extended_axes {
        return Err(
            "experts/stages/sp above 1 require method=proj (the simulation engine models the \
             dense TP iteration only)"
                .to_owned(),
        );
    }
    let points = grid.points().len();
    if points == 0 {
        return Err("grid has no realistic points; widen h/tp".to_owned());
    }
    if points > cfg.max_grid_points {
        return Err(format!(
            "grid has {points} points, above this server's per-request cap of {} — split the query",
            cfg.max_grid_points
        ));
    }
    let jobs = q
        .u64("jobs")?
        .unwrap_or(1)
        .max(1)
        .min(cfg.max_request_jobs as u64) as usize;
    // `stream=1` evaluates through the bounded-memory store path and
    // `journal=<name>` additionally journals chunks durably under the
    // server's `--journal-dir`, resuming if the named journal already
    // exists. The CSV body stays byte-identical to the in-memory path.
    let stream = match q.get("stream") {
        None => false,
        Some("1" | "true") => true,
        Some(other) => return Err(format!("stream={other}: expected stream=1")),
    };
    let journal = q.get("journal");
    if stream || journal.is_some() {
        if format != Format::Csv {
            return Err(
                "stream/journal sweeps render csv only (rows leave memory as they \
                        complete); drop format= or use format=csv"
                    .to_owned(),
            );
        }
        if cfg.executor.is_some() {
            return Err(
                "stream/journal sweeps are not available on an executor-backed \
                        server; use `twocs sweep --listen --journal` for distributed \
                        journaled runs"
                    .to_owned(),
            );
        }
        let journal_path = match journal {
            None => None,
            Some(name) => {
                let dir = cfg
                    .journal_dir
                    .as_ref()
                    .ok_or("journal= requires the server to run with --journal-dir")?;
                if name.is_empty()
                    || name.contains(['/', '\\'])
                    || name.starts_with('.')
                    || !name
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
                {
                    return Err(format!(
                        "journal name `{name}` must be a plain [A-Za-z0-9_-] token \
                         (it names a file under the server's journal dir)"
                    ));
                }
                Some(dir.join(format!("{name}.journal")))
            }
        };
        // Streamed bodies bypass the response cache: the journal file
        // on disk is the durable artifact, and a resumed run must
        // re-render, not replay a stale body.
        return stream_sweep(&grid, journal_path.as_deref(), jobs);
    }
    if let Some(executor) = &cfg.executor {
        // Executor-backed sweeps bypass the response cache: a
        // coordinator failure answers 500 and must never be memoized
        // or replayed as if it were the grid's answer.
        return Ok(
            match grid.run_with(&DeviceSpec::mi210(), executor.as_ref()) {
                Ok(table) => render_sweep(&table, format),
                // An executor failure is the server's problem, not the
                // client's: answer 500, unlike the validation 400s above.
                Err(e) => Response::error(
                    500,
                    &format!("sweep executor `{}` failed: {e}", executor.describe()),
                ),
            },
        );
    }
    // Past this point the request is fully validated and the in-process
    // path is infallible, so the whole rendered body is cacheable.
    let render = || {
        render_sweep(
            &grid.run_mode(&DeviceSpec::mi210(), jobs, planner).0,
            format,
        )
    };
    Ok(match &cfg.cache {
        Some(cache) => cache.get_or_compute(sweep_key(&grid, format), render),
        None => render(),
    })
}

/// Evaluate a sweep through the `twocs-store` streaming path: chunks
/// are journaled (when `journal_path` is given) and rendered in grid
/// order into the response body, with coordinator memory bounded by the
/// store's reorder window instead of the grid. An existing journal at
/// `journal_path` is resumed — only its pending chunks are evaluated —
/// after validating it describes the same grid as the request.
fn stream_sweep(
    grid: &GridSweep,
    journal_path: Option<&std::path::Path>,
    jobs: usize,
) -> Result<Response, String> {
    use std::sync::Mutex;
    use twocs_store::{run_streaming, SweepSpec, SweepStore};

    #[derive(Clone)]
    struct Body(Arc<Mutex<Vec<u8>>>);
    impl std::io::Write for Body {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let device = DeviceSpec::mi210();
    let body = Arc::new(Mutex::new(Vec::new()));
    let out: Box<dyn std::io::Write + Send> = Box::new(Body(body.clone()));
    let mut store = match journal_path {
        Some(path) if path.exists() => {
            let store = SweepStore::resume(path, out)?;
            if store.spec().sweep.fingerprint() != grid.fingerprint() {
                return Err(format!(
                    "journal `{}` was created for a different grid; delete it or use \
                     another journal name",
                    path.display()
                ));
            }
            store
        }
        _ => {
            let spec = SweepSpec {
                sweep: grid.clone(),
                chunk_size: 256,
                device_name: device.name().to_owned(),
                device_fingerprint: device.fingerprint(),
            };
            SweepStore::create(spec, out, journal_path)?
        }
    };
    run_streaming(&device, &mut store, jobs)?;
    store.finish()?;
    let mut bytes = std::mem::take(&mut *body.lock().unwrap());
    // Same trailing newline the in-memory `render_sweep` adds after
    // `to_csv()` — byte-identity between the two paths.
    bytes.push(b'\n');
    let body = String::from_utf8(bytes).map_err(|_| "sweep rendered invalid UTF-8".to_owned())?;
    Ok(Response::csv(200, body))
}

/// Canonical cache key for a fully-resolved sweep request. Built from
/// the [`GridSweep`] itself (not the query string), so omitted params
/// and alternate float spellings collapse to one entry; `jobs` and
/// `planner` are excluded because they cannot change the body.
fn sweep_key(grid: &GridSweep, format: Format) -> String {
    KeyBuilder::new("sweep")
        .field("fmt", format_token(format))
        .field("m", method_token(grid.method))
        .field("w", grid.workload)
        .field("b", grid.batch)
        .u64s("h", &grid.hs)
        .u64s("sl", &grid.sls)
        .u64s("tp", &grid.tps)
        .f64s("r", &grid.flop_vs_bw)
        .u64s("e", &grid.experts)
        .u64s("k", &grid.top_ks)
        .u64s("st", &grid.stages)
        .u64s("mb", &grid.micro_batches)
        .u64s("sp", &grid.sps)
        .finish()
}

fn format_token(format: Format) -> &'static str {
    match format {
        Format::Csv => "csv",
        Format::Json => "json",
        Format::Ascii => "ascii",
    }
}

fn method_token(method: Method) -> &'static str {
    match method {
        Method::Simulation => "sim",
        Method::Projection => "proj",
    }
}

/// Render a sweep table under the requested format. The CSV body is the
/// byte-identity surface CI diffs against the CLI.
fn render_sweep(table: &twocs_core::report::Table, format: Format) -> Response {
    match format {
        // `println!` on the CLI appends one newline after `to_csv()`.
        Format::Csv => Response::csv(200, format!("{}\n", table.to_csv())),
        Format::Ascii => Response::text(200, table.to_ascii()),
        Format::Json => {
            let headers: Vec<String> = table
                .headers
                .iter()
                .map(|h| format!("\"{}\"", escape_json(h)))
                .collect();
            let rows: Vec<String> = table
                .rows
                .iter()
                .map(|row| {
                    let cells: Vec<String> = row
                        .iter()
                        .map(|c| format!("\"{}\"", escape_json(c)))
                        .collect();
                    format!("[{}]", cells.join(","))
                })
                .collect();
            Response::json(
                200,
                format!(
                    "{{\"id\":\"{}\",\"headers\":[{}],\"rows\":[{}]}}",
                    escape_json(&table.id),
                    headers.join(","),
                    rows.join(",")
                ),
            )
        }
    }
}

/// `/v1/overlapped`: the §4.3.5 slack-ROI metric for one configuration.
///
/// `overlap_pct` silently clamps TP to the model's head count, so this
/// handler rejects out-of-range TP explicitly — the service must never
/// label a clamped result with the TP the client asked for.
fn overlapped_response(q: &Query, cfg: &HandlerConfig) -> Result<Response, String> {
    q.reject_unknown(&["h", "slb", "sl", "b", "tp", "dp", "format"])?;
    let format = parse_format(q, Format::Json)?;
    let h = q.u64("h")?.ok_or("`h` (hidden size) is required")?;
    if h == 0 || h % 64 != 0 {
        return Err(format!(
            "h={h}: hidden size must be a non-zero multiple of 64 (head width)"
        ));
    }
    let slb = match (q.u64("slb")?, q.u64("sl")?, q.u64("b")?) {
        (Some(_), Some(_), _) | (Some(_), _, Some(_)) => {
            return Err("give either `slb` or `sl`(+`b`), not both".to_owned())
        }
        (Some(slb), None, None) => slb,
        (None, Some(sl), b) => sl * b.unwrap_or(1),
        (None, None, _) => return Err("`slb` (or `sl` and `b`) is required".to_owned()),
    };
    if slb == 0 {
        return Err("slb must be non-zero".to_owned());
    }
    let tp = q.u64("tp")?.unwrap_or(16);
    let dp = q.u64("dp")?.unwrap_or(4);
    if tp == 0 || dp == 0 {
        return Err("tp and dp must be non-zero".to_owned());
    }
    let heads = roi_hyper(h, slb).heads();
    if tp > heads {
        return Err(format!(
            "tp={tp} exceeds the {heads} attention heads of h={h}; the model cannot shard further"
        ));
    }
    if !heads.is_multiple_of(tp) {
        return Err(format!(
            "tp={tp} must divide the {heads} attention heads of h={h}"
        ));
    }
    // Fully validated; the compute below cannot fail, so it is
    // cacheable. Note `sl`+`b` fold into `slb` before the key: both
    // spellings share one entry.
    let render = || {
        let pct = overlap_pct(&DeviceSpec::mi210(), h, slb, tp, dp);
        match format {
            Format::Json => Response::json(
                200,
                format!(
                    "{{\"h\":{h},\"slb\":{slb},\"tp\":{tp},\"dp\":{dp},\"overlap_pct\":{pct:.2}}}"
                ),
            ),
            Format::Csv => Response::csv(
                200,
                format!("h,slb,tp,dp,overlap_pct\n{h},{slb},{tp},{dp},{pct:.2}\n"),
            ),
            Format::Ascii => Response::text(
                200,
                format!("overlapped communication at H={h} SL*B={slb} TP={tp} DP={dp}: {pct:.2}% of compute\n"),
            ),
        }
    };
    Ok(match &cfg.cache {
        Some(cache) => {
            let key = KeyBuilder::new("overlapped")
                .field("fmt", format_token(format))
                .field("h", h)
                .field("slb", slb)
                .field("tp", tp)
                .field("dp", dp)
                .finish();
            cache.get_or_compute(key, render)
        }
        None => render(),
    })
}

/// `/v1/evolve`: both communication metrics for one configuration on
/// hardware evolved by the given flop-vs-bw ratio (§4.3.6).
fn evolve_response(q: &Query, cfg: &HandlerConfig) -> Result<Response, String> {
    q.reject_unknown(&["flop_vs_bw", "h", "sl", "b", "tp", "method", "format"])?;
    let format = parse_format(q, Format::Json)?;
    let ratio = q
        .f64("flop_vs_bw")?
        .ok_or("`flop_vs_bw` (evolution ratio, 1 = today) is required")?;
    if ratio < 1.0 {
        return Err(format!("flop_vs_bw={ratio} must be >= 1"));
    }
    let h = q.u64("h")?.unwrap_or(16_384);
    let sl = q.u64("sl")?.unwrap_or(2048);
    let b = q.u64("b")?.unwrap_or(1);
    let tp = q.u64("tp")?.unwrap_or(64);
    let method = parse_method(q)?;
    if h == 0 || h % 256 != 0 {
        return Err(format!(
            "h={h}: hidden size must be a non-zero multiple of 256 (256-way head sharding)"
        ));
    }
    if sl == 0 || b == 0 {
        return Err("sl and b must be non-zero".to_owned());
    }
    if tp == 0 || tp > 256 || 256 % tp != 0 {
        return Err(format!(
            "tp={tp} must divide the fixed 256-way head sharding"
        ));
    }
    let render = || {
        let base = DeviceSpec::mi210();
        let device = if ratio > 1.0 {
            HwEvolution::flop_vs_bw(ratio).apply(&base)
        } else {
            base
        };
        let hyper = sweep_hyper(h, sl, b);
        let parallel = ParallelConfig::new().tensor(tp);
        let serialized = 100.0 * comm_fraction(&device, &hyper, &parallel, method);
        let overlap = overlap_pct(&device, h, sl * b, tp.min(roi_hyper(h, sl * b).heads()), 4);
        let method_name = method_token(method);
        match format {
            Format::Json => Response::json(
                200,
                format!(
                    "{{\"flop_vs_bw\":{ratio},\"device\":\"{}\",\"h\":{h},\"sl\":{sl},\"b\":{b},\"tp\":{tp},\"method\":\"{method_name}\",\"serialized_pct\":{serialized:.2},\"overlap_pct\":{overlap:.2}}}",
                    escape_json(device.name()),
                ),
            ),
            Format::Csv => Response::csv(
                200,
                format!(
                    "flop_vs_bw,h,sl,b,tp,method,serialized_pct,overlap_pct\n{ratio},{h},{sl},{b},{tp},{method_name},{serialized:.2},{overlap:.2}\n"
                ),
            ),
            Format::Ascii => Response::text(
                200,
                format!(
                    "on {} (flop-vs-bw x{ratio}): serialized {serialized:.2}% of training, overlapped {overlap:.2}% of compute\n",
                    device.name()
                ),
            ),
        }
    };
    Ok(match &cfg.cache {
        Some(cache) => {
            let key = KeyBuilder::new("evolve")
                .field("fmt", format_token(format))
                .field("m", method_token(method))
                .f64("r", ratio)
                .field("h", h)
                .field("sl", sl)
                .field("b", b)
                .field("tp", tp)
                .finish();
            cache.get_or_compute(key, render)
        }
        None => render(),
    })
}

/// `/v1/metrics`: the process-wide `twocs-obs` registry — request
/// counters, latency histograms, queue depths, and the memo-cache hit
/// rates that explain warm-query speed.
fn metrics_response(q: &Query) -> Result<Response, String> {
    q.reject_unknown(&["format"])?;
    Ok(match parse_format(q, Format::Ascii)? {
        Format::Json => Response::json(200, twocs_obs::metrics::global().to_json()),
        _ => Response::text(200, format!("{}\n", twocs_obs::metrics::global().summary())),
    })
}

/// `/v1/debug/sleep?ms=N`: hold a worker busy for `ms` (capped at 10 s).
/// Only available when the server enables debug endpoints; exists so
/// tests can fill the accept queue deterministically and observe `503`s.
fn debug_sleep_response(q: &Query, cfg: &HandlerConfig) -> Result<Response, String> {
    if !cfg.enable_debug {
        return Ok(Response::error(
            404,
            &format!(
                "no such endpoint `/v1/debug/sleep`; try {}",
                ENDPOINTS.join(", ")
            ),
        ));
    }
    q.reject_unknown(&["ms"])?;
    let ms = q.u64("ms")?.unwrap_or(100).min(10_000);
    std::thread::sleep(std::time::Duration::from_millis(ms));
    Ok(Response::json(200, format!("{{\"slept_ms\":{ms}}}")))
}

/// Sanity hook used by tests: every status this module emits has a
/// reason phrase.
#[cfg(test)]
fn emitted_statuses() -> [u16; 5] {
    [200, 400, 404, 405, 503]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::reason;

    fn get(path: &str, raw_query: &str) -> Request {
        Request::get(path, raw_query)
    }

    fn cfg() -> HandlerConfig {
        HandlerConfig::default()
    }

    /// A config with its own detached response cache (not the global
    /// registry), so cache assertions are isolated per test.
    fn cached_cfg() -> HandlerConfig {
        HandlerConfig {
            cache: Some(Arc::new(ResponseCache::detached())),
            ..HandlerConfig::default()
        }
    }

    #[test]
    fn healthz_is_static_json() {
        let r = handle(&get("/v1/healthz", ""), &cfg());
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "{\"status\":\"ok\"}");
    }

    #[test]
    fn unknown_path_is_404_with_endpoint_list() {
        let r = handle(&get("/v1/nope", ""), &cfg());
        assert_eq!(r.status, 404);
        assert!(r.body.contains("/v1/serialized"), "{}", r.body);
        assert!(twocs_obs::json::validate(&r.body).is_ok());
    }

    #[test]
    fn non_get_is_405_with_allow_header() {
        let mut req = get("/v1/healthz", "");
        req.method = "POST".to_owned();
        let r = handle(&req, &cfg());
        assert_eq!(r.status, 405);
        assert_eq!(r.allow, Some("GET, HEAD"));
        assert!(r.body.contains("use GET or HEAD"), "{}", r.body);
    }

    #[test]
    fn head_runs_the_get_handler() {
        let mut req = get("/v1/healthz", "");
        req.method = "HEAD".to_owned();
        let r = handle(&req, &cfg());
        assert_eq!(r.status, 200);
        // The handler produces the full body; the wire layer is what
        // drops it while keeping the GET-identical Content-Length.
        assert_eq!(r.body, "{\"status\":\"ok\"}");
    }

    #[test]
    fn cache_key_canonicalization_folds_query_spellings() {
        // Two spellings of the same sweep — omitted axis params vs.
        // explicit defaults, `1` vs. `1.0` floats — must share one
        // cache entry, while a genuinely different grid must not.
        let cfg = cached_cfg();
        let a = handle(
            &get("/v1/sweep", "h=4096&tp=16,32&flop_vs_bw=1,2&method=proj"),
            &cfg,
        );
        assert_eq!(a.status, 200, "{}", a.body);
        let b = handle(
            &get(
                "/v1/sweep",
                "h=4096&tp=16,32&flop_vs_bw=1.0,2.000&method=proj&experts=1&top_k=1&stages=1&micro_batches=1&sp=1&workload=training&b=1&jobs=4&planner=factored",
            ),
            &cfg,
        );
        assert_eq!(a.body, b.body);
        let stats = cfg.cache.as_ref().unwrap().stats();
        assert_eq!(
            (stats.misses, stats.hits, stats.entries),
            (1, 1, 1),
            "same canonical query must compute once and hit once"
        );
        let c = handle(
            &get("/v1/sweep", "h=4096&tp=32,16&flop_vs_bw=1,2&method=proj"),
            &cfg,
        );
        assert_eq!(c.status, 200, "{}", c.body);
        assert_ne!(c.body, a.body, "axis order changes row order");
        assert_eq!(cfg.cache.as_ref().unwrap().stats().entries, 2);
    }

    #[test]
    fn overlapped_cache_folds_sl_b_into_slb() {
        let cfg = cached_cfg();
        let a = handle(&get("/v1/overlapped", "h=4096&slb=2048&tp=16&dp=4"), &cfg);
        let b = handle(
            &get("/v1/overlapped", "h=4096&sl=1024&b=2&tp=16&dp=4"),
            &cfg,
        );
        assert_eq!(a.status, 200, "{}", a.body);
        assert_eq!(a.body, b.body);
        let stats = cfg.cache.as_ref().unwrap().stats();
        assert_eq!((stats.misses, stats.hits, stats.entries), (1, 1, 1));
    }

    #[test]
    fn cached_and_uncached_bodies_are_identical() {
        for q in [
            ("/v1/sweep", "h=4096&tp=16&flop_vs_bw=1,4&method=proj"),
            ("/v1/overlapped", "h=4096&slb=2048&tp=16&dp=4"),
            ("/v1/evolve", "flop_vs_bw=4&h=4096&tp=16&method=proj"),
        ] {
            let cold = handle(&get(q.0, q.1), &cfg());
            let cached = cached_cfg();
            let first = handle(&get(q.0, q.1), &cached);
            let warm = handle(&get(q.0, q.1), &cached);
            assert_eq!(cold.body, first.body, "{}", q.0);
            assert_eq!(cold.body, warm.body, "{}", q.0);
            assert_eq!(cold.content_type, warm.content_type, "{}", q.0);
        }
    }

    #[test]
    fn validation_errors_never_reach_the_cache() {
        let cfg = cached_cfg();
        for q in ["h=1000", "tp=0", "flop_vs_bw=0.5"] {
            assert_eq!(handle(&get("/v1/sweep", q), &cfg).status, 400);
        }
        let stats = cfg.cache.as_ref().unwrap().stats();
        assert_eq!((stats.misses, stats.entries), (0, 0), "400s are not cached");
    }

    #[test]
    fn sweep_csv_matches_the_grid_sweep_engine() {
        let r = handle(
            &get(
                "/v1/serialized",
                "h=4096&tp=16,32&flop_vs_bw=1,2&method=proj",
            ),
            &cfg(),
        );
        assert_eq!(r.status, 200, "{}", r.body);
        let grid = GridSweep {
            hs: vec![4096],
            tps: vec![16, 32],
            flop_vs_bw: vec![1.0, 2.0],
            batch: 1,
            method: Method::Projection,
            ..GridSweep::default()
        };
        let expected = format!("{}\n", grid.run(&DeviceSpec::mi210(), 1).0.to_csv());
        assert_eq!(r.body, expected);
        // The alias endpoint answers identically.
        let alias = handle(
            &get("/v1/sweep", "h=4096&tp=16,32&flop_vs_bw=1,2&method=proj"),
            &cfg(),
        );
        assert_eq!(alias.body, r.body);
    }

    #[test]
    fn sweep_planner_param_does_not_change_the_body() {
        let base = "h=4096&tp=16,32&flop_vs_bw=1,2&method=proj";
        let naive = handle(&get("/v1/sweep", &format!("{base}&planner=naive")), &cfg());
        let factored = handle(
            &get("/v1/sweep", &format!("{base}&planner=factored")),
            &cfg(),
        );
        let auto = handle(&get("/v1/sweep", base), &cfg());
        assert_eq!(naive.status, 200, "{}", naive.body);
        assert_eq!(naive.body, factored.body);
        assert_eq!(naive.body, auto.body);
    }

    #[test]
    fn sweep_rejects_bad_axes_with_400() {
        for q in [
            "h=1000",                   // not a multiple of 256
            "h=0",                      // zero
            "tp=0",                     // zero axis value
            "flop_vs_bw=0.5",           // sub-1 ratio
            "method=magic",             // unknown method
            "planner=warp",             // unknown planner
            "hs=4096",                  // unknown parameter (typo)
            "h=4096&h=8192",            // duplicate key
            "h=65536&tp=4&method=proj", // unrealistic grid -> empty
        ] {
            let r = handle(&get("/v1/sweep", q), &cfg());
            assert_eq!(r.status, 400, "query `{q}` body {}", r.body);
            assert!(twocs_obs::json::validate(&r.body).is_ok(), "query `{q}`");
        }
    }

    #[test]
    fn sweep_rejects_contradictory_axis_params_with_400() {
        for (q, needle) in [
            ("stages=0&method=proj", "must be non-zero"),
            ("experts=0&method=proj", "must be non-zero"),
            ("sp=0&method=proj", "must be non-zero"),
            (
                "experts=2&top_k=4&method=proj",
                "top_k exceeds experts for every requested combination",
            ),
            // Default method is sim — training-only — so an inference
            // workload without method=proj is contradictory.
            ("workload=decode", "requires method=proj"),
            ("workload=prefill&method=sim", "requires method=proj"),
            ("experts=8&top_k=2&method=sim", "require method=proj"),
            ("stages=4", "require method=proj"),
            ("sp=2&method=sim", "require method=proj"),
            ("workload=banana&method=proj", "unknown workload"),
        ] {
            let r = handle(&get("/v1/sweep", q), &cfg());
            assert_eq!(r.status, 400, "query `{q}` body {}", r.body);
            assert!(r.body.contains(needle), "query `{q}` body {}", r.body);
        }
    }

    /// Regression: omitting the new axis/workload params must answer the
    /// exact bytes a pre-axis query string produced — omitted params fold
    /// to their defaults, not to a differently-shaped grid.
    #[test]
    fn omitted_axis_params_canonicalize_to_defaults() {
        let legacy = handle(
            &get("/v1/sweep", "h=4096&tp=16,32&flop_vs_bw=1,2&method=proj"),
            &cfg(),
        );
        let explicit = handle(
            &get(
                "/v1/sweep",
                "h=4096&tp=16,32&flop_vs_bw=1,2&method=proj&experts=1&top_k=1&stages=1&micro_batches=1&sp=1&workload=training",
            ),
            &cfg(),
        );
        assert_eq!(legacy.status, 200, "{}", legacy.body);
        assert_eq!(explicit.status, 200, "{}", explicit.body);
        assert_eq!(legacy.body, explicit.body);
        // And the legacy body keeps the pre-axis 6-column header.
        assert!(
            legacy
                .body
                .starts_with("H,SL,TP,flop_vs_bw,serialized_pct,overlap_pct"),
            "{}",
            legacy.body
        );
    }

    #[test]
    fn sweep_with_extended_axes_matches_the_engine() {
        let r = handle(
            &get(
                "/v1/sweep",
                "h=4096&tp=16&flop_vs_bw=1,4&experts=1,8&top_k=1&stages=1,2&workload=prefill&method=proj",
            ),
            &cfg(),
        );
        assert_eq!(r.status, 200, "{}", r.body);
        let grid = GridSweep {
            hs: vec![4096],
            tps: vec![16],
            flop_vs_bw: vec![1.0, 4.0],
            experts: vec![1, 8],
            top_ks: vec![1],
            stages: vec![1, 2],
            workload: Workload::Prefill,
            batch: 1,
            method: Method::Projection,
            ..GridSweep::default()
        };
        let expected = format!("{}\n", grid.run(&DeviceSpec::mi210(), 1).0.to_csv());
        assert_eq!(r.body, expected);
        assert!(r.body.contains("experts"), "{}", r.body);
    }

    #[test]
    fn sweep_enforces_the_grid_point_cap() {
        let small = HandlerConfig {
            max_grid_points: 2,
            ..HandlerConfig::default()
        };
        let r = handle(&get("/v1/sweep", "h=4096&tp=16,32&method=proj"), &small);
        assert_eq!(r.status, 400, "{}", r.body);
        assert!(r.body.contains("per-request cap"), "{}", r.body);
    }

    #[test]
    fn overlapped_answers_json_with_validated_tp() {
        let r = handle(&get("/v1/overlapped", "h=4096&slb=2048&tp=16&dp=4"), &cfg());
        assert_eq!(r.status, 200, "{}", r.body);
        assert!(twocs_obs::json::validate(&r.body).is_ok());
        let expected = overlap_pct(&DeviceSpec::mi210(), 4096, 2048, 16, 4);
        assert!(
            r.body.contains(&format!("\"overlap_pct\":{expected:.2}")),
            "{}",
            r.body
        );
    }

    #[test]
    fn overlapped_rejects_out_of_range_tp_instead_of_clamping() {
        // H=1024 has 16 heads; the library would silently clamp TP=256.
        let r = handle(&get("/v1/overlapped", "h=1024&slb=2048&tp=256"), &cfg());
        assert_eq!(r.status, 400, "{}", r.body);
        assert!(r.body.contains("cannot shard further"), "{}", r.body);
        // And SL*B = 0 is a 400, not a panic-500.
        let r = handle(&get("/v1/overlapped", "h=4096&slb=0"), &cfg());
        assert_eq!(r.status, 400, "{}", r.body);
    }

    #[test]
    fn evolve_reports_both_metrics_on_evolved_hardware() {
        let r = handle(
            &get("/v1/evolve", "flop_vs_bw=4&h=4096&tp=16&method=proj"),
            &cfg(),
        );
        assert_eq!(r.status, 200, "{}", r.body);
        assert!(twocs_obs::json::validate(&r.body).is_ok());
        assert!(r.body.contains("\"serialized_pct\":"), "{}", r.body);
        assert!(r.body.contains("\"overlap_pct\":"), "{}", r.body);
        let bad = handle(&get("/v1/evolve", "flop_vs_bw=0.25"), &cfg());
        assert_eq!(bad.status, 400);
    }

    #[test]
    fn metrics_renders_text_and_json() {
        let text = handle(&get("/v1/metrics", ""), &cfg());
        assert_eq!(text.status, 200);
        assert!(text.body.starts_with("metrics:"));
        let json = handle(&get("/v1/metrics", "format=json"), &cfg());
        assert!(twocs_obs::json::validate(&json.body).is_ok());
    }

    #[test]
    fn debug_sleep_is_gated() {
        let off = handle(&get("/v1/debug/sleep", "ms=1"), &cfg());
        assert_eq!(off.status, 404);
        let on = HandlerConfig {
            enable_debug: true,
            ..HandlerConfig::default()
        };
        let r = handle(&get("/v1/debug/sleep", "ms=1"), &on);
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "{\"slept_ms\":1}");
    }

    #[test]
    fn every_emitted_status_has_a_reason_phrase() {
        for s in emitted_statuses() {
            assert_ne!(reason(s), "Unknown", "status {s}");
        }
    }
}
