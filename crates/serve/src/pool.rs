//! A bounded MPMC handoff queue between the accept loop and the request
//! workers.
//!
//! The queue is the server's backpressure mechanism: when it is full the
//! accept loop answers `503` immediately instead of letting connections
//! pile up unboundedly behind slow requests. Built on `Mutex` +
//! `Condvar` (std-only, like everything in this workspace); the fast
//! path is one uncontended lock either side.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use twocs_obs::metrics::Gauge;

/// A bounded queue: `try_push` never blocks, `pop` blocks until an item
/// arrives or the queue is closed and drained.
#[derive(Debug)]
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    cap: usize,
    /// Published depth, updated under the lock on **both** push and pop
    /// so the gauge can never lag behind the queue or fail to fall back
    /// to zero as workers drain it.
    depth: Option<Gauge>,
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> Bounded<T> {
    /// A queue holding at most `cap` items (`cap` is clamped to ≥ 1 — a
    /// zero-capacity queue would reject everything).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(cap),
                closed: false,
            }),
            ready: Condvar::new(),
            cap,
            depth: None,
        }
    }

    /// Like [`Bounded::new`], but mirroring the live depth into `depth`
    /// on every push **and** pop (the server publishes this as
    /// `serve.queue_depth`).
    #[must_use]
    pub fn with_gauge(cap: usize, depth: Gauge) -> Self {
        depth.set(0.0);
        Self {
            depth: Some(depth),
            ..Self::new(cap)
        }
    }

    /// Enqueue without blocking. Returns the item back when the queue is
    /// full or closed — the caller turns that into a `503`.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("serve queue poisoned");
        if inner.closed || inner.items.len() >= self.cap {
            return Err(item);
        }
        inner.items.push_back(item);
        if let Some(depth) = &self.depth {
            depth.set(inner.items.len() as f64);
        }
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeue, blocking until an item is available. Returns `None` once
    /// the queue is closed **and** drained — the worker-loop exit signal,
    /// which is what lets in-flight requests finish during shutdown.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("serve queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                if let Some(depth) = &self.depth {
                    depth.set(inner.items.len() as f64);
                }
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("serve queue poisoned");
        }
    }

    /// Close the queue: future `try_push`es fail, `pop` drains what is
    /// left and then returns `None` to every waiter.
    pub fn close(&self) {
        self.inner.lock().expect("serve queue poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Current number of queued items (racy by nature; metrics only).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("serve queue poisoned").items.len()
    }

    /// Whether the queue is currently empty (racy by nature).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_is_fifo() {
        let q = Bounded::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = Bounded::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q = Bounded::new(0);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(2));
    }

    #[test]
    fn depth_gauge_tracks_push_and_pop() {
        // Regression: the gauge used to be set only before push in the
        // accept loop, so it lagged by one and never decreased as
        // workers drained the queue.
        let gauge = Gauge::detached();
        let q = Bounded::with_gauge(4, gauge.clone());
        assert_eq!(gauge.get(), 0.0);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(gauge.get(), 2.0, "gauge rises with pushes");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(gauge.get(), 1.0, "gauge falls on pop");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(gauge.get(), 0.0, "gauge returns to zero when drained");
        // And the registry-published variant round-trips through
        // to_json, as the satellite asks.
        let registry = twocs_obs::metrics::MetricsRegistry::new();
        let q = Bounded::with_gauge(4, registry.gauge("serve.queue_depth"));
        q.try_push(9).unwrap();
        assert!(registry.to_json().contains("\"serve.queue_depth\":1"));
        q.pop();
        assert!(registry.to_json().contains("\"serve.queue_depth\":0"));
    }

    #[test]
    fn close_drains_then_wakes_all_waiters() {
        let q: Arc<Bounded<u32>> = Arc::new(Bounded::new(4));
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err(8), "closed queue rejects pushes");
        assert_eq!(q.pop(), Some(7), "close still drains queued items");
        assert_eq!(q.pop(), None);
        // Blocked poppers wake up with `None` rather than hanging.
        let q2: Arc<Bounded<u32>> = Arc::new(Bounded::new(1));
        let waiter = {
            let q2 = Arc::clone(&q2);
            std::thread::spawn(move || q2.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q2.close();
        assert_eq!(waiter.join().unwrap(), None);
    }
}
