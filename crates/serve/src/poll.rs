//! Readiness polling for the keep-alive front end: a thin, std-only
//! wrapper over `poll(2)` plus a pipe-based [`Waker`].
//!
//! The event loop in [`crate::Server::run`] multiplexes one listener and
//! hundreds of nonblocking connections on a single thread. It needs two
//! primitives the standard library does not expose:
//!
//! * **readiness** — "which of these sockets can make progress?" —
//!   provided by the POSIX `poll(2)` syscall (no `epoll`/`kqueue`
//!   dependency, so the same three-symbol FFI works on every Unix);
//! * **wakeups** — request workers finish responses on other threads and
//!   must interrupt a sleeping `poll` so the response is written
//!   immediately instead of on the next tick — provided by the classic
//!   self-pipe trick: the read end sits in every poll set, and
//!   [`Waker::wake`] writes one byte to the write end.
//!
//! Like `shutdown.rs`, the FFI declares the handful of libc symbols it
//! needs directly (libc is already linked into every Rust binary), and
//! all `unsafe` stays inside the `sys` module. On non-Unix targets the
//! module degrades to a short-sleep level-triggered emulation: every
//! registered source is reported ready and the caller's `WouldBlock`
//! handling does the filtering — correct, just less efficient.

use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// What one connection wants from the next poll round.
#[derive(Debug, Clone, Copy, Default)]
pub struct Interest {
    /// Wake when the socket has bytes to read (or EOF/err to report).
    pub read: bool,
    /// Wake when the socket can accept more written bytes.
    pub write: bool,
}

/// One pollable connection: an opaque token the caller uses to find its
/// state, plus the socket's interest set. Construct via
/// [`Source::new`] so the raw-fd extraction stays inside this module.
#[derive(Debug)]
pub struct Source {
    /// Caller-chosen identifier, echoed back in [`Event`].
    pub token: u64,
    /// What to wait for.
    pub interest: Interest,
    #[cfg(unix)]
    fd: i32,
}

impl Source {
    /// Register `stream` under `token` with the given interest.
    #[must_use]
    pub fn new(token: u64, stream: &TcpStream, interest: Interest) -> Self {
        #[cfg(unix)]
        {
            use std::os::fd::AsRawFd;
            Self {
                token,
                interest,
                fd: stream.as_raw_fd(),
            }
        }
        #[cfg(not(unix))]
        {
            let _ = stream;
            Self { token, interest }
        }
    }
}

/// Readiness of one [`Source`] after a poll round.
#[derive(Debug, Clone, Copy, Default)]
pub struct Event {
    /// Token of the source this event describes.
    pub token: u64,
    /// Reading can make progress.
    pub readable: bool,
    /// Writing can make progress.
    pub writable: bool,
    /// The peer hung up or the socket errored; the connection is dead.
    pub hangup: bool,
}

/// Everything one poll round observed.
#[derive(Debug, Default)]
pub struct WaitResult {
    /// The listener has at least one pending connection to accept.
    pub listener_ready: bool,
    /// Per-connection readiness (only sources with any readiness).
    pub events: Vec<Event>,
}

/// A readiness poller owning the self-pipe used for cross-thread wakes.
#[derive(Debug)]
pub struct Poller {
    #[cfg(unix)]
    pipe: sys::Pipe,
}

/// Cross-thread wake handle for a [`Poller`]; cheap to clone and send to
/// request workers. On non-Unix targets wakes are no-ops (the emulated
/// poll sleeps at most a few milliseconds anyway).
#[derive(Debug, Clone)]
pub struct Waker {
    #[cfg(unix)]
    write_fd: i32,
}

impl Waker {
    /// Interrupt the poller's current (or next) wait.
    pub fn wake(&self) {
        #[cfg(unix)]
        sys::wake(self.write_fd);
    }
}

impl Poller {
    /// Create a poller (and, on Unix, its wake pipe).
    pub fn new() -> std::io::Result<Self> {
        #[cfg(unix)]
        {
            Ok(Self {
                pipe: sys::Pipe::new()?,
            })
        }
        #[cfg(not(unix))]
        {
            Ok(Self {})
        }
    }

    /// A handle that wakes this poller from other threads.
    #[must_use]
    pub fn waker(&self) -> Waker {
        #[cfg(unix)]
        {
            Waker {
                write_fd: self.pipe.write_fd(),
            }
        }
        #[cfg(not(unix))]
        {
            Waker {}
        }
    }

    /// Wait until the listener, any source, or the waker is ready, or
    /// `timeout` elapses. Wake bytes are drained internally; a wake
    /// simply makes `wait` return early with whatever else is ready.
    pub fn wait(
        &self,
        listener: Option<&TcpListener>,
        sources: &[Source],
        timeout: Duration,
    ) -> std::io::Result<WaitResult> {
        #[cfg(unix)]
        {
            self.wait_unix(listener, sources, timeout)
        }
        #[cfg(not(unix))]
        {
            // Level-triggered emulation: sleep briefly, then report every
            // source ready for whatever it asked; spurious readiness is
            // filtered by the caller's WouldBlock handling.
            std::thread::sleep(timeout.min(Duration::from_millis(2)));
            Ok(WaitResult {
                listener_ready: listener.is_some(),
                events: sources
                    .iter()
                    .filter(|s| s.interest.read || s.interest.write)
                    .map(|s| Event {
                        token: s.token,
                        readable: s.interest.read,
                        writable: s.interest.write,
                        hangup: false,
                    })
                    .collect(),
            })
        }
    }

    #[cfg(unix)]
    fn wait_unix(
        &self,
        listener: Option<&TcpListener>,
        sources: &[Source],
        timeout: Duration,
    ) -> std::io::Result<WaitResult> {
        use std::os::fd::AsRawFd;
        let mut fds: Vec<sys::PollFd> = Vec::with_capacity(sources.len() + 2);
        fds.push(sys::PollFd::reading(self.pipe.read_fd()));
        let listener_slot = listener.map(|l| {
            fds.push(sys::PollFd::reading(l.as_raw_fd()));
            fds.len() - 1
        });
        let first_source = fds.len();
        for s in sources {
            fds.push(sys::PollFd::interest(s.fd, s.interest));
        }
        let n = sys::wait(&mut fds, timeout)?;
        let mut out = WaitResult::default();
        if n == 0 {
            return Ok(out);
        }
        if fds[0].readable() {
            sys::drain(self.pipe.read_fd());
        }
        if let Some(i) = listener_slot {
            out.listener_ready = fds[i].readable();
        }
        for (fd, s) in fds[first_source..].iter().zip(sources) {
            let ev = Event {
                token: s.token,
                readable: fd.readable(),
                writable: fd.writable(),
                hangup: fd.hangup(),
            };
            if ev.readable || ev.writable || ev.hangup {
                out.events.push(ev);
            }
        }
        Ok(out)
    }
}

/// Raw `poll(2)`/`pipe(2)` plumbing — the crate's only `unsafe` besides
/// the signal hook in `shutdown.rs`. Everything here is POSIX-portable:
/// the `pollfd` layout and event bits are identical across Linux, macOS,
/// and the BSDs.
#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    use super::Interest;
    use std::time::Duration;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    /// `nfds_t` is `unsigned long` on Linux and `unsigned int` on the
    /// BSD family; pick per target so the ABI matches.
    #[cfg(target_os = "linux")]
    type NFds = std::ffi::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type NFds = std::ffi::c_uint;

    /// The POSIX `struct pollfd`.
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    impl PollFd {
        pub fn reading(fd: i32) -> Self {
            Self {
                fd,
                events: POLLIN,
                revents: 0,
            }
        }

        pub fn interest(fd: i32, interest: Interest) -> Self {
            let mut events = 0;
            if interest.read {
                events |= POLLIN;
            }
            if interest.write {
                events |= POLLOUT;
            }
            Self {
                fd,
                events,
                revents: 0,
            }
        }

        pub fn readable(&self) -> bool {
            self.revents & POLLIN != 0
        }

        pub fn writable(&self) -> bool {
            self.revents & POLLOUT != 0
        }

        pub fn hangup(&self) -> bool {
            self.revents & (POLLERR | POLLHUP | POLLNVAL) != 0
        }
    }

    unsafe extern "C" {
        fn poll(fds: *mut PollFd, nfds: NFds, timeout: i32) -> i32;
        fn pipe(fds: *mut i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    /// Wait on `fds` for up to `timeout`. `Ok(0)` on timeout or EINTR
    /// (the caller's loop re-evaluates deadlines either way).
    pub fn wait(fds: &mut [PollFd], timeout: Duration) -> std::io::Result<i32> {
        let ms = i32::try_from(timeout.as_millis())
            .unwrap_or(i32::MAX)
            .max(0);
        let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as NFds, ms) };
        if n < 0 {
            let err = std::io::Error::last_os_error();
            if err.kind() == std::io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n)
    }

    /// The self-pipe; both ends closed on drop.
    #[derive(Debug)]
    pub struct Pipe {
        fds: [i32; 2],
    }

    impl Pipe {
        pub fn new() -> std::io::Result<Self> {
            let mut fds = [0i32; 2];
            if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(Self { fds })
        }

        pub fn read_fd(&self) -> i32 {
            self.fds[0]
        }

        pub fn write_fd(&self) -> i32 {
            self.fds[1]
        }
    }

    impl Drop for Pipe {
        fn drop(&mut self) {
            unsafe {
                close(self.fds[0]);
                close(self.fds[1]);
            }
        }
    }

    /// One wake = one byte. The pipe is blocking, but a write only
    /// blocks when ~64 KiB of wakes are already queued — impossible
    /// while the poller drains every round — so no `fcntl` is needed.
    pub fn wake(write_fd: i32) {
        let byte = [1u8];
        let _ = unsafe { write(write_fd, byte.as_ptr(), 1) };
    }

    /// Swallow queued wake bytes. One bounded read per poll round: if
    /// more wakes are pending the pipe stays readable and the next
    /// round returns immediately, so nothing is lost.
    pub fn drain(read_fd: i32) {
        let mut buf = [0u8; 256];
        let _ = unsafe { read(read_fd, buf.as_mut_ptr(), buf.len()) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::time::Instant;

    #[test]
    fn timeout_expires_when_nothing_is_ready() {
        let poller = Poller::new().unwrap();
        let start = Instant::now();
        let result = poller
            .wait(None, &[], Duration::from_millis(30))
            .expect("poll");
        assert!(!result.listener_ready);
        assert!(result.events.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn waker_interrupts_the_wait() {
        let poller = Poller::new().unwrap();
        let waker = poller.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waker.wake();
        });
        let start = Instant::now();
        // Without the wake this would sleep the full 5 s.
        let result = poller
            .wait(None, &[], Duration::from_secs(5))
            .expect("poll");
        assert!(result.events.is_empty());
        assert!(
            start.elapsed() < Duration::from_secs(4),
            "wake must interrupt the wait"
        );
        handle.join().unwrap();
    }

    #[test]
    fn listener_and_connection_readiness_are_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let result = poller
            .wait(Some(&listener), &[], Duration::from_secs(2))
            .expect("poll");
        assert!(result.listener_ready, "pending accept must be visible");
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        // Nothing sent yet: the connection polls writable but not
        // readable.
        let sources = [Source::new(
            7,
            &server_side,
            Interest {
                read: true,
                write: true,
            },
        )];
        let result = poller
            .wait(Some(&listener), &sources, Duration::from_secs(2))
            .expect("poll");
        let ev = result.events.iter().find(|e| e.token == 7).expect("event");
        assert!(ev.writable);
        // After the client writes, it polls readable too.
        client.write_all(b"hello").unwrap();
        let sources = [Source::new(
            7,
            &server_side,
            Interest {
                read: true,
                write: false,
            },
        )];
        let result = poller
            .wait(None, &sources, Duration::from_secs(2))
            .expect("poll");
        let ev = result.events.iter().find(|e| e.token == 7).expect("event");
        assert!(ev.readable, "client bytes must wake the read interest");
    }
}
