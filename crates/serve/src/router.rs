//! Path → endpoint dispatch.

/// The endpoints `twocs serve` answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `/v1/serialized` — serialized-communication sweep (CSV identical
    /// to `twocs sweep --csv` over the same axes).
    Serialized,
    /// `/v1/overlapped` — overlapped-communication ROI for one
    /// configuration.
    Overlapped,
    /// `/v1/evolve` — both metrics for one configuration on
    /// flop-vs-bw-evolved hardware.
    Evolve,
    /// `/v1/sweep` — alias for [`Route::Serialized`] (the full grid
    /// sweep).
    Sweep,
    /// `/v1/healthz` — liveness probe.
    Healthz,
    /// `/v1/metrics` — the `twocs-obs` metrics registry.
    Metrics,
    /// `/v1/debug/sleep` — test-only stall endpoint (enabled by the
    /// server's debug flag; used to exercise backpressure).
    DebugSleep,
}

/// Every public endpoint path, for the 404 body and docs.
pub const ENDPOINTS: [&str; 6] = [
    "/v1/serialized",
    "/v1/overlapped",
    "/v1/evolve",
    "/v1/sweep",
    "/v1/healthz",
    "/v1/metrics",
];

impl Route {
    /// Resolve a request path. Trailing slashes are tolerated
    /// (`/v1/healthz/` ≡ `/v1/healthz`); anything else is `None` (404).
    #[must_use]
    pub fn parse(path: &str) -> Option<Self> {
        match path.trim_end_matches('/') {
            "/v1/serialized" => Some(Route::Serialized),
            "/v1/overlapped" => Some(Route::Overlapped),
            "/v1/evolve" => Some(Route::Evolve),
            "/v1/sweep" => Some(Route::Sweep),
            "/v1/healthz" => Some(Route::Healthz),
            "/v1/metrics" => Some(Route::Metrics),
            "/v1/debug/sleep" => Some(Route::DebugSleep),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_paths_resolve() {
        assert_eq!(Route::parse("/v1/serialized"), Some(Route::Serialized));
        assert_eq!(Route::parse("/v1/sweep/"), Some(Route::Sweep));
        assert_eq!(Route::parse("/v1/healthz"), Some(Route::Healthz));
        assert_eq!(Route::parse("/v1/debug/sleep"), Some(Route::DebugSleep));
    }

    #[test]
    fn unknown_paths_are_none() {
        assert_eq!(Route::parse("/"), None);
        assert_eq!(Route::parse("/v1"), None);
        assert_eq!(Route::parse("/v2/serialized"), None);
        assert_eq!(Route::parse("/v1/serialized/extra"), None);
    }

    #[test]
    fn endpoint_list_covers_public_routes() {
        for e in ENDPOINTS {
            assert!(Route::parse(e).is_some(), "{e}");
        }
    }
}
