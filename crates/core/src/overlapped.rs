//! Overlapped-communication (slack) analysis (paper §4.3.5, Figure 11).
//!
//! The paper's ROI methodology: extract the backward FC GEMM pair and the
//! data-parallel gradient all-reduce it must hide, execute only those in
//! isolation, and report communication as a percentage of the compute it
//! overlaps with. ≥100% means the communication cannot be hidden.

use crate::report::{Figure, Series};
use twocs_hw::DeviceSpec;
use twocs_opmodel::Profiler;
use twocs_transformer::{Hyperparams, ParallelConfig};

/// The Figure 11 sweep grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlapSweep {
    /// Hidden sizes, one series each.
    pub hs: Vec<u64>,
    /// `SL·B` token counts (x-axis); profiled at `B = 1`.
    pub slbs: Vec<u64>,
    /// Tensor-parallel degree (the paper fixes TP = 16).
    pub tp: u64,
    /// Data-parallel degree (the result is largely DP-agnostic; the
    /// paper's node has 4 GPUs).
    pub dp: u64,
}

impl Default for OverlapSweep {
    fn default() -> Self {
        Self {
            hs: vec![1024, 4096, 16_384, 65_536],
            slbs: vec![1024, 2048, 4096, 8192, 16_384, 32_768],
            tp: 16,
            dp: 4,
        }
    }
}

/// Hyperparameters for one overlap ROI point (heads fixed power-of-two).
#[must_use]
pub fn roi_hyper(h: u64, slb: u64) -> Hyperparams {
    Hyperparams::builder(h)
        .heads((h / 64).clamp(16, 256))
        .seq_len(slb)
        .batch(1)
        .build()
        .expect("ROI hyperparameters are valid")
}

/// The exact `(hyper, parallel)` slack-ROI query [`overlap_pct`] issues
/// for one configuration — TP silently clamped to the head count, like
/// the scalar path. Batch evaluators use this to pre-resolve a chunk's
/// queries against the profile cache (see
/// [`Profiler::begin_slack_roi_chunk`]) before walking the chunk.
#[must_use]
pub fn roi_query(h: u64, slb: u64, tp: u64, dp: u64) -> (Hyperparams, ParallelConfig) {
    let hyper = roi_hyper(h, slb);
    let parallel = ParallelConfig::new().tensor(tp.min(hyper.heads())).data(dp);
    (hyper, parallel)
}

/// Overlapped communication as a percentage of the compute it hides
/// behind, for one configuration.
#[must_use]
pub fn overlap_pct(device: &DeviceSpec, h: u64, slb: u64, tp: u64, dp: u64) -> f64 {
    overlap_pct_with(&Profiler::new(device.clone()), h, slb, tp, dp)
}

/// [`overlap_pct`] against a caller-owned [`Profiler`]: identical
/// arithmetic (bit-for-bit), but lets batch evaluators profile a whole
/// chunk of configurations without re-constructing the profiler per
/// point.
#[must_use]
pub fn overlap_pct_with(profiler: &Profiler, h: u64, slb: u64, tp: u64, dp: u64) -> f64 {
    let (hyper, parallel) = roi_query(h, slb, tp, dp);
    let (compute, comm) = profiler.profile_slack_roi(&hyper, &parallel);
    100.0 * comm / compute
}

/// Generate Figure 11 on `device`.
#[must_use]
pub fn figure11(device: &DeviceSpec, sweep: &OverlapSweep) -> Figure {
    let mut fig = Figure::new(
        "fig11",
        "Overlapped communication as a percentage of compute time",
        "SL*B",
        "% of compute",
    );
    for &h in &sweep.hs {
        let points: Vec<(f64, f64)> = sweep
            .slbs
            .iter()
            .map(|&slb| (slb as f64, overlap_pct(device, h, slb, sweep.tp, sweep.dp)))
            .collect();
        fig = fig.with_series(Series::new(format!("H={h}"), points));
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DeviceSpec {
        DeviceSpec::mi210()
    }

    #[test]
    fn overlap_falls_as_slb_grows() {
        // Eq. 9: slack is O(SL*B), so the comm percentage drops ~1/SLB.
        for h in [4096u64, 16_384] {
            let small = overlap_pct(&device(), h, 1024, 16, 4);
            let large = overlap_pct(&device(), h, 32_768, 16, 4);
            assert!(
                large < small / 8.0,
                "H={h}: {small}% at 1K vs {large}% at 32K"
            );
        }
    }

    #[test]
    fn smaller_h_has_higher_overlap_pct() {
        // §4.3.5: smaller H under-utilizes network bandwidth, leaving a
        // larger overlap percentage (a hardware effect the algorithmic
        // analysis misses).
        let small_h = overlap_pct(&device(), 1024, 4096, 16, 4);
        let big_h = overlap_pct(&device(), 65_536, 4096, 16, 4);
        assert!(small_h > 1.5 * big_h, "H=1K {small_h}% vs H=64K {big_h}%");
    }

    #[test]
    fn default_sweep_spans_paper_band() {
        // Paper: 17% to 140% across the sweep; 20-55% at SL*B = 4K. Our
        // substrate spans a compatible (slightly wider) range.
        let fig = figure11(&device(), &OverlapSweep::default());
        let (lo, hi) = fig.y_range().unwrap();
        assert!(lo < 20.0, "low end {lo}%");
        assert!(hi > 100.0, "high end {hi}% should show exposable comm");
        assert!(hi < 400.0, "high end {hi}% unreasonably high");
    }

    #[test]
    fn result_is_dp_degree_insensitive_at_saturating_sizes() {
        // §4.3.2: the DP analysis is largely agnostic to DP degree (ring
        // AR traffic scales as (N-1)/N). This holds once per-rank chunks
        // saturate the links — large gradients do; small ones pay extra
        // per-step latency and chunk-granularity penalties.
        let a = overlap_pct(&device(), 65_536, 4096, 16, 4);
        let b = overlap_pct(&device(), 65_536, 4096, 16, 64);
        let ratio = b / a;
        assert!((0.8..=1.5).contains(&ratio), "DP 4 vs 64 ratio {ratio}");
    }

    /// Pins the silent clamp in [`overlap_pct`]: a TP degree above the
    /// model's head count cannot shard further and is clamped to
    /// `hyper.heads()`. Query services layered on top (`twocs serve`)
    /// must validate TP explicitly — an out-of-range TP does NOT error
    /// here, it returns the at-heads value.
    #[test]
    fn tp_above_head_count_is_clamped_to_heads() {
        // H=1024 -> (1024/64).clamp(16,256) = 16 heads.
        let heads = roi_hyper(1024, 2048).heads();
        assert_eq!(heads, 16);
        let clamped = overlap_pct(&device(), 1024, 2048, 256, 4);
        let at_heads = overlap_pct(&device(), 1024, 2048, heads, 4);
        assert_eq!(
            clamped, at_heads,
            "TP=256 must behave exactly like TP=heads"
        );
        // And the clamp is real: a genuinely smaller TP gives a different
        // answer, so the clamped result would be misleading if reported
        // as a TP=256 datapoint.
        let tp8 = overlap_pct(&device(), 1024, 2048, 8, 4);
        assert_ne!(clamped, tp8);
    }

    #[test]
    fn tp_one_is_accepted_and_finite() {
        let v = overlap_pct(&device(), 4096, 2048, 1, 4);
        assert!(v.is_finite() && v > 0.0, "TP=1 overlap {v}");
    }

    #[test]
    #[should_panic(expected = "ROI hyperparameters are valid")]
    fn zero_slb_is_rejected() {
        // SL·B = 0 is not a silent zero or NaN: hyperparameter validation
        // rejects it (callers serving untrusted queries must pre-validate).
        let _ = overlap_pct(&device(), 4096, 0, 16, 4);
    }

    #[test]
    fn one_series_per_h() {
        let sweep = OverlapSweep::default();
        let fig = figure11(&device(), &sweep);
        assert_eq!(fig.series.len(), sweep.hs.len());
        for s in &fig.series {
            assert_eq!(s.points.len(), sweep.slbs.len());
        }
    }
}
