//! End-to-end case study (paper §4.3.7, Figure 14).
//!
//! Setup: `H = 64K, B = 1, SL = 4K, TP = 128`, flop-vs.-bw = 4×, with data
//! parallelism on top. The paper finds 47% of time in serialized (TP)
//! communication and 9% in overlapped (DP) communication that is fully
//! hidden — until slower inter-node links (~8×) and compute/comm
//! interference push part of the DP communication onto the critical path.

use twocs_hw::network::NetworkSpec;
use twocs_hw::{DeviceSpec, HwEvolution, PinMode};
use twocs_sim::interference::InterferenceModel;
use twocs_sim::task::StreamKind;
use twocs_sim::{DeviceId, Engine};
use twocs_transformer::graph_builder::IterationBuilder;
use twocs_transformer::{Hyperparams, ParallelConfig};

/// Which §4.3.7 scenario to evaluate.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Scenario {
    /// DP communication on fast intra-node links, no interference.
    IntraNode,
    /// DP communication over `slowdown`× slower inter-node links, with
    /// optional compute/communication interference.
    InterNode {
        /// Bandwidth penalty on the DP fabric (the paper cites ~8×).
        slowdown: f64,
        /// Model co-location interference between compute and comm.
        interference: bool,
    },
}

/// Outcome of one case-study run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaseStudyResult {
    /// End-to-end iteration time, seconds.
    pub makespan: f64,
    /// Serialized (TP) communication as a fraction of the makespan.
    pub serialized_fraction: f64,
    /// Overlapped (DP) communication busy time as a fraction of the
    /// makespan.
    pub overlapped_fraction: f64,
    /// The part of DP communication that is *exposed* (not hidden behind
    /// compute), as a fraction of the makespan.
    pub exposed_dp_fraction: f64,
}

impl CaseStudyResult {
    /// Total communication on the critical path (serialized + exposed DP).
    #[must_use]
    pub fn critical_comm_fraction(&self) -> f64 {
        self.serialized_fraction + self.exposed_dp_fraction
    }

    /// Whether the DP communication is (essentially) fully hidden.
    #[must_use]
    pub fn dp_fully_hidden(&self) -> bool {
        self.exposed_dp_fraction < 0.01
    }
}

/// The case-study hyperparameters (`H = 64K, SL = 4K, B = 1`; 16 layers
/// simulated — enough depth that the final gradient all-reduce, which has
/// no later backward work to hide behind, amortizes below 1% as it would
/// at the full 128-layer depth).
#[must_use]
pub fn case_hyper() -> Hyperparams {
    Hyperparams::builder(65_536)
        .heads(256)
        .layers(16)
        .seq_len(4096)
        .batch(1)
        .build()
        .expect("case-study hyperparameters are valid")
}

/// Run the case study on an MI210-class device evolved by
/// `flop_vs_bw`× (the paper uses 4×).
#[must_use]
pub fn run(scenario: Scenario, flop_vs_bw: f64) -> CaseStudyResult {
    let device = HwEvolution::flop_vs_bw(flop_vs_bw).apply(&DeviceSpec::mi210());
    let hyper = case_hyper();
    let parallel = ParallelConfig::new().tensor(128).data(4);

    let mut builder = IterationBuilder::new(&hyper, &parallel, &device).optimizer(false);
    let mut engine = Engine::new();
    if let Scenario::InterNode {
        slowdown,
        interference,
    } = scenario
    {
        let base = device.network();
        let dp_net = NetworkSpec::new(
            base.inter_node(),
            base.inter_node(),
            base.ring_allreduce_bandwidth() / slowdown,
            PinMode::None,
        )
        .expect("valid DP network");
        builder = builder.dp_network(dp_net);
        if interference {
            engine = engine.with_interference(InterferenceModel::typical());
        }
    }

    let timeline = engine
        .run_trace(&builder.build_training())
        .expect("case-study graph is valid");
    let dev = DeviceId(0);
    let makespan = timeline.makespan().as_secs_f64();
    // TP all-reduces run on the primary comm stream, DP gradient
    // all-reduces on the secondary one.
    let serialized_busy = timeline.stream_busy(dev, StreamKind::Comm).as_secs_f64();
    let dp_busy = timeline.stream_busy(dev, StreamKind::CommAlt).as_secs_f64();
    // Exposed communication overlaps neither compute nor other comm; TP
    // all-reduces are always exposed (they are chained), so anything above
    // them is DP communication on the critical path.
    let exposed = timeline.exposed_comm(dev).as_secs_f64();
    let exposed_dp = (exposed - serialized_busy).max(0.0);

    CaseStudyResult {
        makespan,
        serialized_fraction: serialized_busy / makespan,
        overlapped_fraction: dp_busy / makespan,
        exposed_dp_fraction: exposed_dp / makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intra_node_matches_figure14_shape() {
        // Paper: 47% serialized, 9% overlapped and fully hidden.
        let r = run(Scenario::IntraNode, 4.0);
        assert!(
            (0.40..=0.60).contains(&r.serialized_fraction),
            "serialized {:.1}%",
            100.0 * r.serialized_fraction
        );
        assert!(
            (0.04..=0.18).contains(&r.overlapped_fraction),
            "overlapped {:.1}%",
            100.0 * r.overlapped_fraction
        );
        assert!(r.dp_fully_hidden(), "DP comm should be hidden: {r:?}");
        assert!(
            (r.critical_comm_fraction() - r.serialized_fraction).abs() < 0.02,
            "critical-path comm should be the serialized part"
        );
    }

    #[test]
    fn inter_node_slowdown_exposes_dp_comm() {
        // Paper scenario 3: with ~8x slower inter-node links and
        // interference, DP communication is no longer completely hidden.
        let r = run(
            Scenario::InterNode {
                slowdown: 8.0,
                interference: true,
            },
            4.0,
        );
        assert!(!r.dp_fully_hidden(), "DP comm should be exposed: {r:?}");
        assert!(
            r.exposed_dp_fraction > 0.05,
            "exposed {:.1}%",
            100.0 * r.exposed_dp_fraction
        );
        assert!(r.critical_comm_fraction() > 0.5);
    }

    #[test]
    fn inter_node_is_slower_end_to_end() {
        let fast = run(Scenario::IntraNode, 4.0);
        let slow = run(
            Scenario::InterNode {
                slowdown: 8.0,
                interference: false,
            },
            4.0,
        );
        assert!(slow.makespan > fast.makespan);
    }

    #[test]
    fn no_evolution_has_lower_comm_share() {
        let now = run(Scenario::IntraNode, 1.0);
        let future = run(Scenario::IntraNode, 4.0);
        assert!(now.serialized_fraction < future.serialized_fraction);
    }

    #[test]
    fn interference_only_affects_overlap_window() {
        let clean = run(
            Scenario::InterNode {
                slowdown: 8.0,
                interference: false,
            },
            4.0,
        );
        let noisy = run(
            Scenario::InterNode {
                slowdown: 8.0,
                interference: true,
            },
            4.0,
        );
        assert!(noisy.makespan >= clean.makespan);
    }
}
