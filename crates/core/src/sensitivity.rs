//! Robustness of the headline results to the substrate's calibrated
//! constants.
//!
//! Our MI210 stand-in has a handful of calibrated knobs (ring all-reduce
//! bandwidth, kernel-launch overhead, collective chunk saturation). The
//! paper's conclusions should not hinge on their exact values: this module
//! perturbs each knob and re-measures the serialized-communication
//! fraction of the highlighted configurations, demonstrating that the
//! *qualitative* claims (communication is a large and growing fraction)
//! hold across a wide calibration neighbourhood.

use crate::report::Table;
use crate::serialized::{comm_fraction, sweep_hyper, Method};
use twocs_collectives::CollectiveCostModel;
use twocs_hw::DeviceSpec;
use twocs_sim::Engine;
use twocs_transformer::graph_builder::IterationBuilder;
use twocs_transformer::ParallelConfig;

/// Which calibrated constant to perturb.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Knob {
    /// Peak algorithmic ring all-reduce bandwidth of the node.
    RingBandwidth,
    /// Per-step chunk half-saturation size of the collective model.
    ChunkRamp,
}

impl Knob {
    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Knob::RingBandwidth => "ring all-reduce bandwidth",
            Knob::ChunkRamp => "collective chunk ramp",
        }
    }
}

/// Serialized-communication fraction for the PaLM-1×-at-required-TP
/// configuration with `knob` scaled by `factor`.
#[must_use]
pub fn comm_fraction_with(knob: Knob, factor: f64) -> f64 {
    assert!(
        factor > 0.0 && factor.is_finite(),
        "factor must be positive"
    );
    let hyper = sweep_hyper(16_384, 2048, 1);
    let parallel = ParallelConfig::new().tensor(64);
    match knob {
        Knob::RingBandwidth => {
            let base = DeviceSpec::mi210();
            let device = base
                .clone()
                .with_network(base.network().scaled_bandwidth(factor));
            comm_fraction(&device, &hyper, &parallel, Method::Simulation)
        }
        Knob::ChunkRamp => {
            let device = DeviceSpec::mi210();
            let default = CollectiveCostModel::default();
            let model = CollectiveCostModel::new(
                default.step_latency(),
                default.chunk_ramp_bytes() * factor,
            );
            let graph = IterationBuilder::new(&hyper, &parallel, &device)
                .comm_model(model)
                .optimizer(false)
                .build_training();
            Engine::new()
                .run(&graph)
                .expect("valid iteration graph")
                .comm_fraction()
        }
    }
}

/// Sensitivity table: each knob at 0.5×, 1×, 2× of its calibrated value.
#[must_use]
pub fn sensitivity_table() -> Table {
    let mut table = Table::new(
        "sensitivity",
        "Serialized comm fraction (PaLM-1x, TP=64) vs calibration perturbations",
        ["knob", "0.5x", "1x", "2x"]
            .into_iter()
            .map(String::from)
            .collect(),
    );
    for knob in [Knob::RingBandwidth, Knob::ChunkRamp] {
        let f = |factor: f64| format!("{:.1}%", 100.0 * comm_fraction_with(knob, factor));
        table.push_row(vec![knob.name().to_owned(), f(0.5), f(1.0), f(2.0)]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conclusion_robust_to_halving_or_doubling_ring_bandwidth() {
        // Even with the node's all-reduce bandwidth off by 2x in either
        // direction, serialized communication stays a major fraction
        // (>20%) at the required TP — the qualitative claim is stable.
        for factor in [0.5, 1.0, 2.0] {
            let f = comm_fraction_with(Knob::RingBandwidth, factor);
            assert!(
                (0.20..=0.80).contains(&f),
                "ring bw x{factor}: fraction {f}"
            );
        }
    }

    #[test]
    fn fraction_moves_the_right_way() {
        // More bandwidth -> less communication time.
        let slow = comm_fraction_with(Knob::RingBandwidth, 0.5);
        let fast = comm_fraction_with(Knob::RingBandwidth, 2.0);
        assert!(fast < slow);
        // Bigger ramp -> worse saturation -> more communication time.
        let gentle = comm_fraction_with(Knob::ChunkRamp, 0.5);
        let harsh = comm_fraction_with(Knob::ChunkRamp, 2.0);
        assert!(harsh > gentle);
    }

    #[test]
    fn table_renders() {
        let t = sensitivity_table();
        assert_eq!(t.rows.len(), 2);
        assert!(t.to_ascii().contains('%'));
    }
}
