//! Quantifying the paper's §5 communication-acceleration techniques.
//!
//! The paper closes by surveying ways out of the communication wall:
//!
//! * **Technique 1 — offloading communication** to a co-processor
//!   (DPU/FPGA): frees the accelerator's compute/memory resources, i.e.
//!   removes compute↔comm interference.
//! * **Technique 2 — processing-in-network (PIN)**: switches reduce in
//!   flight, ~2× effective all-reduce bandwidth.
//! * **Technique 3 — parallel computation and communication**: break the
//!   collective abstraction and overlap data generation with transmission,
//!   hiding a fraction of each critical-path collective.
//! * **PIM** is modelled through its first-order effect — like offload, it
//!   removes the memory-contention component of interference.
//!
//! [`evaluate`] prices each technique on a future-Transformer
//! configuration under 4× flop-vs.-bw hardware, producing the comparison
//! the paper argues for qualitatively.

use crate::report::Table;
use twocs_hw::{DeviceSpec, HwEvolution, PinMode};
use twocs_sim::interference::InterferenceModel;
use twocs_sim::Engine;
use twocs_transformer::graph_builder::IterationBuilder;
use twocs_transformer::{Hyperparams, ParallelConfig};

/// A §5 technique to evaluate.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Technique {
    /// Today's software stack: collectives on the accelerator, coarse
    /// barriers, co-location interference.
    Baseline,
    /// Technique 1: communication runs on a co-processor — no
    /// interference with compute.
    CommOffload,
    /// Technique 2: in-switch reduction, 2× effective all-reduce
    /// bandwidth.
    ProcessingInNetwork,
    /// Technique 3: fine-grained overlap hides `hidden_fraction` of each
    /// serialized collective behind its producing compute.
    FineGrainedOverlap {
        /// Fraction of each critical-path collective that overlap hides.
        hidden_fraction: f64,
    },
}

impl Technique {
    /// Display name.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            Technique::Baseline => "baseline".to_owned(),
            Technique::CommOffload => "T1: comm offload".to_owned(),
            Technique::ProcessingInNetwork => "T2: processing-in-network".to_owned(),
            Technique::FineGrainedOverlap { hidden_fraction } => {
                format!("T3: fine-grained overlap ({:.0}%)", 100.0 * hidden_fraction)
            }
        }
    }
}

/// Outcome of evaluating one technique.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechniqueResult {
    /// Iteration time, seconds.
    pub makespan: f64,
    /// Exposed (critical-path) communication fraction of the makespan.
    pub comm_fraction: f64,
    /// Speedup over the baseline.
    pub speedup: f64,
}

/// The evaluation configuration: a PaLM-1×-class model at its required TP
/// on 4×-evolved hardware — where the paper says communication dominates.
fn workload() -> (Hyperparams, ParallelConfig) {
    let hyper = Hyperparams::builder(16_384)
        .heads(256)
        .layers(8)
        .seq_len(2048)
        .batch(1)
        .build()
        .expect("valid workload");
    (hyper, ParallelConfig::new().tensor(64).data(4))
}

fn run_one(technique: Technique, flop_vs_bw: f64) -> (f64, f64) {
    let evolved = HwEvolution::flop_vs_bw(flop_vs_bw).apply(&DeviceSpec::mi210());
    let device = match technique {
        Technique::ProcessingInNetwork => evolved
            .clone()
            .with_network(evolved.network().with_pin_mode(PinMode::InSwitch)),
        _ => evolved,
    };
    let engine = match technique {
        // Technique 1: the co-processor takes the collectives off the
        // accelerator, removing co-location interference.
        Technique::CommOffload => Engine::new(),
        _ => Engine::new().with_interference(InterferenceModel::typical()),
    };
    let (hyper, parallel) = workload();
    let mut builder = IterationBuilder::new(&hyper, &parallel, &device).optimizer(false);
    if let Technique::FineGrainedOverlap { hidden_fraction } = technique {
        builder = builder.tp_ar_scale(1.0 - hidden_fraction);
    }
    let report = engine
        .run(&builder.build_training())
        .expect("valid iteration graph");
    (report.makespan().as_secs_f64(), report.comm_fraction())
}

/// Evaluate one technique at a flop-vs.-bw ratio.
#[must_use]
pub fn evaluate(technique: Technique, flop_vs_bw: f64) -> TechniqueResult {
    let (base_makespan, _) = run_one(Technique::Baseline, flop_vs_bw);
    let (makespan, comm_fraction) = run_one(technique, flop_vs_bw);
    TechniqueResult {
        makespan,
        comm_fraction,
        speedup: base_makespan / makespan,
    }
}

/// The default §5 technique suite.
#[must_use]
pub fn suite() -> Vec<Technique> {
    vec![
        Technique::Baseline,
        Technique::CommOffload,
        Technique::ProcessingInNetwork,
        Technique::FineGrainedOverlap {
            hidden_fraction: 0.5,
        },
        Technique::FineGrainedOverlap {
            hidden_fraction: 0.9,
        },
    ]
}

/// Render the suite as a table (used by the `techniques` experiment).
#[must_use]
pub fn technique_table(flop_vs_bw: f64) -> Table {
    let mut table = Table::new(
        "techniques",
        format!("Section-5 techniques on PaLM-1x-class training at {flop_vs_bw}x flop-vs-bw"),
        ["technique", "iteration (ms)", "critical comm %", "speedup"]
            .into_iter()
            .map(String::from)
            .collect(),
    );
    for technique in suite() {
        let r = evaluate(technique, flop_vs_bw);
        table.push_row(vec![
            technique.name(),
            format!("{:.1}", 1e3 * r.makespan),
            format!("{:.1}", 100.0 * r.comm_fraction),
            format!("{:.2}x", r.speedup),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_halves_serialized_comm_and_speeds_up_training() {
        let r = evaluate(Technique::ProcessingInNetwork, 4.0);
        let base = evaluate(Technique::Baseline, 4.0);
        assert!(r.comm_fraction < base.comm_fraction);
        assert!(r.speedup > 1.2, "PIN speedup {}", r.speedup);
    }

    #[test]
    fn overlap_hides_communication_proportionally() {
        let half = evaluate(
            Technique::FineGrainedOverlap {
                hidden_fraction: 0.5,
            },
            4.0,
        );
        let most = evaluate(
            Technique::FineGrainedOverlap {
                hidden_fraction: 0.9,
            },
            4.0,
        );
        assert!(most.comm_fraction < half.comm_fraction);
        assert!(most.speedup > half.speedup);
        assert!(half.speedup > 1.0);
    }

    #[test]
    fn offload_removes_interference_cost() {
        let r = evaluate(Technique::CommOffload, 4.0);
        assert!(r.speedup >= 1.0, "offload speedup {}", r.speedup);
    }

    #[test]
    fn baseline_speedup_is_exactly_one() {
        let r = evaluate(Technique::Baseline, 4.0);
        assert!((r.speedup - 1.0).abs() < 1e-9);
        // The premise of Section 5: communication dominates here.
        assert!(r.comm_fraction > 0.4, "comm fraction {}", r.comm_fraction);
    }

    #[test]
    fn table_covers_the_suite() {
        let t = technique_table(4.0);
        assert_eq!(t.rows.len(), suite().len());
        assert!(t.to_ascii().contains("processing-in-network"));
    }
}
