//! The experiment registry: every table and figure of the paper's
//! evaluation, mapped to a runnable generator.
//!
//! `cargo run --example paper_figures` iterates this registry; the bench
//! crate regenerates each entry under Criterion; `EXPERIMENTS.md` records
//! paper-vs-measured for each id.

use crate::report::{Figure, Table};
use crate::serialized::Method;
use crate::{
    accuracy, case_study, evolution, inference, overlapped, sensitivity, serialized, sweep,
    techniques, trends,
};
use twocs_hw::DeviceSpec;
use twocs_transformer::zoo;

/// The output of one experiment.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExperimentOutput {
    /// A figure (series over an axis).
    Figure(Figure),
    /// Several related figures (e.g. Fig. 15's panels).
    Figures(Vec<Figure>),
    /// A table.
    Table(Table),
}

impl ExperimentOutput {
    /// Render as ASCII.
    #[must_use]
    pub fn to_ascii(&self) -> String {
        match self {
            ExperimentOutput::Figure(f) => f.to_ascii(),
            ExperimentOutput::Figures(fs) => fs
                .iter()
                .map(Figure::to_ascii)
                .collect::<Vec<_>>()
                .join("\n"),
            ExperimentOutput::Table(t) => t.to_ascii(),
        }
    }

    /// Render as CSV (figures concatenate panels).
    #[must_use]
    pub fn to_csv(&self) -> String {
        match self {
            ExperimentOutput::Figure(f) => f.to_csv(),
            ExperimentOutput::Figures(fs) => fs
                .iter()
                .map(|f| format!("# {}\n{}", f.id, f.to_csv()))
                .collect::<Vec<_>>()
                .join("\n"),
            ExperimentOutput::Table(t) => t.to_csv(),
        }
    }
}

/// One registered experiment.
#[derive(Debug, Clone)]
pub struct ExperimentDef {
    /// Identifier matching the paper (e.g. `"fig10"`).
    pub id: &'static str,
    /// Short title.
    pub title: &'static str,
    /// The paper's headline claim for this artifact.
    pub paper_claim: &'static str,
    /// Generator.
    pub run: fn(&DeviceSpec) -> ExperimentOutput,
}

fn run_table2(_device: &DeviceSpec) -> ExperimentOutput {
    let mut t = Table::new(
        "table2",
        "NLP model hyperparameters (paper Table 2)",
        [
            "model", "year", "layers", "H", "heads", "size(B)", "SL", "FC dim",
        ]
        .into_iter()
        .map(String::from)
        .collect(),
    );
    for m in zoo::table2() {
        t.push_row(vec![
            m.name.to_owned(),
            m.year.to_string(),
            m.layers.to_string(),
            m.hidden.to_string(),
            m.heads.to_string(),
            format!("{:.2}", m.reported_params_b),
            m.seq_len.to_string(),
            m.ff_dim.to_string(),
        ]);
    }
    ExperimentOutput::Table(t)
}

fn run_table3(_device: &DeviceSpec) -> ExperimentOutput {
    let configs = twocs_opmodel::cost_accounting::table3_configs();
    let mut t = Table::new(
        "table3",
        "Studied parameter space (paper Table 3)",
        ["H", "SL", "B", "TP"]
            .into_iter()
            .map(String::from)
            .collect(),
    );
    for (hyper, parallel) in configs {
        t.push_row(vec![
            hyper.hidden().to_string(),
            hyper.seq_len().to_string(),
            hyper.batch().to_string(),
            parallel.tp().to_string(),
        ]);
    }
    ExperimentOutput::Table(t)
}

fn run_fig06(_device: &DeviceSpec) -> ExperimentOutput {
    ExperimentOutput::Figure(trends::memory_gap_figure())
}

fn run_fig07(_device: &DeviceSpec) -> ExperimentOutput {
    ExperimentOutput::Figure(trends::normalized_scaling_figure())
}

fn run_fig09b(_device: &DeviceSpec) -> ExperimentOutput {
    let mut t = Table::new(
        "fig09b",
        "Required TP scaling relative to Megatron-BERT 3.9B (base TP = 8)",
        [
            "model",
            "year",
            "p (size ratio)",
            "s (capacity)",
            "p/s",
            "required TP",
        ]
        .into_iter()
        .map(String::from)
        .collect(),
    );
    for (m, p, s, ps) in trends::tp_requirement_rows() {
        t.push_row(vec![
            m.name.to_owned(),
            m.year.to_string(),
            format!("{p:.1}"),
            format!("{s:.1}"),
            format!("{ps:.1}"),
            format!("{:.0}", 8.0 * ps),
        ]);
    }
    ExperimentOutput::Table(t)
}

fn run_fig10(device: &DeviceSpec) -> ExperimentOutput {
    ExperimentOutput::Figure(serialized::figure10(
        device,
        &serialized::SerializedSweep::default(),
        Method::Simulation,
    ))
}

fn run_fig11(device: &DeviceSpec) -> ExperimentOutput {
    ExperimentOutput::Figure(overlapped::figure11(
        device,
        &overlapped::OverlapSweep::default(),
    ))
}

fn run_fig12(device: &DeviceSpec) -> ExperimentOutput {
    ExperimentOutput::Figure(evolution::figure12(
        device,
        &serialized::SerializedSweep::default(),
        Method::Simulation,
    ))
}

fn run_fig13(device: &DeviceSpec) -> ExperimentOutput {
    ExperimentOutput::Figure(evolution::figure13(
        device,
        &overlapped::OverlapSweep::default(),
    ))
}

fn run_fig14(_device: &DeviceSpec) -> ExperimentOutput {
    let mut t = Table::new(
        "fig14",
        "End-to-end case study: H=64K, B=1, SL=4K, TP=128, flop-vs-bw=4x",
        [
            "scenario",
            "serialized %",
            "overlapped %",
            "exposed DP %",
            "critical comm %",
        ]
        .into_iter()
        .map(String::from)
        .collect(),
    );
    let scenarios = [
        ("intra-node DP", case_study::Scenario::IntraNode),
        (
            "inter-node DP (8x) + interference",
            case_study::Scenario::InterNode {
                slowdown: 8.0,
                interference: true,
            },
        ),
    ];
    for (label, scenario) in scenarios {
        let r = case_study::run(scenario, 4.0);
        t.push_row(vec![
            label.to_owned(),
            format!("{:.1}", 100.0 * r.serialized_fraction),
            format!("{:.1}", 100.0 * r.overlapped_fraction),
            format!("{:.1}", 100.0 * r.exposed_dp_fraction),
            format!("{:.1}", 100.0 * r.critical_comm_fraction()),
        ]);
    }
    ExperimentOutput::Table(t)
}

fn run_fig15(device: &DeviceSpec) -> ExperimentOutput {
    ExperimentOutput::Figures(accuracy::figure15(device))
}

fn run_speedup(device: &DeviceSpec) -> ExperimentOutput {
    ExperimentOutput::Table(accuracy::speedup_table(device))
}

fn run_techniques(_device: &DeviceSpec) -> ExperimentOutput {
    ExperimentOutput::Table(techniques::technique_table(4.0))
}

fn run_sensitivity(_device: &DeviceSpec) -> ExperimentOutput {
    ExperimentOutput::Table(sensitivity::sensitivity_table())
}

fn run_inference(device: &DeviceSpec) -> ExperimentOutput {
    ExperimentOutput::Figure(inference::inference_vs_training_figure(device))
}

fn run_moe(device: &DeviceSpec) -> ExperimentOutput {
    ExperimentOutput::Figure(sweep::moe_figure(device))
}

fn run_inference_workloads(device: &DeviceSpec) -> ExperimentOutput {
    ExperimentOutput::Figure(inference::workload_figure(device))
}

/// All registered experiments, in paper order.
#[must_use]
pub fn all() -> Vec<ExperimentDef> {
    vec![
        ExperimentDef {
            id: "table2",
            title: "Model zoo",
            paper_claim: "Eight published Transformers, BERT (0.34B) to PaLM (540B)",
            run: run_table2,
        },
        ExperimentDef {
            id: "table3",
            title: "Sweep space",
            paper_claim: "H 1K-64K, SL 1K-8K, B {1,4}, TP 4-256 (~198 configurations)",
            run: run_table3,
        },
        ExperimentDef {
            id: "fig06",
            title: "Memory gap",
            paper_claim: "Model memory demand outgrows device capacity",
            run: run_fig06,
        },
        ExperimentDef {
            id: "fig07",
            title: "Algorithmic slack and edge",
            paper_claim: "Slack drops ~75%, edge drops ~80% across the zoo",
            run: run_fig07,
        },
        ExperimentDef {
            id: "fig09b",
            title: "Required TP scaling",
            paper_claim: "p/s of 40-60x after Megatron-BERT 3.9B (TP ~250-550)",
            run: run_fig09b,
        },
        ExperimentDef {
            id: "fig10",
            title: "Serialized communication fraction",
            paper_claim: "20-50% of training time; grows with TP, falls with H and SL",
            run: run_fig10,
        },
        ExperimentDef {
            id: "fig11",
            title: "Overlapped communication vs compute",
            paper_claim: "17-140% of compute; 20-55% at SL*B=4K; higher at small H",
            run: run_fig11,
        },
        ExperimentDef {
            id: "fig12",
            title: "Serialized fraction under hardware evolution",
            paper_claim: "30-65% at 2x flop-vs-bw, 40-75% at 4x",
            run: run_fig12,
        },
        ExperimentDef {
            id: "fig13",
            title: "Overlap under hardware evolution",
            paper_claim: "50-100% at 2x, 80-210% at 4x; >=100% is exposed",
            run: run_fig13,
        },
        ExperimentDef {
            id: "fig14",
            title: "End-to-end case study",
            paper_claim: "47% serialized + 9% overlapped (hidden); inter-node exposes DP comm",
            run: run_fig14,
        },
        ExperimentDef {
            id: "fig15",
            title: "Operator-model accuracy",
            paper_claim: "GEMM ~15% error, LayerNorm ~7%, all-reduce ~11%",
            run: run_fig15,
        },
        ExperimentDef {
            id: "speedup",
            title: "Profiling-cost reduction",
            paper_claim: "2100x over exhaustive profiling; 1.5x from ROI extraction",
            run: run_speedup,
        },
        ExperimentDef {
            id: "techniques",
            title: "Section-5 communication remedies",
            paper_claim:
                "PIN ~2x AR bandwidth; offload removes interference; overlap hides collectives",
            run: run_techniques,
        },
        ExperimentDef {
            id: "sensitivity",
            title: "Calibration robustness",
            paper_claim: "(repro-specific) headline bands are stable under 2x knob perturbations",
            run: run_sensitivity,
        },
        ExperimentDef {
            id: "inference",
            title: "Distributed inference (section 6.3)",
            paper_claim: "Comp-vs-Comm translates to distributed inference",
            run: run_inference,
        },
        ExperimentDef {
            id: "moe",
            title: "MoE all-to-all cost",
            paper_claim:
                "(repro-specific) expert dispatch traffic raises the serialized fraction with \
                 expert count, faster on compute-rich hardware",
            run: run_moe,
        },
        ExperimentDef {
            id: "inference_workloads",
            title: "Prefill vs decode comp-vs-comm",
            paper_claim:
                "(repro-specific) decode is bandwidth-bound and comm-heavier than prefill at \
                 the same TP (disaggregation rationale of Kundu et al.)",
            run: run_inference_workloads,
        },
    ]
}

/// Look up an experiment by id.
#[must_use]
pub fn by_id(id: &str) -> Option<ExperimentDef> {
    all().into_iter().find(|d| d.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_paper_artifact() {
        let ids: Vec<&str> = all().iter().map(|d| d.id).collect();
        for required in [
            "table2",
            "table3",
            "fig06",
            "fig07",
            "fig09b",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "speedup",
            "techniques",
            "sensitivity",
            "moe",
            "inference_workloads",
        ] {
            assert!(ids.contains(&required), "missing {required}");
        }
    }

    #[test]
    fn lookup_works() {
        assert!(by_id("fig10").is_some());
        assert!(by_id("fig99").is_none());
    }

    #[test]
    fn cheap_experiments_render() {
        let dev = DeviceSpec::mi210();
        for id in ["table2", "fig06", "fig07", "fig09b"] {
            let def = by_id(id).unwrap();
            let out = (def.run)(&dev);
            let ascii = out.to_ascii();
            assert!(!ascii.is_empty(), "{id}");
            assert!(!out.to_csv().is_empty(), "{id}");
        }
    }

    #[test]
    fn table3_row_count_matches_cost_accounting() {
        let def = by_id("table3").unwrap();
        if let ExperimentOutput::Table(t) = (def.run)(&DeviceSpec::mi210()) {
            assert_eq!(
                t.rows.len(),
                twocs_opmodel::cost_accounting::table3_configs().len()
            );
        } else {
            panic!("table3 must be a table");
        }
    }
}
