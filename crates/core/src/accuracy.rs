//! Operator-model accuracy and profiling-cost reporting (paper §4.3.8,
//! Figure 15) rendered as workspace [`Figure`]s/[`Table`]s.

use crate::report::{Figure, Series, Table};
use twocs_hw::DeviceSpec;
use twocs_opmodel::cost_accounting;
use twocs_opmodel::validation::{self, SweepValidation};

/// Figure 15 as one figure per sweep: projected and measured series.
#[must_use]
pub fn figure15(device: &DeviceSpec) -> Vec<Figure> {
    validation::figure15_suite(device)
        .into_iter()
        .enumerate()
        .map(|(i, v)| sweep_to_figure(&v, &format!("fig15.{}", (b'a' + i as u8) as char)))
        .collect()
}

fn sweep_to_figure(v: &SweepValidation, id: &str) -> Figure {
    let projected: Vec<(f64, f64)> = v.points.iter().map(|p| (p.x, p.projected)).collect();
    let measured: Vec<(f64, f64)> = v.points.iter().map(|p| (p.x, p.measured)).collect();
    Figure::new(
        id,
        format!(
            "{} (geomean err {:.1}%)",
            v.label,
            100.0 * v.geomean_error()
        ),
        "swept value",
        "runtime (s)",
    )
    .with_series(Series::new("projected", projected))
    .with_series(Series::new("measured", measured))
}

/// Error-summary table across the Figure 15 suite.
#[must_use]
pub fn error_table(device: &DeviceSpec) -> Table {
    let mut table = Table::new(
        "fig15-errors",
        "Operator-model accuracy (projected vs measured)",
        vec![
            "sweep".into(),
            "geomean error %".into(),
            "max error %".into(),
        ],
    );
    for v in validation::figure15_suite(device) {
        table.push_row(vec![
            v.label.clone(),
            format!("{:.1}", 100.0 * v.geomean_error()),
            format!("{:.1}", 100.0 * v.max_error()),
        ]);
    }
    table
}

/// Profiling-speedup table (paper: 2100× and 1.5×).
#[must_use]
pub fn speedup_table(device: &DeviceSpec) -> Table {
    let report = cost_accounting::account(device);
    let mut table = Table::new(
        "speedups",
        "Profiling-cost reduction of the empirical strategy",
        vec!["quantity".into(), "value".into()],
    );
    table.push_row(vec![
        "configurations avoided".into(),
        report.configs.to_string(),
    ]);
    table.push_row(vec![
        "exhaustive profiling (s, device time)".into(),
        format!("{:.1}", report.exhaustive_seconds),
    ]);
    table.push_row(vec![
        "strategy profiling (s, device time)".into(),
        format!("{:.3}", report.strategy_seconds),
    ]);
    table.push_row(vec![
        "strategy speedup (paper: 2100x)".into(),
        format!("{:.0}x", report.speedup()),
    ]);
    table.push_row(vec![
        "ROI-extraction speedup (paper: 1.5x)".into(),
        format!("{:.2}x", report.roi_speedup()),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure15_has_five_panels_with_both_series() {
        let figs = figure15(&DeviceSpec::mi210());
        assert_eq!(figs.len(), 5);
        for f in &figs {
            assert_eq!(f.series.len(), 2);
            assert!(!f.series[0].points.is_empty());
        }
    }

    #[test]
    fn error_table_reports_all_sweeps_under_paper_band() {
        let t = error_table(&DeviceSpec::mi210());
        assert_eq!(t.rows.len(), 5);
        for row in &t.rows {
            let geomean: f64 = row[1].parse().unwrap();
            assert!(geomean < 20.0, "{}: {geomean}%", row[0]);
        }
    }

    #[test]
    fn speedup_table_is_complete() {
        let t = speedup_table(&DeviceSpec::mi210());
        assert_eq!(t.rows.len(), 5);
        let ascii = t.to_ascii();
        assert!(ascii.contains("speedup"));
    }
}
