//! Serialized-communication analysis (paper §4.3.4, Figure 10).
//!
//! For a grid of `(H, SL)` configurations and TP degrees, compute the
//! fraction of training time spent in serialized (tensor-parallel)
//! communication. Two methods are provided:
//!
//! * [`Method::Simulation`] — build the full training-iteration task graph
//!   and execute it on the discrete-event simulator (shape-accurate GEMM
//!   efficiency and collective saturation; our "measured" numbers).
//! * [`Method::Projection`] — the paper's operator-model route: scale a
//!   single BERT baseline profile (fast, but optimistic about collective
//!   behaviour at large TP, exactly as the paper's §4.3.8 caveats note).

use crate::report::{Figure, Series};
use twocs_hw::DeviceSpec;
use twocs_opmodel::projection::ProjectionModel;
use twocs_sim::Engine;
use twocs_transformer::graph_builder::IterationBuilder;
use twocs_transformer::{Hyperparams, ParallelConfig};

/// How to evaluate a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Method {
    /// Discrete-event simulation of the full iteration (ground truth).
    #[default]
    Simulation,
    /// Operator-model projection from a BERT baseline (the paper's
    /// strategy).
    Projection,
}

/// The Figure 10 sweep grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerializedSweep {
    /// `(H, SL)` pairs, one series each.
    pub h_sl_pairs: Vec<(u64, u64)>,
    /// TP degrees (x-axis).
    pub tps: Vec<u64>,
    /// Batch size (the paper uses `B = 1` for large models).
    pub batch: u64,
}

impl Default for SerializedSweep {
    /// The paper's highlighted configurations: T-NLG-, PaLM-1×- and
    /// PaLM-3×-class models across TP 4…256.
    fn default() -> Self {
        Self {
            h_sl_pairs: vec![(4096, 2048), (16_384, 2048), (65_536, 2048), (65_536, 4096)],
            tps: vec![4, 8, 16, 32, 64, 128, 256],
            batch: 1,
        }
    }
}

/// Whether `tp` is a realistic degree for hidden size `h` — mirrors the
/// paper's pruning of "unrealistic configurations (e.g., large model and
/// large batch size with small tensor parallelism degree)" and its
/// converse (tiny models sliced 256 ways).
#[must_use]
pub fn realistic_tp(h: u64, tp: u64) -> bool {
    // Slices thinner than 128 columns of the hidden dimension stop making
    // sense; huge models below TP 16 cannot fit memory.
    tp <= h / 128 && (h < 16_384 || tp >= 16)
}

/// Hyperparameters for one sweep point. Head count is fixed at 256 so
/// every power-of-two TP in the sweep is a valid sharding.
///
/// # Panics
/// Panics if `h` is not a multiple of 256 (all sweep values are).
#[must_use]
pub fn sweep_hyper(h: u64, sl: u64, b: u64) -> Hyperparams {
    Hyperparams::builder(h)
        .heads(256)
        .layers(2)
        .seq_len(sl)
        .batch(b)
        .build()
        .expect("sweep hyperparameters are valid")
}

/// The fixed BERT-like baseline the projection method profiles once per
/// device (§4.2). Shared by [`comm_fraction`] and the factored sweep
/// planner so both build the identical [`ProjectionModel`].
#[must_use]
pub fn projection_baseline() -> Hyperparams {
    Hyperparams::builder(1024)
        .heads(16)
        .seq_len(512)
        .batch(4)
        .build()
        .expect("valid baseline")
}

/// Fraction of training time spent in serialized communication for one
/// configuration, by the chosen method, on `device`.
#[must_use]
pub fn comm_fraction(
    device: &DeviceSpec,
    hyper: &Hyperparams,
    parallel: &ParallelConfig,
    method: Method,
) -> f64 {
    match method {
        Method::Simulation => {
            let graph = IterationBuilder::new(hyper, parallel, device)
                .optimizer(false)
                .build_training();
            Engine::new()
                .run(&graph)
                .expect("iteration graphs are valid")
                .comm_fraction()
        }
        Method::Projection => ProjectionModel::from_baseline(&projection_baseline(), device)
            .project(hyper, parallel)
            .serialized_comm_fraction(),
    }
}

/// Generate Figure 10 on `device`.
#[must_use]
pub fn figure10(device: &DeviceSpec, sweep: &SerializedSweep, method: Method) -> Figure {
    let mut fig = Figure::new(
        "fig10",
        "Fraction of serialized communication time",
        "TP degree",
        "% of training time",
    );
    for &(h, sl) in &sweep.h_sl_pairs {
        let hyper = sweep_hyper(h, sl, sweep.batch);
        let points: Vec<(f64, f64)> = sweep
            .tps
            .iter()
            .filter(|&&tp| tp <= hyper.heads() && realistic_tp(h, tp))
            .map(|&tp| {
                let par = ParallelConfig::new().tensor(tp);
                (
                    tp as f64,
                    100.0 * comm_fraction(device, &hyper, &par, method),
                )
            })
            .collect();
        fig = fig.with_series(Series::new(format!("H={h} SL={sl}"), points));
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DeviceSpec {
        DeviceSpec::mi210()
    }

    #[test]
    fn fraction_grows_with_tp_at_fixed_shape() {
        let hyper = sweep_hyper(16_384, 2048, 1);
        let f = |tp: u64| {
            comm_fraction(
                &device(),
                &hyper,
                &ParallelConfig::new().tensor(tp),
                Method::Simulation,
            )
        };
        assert!(f(16) < f(64));
        assert!(f(64) < f(256));
    }

    #[test]
    fn fraction_falls_with_h_at_fixed_tp() {
        let par = ParallelConfig::new().tensor(64);
        let small = comm_fraction(
            &device(),
            &sweep_hyper(8192, 2048, 1),
            &par,
            Method::Simulation,
        );
        let large = comm_fraction(
            &device(),
            &sweep_hyper(65_536, 2048, 1),
            &par,
            Method::Simulation,
        );
        assert!(large < small, "H=8K {small} vs H=64K {large}");
    }

    #[test]
    fn fraction_falls_with_sl_at_fixed_tp() {
        let par = ParallelConfig::new().tensor(64);
        let short = comm_fraction(
            &device(),
            &sweep_hyper(16_384, 2048, 1),
            &par,
            Method::Simulation,
        );
        let long = comm_fraction(
            &device(),
            &sweep_hyper(16_384, 8192, 1),
            &par,
            Method::Simulation,
        );
        assert!(long < short);
    }

    #[test]
    fn highlighted_configs_land_in_paper_band() {
        // Fig. 10's blue-highlighted points: a T-NLG-class model at its
        // required TP of 16, PaLM-1x at 64, PaLM-3x at 256 — spanning
        // ~20-50% of training time.
        let highlighted = [
            (4096u64, 2048u64, 16u64),
            (16_384, 2048, 64),
            (65_536, 2048, 256),
            (65_536, 4096, 128),
        ];
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for (h, sl, tp) in highlighted {
            let f = 100.0
                * comm_fraction(
                    &device(),
                    &sweep_hyper(h, sl, 1),
                    &ParallelConfig::new().tensor(tp),
                    Method::Simulation,
                );
            lo = lo.min(f);
            hi = hi.max(f);
        }
        assert!((12.0..=35.0).contains(&lo), "low end {lo}%");
        assert!((40.0..=60.0).contains(&hi), "high end {hi}%");
    }

    #[test]
    fn projection_reproduces_the_trend() {
        let fig = figure10(&device(), &SerializedSweep::default(), Method::Projection);
        for s in &fig.series {
            for w in s.points.windows(2) {
                assert!(w[1].1 >= w[0].1, "{}: fraction must grow with TP", s.label);
            }
        }
    }

    #[test]
    fn figure_has_one_series_per_pair() {
        let sweep = SerializedSweep::default();
        let fig = figure10(&device(), &sweep, Method::Simulation);
        assert_eq!(fig.series.len(), sweep.h_sl_pairs.len());
    }
}
