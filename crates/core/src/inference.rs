//! Distributed-inference analysis (paper §6.3).
//!
//! Inference runs only the forward pass — no backward GEMMs, no gradient
//! all-reduces — but tensor parallelism's **two serialized all-reduces per
//! layer remain on the critical path**. With only a third of training's
//! compute per layer to amortize them, the communication *fraction* of
//! distributed inference is at least as high as training's, which is why
//! the paper says its Comp-vs-Comm analysis translates to inference.

use crate::report::{Figure, Series};
use twocs_collectives::CollectiveCostModel;
use twocs_hw::roofline::roofline_time;
use twocs_hw::DeviceSpec;
use twocs_sim::Engine;
use twocs_transformer::graph_builder::IterationBuilder;
use twocs_transformer::{Hyperparams, ParallelConfig};

/// Which iteration a sweep models: the paper's training iteration
/// (forward + backward + optimizer-adjacent collectives) or one of the
/// two inference phases Kundu et al. characterize — full-sequence
/// **prefill** (compute-bound GEMMs, KV-cache writes) and per-token
/// **decode** (bandwidth-bound matvecs, KV-cache reads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Workload {
    /// The training iteration the paper sweeps (default).
    #[default]
    Training,
    /// Inference prefill: the full prompt in one forward pass.
    Prefill,
    /// Inference decode: one new token per sequence per step.
    Decode,
}

impl Workload {
    /// Tokens processed per layer pass under this workload: the full
    /// `SL · B` for training and prefill, one token per sequence
    /// (`B`) for decode.
    #[must_use]
    pub fn tokens(self, hyper: &Hyperparams) -> u64 {
        match self {
            Workload::Training | Workload::Prefill => hyper.tokens(),
            Workload::Decode => hyper.batch(),
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Workload::Training => "training",
            Workload::Prefill => "prefill",
            Workload::Decode => "decode",
        })
    }
}

impl std::str::FromStr for Workload {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "training" => Ok(Workload::Training),
            "prefill" => Ok(Workload::Prefill),
            "decode" => Ok(Workload::Decode),
            other => Err(format!(
                "unknown workload `{other}` (expected training, prefill, or decode)"
            )),
        }
    }
}

/// One projected inference layer pass: roofline-priced GEMM compute with
/// a KV-cache bandwidth term, plus the two serialized TP all-reduces
/// that stay on the forward critical path.
///
/// Prefill runs the four dense GEMM sites (`QKV`, attention output,
/// `FC1`, `FC2`) over the whole prompt and *writes* each token's K/V
/// shard; decode runs the same sites as batch-row matvecs — too little
/// arithmetic intensity to leave the bandwidth roof — and *reads* the
/// entire per-device KV cache every step. Both terms are priced from the
/// `twocs-hw` roofline data (`peak_flops` vs `mem_bandwidth`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceIteration {
    /// Layers on the critical path.
    pub layers: u64,
    /// Per-layer compute time: GEMM roofline plus the KV-cache term.
    pub compute_per_layer: f64,
    /// Per-layer serialized communication: two forward TP all-reduces.
    pub serialized_comm_per_layer: f64,
}

impl InferenceIteration {
    /// Price one layer of `hyper` on `device` at TP degree `tp` under an
    /// inference `workload`.
    ///
    /// # Panics
    /// Panics on [`Workload::Training`] (training is projected through
    /// the operator-model path, not this roofline shortcut) and on
    /// `tp == 0`.
    #[must_use]
    pub fn model(device: &DeviceSpec, hyper: &Hyperparams, tp: u64, workload: Workload) -> Self {
        assert!(
            workload != Workload::Training,
            "InferenceIteration models prefill/decode; training uses the projection model"
        );
        assert!(tp > 0, "tp must be non-zero");
        let precision = hyper.precision();
        let elem = precision.bytes();
        let peak = device.peak_flops(precision);
        let mem_bw = device.mem_bandwidth();
        let (h, ff) = (hyper.hidden(), hyper.ff_dim());
        let m = workload.tokens(hyper);

        // The four per-layer GEMM sites as (n, k) with weights sharded
        // tp-ways: prefill runs them at m = SL·B (compute-bound), decode
        // at m = B (bandwidth-bound matvecs) — the shapes, not a flag,
        // decide which roof binds.
        let mut compute = 0.0;
        for (n, k) in [(3 * h, h), (h, h), (ff, h), (h, ff)] {
            let flops = (2 * m * n * k).div_ceil(tp);
            let bytes = (m * k + (k * n + m * n).div_ceil(tp)) * elem;
            compute += roofline_time(flops, bytes, peak, mem_bw);
        }
        // KV-cache traffic per layer, 2·(h/tp) elements per cached token:
        // prefill writes the prompt's K/V once, decode streams the whole
        // cache back per generated token.
        let kv_elements = match workload {
            Workload::Prefill => 2 * m * h.div_ceil(tp),
            Workload::Decode => 2 * hyper.seq_len() * hyper.batch() * h.div_ceil(tp),
            Workload::Training => unreachable!(),
        };
        compute += (kv_elements * elem) as f64 / mem_bw;

        // Two serialized all-reduces per layer (attention output and FC
        // output), forward only — zero when tp == 1, like training.
        let ar = CollectiveCostModel::default().allreduce_time(
            m * h * elem,
            tp as usize,
            device.network(),
        );
        Self {
            layers: hyper.layers(),
            compute_per_layer: compute,
            serialized_comm_per_layer: 2.0 * ar,
        }
    }

    /// Serialized-communication fraction of this iteration.
    #[must_use]
    pub fn comm_fraction(&self) -> f64 {
        let total = self.compute_per_layer + self.serialized_comm_per_layer;
        if total <= 0.0 {
            return 0.0;
        }
        self.serialized_comm_per_layer / total
    }
}

/// Serialized-communication fraction of a forward-only (inference) pass.
#[must_use]
pub fn inference_comm_fraction(
    device: &DeviceSpec,
    hyper: &Hyperparams,
    parallel: &ParallelConfig,
) -> f64 {
    let graph = IterationBuilder::new(hyper, parallel, device).build_inference();
    Engine::new()
        .run(&graph)
        .expect("valid inference graph")
        .comm_fraction()
}

/// Inference vs. training communication fraction across TP degrees for a
/// PaLM-1×-class model.
#[must_use]
pub fn inference_vs_training_figure(device: &DeviceSpec) -> Figure {
    let hyper = Hyperparams::builder(16_384)
        .heads(256)
        .layers(2)
        .seq_len(2048)
        .batch(1)
        .build()
        .expect("valid model");
    let tps = [8u64, 16, 32, 64, 128, 256];
    let mut infer = Vec::new();
    let mut train = Vec::new();
    for &tp in &tps {
        let parallel = ParallelConfig::new().tensor(tp);
        infer.push((
            tp as f64,
            100.0 * inference_comm_fraction(device, &hyper, &parallel),
        ));
        let graph = IterationBuilder::new(&hyper, &parallel, device)
            .optimizer(false)
            .build_training();
        let f = Engine::new()
            .run(&graph)
            .expect("valid training graph")
            .comm_fraction();
        train.push((tp as f64, 100.0 * f));
    }
    Figure::new(
        "inference",
        "Serialized communication: inference vs training (H=16K)",
        "TP degree",
        "% of time",
    )
    .with_series(Series::new("inference (fwd only)", infer))
    .with_series(Series::new("training (fwd+bwd)", train))
}

/// Comp-vs-comm across TP degrees for the prefill and decode inference
/// phases, with the projected training fraction as the reference series
/// — the paper-style figure behind `out/inference_workloads.csv`.
///
/// Decode's matvec-shaped GEMMs sit on the bandwidth roof, so its
/// all-reduces are amortized over far less compute than prefill's — the
/// decode series dominates, matching Kundu et al.'s characterization of
/// the two phases.
#[must_use]
pub fn workload_figure(device: &DeviceSpec) -> Figure {
    let hyper = crate::serialized::sweep_hyper(16_384, 2048, 1);
    let tps = [8u64, 16, 32, 64, 128, 256];
    let mut prefill = Vec::new();
    let mut decode = Vec::new();
    let mut train = Vec::new();
    for &tp in &tps {
        for (series, workload) in [
            (&mut prefill, Workload::Prefill),
            (&mut decode, Workload::Decode),
        ] {
            let it = InferenceIteration::model(device, &hyper, tp, workload);
            series.push((tp as f64, 100.0 * it.comm_fraction()));
        }
        let f = crate::serialized::comm_fraction(
            device,
            &hyper,
            &ParallelConfig::new().tensor(tp),
            crate::serialized::Method::Projection,
        );
        train.push((tp as f64, 100.0 * f));
    }
    Figure::new(
        "inference_workloads",
        "Serialized communication: prefill vs decode vs training (H=16K)",
        "TP degree",
        "% of time",
    )
    .with_series(Series::new("prefill", prefill))
    .with_series(Series::new("decode", decode))
    .with_series(Series::new("training (projected)", train))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_comm_fraction_at_least_training() {
        // Same per-layer all-reduce count over less compute.
        let device = DeviceSpec::mi210();
        let fig = inference_vs_training_figure(&device);
        let infer = &fig.series[0];
        let train = &fig.series[1];
        for (i, t) in infer.points.iter().zip(&train.points) {
            assert!(
                i.1 >= 0.95 * t.1,
                "TP={}: inference {:.1}% vs training {:.1}%",
                i.0,
                i.1,
                t.1
            );
        }
    }

    #[test]
    fn workload_parses_and_displays() {
        for (s, w) in [
            ("training", Workload::Training),
            ("prefill", Workload::Prefill),
            ("decode", Workload::Decode),
        ] {
            assert_eq!(s.parse::<Workload>().unwrap(), w);
            assert_eq!(w.to_string(), s);
        }
        let err = "chat".parse::<Workload>().unwrap_err();
        assert!(err.contains("unknown workload"), "{err}");
        assert_eq!(Workload::default(), Workload::Training);
    }

    #[test]
    fn decode_is_bandwidth_bound_relative_to_prefill() {
        let device = DeviceSpec::mi210();
        let hyper = crate::serialized::sweep_hyper(16_384, 2048, 1);
        for tp in [8u64, 64, 256] {
            let p = InferenceIteration::model(&device, &hyper, tp, Workload::Prefill);
            let d = InferenceIteration::model(&device, &hyper, tp, Workload::Decode);
            // Decode amortizes the same two all-reduce sites over matvec
            // compute, so its comm fraction dominates prefill's.
            assert!(
                d.comm_fraction() >= p.comm_fraction(),
                "tp={tp}: decode {:.3} vs prefill {:.3}",
                d.comm_fraction(),
                p.comm_fraction()
            );
            assert!(p.compute_per_layer > 0.0 && d.compute_per_layer > 0.0);
        }
    }

    #[test]
    fn single_device_inference_has_no_serialized_comm() {
        let device = DeviceSpec::mi210();
        let hyper = crate::serialized::sweep_hyper(4096, 2048, 1);
        for workload in [Workload::Prefill, Workload::Decode] {
            let it = InferenceIteration::model(&device, &hyper, 1, workload);
            assert_eq!(it.serialized_comm_per_layer, 0.0);
            assert_eq!(it.comm_fraction(), 0.0);
        }
    }

    #[test]
    fn workload_figure_has_three_series_over_the_tp_axis() {
        let fig = workload_figure(&DeviceSpec::mi210());
        assert_eq!(fig.id, "inference_workloads");
        assert_eq!(fig.series.len(), 3);
        for s in &fig.series {
            assert_eq!(s.points.len(), 6);
            assert!(s.points.iter().all(|&(_, y)| y.is_finite() && y >= 0.0));
        }
    }

    #[test]
    fn inference_fraction_grows_with_tp() {
        let device = DeviceSpec::mi210();
        let hyper = Hyperparams::builder(16_384)
            .heads(256)
            .layers(2)
            .seq_len(2048)
            .batch(1)
            .build()
            .unwrap();
        let f =
            |tp: u64| inference_comm_fraction(&device, &hyper, &ParallelConfig::new().tensor(tp));
        assert!(f(16) < f(64));
        assert!(f(64) < f(256));
    }
}
