//! Distributed-inference analysis (paper §6.3).
//!
//! Inference runs only the forward pass — no backward GEMMs, no gradient
//! all-reduces — but tensor parallelism's **two serialized all-reduces per
//! layer remain on the critical path**. With only a third of training's
//! compute per layer to amortize them, the communication *fraction* of
//! distributed inference is at least as high as training's, which is why
//! the paper says its Comp-vs-Comm analysis translates to inference.

use crate::report::{Figure, Series};
use twocs_hw::DeviceSpec;
use twocs_sim::Engine;
use twocs_transformer::graph_builder::IterationBuilder;
use twocs_transformer::{Hyperparams, ParallelConfig};

/// Serialized-communication fraction of a forward-only (inference) pass.
#[must_use]
pub fn inference_comm_fraction(
    device: &DeviceSpec,
    hyper: &Hyperparams,
    parallel: &ParallelConfig,
) -> f64 {
    let graph = IterationBuilder::new(hyper, parallel, device).build_inference();
    Engine::new()
        .run(&graph)
        .expect("valid inference graph")
        .comm_fraction()
}

/// Inference vs. training communication fraction across TP degrees for a
/// PaLM-1×-class model.
#[must_use]
pub fn inference_vs_training_figure(device: &DeviceSpec) -> Figure {
    let hyper = Hyperparams::builder(16_384)
        .heads(256)
        .layers(2)
        .seq_len(2048)
        .batch(1)
        .build()
        .expect("valid model");
    let tps = [8u64, 16, 32, 64, 128, 256];
    let mut infer = Vec::new();
    let mut train = Vec::new();
    for &tp in &tps {
        let parallel = ParallelConfig::new().tensor(tp);
        infer.push((
            tp as f64,
            100.0 * inference_comm_fraction(device, &hyper, &parallel),
        ));
        let graph = IterationBuilder::new(&hyper, &parallel, device)
            .optimizer(false)
            .build_training();
        let f = Engine::new()
            .run(&graph)
            .expect("valid training graph")
            .comm_fraction();
        train.push((tp as f64, 100.0 * f));
    }
    Figure::new(
        "inference",
        "Serialized communication: inference vs training (H=16K)",
        "TP degree",
        "% of time",
    )
    .with_series(Series::new("inference (fwd only)", infer))
    .with_series(Series::new("training (fwd+bwd)", train))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_comm_fraction_at_least_training() {
        // Same per-layer all-reduce count over less compute.
        let device = DeviceSpec::mi210();
        let fig = inference_vs_training_figure(&device);
        let infer = &fig.series[0];
        let train = &fig.series[1];
        for (i, t) in infer.points.iter().zip(&train.points) {
            assert!(
                i.1 >= 0.95 * t.1,
                "TP={}: inference {:.1}% vs training {:.1}%",
                i.0,
                i.1,
                t.1
            );
        }
    }

    #[test]
    fn inference_fraction_grows_with_tp() {
        let device = DeviceSpec::mi210();
        let hyper = Hyperparams::builder(16_384)
            .heads(256)
            .layers(2)
            .seq_len(2048)
            .batch(1)
            .build()
            .unwrap();
        let f =
            |tp: u64| inference_comm_fraction(&device, &hyper, &ParallelConfig::new().tensor(tp));
        assert!(f(16) < f(64));
        assert!(f(64) < f(256));
    }
}
