//! Result containers and renderers.
//!
//! Every experiment produces a [`Figure`] (series over an x-axis) or a
//! [`Table`] (rows of cells). Both render to aligned ASCII for terminals
//! and to CSV for plotting.

use std::fmt::Write as _;

/// One labelled series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points in ascending `x`.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Create a series.
    #[must_use]
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            label: label.into(),
            points,
        }
    }

    /// The y value at the given x, if sampled.
    #[must_use]
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (px - x).abs() < 1e-9)
            .map(|&(_, y)| y)
    }

    /// Minimum and maximum y across the series; `None` when empty.
    #[must_use]
    pub fn y_range(&self) -> Option<(f64, f64)> {
        let mut it = self.points.iter().map(|&(_, y)| y);
        let first = it.next()?;
        Some(it.fold((first, first), |(lo, hi), y| (lo.min(y), hi.max(y))))
    }
}

/// A figure: several series over a shared x-axis.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Identifier, e.g. `"fig10"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// X-axis label.
    pub xlabel: String,
    /// Y-axis label.
    pub ylabel: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Create an empty figure.
    #[must_use]
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        xlabel: impl Into<String>,
        ylabel: impl Into<String>,
    ) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            xlabel: xlabel.into(),
            ylabel: ylabel.into(),
            series: Vec::new(),
        }
    }

    /// Append a series (builder style).
    #[must_use]
    pub fn with_series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Overall y range across all series; `None` when empty.
    #[must_use]
    pub fn y_range(&self) -> Option<(f64, f64)> {
        self.series
            .iter()
            .filter_map(Series::y_range)
            .reduce(|(alo, ahi), (blo, bhi)| (alo.min(blo), ahi.max(bhi)))
    }

    /// All distinct x values across series, ascending.
    #[must_use]
    pub fn x_values(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x values"));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        xs
    }

    /// Render as an aligned ASCII table: one row per x, one column per
    /// series.
    #[must_use]
    pub fn to_ascii(&self) -> String {
        let xs = self.x_values();
        let mut headers = vec![self.xlabel.clone()];
        headers.extend(self.series.iter().map(|s| s.label.clone()));
        let mut rows = Vec::with_capacity(xs.len());
        for &x in &xs {
            let mut row = vec![format_num(x)];
            for s in &self.series {
                row.push(s.y_at(x).map_or_else(|| "-".to_owned(), format_num));
            }
            rows.push(row);
        }
        let mut out = format!("# {} — {} [{}]\n", self.id, self.title, self.ylabel);
        out.push_str(&ascii_table(&headers, &rows));
        out
    }

    /// Render as CSV (header row, then one row per x).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let xs = self.x_values();
        let mut out = String::new();
        let mut headers = vec![self.xlabel.clone()];
        headers.extend(self.series.iter().map(|s| s.label.clone()));
        let _ = writeln!(out, "{}", headers.join(","));
        for &x in &xs {
            let mut row = vec![format!("{x}")];
            for s in &self.series {
                row.push(s.y_at(x).map_or_else(String::new, |y| format!("{y}")));
            }
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// A table of string cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Identifier, e.g. `"table2"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (each row the same length as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    #[must_use]
    pub fn new(id: impl Into<String>, title: impl Into<String>, headers: Vec<String>) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row length differs from the header length.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row/header length mismatch");
        self.rows.push(row);
    }

    /// Render as aligned ASCII.
    #[must_use]
    pub fn to_ascii(&self) -> String {
        let mut out = format!("# {} — {}\n", self.id, self.title);
        out.push_str(&ascii_table(&self.headers, &self.rows));
        out
    }

    /// Render as CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// Compact numeric formatting for ASCII output.
fn format_num(v: f64) -> String {
    if v == 0.0 {
        return "0".to_owned();
    }
    let a = v.abs();
    if !(1e-3..1e6).contains(&a) {
        format!("{v:.3e}")
    } else if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.3}")
    }
}

/// Align headers and rows into a fixed-width ASCII table.
fn ascii_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let _ = writeln!(out, "{}", fmt_row(headers, &widths));
    let _ = writeln!(
        out,
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        let _ = writeln!(out, "{}", fmt_row(row, &widths));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Figure {
        Figure::new("figX", "Test", "x", "y")
            .with_series(Series::new("a", vec![(1.0, 10.0), (2.0, 20.0)]))
            .with_series(Series::new("b", vec![(1.0, 5.0), (3.0, 15.0)]))
    }

    #[test]
    fn x_values_merge_and_dedup() {
        assert_eq!(fig().x_values(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn y_lookup_and_range() {
        let f = fig();
        assert_eq!(f.series[0].y_at(2.0), Some(20.0));
        assert_eq!(f.series[1].y_at(2.0), None);
        assert_eq!(f.y_range(), Some((5.0, 20.0)));
    }

    #[test]
    fn ascii_has_all_cells_and_gaps() {
        let s = fig().to_ascii();
        assert!(s.contains("figX"));
        assert!(s.contains("10"));
        assert!(s.contains('-'), "missing-value marker");
    }

    #[test]
    fn csv_round_trip_shape() {
        let csv = fig().to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 4); // header + 3 x values
        assert_eq!(lines[0], "x,a,b");
        assert!(lines[1].starts_with("1,"));
    }

    #[test]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("t", "T", vec!["a".into(), "b".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
        assert!(t.to_ascii().contains("1"));
        assert_eq!(t.to_csv().trim().lines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn ragged_row_panics() {
        let mut t = Table::new("t", "T", vec!["a".into(), "b".into()]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_num(0.0), "0");
        assert_eq!(format_num(42.0), "42");
        assert_eq!(format_num(0.125), "0.125");
        assert!(format_num(1.5e9).contains('e'));
    }
}
