//! The paper's §3 algorithmic analysis, system-agnostic by construction.
//!
//! All quantities are exact operation/byte counts in terms of the
//! hyperparameters (Eqs. 1–9):
//!
//! * FC GEMM ops `2·(4H · H/TP · SL · B)` — Eq. 1
//! * Attention GEMM ops `2·(H/TP · SL · SL · B)` — Eq. 2
//! * Linear GEMM ops `3·2·(H/TP · H · SL · B)` — Eq. 3
//! * Serialized all-reduce bytes `(precision/8)·(H·SL·B)` per AR — Eq. 5
//! * **Amdahl's-law edge** `O((H+SL)/TP)` — Eq. 6
//! * **Slack advantage** `O(SL·B)` — Eq. 9

use twocs_hw::Precision;
use twocs_transformer::Hyperparams;

/// Eq. 1 — forward FC GEMM multiply-add count per layer, per device.
#[must_use]
pub fn fc_gemm_ops(h: u64, sl: u64, b: u64, tp: u64) -> u64 {
    2 * (4 * h * (h / tp) * sl * b)
}

/// Eq. 2 — forward attention GEMM multiply-add count per layer, per
/// device.
#[must_use]
pub fn attention_gemm_ops(h: u64, sl: u64, b: u64, tp: u64) -> u64 {
    2 * ((h / tp) * sl * sl * b)
}

/// Eq. 3 — forward linear (QKV + output projection) GEMM count per layer,
/// per device.
#[must_use]
pub fn linear_gemm_ops(h: u64, sl: u64, b: u64, tp: u64) -> u64 {
    3 * 2 * ((h / tp) * h * sl * b)
}

/// Eq. 4 — overall forward compute ops per layer, per device:
/// `O(H·SL·B/TP · (H + SL))`.
#[must_use]
pub fn overall_compute_ops(h: u64, sl: u64, b: u64, tp: u64) -> u64 {
    // The paper counts FC twice (two FC GEMMs) via the 2·4H² term and
    // attention twice (scores + context).
    2 * fc_gemm_ops(h, sl, b, tp)
        + 2 * attention_gemm_ops(h, sl, b, tp)
        + linear_gemm_ops(h, sl, b, tp)
        + 2 * (h / tp) * h * sl * b // output projection
}

/// Eq. 5 — bytes of one serialized all-reduce of the layer activations.
#[must_use]
pub fn serialized_ar_bytes(h: u64, sl: u64, b: u64, precision: Precision) -> u64 {
    precision.bytes() * h * sl * b
}

/// Eq. 6 — compute's Amdahl's-law edge over serialized communication,
/// in flops per byte: `O((H + SL)/TP)` up to constants.
#[must_use]
pub fn amdahls_edge(h: u64, sl: u64, tp: u64) -> f64 {
    (h + sl) as f64 / tp as f64
}

/// Eq. 7 — FC weight-gradient + error GEMM ops (the overlapped-comm ROI).
#[must_use]
pub fn fc_backward_ops(h: u64, sl: u64, b: u64, tp: u64) -> u64 {
    4 * (4 * h * (h / tp) * sl * b)
}

/// Eq. 8 — bytes of the FC weight-gradient all-reduce.
#[must_use]
pub fn fc_grad_bytes(h: u64, tp: u64, precision: Precision) -> u64 {
    precision.bytes() * 4 * h * (h / tp)
}

/// Eq. 9 — compute's slack advantage over overlapped communication:
/// `O(SL · B)`.
#[must_use]
pub fn slack_advantage(sl: u64, b: u64) -> f64 {
    (sl * b) as f64
}

/// The full algorithmic profile of one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlgorithmicProfile {
    /// Hidden size.
    pub h: u64,
    /// Sequence length.
    pub sl: u64,
    /// Batch size.
    pub b: u64,
    /// Tensor-parallel degree.
    pub tp: u64,
    /// Forward compute ops per layer per device (Eq. 4).
    pub compute_ops: u64,
    /// Serialized AR bytes per layer (4 ARs, Eq. 5).
    pub serialized_bytes: u64,
    /// Amdahl's-law edge (Eq. 6).
    pub edge: f64,
    /// Slack advantage (Eq. 9).
    pub slack: f64,
}

impl AlgorithmicProfile {
    /// Profile a configuration.
    ///
    /// # Panics
    /// Panics if `tp` does not divide `h`.
    #[must_use]
    pub fn new(hyper: &Hyperparams, tp: u64) -> Self {
        assert!(
            tp > 0 && hyper.hidden().is_multiple_of(tp),
            "TP must divide the hidden size"
        );
        let (h, sl, b) = (hyper.hidden(), hyper.seq_len(), hyper.batch());
        Self {
            h,
            sl,
            b,
            tp,
            compute_ops: overall_compute_ops(h, sl, b, tp),
            serialized_bytes: 4 * serialized_ar_bytes(h, sl, b, hyper.precision()),
            edge: amdahls_edge(h, sl, tp),
            slack: slack_advantage(sl, b),
        }
    }

    /// Exact flops-per-serialized-byte ratio (the edge with its
    /// constants).
    #[must_use]
    pub fn flops_per_byte(&self) -> f64 {
        self.compute_ops as f64 / self.serialized_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_eq2_eq3_constants() {
        // Spot values from the formulas.
        assert_eq!(fc_gemm_ops(8, 4, 2, 2), 2 * 4 * 8 * 4 * 4 * 2);
        assert_eq!(attention_gemm_ops(8, 4, 2, 2), 2 * 4 * 4 * 4 * 2);
        assert_eq!(linear_gemm_ops(8, 4, 2, 2), 6 * 4 * 8 * 4 * 2);
    }

    #[test]
    fn eq4_matches_workload_generator() {
        // The algebraic count must equal the FLOPs of the generated
        // forward op graph (both per layer, per device, ff = 4H).
        use twocs_transformer::layer::forward_flops;
        use twocs_transformer::ParallelConfig;
        let hyper = Hyperparams::builder(4096)
            .heads(32)
            .seq_len(2048)
            .batch(2)
            .build()
            .unwrap();
        for tp in [1u64, 4, 16] {
            let algebra = overall_compute_ops(4096, 2048, 2, tp);
            let graph = forward_flops(&hyper, &ParallelConfig::new().tensor(tp));
            assert_eq!(algebra, graph, "TP={tp}");
        }
    }

    #[test]
    fn edge_grows_with_h_and_sl_drops_with_tp() {
        assert!(amdahls_edge(8192, 2048, 8) > amdahls_edge(4096, 2048, 8));
        assert!(amdahls_edge(4096, 4096, 8) > amdahls_edge(4096, 2048, 8));
        assert!(amdahls_edge(4096, 2048, 64) < amdahls_edge(4096, 2048, 8));
    }

    #[test]
    fn slack_is_sl_times_b() {
        assert_eq!(slack_advantage(2048, 4), 8192.0);
    }

    #[test]
    fn eq7_over_eq8_gives_slack_complexity() {
        // ops / elements = 4·SL·B -> O(SL·B).
        let h = 4096;
        let (sl, b, tp) = (1024, 2, 8);
        let ops = fc_backward_ops(h, sl, b, tp);
        let elems = fc_grad_bytes(h, tp, Precision::Fp16) / 2;
        assert_eq!(ops / elems, 4 * sl * b);
    }

    #[test]
    fn profile_is_consistent() {
        let hyper = Hyperparams::builder(8192)
            .heads(64)
            .seq_len(2048)
            .batch(1)
            .build()
            .unwrap();
        let p = AlgorithmicProfile::new(&hyper, 8);
        assert_eq!(p.edge, (8192.0 + 2048.0) / 8.0);
        assert_eq!(p.slack, 2048.0);
        assert!(p.flops_per_byte() > 100.0);
        // Edge is proportional to the exact flops/byte ratio as H, SL vary
        // at fixed TP (same constants).
        let hyper2 = Hyperparams::builder(16_384)
            .heads(64)
            .seq_len(2048)
            .batch(1)
            .build()
            .unwrap();
        let p2 = AlgorithmicProfile::new(&hyper2, 8);
        assert!(p2.flops_per_byte() > p.flops_per_byte());
        assert!(p2.edge > p.edge);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn indivisible_tp_rejected() {
        let hyper = Hyperparams::builder(1000).heads(8).build().unwrap();
        let _ = AlgorithmicProfile::new(&hyper, 3);
    }
}
