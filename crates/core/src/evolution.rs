//! Future-hardware analysis (paper §4.3.6, Figures 12 and 13).
//!
//! Historical GPU generations scaled compute FLOPS 2–4× faster than
//! network bandwidth. These sweeps re-run the serialized and overlapped
//! analyses on devices evolved by that *flop-vs.-bw* ratio: serialized
//! communication climbs from 20–50% to 30–65% (2×) and 40–75% (4×), and
//! overlapped communication starts exceeding the compute that should hide
//! it (≥100% = exposed).

use crate::overlapped::{overlap_pct, OverlapSweep};
use crate::report::{Figure, Series};
use crate::serialized::{comm_fraction, sweep_hyper, Method, SerializedSweep};
use crate::sweep::{parallelism, run_tasks};
use twocs_hw::{DeviceSpec, HwEvolution};
use twocs_transformer::ParallelConfig;

/// The flop-vs.-bw ratios studied by the paper.
pub const FLOP_VS_BW_RATIOS: [f64; 3] = [1.0, 2.0, 4.0];

/// Figure 12: serialized-communication fraction under hardware evolution.
/// One series per `(H, SL, scale)` combination.
///
/// The series fan out over [`run_tasks`] with the sweep engine's
/// [`parallelism`] budget — this is the most expensive generator in the
/// registry, and its `(scale, H, SL)` combinations are independent.
/// Series order (scale-major) is preserved regardless of thread count.
#[must_use]
pub fn figure12(device: &DeviceSpec, sweep: &SerializedSweep, method: Method) -> Figure {
    let mut fig = Figure::new(
        "fig12",
        "Serialized communication fraction under flop-vs-bw scaling",
        "TP degree",
        "% of training time",
    );
    let combos: Vec<(f64, u64, u64)> = FLOP_VS_BW_RATIOS
        .iter()
        .flat_map(|&scale| sweep.h_sl_pairs.iter().map(move |&(h, sl)| (scale, h, sl)))
        .collect();
    let series = run_tasks(parallelism(), combos.len(), |i| {
        let (scale, h, sl) = combos[i];
        let evolved = HwEvolution::flop_vs_bw(scale).apply(device);
        let hyper = sweep_hyper(h, sl, sweep.batch);
        let points: Vec<(f64, f64)> = sweep
            .tps
            .iter()
            .filter(|&&tp| tp <= hyper.heads())
            .map(|&tp| {
                let par = ParallelConfig::new().tensor(tp);
                (
                    tp as f64,
                    100.0 * comm_fraction(&evolved, &hyper, &par, method),
                )
            })
            .collect();
        Series::new(format!("H={h} SL={sl} x{scale:.0}"), points)
    });
    for t in series {
        fig = fig.with_series(t.result.unwrap_or_else(|e| panic!("{e}")));
    }
    fig
}

/// Figure 13: overlapped communication as % of compute under hardware
/// evolution. Series fan out like [`figure12`]'s.
#[must_use]
pub fn figure13(device: &DeviceSpec, sweep: &OverlapSweep) -> Figure {
    let mut fig = Figure::new(
        "fig13",
        "Overlapped communication vs compute under flop-vs-bw scaling",
        "SL*B",
        "% of compute",
    );
    let combos: Vec<(f64, u64)> = FLOP_VS_BW_RATIOS
        .iter()
        .flat_map(|&scale| sweep.hs.iter().map(move |&h| (scale, h)))
        .collect();
    let series = run_tasks(parallelism(), combos.len(), |i| {
        let (scale, h) = combos[i];
        let evolved = HwEvolution::flop_vs_bw(scale).apply(device);
        let points: Vec<(f64, f64)> = sweep
            .slbs
            .iter()
            .map(|&slb| {
                (
                    slb as f64,
                    overlap_pct(&evolved, h, slb, sweep.tp, sweep.dp),
                )
            })
            .collect();
        Series::new(format!("H={h} x{scale:.0}"), points)
    });
    for t in series {
        fig = fig.with_series(t.result.unwrap_or_else(|e| panic!("{e}")));
    }
    fig
}

/// The paper's highlighted `(H, SL, TP)` configurations (§4.3.4): models
/// at their memory-required TP degrees.
pub const HIGHLIGHTED_CONFIGS: [(u64, u64, u64); 4] = [
    (4096, 2048, 16),
    (16_384, 2048, 64),
    (65_536, 2048, 256),
    (65_536, 4096, 128),
];

/// The per-scale (min%, max%) serialized-communication band over the
/// highlighted configurations — the numbers quoted in the paper's
/// abstract (20–50% → 30–65% → 40–75%).
#[must_use]
pub fn serialized_bands(device: &DeviceSpec, method: Method) -> Vec<(f64, (f64, f64))> {
    FLOP_VS_BW_RATIOS
        .iter()
        .map(|&scale| {
            let evolved = HwEvolution::flop_vs_bw(scale).apply(device);
            let mut lo = f64::MAX;
            let mut hi = f64::MIN;
            for (h, sl, tp) in HIGHLIGHTED_CONFIGS {
                let f = 100.0
                    * comm_fraction(
                        &evolved,
                        &sweep_hyper(h, sl, 1),
                        &ParallelConfig::new().tensor(tp),
                        method,
                    );
                lo = lo.min(f);
                hi = hi.max(f);
            }
            (scale, (lo, hi))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DeviceSpec {
        DeviceSpec::mi210()
    }

    #[test]
    fn serialized_fraction_rises_with_flop_vs_bw() {
        let bands = serialized_bands(&device(), Method::Simulation);
        assert_eq!(bands.len(), 3);
        for w in bands.windows(2) {
            let (_, (lo_a, hi_a)) = w[0];
            let (_, (lo_b, hi_b)) = w[1];
            assert!(lo_b > lo_a && hi_b > hi_a, "bands must shift up");
        }
    }

    #[test]
    fn bands_match_paper_ranges() {
        // Paper: 20-50% at 1x, 30-65% at 2x, 40-75% at 4x (generous
        // tolerance — the shape matters, not the exact percent).
        let bands = serialized_bands(&device(), Method::Simulation);
        let (_, (lo1, hi1)) = bands[0];
        let (_, (lo2, hi2)) = bands[1];
        let (_, (lo4, hi4)) = bands[2];
        assert!(
            (12.0..=35.0).contains(&lo1) && (40.0..=62.0).contains(&hi1),
            "1x: {lo1}-{hi1}"
        );
        assert!(
            (25.0..=48.0).contains(&lo2) && (55.0..=75.0).contains(&hi2),
            "2x: {lo2}-{hi2}"
        );
        assert!(
            (35.0..=62.0).contains(&lo4) && (65.0..=85.0).contains(&hi4),
            "4x: {lo4}-{hi4}"
        );
    }

    #[test]
    fn evolution_exposes_overlapped_comm() {
        // Fig 13: at 4x, previously-hidden communication exceeds 100% of
        // compute in many configurations.
        let evolved = HwEvolution::flop_vs_bw(4.0).apply(&device());
        let pct = overlap_pct(&evolved, 4096, 1024, 16, 4);
        assert!(pct > 100.0, "4x-evolved overlap {pct}% should be exposed");
        let base_pct = overlap_pct(&device(), 4096, 1024, 16, 4);
        assert!(base_pct < 100.0, "baseline overlap {base_pct}% is hidden");
    }

    #[test]
    fn figure13_has_series_per_h_per_scale() {
        let sweep = OverlapSweep {
            hs: vec![4096, 16_384],
            slbs: vec![1024, 4096],
            tp: 16,
            dp: 4,
        };
        let fig = figure13(&device(), &sweep);
        assert_eq!(fig.series.len(), 2 * FLOP_VS_BW_RATIOS.len());
    }

    #[test]
    fn overlap_scales_roughly_linearly_with_ratio() {
        // Compute shrinks by the ratio while comm stands still, so the
        // overlap percentage grows ~proportionally (modulo launch
        // overheads).
        let base = overlap_pct(&device(), 16_384, 4096, 16, 4);
        let evolved = HwEvolution::flop_vs_bw(2.0).apply(&device());
        let doubled = overlap_pct(&evolved, 16_384, 4096, 16, 4);
        let ratio = doubled / base;
        assert!((1.6..=2.2).contains(&ratio), "ratio {ratio}");
    }
}
