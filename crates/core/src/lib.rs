//! # twocs-core — the Comp-vs.-Comm analysis
//!
//! This crate is the paper's primary contribution: a multi-axial
//! (algorithmic, empirical, hardware-evolution) analysis of how compute
//! and communication scale relative to one another as Transformers grow
//! and hardware evolves.
//!
//! * [`algorithmic`] — the closed-form op/byte counts of §3 (Eqs. 1–9):
//!   compute's *Amdahl's-law edge* `O((H+SL)/TP)` over serialized TP
//!   communication and its *slack advantage* `O(SL·B)` over overlapped DP
//!   communication.
//! * [`trends`] — model-scaling analysis: the memory gap (Fig. 6), the
//!   normalized erosion of edge and slack across the model zoo (Fig. 7),
//!   and the required-TP projection (Fig. 9(b)).
//! * [`serialized`] / [`overlapped`] — the empirical studies of §4.3.4 and
//!   §4.3.5 (Figs. 10 and 11), runnable either on the discrete-event
//!   simulator or through the operator-model projection.
//! * [`evolution`] — the future-hardware studies of §4.3.6 (Figs. 12, 13).
//! * [`case_study`] — the §4.3.7 end-to-end case study (Fig. 14),
//!   including the slow-inter-node + interference scenario.
//! * [`accuracy`] — the §4.3.8 operator-model validation (Fig. 15) and
//!   profiling-cost accounting.
//! * [`techniques`] — quantified §5 remedies (comm offload, PIN,
//!   fine-grained overlap) on a communication-dominated workload.
//! * [`sensitivity`] — robustness of the headline bands to the calibrated
//!   substrate constants.
//! * [`experiments`] — a registry mapping every paper table/figure to a
//!   runnable generator; [`report`] renders results as ASCII or CSV.
//!
//! ## Example
//!
//! ```
//! use twocs_core::experiments;
//! use twocs_hw::DeviceSpec;
//!
//! let defs = experiments::all();
//! assert!(defs.iter().any(|d| d.id == "fig10"));
//! // Run one experiment and render it.
//! let fig7 = experiments::by_id("fig07").expect("registered");
//! let out = (fig7.run)(&DeviceSpec::mi210());
//! assert!(!out.to_ascii().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accuracy;
pub mod algorithmic;
pub mod case_study;
pub mod evolution;
pub mod experiments;
pub mod grid;
pub mod inference;
pub mod overlapped;
pub mod planner;
pub mod report;
pub mod sensitivity;
pub mod serialized;
pub mod sweep;
pub mod techniques;
pub mod trends;

pub use algorithmic::AlgorithmicProfile;
pub use experiments::{ExperimentDef, ExperimentOutput};
pub use grid::{GridIndex, GridPointsIter};
pub use inference::{InferenceIteration, Workload};
pub use planner::{eval_chunk, FactoredPlan, PlannerMode};
pub use report::{Figure, Series, Table};
pub use sweep::{
    eval_grid_point, run_experiments, GridChunk, GridExecutor, GridPoint, GridSweep, LocalExecutor,
    PointResults, SweepRun, SweepSummary,
};
