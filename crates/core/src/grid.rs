//! Lazy, random-access indexing over a [`GridSweep`]'s pruned point
//! space — the seam that lets million-point grids flow through the sweep
//! fabric without ever materializing `Vec<GridPoint>` for the whole
//! grid.
//!
//! [`GridSweep::points`] builds the full point list eagerly, which is
//! fine for figure-sized grids but is exactly the RAM ceiling ROADMAP
//! item 3 calls out: the coordinator held the entire grid *and* the
//! entire result vector in memory. [`GridIndex`] factors the pruned
//! cross product instead: the surviving `(H, SL, TP)` triples (pruning
//! only ever inspects those three axes plus the batch) and the filtered
//! inner axis lists. Every point is then addressable in O(1) by its
//! grid-order rank via mixed-radix decoding, so a chunk's points can be
//! regenerated on demand from `(chunk index, chunk size)` — the unit the
//! journal and the distributed fabric identify work by.
//!
//! The index is order-faithful by construction: `index.point(i)` equals
//! `sweep.points()[i]` for every `i` (property-tested below), so chunked
//! streaming output stays byte-identical to the in-memory path.

use crate::serialized::{realistic_tp, sweep_hyper, Method};
use crate::sweep::{GridPoint, GridSweep, Workload};

/// Random-access view of a [`GridSweep`]'s pruned point space.
///
/// Memory is O(surviving triples + axis values) — independent of the
/// point count, which is `triples × ratios × axis tuples`.
#[derive(Debug, Clone, PartialEq)]
pub struct GridIndex {
    /// Surviving `(H, SL, TP)` triples, in grid order.
    triples: Vec<(u64, u64, u64)>,
    /// Flop-vs-bw ratios (never pruned, duplicates preserved).
    ratios: Vec<f64>,
    /// Valid `(experts, top_k)` pairs, in nested list order.
    pairs: Vec<(u64, u64)>,
    /// Non-zero pipeline stage counts, in list order.
    stages: Vec<u64>,
    /// Non-zero micro-batch counts, in list order.
    micros: Vec<u64>,
    /// Non-zero sequence-parallel degrees, in list order.
    sps: Vec<u64>,
}

impl GridIndex {
    /// Build the index for `sweep`, applying exactly the pruning rules
    /// of [`GridSweep::points`].
    #[must_use]
    pub fn new(sweep: &GridSweep) -> Self {
        let mut triples = Vec::new();
        for &h in &sweep.hs {
            if h == 0 || h % 256 != 0 || sweep.batch == 0 {
                continue;
            }
            for &sl in &sweep.sls {
                if sl == 0 {
                    continue;
                }
                for &tp in &sweep.tps {
                    if tp == 0
                        || !realistic_tp(h, tp)
                        || tp > sweep_hyper(h, sl, sweep.batch).heads()
                    {
                        continue;
                    }
                    triples.push((h, sl, tp));
                }
            }
        }
        let mut pairs = Vec::new();
        for &experts in &sweep.experts {
            for &top_k in &sweep.top_ks {
                if experts == 0 || top_k == 0 || top_k > experts {
                    continue;
                }
                pairs.push((experts, top_k));
            }
        }
        Self {
            triples,
            ratios: sweep.flop_vs_bw.clone(),
            pairs,
            stages: sweep.stages.iter().copied().filter(|&s| s != 0).collect(),
            micros: sweep
                .micro_batches
                .iter()
                .copied()
                .filter(|&m| m != 0)
                .collect(),
            sps: sweep.sps.iter().copied().filter(|&s| s != 0).collect(),
        }
    }

    /// Points per surviving `(H, SL, TP)` triple: the full inner cross
    /// product of ratio and extended-axis values.
    fn inner(&self) -> usize {
        self.ratios.len()
            * self.pairs.len()
            * self.stages.len()
            * self.micros.len()
            * self.sps.len()
    }

    /// Total surviving points — `sweep.points().len()` without building
    /// the list.
    #[must_use]
    pub fn len(&self) -> usize {
        self.triples.len() * self.inner()
    }

    /// Whether the grid has no surviving points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The surviving `(H, SL, TP)` triples, in grid order.
    #[must_use]
    pub fn triples(&self) -> &[(u64, u64, u64)] {
        &self.triples
    }

    /// The ratio axis (unpruned, duplicates preserved).
    #[must_use]
    pub fn ratios(&self) -> &[f64] {
        &self.ratios
    }

    /// The valid `(experts, top_k)` pairs in grid order.
    #[must_use]
    pub fn expert_pairs(&self) -> &[(u64, u64)] {
        &self.pairs
    }

    /// Distinct extended-axis tuples in grid order — the inner cross
    /// product of `(experts, top_k) × stages × micro_batches × sp`.
    pub fn axis_tuples(&self) -> impl Iterator<Item = (u64, u64, u64, u64, u64)> + '_ {
        self.pairs.iter().flat_map(move |&(e, k)| {
            self.stages.iter().flat_map(move |&s| {
                self.micros
                    .iter()
                    .flat_map(move |&m| self.sps.iter().map(move |&sp| (e, k, s, m, sp)))
            })
        })
    }

    /// Whether any surviving point departs from the neutral extended
    /// axes — equivalently, whether
    /// `sweep.points().iter().any(|p| !p.axes_default())`. This decides
    /// the CSV header shape up front, which is what lets streaming
    /// renderers emit the legacy 6-column artifact byte-for-byte
    /// without seeing the whole grid.
    #[must_use]
    pub fn extended(&self) -> bool {
        !self.is_empty()
            && (self.pairs.iter().any(|&(e, k)| e > 1 || k > 1)
                || self.stages.iter().any(|&s| s > 1)
                || self.micros.iter().any(|&m| m > 1)
                || self.sps.iter().any(|&s| s > 1))
    }

    /// The point at grid-order rank `i` — equal to `sweep.points()[i]`.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn point(&self, i: usize) -> GridPoint {
        assert!(i < self.len(), "point rank {i} out of range {}", self.len());
        let inner = self.inner();
        let (h, sl, tp) = self.triples[i / inner];
        let mut rem = i % inner;
        let strides = [
            self.pairs.len() * self.stages.len() * self.micros.len() * self.sps.len(),
            self.stages.len() * self.micros.len() * self.sps.len(),
            self.micros.len() * self.sps.len(),
            self.sps.len(),
        ];
        let ri = rem / strides[0];
        rem %= strides[0];
        let pi = rem / strides[1];
        rem %= strides[1];
        let si = rem / strides[2];
        rem %= strides[2];
        let mi = rem / strides[3];
        let spi = rem % strides[3];
        let (experts, top_k) = self.pairs[pi];
        GridPoint {
            h,
            sl,
            tp,
            ratio: self.ratios[ri],
            experts,
            top_k,
            stages: self.stages[si],
            micro_batches: self.micros[mi],
            sp: self.sps[spi],
        }
    }

    /// Materialize the points of ranks `start..end` (clamped to the
    /// grid), in grid order — the unit a chunk lease or a streaming
    /// renderer needs, O(end − start) memory.
    #[must_use]
    pub fn range(&self, start: usize, end: usize) -> Vec<GridPoint> {
        let end = end.min(self.len());
        (start..end.max(start)).map(|i| self.point(i)).collect()
    }

    /// Iterate every point lazily in grid order.
    #[must_use]
    pub fn iter(&self) -> GridPointsIter<'_> {
        GridPointsIter { index: self, at: 0 }
    }

    /// Number of `chunk_size`-point chunks covering the grid.
    ///
    /// # Panics
    /// Panics if `chunk_size` is zero.
    #[must_use]
    pub fn chunk_count(&self, chunk_size: usize) -> usize {
        assert!(chunk_size > 0, "chunk_size must be non-zero");
        self.len().div_ceil(chunk_size)
    }

    /// The points of chunk `chunk` under a `chunk_size` split — equal to
    /// `sweep.chunks(chunk_size)[chunk].points` without materializing
    /// the grid.
    #[must_use]
    pub fn chunk_points(&self, chunk: usize, chunk_size: usize) -> Vec<GridPoint> {
        assert!(chunk_size > 0, "chunk_size must be non-zero");
        let start = chunk * chunk_size;
        self.range(start, start.saturating_add(chunk_size))
    }
}

/// Lazy grid-order point iterator (see [`GridIndex::iter`]).
#[derive(Debug, Clone)]
pub struct GridPointsIter<'a> {
    index: &'a GridIndex,
    at: usize,
}

impl Iterator for GridPointsIter<'_> {
    type Item = GridPoint;

    fn next(&mut self) -> Option<GridPoint> {
        if self.at >= self.index.len() {
            return None;
        }
        let p = self.index.point(self.at);
        self.at += 1;
        Some(p)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.index.len() - self.at;
        (left, Some(left))
    }
}

impl ExactSizeIterator for GridPointsIter<'_> {}

/// FNV-1a 64-bit, the std-only stable hash the grid fingerprint uses
/// (std's `DefaultHasher` is explicitly unstable across releases, and
/// the fingerprint is persisted in journals and crosses the dist wire).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv1a(pub u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub(crate) fn new() -> Self {
        Self(Self::OFFSET)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    pub(crate) fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
}

/// Stable one-byte tag for [`Method`], used by the fingerprint (and
/// mirrored by the journal spec encoding in `twocs-store`).
fn method_tag(m: Method) -> u8 {
    match m {
        Method::Simulation => 0,
        Method::Projection => 1,
    }
}

/// Stable one-byte tag for [`Workload`].
fn workload_tag(w: Workload) -> u8 {
    match w {
        Workload::Training => 0,
        Workload::Prefill => 1,
        Workload::Decode => 2,
    }
}

impl GridSweep {
    /// Build the lazy random-access index over this sweep's pruned point
    /// space — O(axes) memory however many points the grid has.
    #[must_use]
    pub fn index(&self) -> GridIndex {
        GridIndex::new(self)
    }

    /// Number of surviving grid points, without materializing them.
    #[must_use]
    pub fn point_count(&self) -> usize {
        self.index().len()
    }

    /// A stable 64-bit fingerprint of the sweep *specification* — every
    /// axis list verbatim (order and duplicates included), the batch,
    /// the method, and the workload. Two sweeps share a fingerprint iff
    /// they describe the same grid in the same order, so it keys the
    /// journal replay validation and the dist workers' factored-plan
    /// cache. FNV-1a over a length-prefixed canonical encoding; f64
    /// ratios hash by bit pattern.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        for list in [
            &self.hs,
            &self.sls,
            &self.tps,
            &self.experts,
            &self.top_ks,
            &self.stages,
            &self.micro_batches,
            &self.sps,
        ] {
            h.write_u64(list.len() as u64);
            for &v in list.iter() {
                h.write_u64(v);
            }
        }
        h.write_u64(self.flop_vs_bw.len() as u64);
        for &r in &self.flop_vs_bw {
            h.write_u64(r.to_bits());
        }
        h.write_u64(self.batch);
        h.write(&[method_tag(self.method), workload_tag(self.workload)]);
        h.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twocs_testkit::cases;

    fn arbitrary_sweep(rng: &mut twocs_testkit::Rng) -> GridSweep {
        let pick = |rng: &mut twocs_testkit::Rng, candidates: &[u64], max: usize| -> Vec<u64> {
            let n = rng.usize_in(1..max + 1);
            (0..n).map(|_| *rng.choose(candidates)).collect()
        };
        GridSweep {
            hs: pick(rng, &[0, 100, 2048, 4096, 16_384, 65_536], 3),
            sls: pick(rng, &[0, 512, 2048, 4096], 2),
            tps: pick(rng, &[0, 1, 4, 16, 64, 256, 1024], 3),
            flop_vs_bw: vec![1.0, 2.0, 4.0][..rng.usize_in(1..4)].to_vec(),
            experts: pick(rng, &[0, 1, 2, 8], 2),
            top_ks: pick(rng, &[0, 1, 2, 4], 2),
            stages: pick(rng, &[0, 1, 4], 2),
            micro_batches: pick(rng, &[0, 1, 8], 2),
            sps: pick(rng, &[0, 1, 2], 2),
            batch: rng.u64_in(0..3),
            method: Method::Projection,
            workload: Workload::Training,
        }
    }

    #[test]
    fn index_matches_materialized_points_everywhere() {
        cases(60, |rng| {
            let sweep = arbitrary_sweep(rng);
            let points = sweep.points();
            let index = sweep.index();
            assert_eq!(index.len(), points.len(), "{sweep:?}");
            assert_eq!(sweep.point_count(), points.len());
            for (i, p) in points.iter().enumerate() {
                assert_eq!(index.point(i), *p, "rank {i} of {sweep:?}");
            }
            let collected: Vec<GridPoint> = index.iter().collect();
            assert_eq!(collected, points);
            assert_eq!(
                index.extended(),
                points.iter().any(|p| !p.axes_default()),
                "{sweep:?}"
            );
        });
    }

    #[test]
    fn chunk_points_match_materialized_chunks() {
        cases(30, |rng| {
            let sweep = arbitrary_sweep(rng);
            let index = sweep.index();
            if index.is_empty() {
                return;
            }
            let chunk_size = rng.usize_in(1..index.len() + 3);
            let chunks = sweep.chunks(chunk_size);
            assert_eq!(index.chunk_count(chunk_size), chunks.len());
            for (c, chunk) in chunks.iter().enumerate() {
                assert_eq!(
                    index.chunk_points(c, chunk_size),
                    chunk.points,
                    "chunk {c} of {sweep:?}"
                );
            }
        });
    }

    #[test]
    fn default_grid_indexes_exactly() {
        let sweep = GridSweep::default();
        assert_eq!(sweep.point_count(), sweep.points().len());
        assert!(!sweep.index().extended());
    }

    #[test]
    fn fingerprint_separates_specs_and_is_stable() {
        let base = GridSweep::default();
        assert_eq!(base.fingerprint(), GridSweep::default().fingerprint());
        let mut other = GridSweep::default();
        other.batch = 2;
        assert_ne!(base.fingerprint(), other.fingerprint());
        let mut reordered = GridSweep::default();
        reordered.hs.reverse();
        assert_ne!(base.fingerprint(), reordered.fingerprint());
        let mut method = GridSweep::default();
        method.method = Method::Projection;
        assert_ne!(base.fingerprint(), method.fingerprint());
        // List boundaries are length-prefixed: moving a value between
        // adjacent lists must change the hash.
        let a = GridSweep {
            hs: vec![4096, 2048],
            sls: vec![],
            ..GridSweep::default()
        };
        let b = GridSweep {
            hs: vec![4096],
            sls: vec![2048],
            ..GridSweep::default()
        };
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn empty_grid_index_is_well_behaved() {
        let sweep = GridSweep {
            hs: vec![100],
            ..GridSweep::default()
        };
        let index = sweep.index();
        assert!(index.is_empty());
        assert!(!index.extended());
        assert_eq!(index.range(0, 10), Vec::new());
        assert_eq!(index.chunk_count(4), 0);
    }
}
