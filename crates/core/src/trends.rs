//! Model-scaling trend analysis (paper §3.5 and §4.3.2).
//!
//! * [`memory_gap_figure`] — Figure 6: model memory demand (the paper's
//!   `H·SL` proxy plus real training-state accounting) vs. device memory
//!   capacity, by year.
//! * [`normalized_scaling_figure`] — Figure 7: compute's slack (`SL·B`)
//!   and edge (`(H+SL)/TP`) across the zoo, normalized to BERT. The paper
//!   observes slack dropping ~75% and edge ~80%.
//! * [`tp_requirement_figure`] — Figure 9(b): the required TP scaling
//!   `p/s` relative to the 3.9B Megatron BERT baseline (paper: 40–60×,
//!   i.e. TP ≈ 250–550 at base 8).

use crate::algorithmic::{amdahls_edge, slack_advantage};
use crate::report::{Figure, Series};
use twocs_hw::DeviceSpec;
use twocs_transformer::memory::paper_tp_projection;
use twocs_transformer::zoo::{self, ZooModel};

/// Representative per-replica batch size for each zoo model — the paper's
/// observation that memory pressure forced `B` down to 1 for the largest
/// models (§3.5, §4.3.2).
#[must_use]
pub fn representative_batch(model: &ZooModel) -> u64 {
    match model.year {
        ..=2018 => 16, // BERT era: models fit with room to spare
        2019 => 8,     // GPT-2 / Megatron-LM / T5 era
        2020 => 4,     // T-NLG / GPT-3 era
        2021 => 2,     // MT-NLG era
        _ => 1,        // PaLM and beyond
    }
}

/// Representative TP degree for each zoo model, derived from the paper's
/// `base_TP · p/s` projection against the 3.9B Megatron BERT (TP = 8),
/// rounded to the next power of two and capped at the paper's studied
/// maximum of 256.
#[must_use]
pub fn representative_tp(model: &ZooModel) -> u64 {
    let base = zoo::megatron_bert_3_9b();
    if model.reported_params_b <= base.reported_params_b {
        return 1;
    }
    let projected = paper_tp_projection(
        8.0,
        model.reported_params_b / base.reported_params_b,
        capacity_scale_since_2019(model.year),
    );
    (projected.max(1.0) as u64).next_power_of_two().min(256)
}

/// Device memory-capacity scaling ratio from 2019 to `year` (the paper's
/// `s`), following the mainstream training-GPU line (V100 32 GB -> A100
/// 80 GB -> H100 80 GB). The MI250X's dual-die 128 GB is deliberately
/// excluded — the paper's 40-60x projection band implies s ~ 2.5.
#[must_use]
pub fn capacity_scale_since_2019(year: u16) -> f64 {
    let cap_2019 = 32.0; // GiB: V100/MI50 class
    let mainstream = [DeviceSpec::v100(), DeviceSpec::a100(), DeviceSpec::h100()];
    let cap = mainstream
        .into_iter()
        .filter(|d| d.year() <= year.max(2019))
        .map(|d| d.mem_capacity() as f64 / (1u64 << 30) as f64)
        .fold(cap_2019, f64::max);
    cap / cap_2019
}

/// Figure 6: model memory demand vs. device capacity over years. Demand
/// uses the paper's `H·SL` proxy normalized to BERT; capacity uses the
/// largest device of each year, also normalized to the 2018 level.
#[must_use]
pub fn memory_gap_figure() -> Figure {
    let models = zoo::table2();
    let base_proxy = models[0].memory_proxy() as f64;
    // Demand frontier: the largest H*SL seen up to each year (several
    // models share a year).
    let mut demand: Vec<(f64, f64)> = Vec::new();
    let mut frontier = 0.0f64;
    for m in &models {
        frontier = frontier.max(m.memory_proxy() as f64 / base_proxy);
        match demand.last_mut() {
            Some(last) if last.0 == f64::from(m.year) => last.1 = frontier,
            _ => demand.push((f64::from(m.year), frontier)),
        }
    }

    let mut capacity: Vec<(f64, f64)> = Vec::new();
    let base_cap = 32.0f64;
    for year in 2018..=2025u16 {
        let mut best = 0.0f64;
        for d in DeviceSpec::catalog() {
            if d.year() <= year {
                best = best.max(d.mem_capacity() as f64 / (1u64 << 30) as f64);
            }
        }
        if best > 0.0 {
            capacity.push((f64::from(year), best / base_cap));
        }
    }

    Figure::new(
        "fig06",
        "Model memory demand (H*SL proxy) vs device memory capacity",
        "year",
        "growth relative to 2018",
    )
    .with_series(Series::new("model demand (H*SL, rel. BERT)", demand))
    .with_series(Series::new("device capacity (rel. 32 GiB)", capacity))
}

/// Figure 7: slack (`SL·B`) and edge (`(H+SL)/TP`) across the zoo,
/// normalized to BERT. X-axis is the model index in chronological order.
#[must_use]
pub fn normalized_scaling_figure() -> Figure {
    let models = zoo::table2();
    let bert = &models[0];
    let bert_slack = slack_advantage(bert.seq_len, representative_batch(bert));
    let bert_edge = amdahls_edge(bert.hidden, bert.seq_len, representative_tp(bert));

    let mut slack_series = Vec::new();
    let mut edge_series = Vec::new();
    for (i, m) in models.iter().enumerate() {
        let x = i as f64;
        let slack = slack_advantage(m.seq_len, representative_batch(m)) / bert_slack;
        let edge = amdahls_edge(m.hidden, m.seq_len, representative_tp(m)) / bert_edge;
        slack_series.push((x, slack));
        edge_series.push((x, edge));
    }

    Figure::new(
        "fig07",
        "Algorithmic scaling of slack and edge, normalized to BERT",
        "model (chronological index)",
        "relative to BERT",
    )
    .with_series(Series::new("slack (SL*B)", slack_series))
    .with_series(Series::new("edge ((H+SL)/TP)", edge_series))
}

/// Figure 9(b) rows: for each model larger than the 3.9B Megatron BERT
/// baseline, its size ratio `p`, capacity scale `s`, and required TP
/// scale `p/s`.
#[must_use]
pub fn tp_requirement_rows() -> Vec<(ZooModel, f64, f64, f64)> {
    let base = zoo::megatron_bert_3_9b();
    zoo::table2()
        .into_iter()
        .filter(|m| m.reported_params_b > base.reported_params_b)
        .map(|m| {
            let p = m.reported_params_b / base.reported_params_b;
            let s = capacity_scale_since_2019(m.year);
            let ps = p / s;
            (m, p, s, ps)
        })
        .collect()
}

/// Figure 9(b): required TP scaling `p/s` per model (x = index in
/// chronological order; several models share a year).
#[must_use]
pub fn tp_requirement_figure() -> Figure {
    let points: Vec<(f64, f64)> = tp_requirement_rows()
        .into_iter()
        .enumerate()
        .map(|(i, (_, _, _, ps))| (i as f64, ps))
        .collect();
    Figure::new(
        "fig09b",
        "Required TP scaling (p/s) relative to Megatron-BERT 3.9B",
        "model (chronological index)",
        "TP scale factor p/s",
    )
    .with_series(Series::new("p/s", points))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_trend_is_monotone_down() {
        let models = zoo::table2();
        let batches: Vec<u64> = models.iter().map(representative_batch).collect();
        assert!(batches.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(*batches.last().unwrap(), 1);
        assert_eq!(batches[0], 16);
    }

    #[test]
    fn memory_gap_widens() {
        // Fig. 6's takeaway: demand outgrows capacity.
        let fig = memory_gap_figure();
        let demand = &fig.series[0];
        let capacity = &fig.series[1];
        let d_final = demand.points.last().unwrap().1;
        let c_final = capacity.points.last().unwrap().1;
        assert!(
            d_final > 10.0 * c_final,
            "demand {d_final} should dwarf capacity {c_final}"
        );
    }

    #[test]
    fn slack_drops_about_75_percent() {
        // Paper: "the compute's slack is reduced by ~75%".
        let fig = normalized_scaling_figure();
        let slack = &fig.series[0];
        let last = slack.points.last().unwrap().1;
        assert!((0.15..=0.40).contains(&last), "final slack {last}");
    }

    #[test]
    fn edge_drops_about_80_percent() {
        // Paper: "compute's edge drops by ~80%".
        let fig = normalized_scaling_figure();
        let edge = &fig.series[1];
        let last = edge.points.last().unwrap().1;
        assert!((0.05..=0.35).contains(&last), "final edge {last}");
    }

    #[test]
    fn tp_requirement_reaches_paper_band() {
        // Paper: p/s of 40-60x for the largest models.
        let fig = tp_requirement_figure();
        let (_, max_ps) = fig.series[0]
            .points
            .iter()
            .copied()
            .fold((0.0, 0.0), |acc, p| if p.1 > acc.1 { p } else { acc });
        assert!((35.0..=70.0).contains(&max_ps), "max p/s {max_ps}");
    }

    #[test]
    fn representative_tp_band_matches_section_4_3_2() {
        // base_TP (8) x p/s in 40-60 -> required TP ~250-550, capped 256.
        let mt_nlg = zoo::by_name("MT-NLG").unwrap();
        let tp = representative_tp(&mt_nlg);
        assert_eq!(tp, 256);
        let bert = zoo::by_name("BERT").unwrap();
        assert_eq!(representative_tp(&bert), 1);
    }

    #[test]
    fn capacity_scale_grows_with_year() {
        assert!(capacity_scale_since_2019(2022) > capacity_scale_since_2019(2019));
        assert!((capacity_scale_since_2019(2019) - 1.0).abs() < 1e-9);
    }
}
