//! Factored grid-sweep evaluation: precompute per-axis tables once,
//! assemble each point from lookups.
//!
//! A [`GridSweep`](crate::sweep::GridSweep) is a cross product of axes,
//! and under [`Method::Projection`] the per-point model is
//! axis-separable: the projection baseline (one profiled layer plus the
//! measured all-reduce curve, Eqs. 10–12) depends only on the evolved
//! *device* — i.e. on the flop-vs-bw ratio axis — and the serialized
//! all-reduce term depends only on `(H, SL)` activation bytes per
//! device. The naive path rebuilds all of that from scratch for every
//! point; [`FactoredPlan`] builds it once per distinct axis value and
//! turns evaluation into `O(Σ axis sizes + points × combine)`, where the
//! combine is the cheap scaling-law arithmetic.
//!
//! **Bit-identity is the contract**: the plan assembles each point from
//! the *same* shared sub-expressions (`ProjectionModel::projected_compute`,
//! `serialized_ar_time`, `ProjectedIteration::serialized_comm_fraction`,
//! `overlap_pct`) the naive [`eval_grid_point`] path evaluates, so the
//! two paths produce bit-equal `f64`s and byte-identical CSV on any
//! grid. That is what lets local, serve, and distributed executors pick
//! a planner freely without a protocol or output change.
//!
//! [`Method::Simulation`] runs the discrete-event engine per point —
//! there is nothing axis-separable to hoist — so simulation grids (and
//! malformed points that the naive path reports as per-point errors)
//! fall back to naive evaluation; [`PlannerMode::Auto`] makes that
//! decision per grid.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::overlapped::overlap_pct;
use crate::serialized::{projection_baseline, sweep_hyper, Method};
use crate::sweep::{eval_grid_point, GridPoint, PointResults};
use twocs_hw::{DeviceSpec, HwEvolution};
use twocs_opmodel::{ProjectedIteration, ProjectionModel};
use twocs_transformer::{Hyperparams, ParallelConfig};

/// Which evaluation path a sweep should take.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlannerMode {
    /// Factored evaluation where the grid supports it, naive otherwise —
    /// the default: output is bit-identical either way, so this is
    /// purely a performance decision.
    #[default]
    Auto,
    /// Always evaluate each point with the full model ([`eval_grid_point`]).
    Naive,
    /// Factored evaluation; still falls back to naive on grids the
    /// planner cannot factor (simulation method, malformed points).
    Factored,
}

impl PlannerMode {
    /// Build the factored plan this mode allows for `points`, or `None`
    /// when the grid should be evaluated naively. A panic during plan
    /// construction also falls back to naive, so planning can never make
    /// a sweep fail that would have succeeded point-by-point.
    #[must_use]
    pub fn plan(
        self,
        device: &DeviceSpec,
        points: &[GridPoint],
        batch: u64,
        method: Method,
    ) -> Option<FactoredPlan> {
        match self {
            PlannerMode::Naive => None,
            PlannerMode::Auto | PlannerMode::Factored => catch_unwind(AssertUnwindSafe(|| {
                FactoredPlan::build(device, points, batch, method)
            }))
            .ok()
            .flatten(),
        }
    }
}

impl std::fmt::Display for PlannerMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PlannerMode::Auto => "auto",
            PlannerMode::Naive => "naive",
            PlannerMode::Factored => "factored",
        })
    }
}

impl std::str::FromStr for PlannerMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(PlannerMode::Auto),
            "naive" => Ok(PlannerMode::Naive),
            "factored" => Ok(PlannerMode::Factored),
            other => Err(format!(
                "unknown planner `{other}` (expected auto, naive, or factored)"
            )),
        }
    }
}

/// Per-axis tables for one point set: everything that does not vary with
/// TP is built once per distinct axis value, and [`FactoredPlan::eval`]
/// assembles each point from lookups plus the shared combine.
#[derive(Debug, Clone)]
pub struct FactoredPlan {
    batch: u64,
    /// The unevolved device the plan was built from, for the naive
    /// fallback on points outside the plan's axes.
    base_device: DeviceSpec,
    /// Distinct flop-vs-bw ratios (by bit pattern), first-seen order.
    ratio_idx: HashMap<u64, usize>,
    /// Evolved device per ratio — `HwEvolution` applied exactly as
    /// [`eval_grid_point`] does.
    devices: Vec<DeviceSpec>,
    /// One projection baseline per evolved device (the dominant
    /// per-point cost of the naive path, hoisted to the ratio axis).
    models: Vec<ProjectionModel>,
    /// Distinct `(H, SL)` shapes, first-seen order.
    shape_idx: HashMap<(u64, u64), usize>,
    /// Sweep hyperparameters per shape.
    hypers: Vec<Hyperparams>,
    /// Serialized TP all-reduce time per `[shape][ratio]` — Eq. 12
    /// priced once per activation size per device, reused across the
    /// whole TP axis.
    serialized_ar: Vec<Vec<f64>>,
}

impl FactoredPlan {
    /// Build per-axis tables for `points`, or `None` if the point set
    /// cannot be factored: the simulation method (the discrete-event
    /// engine is evaluated whole, per point) or any point the naive path
    /// would reject with a panic (the per-point `error` contract must be
    /// preserved, so such grids run naively).
    #[must_use]
    pub fn build(
        device: &DeviceSpec,
        points: &[GridPoint],
        batch: u64,
        method: Method,
    ) -> Option<Self> {
        if method != Method::Projection || points.is_empty() {
            return None;
        }
        let valid = points
            .iter()
            .all(|p| batch > 0 && p.h > 0 && p.h % 256 == 0 && p.sl > 0 && p.tp > 0);
        if !valid {
            return None;
        }

        let _span = twocs_obs::span("factored plan", "sweep");
        let mut ratio_idx = HashMap::new();
        let mut devices = Vec::new();
        let mut models = Vec::new();
        let mut shape_idx = HashMap::new();
        let mut hypers: Vec<Hyperparams> = Vec::new();
        for p in points {
            ratio_idx.entry(p.ratio.to_bits()).or_insert_with(|| {
                // Mirror eval_grid_point: evolve only for ratios above 1.
                let dev = if p.ratio > 1.0 {
                    HwEvolution::flop_vs_bw(p.ratio).apply(device)
                } else {
                    device.clone()
                };
                models.push(ProjectionModel::from_baseline(&projection_baseline(), &dev));
                devices.push(dev);
                devices.len() - 1
            });
            shape_idx.entry((p.h, p.sl)).or_insert_with(|| {
                hypers.push(sweep_hyper(p.h, p.sl, batch));
                hypers.len() - 1
            });
        }
        let serialized_ar = hypers
            .iter()
            .map(|hyper| models.iter().map(|m| m.serialized_ar_time(hyper)).collect())
            .collect();
        twocs_obs::metrics::global()
            .counter("sweep.factored_plans")
            .inc();

        Some(Self {
            batch,
            base_device: device.clone(),
            ratio_idx,
            devices,
            models,
            shape_idx,
            hypers,
            serialized_ar,
        })
    }

    /// Number of distinct `(H, SL)` shapes the plan tabulated.
    #[must_use]
    pub fn shapes(&self) -> usize {
        self.hypers.len()
    }

    /// Number of distinct flop-vs-bw ratios the plan tabulated.
    #[must_use]
    pub fn ratios(&self) -> usize {
        self.devices.len()
    }

    /// Evaluate one grid point from the tables. Bit-identical to
    /// [`eval_grid_point`] by construction: the combine runs the same
    /// shared sub-expressions, only their inputs come from tables. A
    /// point outside the plan's axes (possible only if callers evaluate
    /// points they did not build the plan from) falls back to the naive
    /// kernel.
    #[must_use]
    pub fn eval(&self, p: GridPoint) -> (f64, f64) {
        let (Some(&ri), Some(&si)) = (
            self.ratio_idx.get(&p.ratio.to_bits()),
            self.shape_idx.get(&(p.h, p.sl)),
        ) else {
            return eval_grid_point(&self.base_device, p, self.batch, Method::Projection);
        };
        let model = &self.models[ri];
        let hyper = &self.hypers[si];
        let parallel = ParallelConfig::new().tensor(p.tp);
        let (compute, backward_compute) = model.projected_compute(hyper, p.tp);
        let serialized_comm = if p.tp > 1 {
            self.serialized_ar[si][ri]
        } else {
            0.0
        };
        let overlapped_comm = if parallel.dp() > 1 {
            model.overlapped_ar_time(hyper, &parallel)
        } else {
            0.0
        };
        let projected = ProjectedIteration {
            layers: hyper.layers() / parallel.pp(),
            compute_per_layer: compute,
            backward_compute_per_layer: backward_compute,
            serialized_comm_per_layer: serialized_comm,
            overlapped_comm_per_layer: overlapped_comm,
        };
        let serialized = 100.0 * projected.serialized_comm_fraction();
        let overlap = overlap_pct(&self.devices[ri], p.h, p.sl * self.batch, p.tp, 4);
        (serialized, overlap)
    }
}

/// Evaluate one chunk of grid points the way a distributed worker (or
/// any other chunk-at-a-time caller) needs: factored when the chunk
/// supports it, naive otherwise, with each point's panic caught and
/// reported as that point's error — never aborting the chunk.
#[must_use]
pub fn eval_chunk(
    device: &DeviceSpec,
    points: &[GridPoint],
    batch: u64,
    method: Method,
) -> PointResults {
    let plan = PlannerMode::Auto.plan(device, points, batch, method);
    points
        .iter()
        .map(|&p| {
            catch_unwind(AssertUnwindSafe(|| match &plan {
                Some(plan) => plan.eval(p),
                None => eval_grid_point(device, p, batch, method),
            }))
            .map_err(|payload| {
                payload
                    .downcast_ref::<&str>()
                    .map(ToString::to_string)
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "grid point panicked".to_owned())
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::GridSweep;

    fn projection_grid() -> GridSweep {
        GridSweep {
            hs: vec![4096, 16_384],
            sls: vec![2048, 4096],
            tps: vec![4, 16, 32],
            flop_vs_bw: vec![1.0, 2.0],
            batch: 1,
            method: Method::Projection,
        }
    }

    #[test]
    fn factored_eval_is_bit_identical_to_naive() {
        let device = DeviceSpec::mi210();
        let grid = projection_grid();
        let points = grid.points();
        let plan = FactoredPlan::build(&device, &points, grid.batch, grid.method)
            .expect("projection grids are factorable");
        for p in points {
            let naive = eval_grid_point(&device, p, grid.batch, grid.method);
            let factored = plan.eval(p);
            assert_eq!(
                (naive.0.to_bits(), naive.1.to_bits()),
                (factored.0.to_bits(), factored.1.to_bits()),
                "point {p:?}: naive {naive:?} vs factored {factored:?}"
            );
        }
    }

    #[test]
    fn plan_tabulates_each_axis_value_once() {
        let device = DeviceSpec::mi210();
        let grid = projection_grid();
        let points = grid.points();
        let plan = FactoredPlan::build(&device, &points, grid.batch, grid.method).unwrap();
        assert_eq!(plan.shapes(), 4); // 2 H × 2 SL
        assert_eq!(plan.ratios(), 2);
    }

    #[test]
    fn simulation_grids_are_not_factored() {
        let device = DeviceSpec::mi210();
        let grid = GridSweep {
            method: Method::Simulation,
            ..projection_grid()
        };
        let points = grid.points();
        assert!(FactoredPlan::build(&device, &points, grid.batch, grid.method).is_none());
        assert!(PlannerMode::Auto
            .plan(&device, &points, grid.batch, grid.method)
            .is_none());
    }

    #[test]
    fn malformed_points_fall_back_to_naive() {
        let device = DeviceSpec::mi210();
        // h not a multiple of 256: the naive path panics per point (and
        // executors report `error`), so the planner must refuse it.
        let points = vec![GridPoint {
            h: 100,
            sl: 2048,
            tp: 4,
            ratio: 1.0,
        }];
        assert!(FactoredPlan::build(&device, &points, 1, Method::Projection).is_none());
        assert!(FactoredPlan::build(&device, &[], 1, Method::Projection).is_none());
    }

    #[test]
    fn naive_mode_never_plans() {
        let device = DeviceSpec::mi210();
        let grid = projection_grid();
        assert!(PlannerMode::Naive
            .plan(&device, &grid.points(), grid.batch, grid.method)
            .is_none());
    }

    #[test]
    fn planner_mode_parses() {
        assert_eq!("auto".parse::<PlannerMode>().unwrap(), PlannerMode::Auto);
        assert_eq!("naive".parse::<PlannerMode>().unwrap(), PlannerMode::Naive);
        assert_eq!(
            "factored".parse::<PlannerMode>().unwrap(),
            PlannerMode::Factored
        );
        assert!("fast".parse::<PlannerMode>().is_err());
    }

    #[test]
    fn eval_chunk_matches_naive_per_point_and_reports_errors() {
        let device = DeviceSpec::mi210();
        let grid = projection_grid();
        let points = grid.points();
        let chunk = eval_chunk(&device, &points, grid.batch, grid.method);
        for (p, r) in points.iter().zip(&chunk) {
            let naive = eval_grid_point(&device, *p, grid.batch, grid.method);
            assert_eq!(r.as_ref().unwrap(), &naive);
        }
        // A malformed point degrades that point, not the chunk.
        let bad = vec![
            GridPoint {
                h: 4096,
                sl: 2048,
                tp: 4,
                ratio: 1.0,
            },
            GridPoint {
                h: 100,
                sl: 2048,
                tp: 4,
                ratio: 1.0,
            },
        ];
        let mixed = eval_chunk(&device, &bad, 1, Method::Projection);
        assert!(mixed[0].is_ok());
        assert!(mixed[1].is_err());
    }
}
