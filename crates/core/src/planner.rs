//! Factored grid-sweep evaluation: precompute per-axis tables once,
//! assemble each point from lookups.
//!
//! A [`GridSweep`](crate::sweep::GridSweep) is a cross product of axes,
//! and under [`Method::Projection`] the per-point model is
//! axis-separable: the projection baseline (one profiled layer plus the
//! measured all-reduce curve, Eqs. 10–12) depends only on the evolved
//! *device* — i.e. on the flop-vs-bw ratio axis — and the serialized
//! all-reduce term depends only on `(H, SL)` activation bytes per
//! device. The naive path rebuilds all of that from scratch for every
//! point; [`FactoredPlan`] builds it once per distinct axis value and
//! turns evaluation into `O(Σ axis sizes + points × combine)`, where the
//! combine is the cheap scaling-law arithmetic.
//!
//! The tables are laid out **struct-of-arrays**: flat `Vec<f64>` columns
//! indexed by `(shape, ratio, tp)` (see [`FactoredPlan::build`]), so
//! [`FactoredPlan::eval_batch`] walks a lease-sized chunk of points as
//! two tight loops — resolve indices, then combine f64 columns — with
//! zero per-point allocation and no per-point `catch_unwind`. The
//! expensive sub-expressions (the projected compute times and the
//! slack-ROI profile behind the overlap percentage) are filled at build
//! time, once per distinct table cell, under a chunk-scoped memo-cache
//! session ([`Profiler::begin_slack_roi_chunk`]) that touches each
//! shared cache shard at most once per lease.
//!
//! **Bit-identity is the contract**: the plan assembles each point from
//! the *same* shared sub-expressions (`ProjectionModel::projected_compute`,
//! `serialized_ar_time`, `ProjectedIteration::serialized_comm_fraction`,
//! `overlap_pct`) the naive [`eval_grid_point`] path evaluates, so the
//! two paths produce bit-equal `f64`s and byte-identical CSV on any
//! grid. That is what lets local, serve, and distributed executors pick
//! a planner freely without a protocol or output change.
//!
//! [`Method::Simulation`] runs the discrete-event engine per point —
//! there is nothing axis-separable to hoist — so simulation grids (and
//! malformed points that the naive path reports as per-point errors)
//! fall back to naive evaluation; [`PlannerMode::Auto`] makes that
//! decision per grid.

use std::any::Any;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::inference::InferenceIteration;
use crate::overlapped::{overlap_pct_with, roi_query};
use crate::serialized::{projection_baseline, sweep_hyper, Method};
use crate::sweep::{
    axis_costs, eval_grid_point, extended_fraction_from_parts, AxisCosts, GridPoint, GridSweep,
    PointResults, Workload,
};
use twocs_hw::{DeviceSpec, HwEvolution};
use twocs_opmodel::{Profiler, ProjectedIteration, ProjectionModel};
use twocs_transformer::Hyperparams;

/// Which evaluation path a sweep should take.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlannerMode {
    /// Factored evaluation where the grid supports it, naive otherwise —
    /// the default: output is bit-identical either way, so this is
    /// purely a performance decision.
    #[default]
    Auto,
    /// Always evaluate each point with the full model ([`eval_grid_point`]).
    Naive,
    /// Factored evaluation; still falls back to naive on grids the
    /// planner cannot factor (simulation method, malformed points).
    Factored,
}

impl PlannerMode {
    /// Build the factored plan this mode allows for `points`, or `None`
    /// when the grid should be evaluated naively. A panic during plan
    /// construction also falls back to naive, so planning can never make
    /// a sweep fail that would have succeeded point-by-point.
    #[must_use]
    pub fn plan(
        self,
        device: &DeviceSpec,
        points: &[GridPoint],
        batch: u64,
        method: Method,
        workload: Workload,
    ) -> Option<FactoredPlan> {
        match self {
            PlannerMode::Naive => None,
            PlannerMode::Auto | PlannerMode::Factored => catch_unwind(AssertUnwindSafe(|| {
                FactoredPlan::build(device, points, batch, method, workload)
            }))
            .ok()
            .flatten(),
        }
    }
}

impl std::fmt::Display for PlannerMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PlannerMode::Auto => "auto",
            PlannerMode::Naive => "naive",
            PlannerMode::Factored => "factored",
        })
    }
}

impl std::str::FromStr for PlannerMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(PlannerMode::Auto),
            "naive" => Ok(PlannerMode::Naive),
            "factored" => Ok(PlannerMode::Factored),
            other => Err(format!(
                "unknown planner `{other}` (expected auto, naive, or factored)"
            )),
        }
    }
}

/// Render a caught panic payload the way the sweep pool does.
pub(crate) fn panic_message(payload: Box<dyn Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(ToString::to_string)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "grid point panicked".to_owned())
}

/// Struct-of-arrays tables for one point set: every expensive
/// sub-expression is computed once per distinct table cell at build
/// time, and [`FactoredPlan::eval_batch`] assembles each point from flat
/// `f64` column reads plus the cheap shared combine.
///
/// Layout: the axis maps assign dense indices to the distinct ratios,
/// `(H, SL)` shapes, and TP degrees seen in the point set; the triple
/// tables (`compute`, `backward`, `overlap`, `filled`) are flat vectors
/// indexed `(si * ratios + ri) * tps + ti`, filled only for the cells
/// that actually occur (the grid prunes unrealistic `(H, TP)` pairs, so
/// the cross product has holes); `serialized_ar` is TP-independent and
/// indexed `si * ratios + ri`.
#[derive(Debug, Clone)]
pub struct FactoredPlan {
    batch: u64,
    /// The workload every point of this plan evaluates under; part of
    /// the table key space because axis and inference costs depend on
    /// it (a sweep has exactly one workload, so it is a plan field, not
    /// an axis).
    workload: Workload,
    /// The unevolved device the plan was built from, for the naive
    /// fallback on points outside the plan's axes.
    base_device: DeviceSpec,
    /// Distinct flop-vs-bw ratios (by bit pattern), first-seen order.
    ratio_idx: HashMap<u64, usize>,
    /// Distinct `(H, SL)` shapes, first-seen order.
    shape_idx: HashMap<(u64, u64), usize>,
    /// Distinct TP degrees, first-seen order.
    tp_idx: HashMap<u64, usize>,
    /// Distinct `(experts, top_k, stages, micro_batches, sp)` axis
    /// tuples, first-seen order.
    axis_idx: HashMap<(u64, u64, u64, u64, u64), usize>,
    /// Evolved device per ratio — `HwEvolution` applied exactly as
    /// [`eval_grid_point`] does.
    devices: Vec<DeviceSpec>,
    /// Sweep hyperparameters per shape.
    hypers: Vec<Hyperparams>,
    /// TP degree per dense TP index.
    tps: Vec<u64>,
    /// Serialized TP all-reduce time per `si * ratios + ri` — Eq. 12
    /// priced once per activation size per device, reused across the
    /// whole TP axis.
    serialized_ar: Vec<f64>,
    /// Projected per-layer compute time per filled triple.
    compute: Vec<f64>,
    /// Projected per-layer backward compute time per filled triple.
    backward: Vec<f64>,
    /// Overlapped-communication percentage per filled triple.
    overlap: Vec<f64>,
    /// Whether a triple cell occurs in the build point set; unfilled
    /// cells hold zeros and resolve to the naive fallback.
    filled: Vec<bool>,
    /// Inference per-layer compute time per filled triple; empty unless
    /// the plan's workload is prefill or decode.
    inf_compute: Vec<f64>,
    /// Inference serialized TP comm per filled triple; empty unless the
    /// plan's workload is prefill or decode.
    inf_comm: Vec<f64>,
    /// Extra serialized comm per layer for the MoE/SP axes, per filled
    /// `(shape, ratio, axis)` cell — indexed `(si * ratios + ri) * axes + ai`.
    axis_comm: Vec<f64>,
    /// Pipeline boundary transfer per filled `(shape, ratio, axis)` cell.
    axis_p2p: Vec<f64>,
    /// Whether an axis cell occurs in the build point set.
    axis_filled: Vec<bool>,
}

impl FactoredPlan {
    /// Build the SoA tables for `points`, or `None` if the point set
    /// cannot be factored: the simulation method (the discrete-event
    /// engine is evaluated whole, per point) or any point the naive path
    /// would reject with a panic (the per-point `error` contract must be
    /// preserved, so such grids run naively).
    ///
    /// Table filling is grouped by ratio so each evolved device profiles
    /// its slack-ROI cells under one chunk-scoped cache session
    /// ([`Profiler::begin_slack_roi_chunk`]): every distinct key is
    /// resolved against the shared memo-cache shards at most once per
    /// build, and the warm path never takes a shard lock per cell.
    #[must_use]
    pub fn build(
        device: &DeviceSpec,
        points: &[GridPoint],
        batch: u64,
        method: Method,
        workload: Workload,
    ) -> Option<Self> {
        if method != Method::Projection || points.is_empty() {
            return None;
        }
        let valid = points.iter().all(|p| {
            batch > 0
                && p.h > 0
                && p.h % 256 == 0
                && p.sl > 0
                && p.tp > 0
                && p.experts > 0
                && p.top_k > 0
                && p.top_k <= p.experts
                && p.stages > 0
                && p.micro_batches > 0
                && p.sp > 0
        });
        if !valid {
            return None;
        }

        let _span = twocs_obs::span("factored plan", "sweep");
        let mut ratio_idx = HashMap::new();
        let mut devices = Vec::new();
        let mut models = Vec::new();
        let mut shape_idx = HashMap::new();
        let mut shapes: Vec<(u64, u64)> = Vec::new();
        let mut hypers: Vec<Hyperparams> = Vec::new();
        let mut tp_idx = HashMap::new();
        let mut tps: Vec<u64> = Vec::new();
        let mut axis_idx = HashMap::new();
        let mut axes: Vec<GridPoint> = Vec::new();
        for p in points {
            ratio_idx.entry(p.ratio.to_bits()).or_insert_with(|| {
                // Mirror eval_grid_point: evolve only for ratios above 1.
                let dev = if p.ratio > 1.0 {
                    HwEvolution::flop_vs_bw(p.ratio).apply(device)
                } else {
                    device.clone()
                };
                models.push(ProjectionModel::from_baseline(&projection_baseline(), &dev));
                devices.push(dev);
                devices.len() - 1
            });
            shape_idx.entry((p.h, p.sl)).or_insert_with(|| {
                shapes.push((p.h, p.sl));
                hypers.push(sweep_hyper(p.h, p.sl, batch));
                hypers.len() - 1
            });
            tp_idx.entry(p.tp).or_insert_with(|| {
                tps.push(p.tp);
                tps.len() - 1
            });
            axis_idx.entry(p.axis_key()).or_insert_with(|| {
                // Keep a representative point per axis tuple: axis_costs
                // reads only the axis fields, not (h, sl, tp, ratio).
                axes.push(*p);
                axes.len() - 1
            });
        }
        let (nr, nt, na) = (devices.len(), tps.len(), axes.len());
        // Collect the triple cells that occur, grouped by ratio so each
        // evolved device runs one profiler + one chunk-scoped cache
        // session over all of its cells.
        let mut filled = vec![false; hypers.len() * nr * nt];
        let mut todo: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nr];
        for p in points {
            let ri = ratio_idx[&p.ratio.to_bits()];
            let si = shape_idx[&(p.h, p.sl)];
            let ti = tp_idx[&p.tp];
            let flat = (si * nr + ri) * nt + ti;
            if !filled[flat] {
                filled[flat] = true;
                todo[ri].push((si, ti));
            }
        }
        let mut axis_filled = vec![false; hypers.len() * nr * na];
        for p in points {
            let ri = ratio_idx[&p.ratio.to_bits()];
            let si = shape_idx[&(p.h, p.sl)];
            let ai = axis_idx[&p.axis_key()];
            axis_filled[(si * nr + ri) * na + ai] = true;
        }
        let priced = price_tables(
            &devices,
            &models,
            &shapes,
            &hypers,
            &tps,
            &axes,
            batch,
            workload,
            &todo,
            &axis_filled,
        );
        twocs_obs::metrics::global()
            .counter("sweep.factored_plans")
            .inc();

        Some(Self {
            batch,
            workload,
            base_device: device.clone(),
            ratio_idx,
            shape_idx,
            tp_idx,
            axis_idx,
            devices,
            hypers,
            tps,
            serialized_ar: priced.serialized_ar,
            compute: priced.compute,
            backward: priced.backward,
            overlap: priced.overlap,
            filled,
            inf_compute: priced.inf_compute,
            inf_comm: priced.inf_comm,
            axis_comm: priced.axis_comm,
            axis_p2p: priced.axis_p2p,
            axis_filled,
        })
    }

    /// Build the plan for an **entire sweep** from its [`GridIndex`] —
    /// O(axis values + table cells) work and memory, never materializing
    /// the point list. The tables are identical to what [`Self::build`]
    /// produces over `sweep.points()` (same distinct-value orders, same
    /// filled cells, same pricing functions), so evaluation stays
    /// bit-identical; what changes is the cost of *getting* the plan,
    /// which no longer scales with the point count. This is the seam a
    /// dist worker uses to build one plan per grid fingerprint and reuse
    /// it across every chunk lease of that grid.
    #[must_use]
    pub fn build_from_sweep(device: &DeviceSpec, sweep: &GridSweep) -> Option<Self> {
        if sweep.method != Method::Projection {
            return None;
        }
        let index = sweep.index();
        if index.is_empty() {
            return None;
        }
        let _span = twocs_obs::span("factored plan", "sweep");
        let (batch, workload) = (sweep.batch, sweep.workload);
        let mut ratio_idx = HashMap::new();
        let mut devices = Vec::new();
        let mut models = Vec::new();
        for &ratio in index.ratios() {
            ratio_idx.entry(ratio.to_bits()).or_insert_with(|| {
                let dev = if ratio > 1.0 {
                    HwEvolution::flop_vs_bw(ratio).apply(device)
                } else {
                    device.clone()
                };
                models.push(ProjectionModel::from_baseline(&projection_baseline(), &dev));
                devices.push(dev);
                devices.len() - 1
            });
        }
        let mut shape_idx = HashMap::new();
        let mut shapes: Vec<(u64, u64)> = Vec::new();
        let mut hypers: Vec<Hyperparams> = Vec::new();
        let mut tp_idx = HashMap::new();
        let mut tps: Vec<u64> = Vec::new();
        for &(h, sl, tp) in index.triples() {
            shape_idx.entry((h, sl)).or_insert_with(|| {
                shapes.push((h, sl));
                hypers.push(sweep_hyper(h, sl, batch));
                hypers.len() - 1
            });
            tp_idx.entry(tp).or_insert_with(|| {
                tps.push(tp);
                tps.len() - 1
            });
        }
        let mut axis_idx = HashMap::new();
        let mut axes: Vec<GridPoint> = Vec::new();
        for (experts, top_k, stages, micro_batches, sp) in index.axis_tuples() {
            axis_idx
                .entry((experts, top_k, stages, micro_batches, sp))
                .or_insert_with(|| {
                    // Representative point per tuple: axis_costs reads
                    // only the axis fields, not (h, sl, tp, ratio).
                    axes.push(GridPoint {
                        experts,
                        top_k,
                        stages,
                        micro_batches,
                        sp,
                        ..GridPoint::new(256, 1, 1, 1.0)
                    });
                    axes.len() - 1
                });
        }
        let (nr, nt, na) = (devices.len(), tps.len(), axes.len());
        // A sweep is a cross product: every surviving triple occurs with
        // every ratio, and every (shape, ratio) with every axis tuple.
        let mut filled = vec![false; hypers.len() * nr * nt];
        let mut todo: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nr];
        for &(h, sl, tp) in index.triples() {
            let si = shape_idx[&(h, sl)];
            let ti = tp_idx[&tp];
            for (ri, ratio_todo) in todo.iter_mut().enumerate() {
                let flat = (si * nr + ri) * nt + ti;
                if !filled[flat] {
                    filled[flat] = true;
                    ratio_todo.push((si, ti));
                }
            }
        }
        let axis_filled = vec![true; hypers.len() * nr * na];
        let priced = price_tables(
            &devices,
            &models,
            &shapes,
            &hypers,
            &tps,
            &axes,
            batch,
            workload,
            &todo,
            &axis_filled,
        );
        twocs_obs::metrics::global()
            .counter("sweep.factored_plans")
            .inc();

        Some(Self {
            batch,
            workload,
            base_device: device.clone(),
            ratio_idx,
            shape_idx,
            tp_idx,
            axis_idx,
            devices,
            hypers,
            tps,
            serialized_ar: priced.serialized_ar,
            compute: priced.compute,
            backward: priced.backward,
            overlap: priced.overlap,
            filled,
            inf_compute: priced.inf_compute,
            inf_comm: priced.inf_comm,
            axis_comm: priced.axis_comm,
            axis_p2p: priced.axis_p2p,
            axis_filled,
        })
    }

    /// Number of distinct `(H, SL)` shapes the plan tabulated.
    #[must_use]
    pub fn shapes(&self) -> usize {
        self.hypers.len()
    }

    /// Number of distinct flop-vs-bw ratios the plan tabulated.
    #[must_use]
    pub fn ratios(&self) -> usize {
        self.devices.len()
    }

    /// Number of distinct TP degrees the plan tabulated.
    #[must_use]
    pub fn tps(&self) -> usize {
        self.tps.len()
    }

    /// Number of distinct MoE/PP/SP axis tuples the plan tabulated.
    #[must_use]
    pub fn axes(&self) -> usize {
        self.axis_idx.len()
    }

    /// Dense flat indices of `p`'s filled table cells — the `(shape,
    /// ratio, tp)` triple and the `(shape, ratio, axis)` cell — or
    /// `None` for a point outside the plan's axes (or on an unfilled
    /// cell of the pruned cross product).
    fn resolve(&self, p: GridPoint) -> Option<(usize, usize)> {
        let &ri = self.ratio_idx.get(&p.ratio.to_bits())?;
        let &si = self.shape_idx.get(&(p.h, p.sl))?;
        let &ti = self.tp_idx.get(&p.tp)?;
        let &ai = self.axis_idx.get(&p.axis_key())?;
        let pair = si * self.devices.len() + ri;
        let flat = pair * self.tps.len() + ti;
        let aflat = pair * self.axis_idx.len() + ai;
        (self.filled[flat] && self.axis_filled[aflat]).then_some((flat, aflat))
    }

    /// The shared combine over one filled table cell: identical
    /// arithmetic (and f64 addition order) to the naive path, with the
    /// sweep path's fixed degrees folded in — `ParallelConfig::new()
    /// .tensor(tp)` means `DP = 1`, so the overlapped-DP term is
    /// exactly `0.0` and the layer count is undivided. Points with every
    /// axis neutral under the training workload take exactly the pre-axis
    /// combine (preserving legacy bytes); extended points run the same
    /// [`extended_fraction_from_parts`] assembly as the naive kernel over
    /// the tabulated parts.
    #[inline]
    fn combine(&self, flat: usize, aflat: usize, p: GridPoint) -> (f64, f64) {
        let nt = self.tps.len();
        let (pair, ti) = (flat / nt, flat % nt);
        let si = pair / self.devices.len();
        let projected = ProjectedIteration {
            layers: self.hypers[si].layers(),
            compute_per_layer: self.compute[flat],
            backward_compute_per_layer: self.backward[flat],
            serialized_comm_per_layer: if self.tps[ti] > 1 {
                self.serialized_ar[pair]
            } else {
                0.0
            },
            overlapped_comm_per_layer: 0.0,
        };
        if self.workload == Workload::Training && p.axes_default() {
            return (
                100.0 * projected.serialized_comm_fraction(),
                self.overlap[flat],
            );
        }
        let inference = match self.workload {
            Workload::Training => None,
            Workload::Prefill | Workload::Decode => {
                Some((self.inf_compute[flat], self.inf_comm[flat]))
            }
        };
        let axis = AxisCosts {
            comm_per_layer: self.axis_comm[aflat],
            pp_p2p: self.axis_p2p[aflat],
        };
        (
            100.0 * extended_fraction_from_parts(&projected, inference, axis, p),
            self.overlap[flat],
        )
    }

    /// Evaluate one grid point from the tables. Bit-identical to
    /// [`eval_grid_point`] by construction: the combine runs the same
    /// shared sub-expressions, only their inputs come from tables. A
    /// point outside the plan's axes (possible only if callers evaluate
    /// points they did not build the plan from) falls back to the naive
    /// kernel.
    #[must_use]
    pub fn eval(&self, p: GridPoint) -> (f64, f64) {
        match self.resolve(p) {
            Some((flat, aflat)) => self.combine(flat, aflat, p),
            None => eval_grid_point(
                &self.base_device,
                p,
                self.batch,
                Method::Projection,
                self.workload,
            ),
        }
    }

    /// Evaluate a lease-sized chunk of points into `out` (cleared
    /// first), in point order: two tight passes — resolve every point to
    /// its flat table cell, then combine the f64 columns — with zero
    /// per-point allocation and no `catch_unwind` on the happy path.
    /// Points outside the tables fall back to the scalar path
    /// ([`Self::eval`]) with their panics caught per point, preserving
    /// the executor contract that a malformed point degrades to an
    /// `Err` entry instead of aborting the chunk.
    pub fn eval_batch(&self, points: &[GridPoint], out: &mut PointResults) {
        out.clear();
        out.reserve(points.len());
        // Pass 1: resolve. usize::MAX marks points needing the fallback.
        let mut cells = Vec::with_capacity(points.len());
        cells.extend(
            points
                .iter()
                .map(|&p| self.resolve(p).unwrap_or((usize::MAX, usize::MAX))),
        );
        // Pass 2: combine resolved cells; scalar fallback otherwise.
        for (&p, &(flat, aflat)) in points.iter().zip(&cells) {
            if flat != usize::MAX {
                out.push(Ok(self.combine(flat, aflat, p)));
            } else {
                out.push(catch_unwind(AssertUnwindSafe(|| self.eval(p))).map_err(panic_message));
            }
        }
    }
}

/// The expensive table columns of a [`FactoredPlan`], priced once per
/// filled cell by [`price_tables`].
struct PricedTables {
    serialized_ar: Vec<f64>,
    compute: Vec<f64>,
    backward: Vec<f64>,
    overlap: Vec<f64>,
    inf_compute: Vec<f64>,
    inf_comm: Vec<f64>,
    axis_comm: Vec<f64>,
    axis_p2p: Vec<f64>,
}

/// Fill every expensive table column for the given distinct-value lists
/// and fill sets. Shared by both plan constructors so a plan built from
/// a point slice and one built from a [`GridIndex`] price their cells
/// through exactly the same calls — the bit-identity argument for
/// worker-side plan reuse.
///
/// Triple cells are grouped by ratio (`todo[ri]`) so each evolved device
/// runs one profiler + one chunk-scoped cache session over all of its
/// cells; axis cells are priced wherever `axis_filled` is set.
#[allow(clippy::too_many_arguments)]
fn price_tables(
    devices: &[DeviceSpec],
    models: &[ProjectionModel],
    shapes: &[(u64, u64)],
    hypers: &[Hyperparams],
    tps: &[u64],
    axes: &[GridPoint],
    batch: u64,
    workload: Workload,
    todo: &[Vec<(usize, usize)>],
    axis_filled: &[bool],
) -> PricedTables {
    let (nr, nt, na) = (devices.len(), tps.len(), axes.len());
    let mut serialized_ar = vec![0.0; hypers.len() * nr];
    for (si, hyper) in hypers.iter().enumerate() {
        for (ri, m) in models.iter().enumerate() {
            serialized_ar[si * nr + ri] = m.serialized_ar_time(hyper);
        }
    }

    let cells = hypers.len() * nr * nt;
    let mut compute = vec![0.0; cells];
    let mut backward = vec![0.0; cells];
    let mut overlap = vec![0.0; cells];
    let inference = workload != Workload::Training;
    let mut inf_compute = vec![0.0; if inference { cells } else { 0 }];
    let mut inf_comm = vec![0.0; if inference { cells } else { 0 }];
    for (ri, cells) in todo.iter().enumerate() {
        let profiler = Profiler::new(devices[ri].clone());
        let _chunk = profiler.begin_slack_roi_chunk(cells.iter().map(|&(si, ti)| {
            let (h, sl) = shapes[si];
            roi_query(h, sl * batch, tps[ti], 4)
        }));
        for &(si, ti) in cells {
            let flat = (si * nr + ri) * nt + ti;
            let (c, b) = models[ri].projected_compute(&hypers[si], tps[ti]);
            compute[flat] = c;
            backward[flat] = b;
            let (h, sl) = shapes[si];
            overlap[flat] = overlap_pct_with(&profiler, h, sl * batch, tps[ti], 4);
            if inference {
                let it = InferenceIteration::model(&devices[ri], &hypers[si], tps[ti], workload);
                inf_compute[flat] = it.compute_per_layer;
                inf_comm[flat] = it.serialized_comm_per_layer;
            }
        }
    }

    // Axis tables: one cell per occurring (shape, ratio, axis tuple),
    // priced by the same shared `axis_costs` the naive kernel calls —
    // that sharing is the bit-identity argument for the new axes.
    let axis_cells = hypers.len() * nr * na;
    let mut axis_comm = vec![0.0; axis_cells];
    let mut axis_p2p = vec![0.0; axis_cells];
    for (si, hyper) in hypers.iter().enumerate() {
        for (ri, device) in devices.iter().enumerate() {
            for (ai, &axis) in axes.iter().enumerate() {
                let aflat = (si * nr + ri) * na + ai;
                if axis_filled[aflat] {
                    let costs = axis_costs(device, hyper, axis, workload);
                    axis_comm[aflat] = costs.comm_per_layer;
                    axis_p2p[aflat] = costs.pp_p2p;
                }
            }
        }
    }
    PricedTables {
        serialized_ar,
        compute,
        backward,
        overlap,
        inf_compute,
        inf_comm,
        axis_comm,
        axis_p2p,
    }
}

/// Evaluate one chunk of grid points the way a distributed worker (or
/// any other chunk-at-a-time caller) needs: batch-factored when the
/// chunk supports it ([`FactoredPlan::eval_batch`]), naive otherwise,
/// with each point's panic caught and reported as that point's error —
/// never aborting the chunk.
#[must_use]
pub fn eval_chunk(
    device: &DeviceSpec,
    points: &[GridPoint],
    batch: u64,
    method: Method,
    workload: Workload,
) -> PointResults {
    let mut out = PointResults::with_capacity(points.len());
    match PlannerMode::Auto.plan(device, points, batch, method, workload) {
        Some(plan) => plan.eval_batch(points, &mut out),
        None => out.extend(points.iter().map(|&p| {
            catch_unwind(AssertUnwindSafe(|| {
                eval_grid_point(device, p, batch, method, workload)
            }))
            .map_err(panic_message)
        })),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::GridSweep;

    fn projection_grid() -> GridSweep {
        GridSweep {
            hs: vec![4096, 16_384],
            sls: vec![2048, 4096],
            tps: vec![4, 16, 32],
            flop_vs_bw: vec![1.0, 2.0],
            batch: 1,
            method: Method::Projection,
            ..GridSweep::default()
        }
    }

    #[test]
    fn factored_eval_is_bit_identical_to_naive() {
        let device = DeviceSpec::mi210();
        let grid = projection_grid();
        let points = grid.points();
        let plan = FactoredPlan::build(&device, &points, grid.batch, grid.method, grid.workload)
            .expect("projection grids are factorable");
        for p in points {
            let naive = eval_grid_point(&device, p, grid.batch, grid.method, grid.workload);
            let factored = plan.eval(p);
            assert_eq!(
                (naive.0.to_bits(), naive.1.to_bits()),
                (factored.0.to_bits(), factored.1.to_bits()),
                "point {p:?}: naive {naive:?} vs factored {factored:?}"
            );
        }
    }

    #[test]
    fn eval_batch_is_bit_identical_to_scalar_eval() {
        let device = DeviceSpec::mi210();
        let grid = projection_grid();
        let points = grid.points();
        let plan =
            FactoredPlan::build(&device, &points, grid.batch, grid.method, grid.workload).unwrap();
        let mut out = PointResults::new();
        plan.eval_batch(&points, &mut out);
        assert_eq!(out.len(), points.len());
        for (p, r) in points.iter().zip(&out) {
            let scalar = plan.eval(*p);
            let batch = r.as_ref().unwrap();
            assert_eq!(
                (scalar.0.to_bits(), scalar.1.to_bits()),
                (batch.0.to_bits(), batch.1.to_bits()),
                "point {p:?}"
            );
        }
    }

    #[test]
    fn plan_tabulates_each_axis_value_once() {
        let device = DeviceSpec::mi210();
        let grid = projection_grid();
        let points = grid.points();
        let plan =
            FactoredPlan::build(&device, &points, grid.batch, grid.method, grid.workload).unwrap();
        assert_eq!(plan.shapes(), 4); // 2 H × 2 SL
        assert_eq!(plan.ratios(), 2);
        assert_eq!(plan.tps(), 3);
    }

    #[test]
    fn simulation_grids_are_not_factored() {
        let device = DeviceSpec::mi210();
        let grid = GridSweep {
            method: Method::Simulation,
            ..projection_grid()
        };
        let points = grid.points();
        assert!(
            FactoredPlan::build(&device, &points, grid.batch, grid.method, grid.workload).is_none()
        );
        assert!(PlannerMode::Auto
            .plan(&device, &points, grid.batch, grid.method, grid.workload)
            .is_none());
    }

    #[test]
    fn malformed_points_fall_back_to_naive() {
        let device = DeviceSpec::mi210();
        // h not a multiple of 256: the naive path panics per point (and
        // executors report `error`), so the planner must refuse it.
        let points = vec![GridPoint::new(100, 2048, 4, 1.0)];
        assert!(
            FactoredPlan::build(&device, &points, 1, Method::Projection, Workload::Training)
                .is_none()
        );
        assert!(
            FactoredPlan::build(&device, &[], 1, Method::Projection, Workload::Training).is_none()
        );
        // Malformed extended axes are refused the same way.
        let bad_axes = vec![GridPoint {
            top_k: 4,
            experts: 2,
            ..GridPoint::new(4096, 2048, 4, 1.0)
        }];
        assert!(FactoredPlan::build(
            &device,
            &bad_axes,
            1,
            Method::Projection,
            Workload::Training
        )
        .is_none());
    }

    #[test]
    fn points_off_the_plan_axes_resolve_to_scalar_fallback() {
        let device = DeviceSpec::mi210();
        let grid = projection_grid();
        let points = grid.points();
        let plan =
            FactoredPlan::build(&device, &points, grid.batch, grid.method, grid.workload).unwrap();
        // A well-formed point the plan never saw (H off the axis) must
        // evaluate through the fallback, bit-identical to naive.
        let off = GridPoint::new(8192, 2048, 4, 1.0);
        assert!(plan.resolve(off).is_none());
        let naive = eval_grid_point(&device, off, grid.batch, grid.method, grid.workload);
        assert_eq!(plan.eval(off), naive);
        let mut out = PointResults::new();
        plan.eval_batch(&[off], &mut out);
        assert_eq!(out[0].as_ref().unwrap(), &naive);
    }

    #[test]
    fn sweep_built_plan_is_bit_identical_to_point_built_plan() {
        let device = DeviceSpec::mi210();
        for grid in [
            projection_grid(),
            GridSweep {
                experts: vec![1, 4],
                top_ks: vec![2],
                stages: vec![1, 2],
                sps: vec![1, 2],
                ..projection_grid()
            },
        ] {
            let points = grid.points();
            let from_points =
                FactoredPlan::build(&device, &points, grid.batch, grid.method, grid.workload)
                    .unwrap();
            let from_sweep = FactoredPlan::build_from_sweep(&device, &grid).unwrap();
            assert_eq!(from_sweep.shapes(), from_points.shapes());
            assert_eq!(from_sweep.ratios(), from_points.ratios());
            assert_eq!(from_sweep.tps(), from_points.tps());
            assert_eq!(from_sweep.axes(), from_points.axes());
            let mut a = PointResults::new();
            let mut b = PointResults::new();
            from_points.eval_batch(&points, &mut a);
            from_sweep.eval_batch(&points, &mut b);
            for (p, (ra, rb)) in points.iter().zip(a.iter().zip(&b)) {
                let (xa, ya) = ra.as_ref().unwrap();
                let (xb, yb) = rb.as_ref().unwrap();
                assert_eq!(
                    (xa.to_bits(), ya.to_bits()),
                    (xb.to_bits(), yb.to_bits()),
                    "point {p:?}"
                );
            }
        }
    }

    #[test]
    fn sweep_built_plan_refuses_unfactorable_grids() {
        let device = DeviceSpec::mi210();
        let sim = GridSweep {
            method: Method::Simulation,
            ..projection_grid()
        };
        assert!(FactoredPlan::build_from_sweep(&device, &sim).is_none());
        let empty = GridSweep {
            hs: vec![100],
            ..projection_grid()
        };
        assert!(FactoredPlan::build_from_sweep(&device, &empty).is_none());
    }

    #[test]
    fn naive_mode_never_plans() {
        let device = DeviceSpec::mi210();
        let grid = projection_grid();
        assert!(PlannerMode::Naive
            .plan(
                &device,
                &grid.points(),
                grid.batch,
                grid.method,
                grid.workload
            )
            .is_none());
    }

    #[test]
    fn planner_mode_parses() {
        assert_eq!("auto".parse::<PlannerMode>().unwrap(), PlannerMode::Auto);
        assert_eq!("naive".parse::<PlannerMode>().unwrap(), PlannerMode::Naive);
        assert_eq!(
            "factored".parse::<PlannerMode>().unwrap(),
            PlannerMode::Factored
        );
        assert!("fast".parse::<PlannerMode>().is_err());
    }

    #[test]
    fn eval_chunk_matches_naive_per_point_and_reports_errors() {
        let device = DeviceSpec::mi210();
        let grid = projection_grid();
        let points = grid.points();
        let chunk = eval_chunk(&device, &points, grid.batch, grid.method, grid.workload);
        for (p, r) in points.iter().zip(&chunk) {
            let naive = eval_grid_point(&device, *p, grid.batch, grid.method, grid.workload);
            assert_eq!(r.as_ref().unwrap(), &naive);
        }
        // A malformed point degrades that point, not the chunk.
        let bad = vec![
            GridPoint::new(4096, 2048, 4, 1.0),
            GridPoint::new(100, 2048, 4, 1.0),
        ];
        let mixed = eval_chunk(&device, &bad, 1, Method::Projection, Workload::Training);
        assert!(mixed[0].is_ok());
        assert!(mixed[1].is_err());
    }
}
