//! Parallel sweep engine: run the experiment registry and analyze-style
//! grids across worker threads with byte-identical output.
//!
//! Every generator in this workspace is a pure function of `(device,
//! configuration)`, so sweeps parallelize trivially — the only hard
//! requirements are that **result order is deterministic** (parallel runs
//! must emit byte-identical reports, so CSV diffs stay meaningful) and
//! that a panicking configuration surfaces as a failed task instead of
//! wedging the harness.
//!
//! [`run_tasks`] is the building block: a scoped-thread worker pool
//! (`std::thread::scope`, no external dependencies) pulling task indices
//! from an atomic counter and writing results into per-index slots, so
//! collection order is the submission order no matter which worker ran
//! what. Panics are caught per task ([`std::panic::catch_unwind`]) and
//! converted into `Err(message)` results.
//!
//! On top of it sit [`run_experiments`] — the paper's full registry with
//! per-experiment wall times — and [`GridSweep`] — a
//! `(H, SL, TP, flop-vs-bw)` cross-product evaluating both communication
//! metrics per point. Both report a [`SweepSummary`] with task timings and
//! the memo-cache activity ([`twocs_hw::CacheStats`]) observed during the
//! sweep.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::experiments::{ExperimentDef, ExperimentOutput};
use crate::overlapped::overlap_pct;
use crate::report::Table;
use crate::serialized::{comm_fraction, realistic_tp, sweep_hyper, Method};
use twocs_hw::{CacheStats, DeviceSpec, HwEvolution};
use twocs_transformer::ParallelConfig;

/// The worker-thread budget nested generators should use (see
/// [`parallelism`]). Defaults to 1 so library callers stay serial unless
/// a sweep opts in.
static PARALLELISM: AtomicUsize = AtomicUsize::new(1);

/// Set the worker-thread budget consulted by grid-shaped generators
/// (e.g. Figures 12/13 fan their series over [`run_tasks`] with this
/// count). [`run_experiments`] and [`GridSweep::run`] set it from their
/// `jobs` argument, so `--jobs 1` stays fully serial.
pub fn set_parallelism(jobs: usize) {
    PARALLELISM.store(jobs.max(1), Ordering::Relaxed);
}

/// The current worker-thread budget for nested generators.
#[must_use]
pub fn parallelism() -> usize {
    PARALLELISM.load(Ordering::Relaxed)
}

/// One completed task: its payload (or the panic message) and how long it
/// ran on its worker thread.
#[derive(Debug, Clone)]
pub struct TaskResult<T> {
    /// The task's value, or the panic payload rendered as a string.
    pub result: Result<T, String>,
    /// Wall time of this task on its worker.
    pub elapsed: Duration,
}

/// Execute `count` tasks on `jobs` scoped worker threads and return the
/// results **in task-index order**, regardless of scheduling.
///
/// Workers claim indices from a shared atomic counter, so the pool
/// load-balances uneven task costs. Each task runs under
/// [`catch_unwind`]: a panic becomes `Err(message)` for that index and
/// the worker moves on to the next task — one bad configuration cannot
/// poison the pool or lose the rest of the sweep.
pub fn run_tasks<T, F>(jobs: usize, count: usize, task: F) -> Vec<TaskResult<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let slots: Vec<Mutex<Option<TaskResult<T>>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = jobs.max(1).min(count.max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let start = Instant::now();
                let result = catch_unwind(AssertUnwindSafe(|| task(i))).map_err(|payload| {
                    payload
                        .downcast_ref::<&str>()
                        .map(ToString::to_string)
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "task panicked".to_owned())
                });
                let done = TaskResult {
                    result,
                    elapsed: start.elapsed(),
                };
                *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(done);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("every task index below `count` is claimed exactly once")
        })
        .collect()
}

/// Wall time and outcome of one task, for the summary report.
#[derive(Debug, Clone)]
pub struct TaskTiming {
    /// Task label (experiment id, or a grid-point description).
    pub label: String,
    /// Wall time on its worker thread.
    pub elapsed: Duration,
    /// Whether the task completed without panicking.
    pub ok: bool,
}

/// What a sweep did: thread count, wall/task time, failures, per-task
/// timings, and the memo-cache activity observed while it ran.
///
/// Rendered with `Display`; the CLI prints it to **stderr** so that
/// parallel and serial runs keep byte-identical stdout.
#[derive(Debug, Clone)]
pub struct SweepSummary {
    /// Worker threads used.
    pub jobs: usize,
    /// Tasks executed.
    pub tasks: usize,
    /// Tasks that panicked.
    pub failures: usize,
    /// End-to-end wall time of the sweep.
    pub wall: Duration,
    /// Summed per-task time (wall × achieved concurrency).
    pub task_time: Duration,
    /// Per-task wall times, in task order.
    pub timings: Vec<TaskTiming>,
    /// GEMM-time cache activity during the sweep.
    pub gemm_cache: CacheStats,
    /// Collective-cost cache activity during the sweep.
    pub collective_cache: CacheStats,
    /// Slack-ROI profile cache activity during the sweep.
    pub slack_roi_cache: CacheStats,
}

impl fmt::Display for SweepSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let concurrency = if self.wall.as_secs_f64() > 0.0 {
            self.task_time.as_secs_f64() / self.wall.as_secs_f64()
        } else {
            1.0
        };
        writeln!(
            f,
            "sweep: {} tasks on {} worker thread{}: wall {:.1?}, task time {:.1?} ({:.1}x concurrency), {} failed",
            self.tasks,
            self.jobs,
            if self.jobs == 1 { "" } else { "s" },
            self.wall,
            self.task_time,
            concurrency,
            self.failures,
        )?;
        for t in &self.timings {
            writeln!(
                f,
                "  {:<28} {:>9.1?}  {}",
                t.label,
                t.elapsed,
                if t.ok { "ok" } else { "FAILED" }
            )?;
        }
        writeln!(f, "caches (this sweep):")?;
        writeln!(f, "  gemm-time:  {}", self.gemm_cache)?;
        writeln!(f, "  collective: {}", self.collective_cache)?;
        write!(f, "  slack-roi:  {}", self.slack_roi_cache)
    }
}

/// Snapshot all three global memo caches.
fn cache_snapshot() -> (CacheStats, CacheStats, CacheStats) {
    (
        twocs_hw::cache::gemm_time_cache_stats(),
        twocs_collectives::node_time_cache_stats(),
        twocs_opmodel::slack_roi_cache_stats(),
    )
}

/// One experiment's outcome inside a sweep.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment id (e.g. `"fig10"`).
    pub id: &'static str,
    /// Short title.
    pub title: &'static str,
    /// Generated output, or the panic message if the generator failed.
    pub output: Result<ExperimentOutput, String>,
    /// Wall time of the generator.
    pub elapsed: Duration,
}

/// A completed experiment sweep: results in registry order plus the
/// summary.
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// One result per input definition, in input order.
    pub results: Vec<ExperimentResult>,
    /// Timing and cache accounting.
    pub summary: SweepSummary,
}

/// Run `defs` against `device` on `jobs` worker threads.
///
/// Results come back in registry order, so rendering them is
/// byte-identical to a serial loop; a panicking generator yields an
/// `Err` entry without disturbing its neighbours.
#[must_use]
pub fn run_experiments(device: &DeviceSpec, defs: &[ExperimentDef], jobs: usize) -> SweepRun {
    set_parallelism(jobs);
    let before = cache_snapshot();
    let start = Instant::now();
    let raw = run_tasks(jobs, defs.len(), |i| (defs[i].run)(device));
    let wall = start.elapsed();
    let after = cache_snapshot();

    let results: Vec<ExperimentResult> = defs
        .iter()
        .zip(raw)
        .map(|(def, t)| ExperimentResult {
            id: def.id,
            title: def.title,
            output: t.result,
            elapsed: t.elapsed,
        })
        .collect();

    let summary = SweepSummary {
        jobs: jobs.max(1),
        tasks: results.len(),
        failures: results.iter().filter(|r| r.output.is_err()).count(),
        wall,
        task_time: results.iter().map(|r| r.elapsed).sum(),
        timings: results
            .iter()
            .map(|r| TaskTiming {
                label: r.id.to_owned(),
                elapsed: r.elapsed,
                ok: r.output.is_ok(),
            })
            .collect(),
        gemm_cache: after.0.since(&before.0),
        collective_cache: after.1.since(&before.1),
        slack_roi_cache: after.2.since(&before.2),
    };
    SweepRun { results, summary }
}

/// A `(H, SL, TP, flop-vs-bw)` cross-product sweep evaluating both of the
/// paper's communication metrics per point: the serialized-communication
/// fraction (§4.3.4) and the overlapped-communication percentage
/// (§4.3.5), on hardware evolved per the flop-vs-bw ratio (§4.3.6).
#[derive(Debug, Clone, PartialEq)]
pub struct GridSweep {
    /// Hidden sizes.
    pub hs: Vec<u64>,
    /// Sequence lengths.
    pub sls: Vec<u64>,
    /// Tensor-parallel degrees.
    pub tps: Vec<u64>,
    /// Flop-vs-bw hardware-evolution ratios (1 = today's hardware).
    pub flop_vs_bw: Vec<f64>,
    /// Batch size.
    pub batch: u64,
    /// Evaluation method for the serialized fraction.
    pub method: Method,
}

impl Default for GridSweep {
    /// T-NLG- to PaLM-3×-class models at the paper's studied TP degrees
    /// and hardware-evolution ratios.
    fn default() -> Self {
        Self {
            hs: vec![4096, 16_384, 65_536],
            sls: vec![2048, 4096],
            tps: vec![16, 64, 256],
            flop_vs_bw: vec![1.0, 2.0, 4.0],
            batch: 1,
            method: Method::Simulation,
        }
    }
}

/// One grid coordinate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPoint {
    /// Hidden size.
    pub h: u64,
    /// Sequence length.
    pub sl: u64,
    /// Tensor-parallel degree.
    pub tp: u64,
    /// Flop-vs-bw evolution ratio.
    pub ratio: f64,
}

impl GridSweep {
    /// The realistic grid points, in deterministic row-major order
    /// (H, then SL, then TP, then ratio). Unrealistic `(H, TP)`
    /// combinations are pruned exactly as the figures do
    /// ([`realistic_tp`]), as are invalid axis values (zero dimensions,
    /// hidden sizes that are not multiples of the fixed 256-way head
    /// sharding) — an entirely invalid grid is simply empty.
    #[must_use]
    pub fn points(&self) -> Vec<GridPoint> {
        let mut points = Vec::new();
        for &h in &self.hs {
            if h == 0 || h % 256 != 0 || self.batch == 0 {
                continue;
            }
            for &sl in &self.sls {
                if sl == 0 {
                    continue;
                }
                for &tp in &self.tps {
                    if tp == 0
                        || !realistic_tp(h, tp)
                        || tp > sweep_hyper(h, sl, self.batch).heads()
                    {
                        continue;
                    }
                    for &ratio in &self.flop_vs_bw {
                        points.push(GridPoint { h, sl, tp, ratio });
                    }
                }
            }
        }
        points
    }

    /// Run the sweep on `jobs` worker threads and tabulate it.
    ///
    /// The table rows follow [`Self::points`] order whatever the thread
    /// count, so CSV output is byte-identical across `jobs` settings. A
    /// panicking point renders as `error` in both metric columns rather
    /// than aborting the sweep.
    #[must_use]
    pub fn run(&self, device: &DeviceSpec, jobs: usize) -> (Table, SweepSummary) {
        set_parallelism(jobs);
        let points = self.points();
        let before = cache_snapshot();
        let start = Instant::now();
        let raw = run_tasks(jobs, points.len(), |i| {
            let p = points[i];
            let dev = if p.ratio > 1.0 {
                HwEvolution::flop_vs_bw(p.ratio).apply(device)
            } else {
                device.clone()
            };
            let hyper = sweep_hyper(p.h, p.sl, self.batch);
            let parallel = ParallelConfig::new().tensor(p.tp);
            let serialized = 100.0 * comm_fraction(&dev, &hyper, &parallel, self.method);
            let overlap = overlap_pct(&dev, p.h, p.sl * self.batch, p.tp, 4);
            (serialized, overlap)
        });
        let wall = start.elapsed();
        let after = cache_snapshot();

        let mut table = Table::new(
            "sweep",
            "Serialized and overlapped communication across the grid",
            [
                "H",
                "SL",
                "TP",
                "flop_vs_bw",
                "serialized_pct",
                "overlap_pct",
            ]
            .into_iter()
            .map(String::from)
            .collect(),
        );
        for (p, t) in points.iter().zip(&raw) {
            let (serialized, overlap) = match &t.result {
                Ok((s, o)) => (format!("{s:.2}"), format!("{o:.2}")),
                Err(_) => ("error".to_owned(), "error".to_owned()),
            };
            table.push_row(vec![
                p.h.to_string(),
                p.sl.to_string(),
                p.tp.to_string(),
                format!("{}", p.ratio),
                serialized,
                overlap,
            ]);
        }

        let summary = SweepSummary {
            jobs: jobs.max(1),
            tasks: raw.len(),
            failures: raw.iter().filter(|t| t.result.is_err()).count(),
            wall,
            task_time: raw.iter().map(|t| t.elapsed).sum(),
            timings: points
                .iter()
                .zip(&raw)
                .map(|(p, t)| TaskTiming {
                    label: format!("H={} SL={} TP={} r={}", p.h, p.sl, p.tp, p.ratio),
                    elapsed: t.elapsed,
                    ok: t.result.is_ok(),
                })
                .collect(),
            gemm_cache: after.0.since(&before.0),
            collective_cache: after.1.since(&before.1),
            slack_roi_cache: after.2.since(&before.2),
        };
        (table, summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments;

    #[test]
    fn run_tasks_preserves_index_order() {
        for jobs in [1, 2, 8] {
            let results = run_tasks(jobs, 100, |i| i * i);
            for (i, r) in results.iter().enumerate() {
                assert_eq!(r.result, Ok(i * i), "jobs={jobs}");
            }
        }
    }

    #[test]
    fn panics_surface_as_errors_without_losing_neighbours() {
        let results = run_tasks(4, 16, |i| {
            assert!(i != 5, "task five exploded");
            i
        });
        for (i, r) in results.iter().enumerate() {
            if i == 5 {
                let err = r.result.as_ref().unwrap_err();
                assert!(err.contains("task five exploded"), "{err}");
            } else {
                assert_eq!(r.result, Ok(i));
            }
        }
    }

    #[test]
    fn zero_jobs_is_treated_as_one() {
        let results = run_tasks(0, 3, |i| i + 1);
        assert_eq!(results.len(), 3);
        assert!(results.iter().all(|r| r.result.is_ok()));
    }

    #[test]
    fn experiment_sweep_matches_serial_rendering() {
        let device = DeviceSpec::mi210();
        let defs: Vec<_> = experiments::all()
            .into_iter()
            .filter(|d| d.id == "table2" || d.id == "table3")
            .collect();
        let parallel = run_experiments(&device, &defs, 8);
        assert_eq!(parallel.summary.failures, 0);
        for (def, res) in defs.iter().zip(&parallel.results) {
            let serial = (def.run)(&device);
            assert_eq!(
                res.output.as_ref().unwrap().to_csv(),
                serial.to_csv(),
                "{}",
                def.id
            );
        }
    }

    #[test]
    fn failed_experiment_is_reported_not_fatal() {
        fn boom(_: &DeviceSpec) -> ExperimentOutput {
            panic!("generator bug");
        }
        let defs = vec![
            experiments::by_id("table2").unwrap(),
            ExperimentDef {
                id: "boom",
                title: "always fails",
                paper_claim: "",
                run: boom,
            },
            experiments::by_id("table3").unwrap(),
        ];
        let run = run_experiments(&DeviceSpec::mi210(), &defs, 4);
        assert_eq!(run.summary.failures, 1);
        assert!(run.results[0].output.is_ok());
        assert!(run.results[1]
            .output
            .as_ref()
            .unwrap_err()
            .contains("generator bug"));
        assert!(run.results[2].output.is_ok());
    }

    #[test]
    fn grid_sweep_is_deterministic_across_thread_counts() {
        let sweep = GridSweep {
            hs: vec![4096],
            sls: vec![2048],
            tps: vec![16, 32],
            flop_vs_bw: vec![1.0, 2.0],
            batch: 1,
            method: Method::Projection,
        };
        let device = DeviceSpec::mi210();
        let (serial, _) = sweep.run(&device, 1);
        let (parallel, summary) = sweep.run(&device, 8);
        assert_eq!(serial.to_csv(), parallel.to_csv());
        assert_eq!(summary.tasks, sweep.points().len());
        assert_eq!(summary.failures, 0);
    }

    #[test]
    fn grid_points_are_pruned_and_ordered() {
        let sweep = GridSweep::default();
        let points = sweep.points();
        assert!(!points.is_empty());
        // No unrealistic (H, TP) pairs survive pruning.
        assert!(points.iter().all(|p| realistic_tp(p.h, p.tp)));
        // PaLM-3x-class at TP 16 is pruned (needs TP >= 16 but 65536/128 >= 16 holds,
        // while H=4096 caps TP at 32).
        assert!(!points.iter().any(|p| p.h == 4096 && p.tp > 32));
        // Deterministic row-major order: sorted by (h, sl, tp, ratio) index.
        let mut sorted = points.clone();
        sorted.sort_by(|a, b| {
            (a.h, a.sl, a.tp)
                .cmp(&(b.h, b.sl, b.tp))
                .then(a.ratio.partial_cmp(&b.ratio).unwrap())
        });
        for (a, b) in points.iter().zip(&sorted) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn summary_displays_cache_and_timing_lines() {
        let device = DeviceSpec::mi210();
        let defs: Vec<_> = experiments::all()
            .into_iter()
            .filter(|d| d.id == "table2")
            .collect();
        let run = run_experiments(&device, &defs, 2);
        let text = run.summary.to_string();
        assert!(text.contains("1 tasks"), "{text}");
        assert!(text.contains("table2"), "{text}");
        assert!(text.contains("gemm-time:"), "{text}");
        assert!(text.contains("slack-roi:"), "{text}");
    }
}
