//! Parallel sweep engine: run the experiment registry and analyze-style
//! grids across worker threads with byte-identical output.
//!
//! Every generator in this workspace is a pure function of `(device,
//! configuration)`, so sweeps parallelize trivially — the only hard
//! requirements are that **result order is deterministic** (parallel runs
//! must emit byte-identical reports, so CSV diffs stay meaningful) and
//! that a panicking configuration surfaces as a failed task instead of
//! wedging the harness.
//!
//! [`run_tasks`] is the building block: a scoped-thread worker pool
//! (`std::thread::scope`, no external dependencies) pulling task indices
//! from an atomic counter and writing results into per-index slots, so
//! collection order is the submission order no matter which worker ran
//! what. Panics are caught per task ([`std::panic::catch_unwind`]) and
//! converted into `Err(message)` results.
//!
//! On top of it sit [`run_experiments`] — the paper's full registry with
//! per-experiment wall times — and [`GridSweep`] — a
//! `(H, SL, TP, flop-vs-bw)` cross-product evaluating both communication
//! metrics per point. Both report a [`SweepSummary`] with task timings and
//! the memo-cache activity ([`twocs_hw::CacheStats`]) observed during the
//! sweep.
//!
//! The pool is instrumented through `twocs-obs`: every task runs inside a
//! task scope (so an installed tracer records its lifecycle and the memo
//! caches charge their hits/misses to it), queue depth and per-worker
//! busy time feed the global metrics registry, and each task's wall time
//! is classified **cache-cold** (at least one memo-cache miss charged to
//! it) or **cache-warm** — reported per worker and in aggregate, so cold
//! first-touch tasks no longer skew the per-experiment timings.

use std::cell::Cell;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::experiments::{ExperimentDef, ExperimentOutput};
use crate::inference::InferenceIteration;
use crate::overlapped::overlap_pct;
use crate::report::Table;
use crate::serialized::{comm_fraction, projection_baseline, realistic_tp, sweep_hyper, Method};
use twocs_collectives::{Collective, CollectiveCostModel};
use twocs_hw::{CacheStats, DeviceSpec, HwEvolution};
use twocs_opmodel::{ProjectedIteration, ProjectionModel};
use twocs_transformer::moe::MoeConfig;
use twocs_transformer::{Hyperparams, ParallelConfig};

pub use crate::inference::Workload;
pub use crate::planner::{eval_chunk, FactoredPlan, PlannerMode};

thread_local! {
    /// The worker-thread budget nested generators should use (see
    /// [`parallelism`]). Defaults to 1 so library callers stay serial
    /// unless a sweep opts in.
    ///
    /// **Thread-scoped**, not process-global: two sweeps running
    /// concurrently (e.g. two `twocs serve` requests) each keep their own
    /// `--jobs` budget instead of stomping each other's. Worker pools
    /// inherit the budget of the thread that spawned them, so nested
    /// generators inside a sweep still observe the sweep's setting.
    static PARALLELISM: Cell<usize> = const { Cell::new(1) };
}

/// Set the calling thread's worker-thread budget, consulted by
/// grid-shaped generators (e.g. Figures 12/13 fan their series over
/// [`run_tasks`] with this count). [`run_experiments`] and
/// [`GridSweep::run`] set it from their `jobs` argument, so `--jobs 1`
/// stays fully serial. The budget is scoped to the calling thread (and
/// the worker pools it spawns — see [`run_tasks_labeled`]); other
/// threads' budgets are untouched.
pub fn set_parallelism(jobs: usize) {
    PARALLELISM.with(|p| p.set(jobs.max(1)));
}

/// The current thread's worker-thread budget for nested generators.
#[must_use]
pub fn parallelism() -> usize {
    PARALLELISM.with(Cell::get)
}

/// One completed task: its payload (or the panic message), how long it
/// ran, which worker ran it, and the memo-cache activity charged to it.
#[derive(Debug, Clone)]
pub struct TaskResult<T> {
    /// The task's value, or the panic payload rendered as a string.
    pub result: Result<T, String>,
    /// Wall time of this task on its worker.
    pub elapsed: Duration,
    /// Index of the worker thread that executed the task.
    pub worker: usize,
    /// Memo-cache hits charged to this task.
    pub cache_hits: u64,
    /// Memo-cache misses charged to this task (`> 0` ⇒ cache-cold).
    pub cache_misses: u64,
}

impl<T> TaskResult<T> {
    /// Whether the task had to compute at least one memo-cache entry.
    #[must_use]
    pub fn is_cold(&self) -> bool {
        self.cache_misses > 0
    }
}

/// Execute `count` tasks on `jobs` scoped worker threads and return the
/// results **in task-index order**, regardless of scheduling.
///
/// Workers claim indices from a shared atomic counter, so the pool
/// load-balances uneven task costs. Each task runs under
/// [`catch_unwind`]: a panic becomes `Err(message)` for that index and
/// the worker moves on to the next task — one bad configuration cannot
/// poison the pool or lose the rest of the sweep.
///
/// Tasks get generic `task N` span labels; use [`run_tasks_labeled`] when
/// meaningful names are available.
pub fn run_tasks<T, F>(jobs: usize, count: usize, task: F) -> Vec<TaskResult<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_tasks_labeled(jobs, count, |i| format!("task {i}"), task)
}

/// [`run_tasks`] with a per-task span label, so tracer output and the
/// sweep summary name tasks by experiment id or grid point instead of
/// index.
///
/// Each worker also inherits the calling thread's [`parallelism`] budget,
/// so nested pools fan out with the budget of the sweep that spawned
/// them — concurrent sweeps at different `--jobs` stay isolated.
///
/// Each task executes inside a `twocs-obs` task scope on a worker seeded
/// from the calling thread's tracing context: an installed tracer records
/// one lifecycle span per task (in its deterministic logical window under
/// [`twocs_obs::TraceMode::Logical`]), and memo-cache hits/misses are
/// charged to exactly the task that incurred them. The pool also feeds
/// the global metrics registry: `sweep.tasks_total`, the
/// `sweep.queue_depth` histogram (sampled at claim time), and per-worker
/// `sweep.worker<N>.busy_us` counters.
pub fn run_tasks_labeled<T, F, L>(
    jobs: usize,
    count: usize,
    label: L,
    task: F,
) -> Vec<TaskResult<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    L: Fn(usize) -> String + Sync,
{
    let slots: Vec<Mutex<Option<TaskResult<T>>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = jobs.max(1).min(count.max(1));
    // Workers inherit the spawning thread's budget (like the tracing
    // seed below), so a nested `run_tasks` inside a task sees the budget
    // of *its* sweep, not whatever another thread set concurrently.
    let budget = parallelism();
    let seed = twocs_obs::pool_seed();
    let registry = twocs_obs::metrics::global();
    let tasks_total = registry.counter("sweep.tasks_total");
    let queue_depth = registry.histogram("sweep.queue_depth");

    std::thread::scope(|scope| {
        for w in 0..workers {
            let seed = &seed;
            let tasks_total = &tasks_total;
            let queue_depth = &queue_depth;
            let label = &label;
            let task = &task;
            let slots = &slots;
            let next = &next;
            scope.spawn(move || {
                twocs_obs::enter_worker(seed, w);
                set_parallelism(budget);
                let busy_us = registry.counter(&format!("sweep.worker{w}.busy_us"));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    queue_depth.observe((count - i) as u64);
                    let scope_guard = twocs_obs::task_scope(i, &label(i));
                    let start = Instant::now();
                    let result = catch_unwind(AssertUnwindSafe(|| task(i))).map_err(|payload| {
                        payload
                            .downcast_ref::<&str>()
                            .map(ToString::to_string)
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "task panicked".to_owned())
                    });
                    let elapsed = start.elapsed();
                    let observation = scope_guard.finish();
                    tasks_total.inc();
                    busy_us.add_duration_us(elapsed);
                    let done = TaskResult {
                        result,
                        elapsed,
                        worker: w,
                        cache_hits: observation.cache_hits,
                        cache_misses: observation.cache_misses,
                    };
                    *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(done);
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("every task index below `count` is claimed exactly once")
        })
        .collect()
}

/// Wall time and outcome of one task, for the summary report.
#[derive(Debug, Clone)]
pub struct TaskTiming {
    /// Task label (experiment id, or a grid-point description).
    pub label: String,
    /// Wall time on its worker thread.
    pub elapsed: Duration,
    /// Whether the task completed without panicking.
    pub ok: bool,
    /// Worker thread that ran the task.
    pub worker: usize,
    /// Whether the task was cache-cold (charged at least one memo-cache
    /// miss). Cold tasks pay for first-touch computation, so their wall
    /// times are not comparable with warm ones.
    pub cold: bool,
}

/// Task counts and wall time split by memo-cache temperature.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmColdSplit {
    /// Tasks that computed at least one memo-cache entry.
    pub cold_tasks: usize,
    /// Summed wall time of cold tasks.
    pub cold_time: Duration,
    /// Tasks fully served from the memo caches.
    pub warm_tasks: usize,
    /// Summed wall time of warm tasks.
    pub warm_time: Duration,
}

impl WarmColdSplit {
    fn add(&mut self, elapsed: Duration, cold: bool) {
        if cold {
            self.cold_tasks += 1;
            self.cold_time += elapsed;
        } else {
            self.warm_tasks += 1;
            self.warm_time += elapsed;
        }
    }

    /// Mean wall time of cold tasks (zero when there were none).
    #[must_use]
    pub fn mean_cold(&self) -> Duration {
        checked_mean(self.cold_time, self.cold_tasks)
    }

    /// Mean wall time of warm tasks (zero when there were none).
    #[must_use]
    pub fn mean_warm(&self) -> Duration {
        checked_mean(self.warm_time, self.warm_tasks)
    }
}

fn checked_mean(total: Duration, n: usize) -> Duration {
    match u32::try_from(n) {
        Ok(n) if n > 0 => total / n,
        _ => Duration::ZERO,
    }
}

impl fmt::Display for WarmColdSplit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cold {:.1?} (avg {:.1?}), {} warm {:.1?} (avg {:.1?})",
            self.cold_tasks,
            self.cold_time,
            self.mean_cold(),
            self.warm_tasks,
            self.warm_time,
            self.mean_warm(),
        )
    }
}

/// One worker thread's share of a sweep.
#[derive(Debug, Clone, Default)]
pub struct WorkerTiming {
    /// Worker index.
    pub worker: usize,
    /// Tasks this worker executed.
    pub tasks: usize,
    /// Summed task wall time on this worker.
    pub busy: Duration,
    /// This worker's tasks split cache-cold vs cache-warm.
    pub split: WarmColdSplit,
}

/// What a sweep did: thread count, wall/task time, failures, per-task
/// timings, and the memo-cache activity observed while it ran.
///
/// Rendered with `Display`; the CLI prints it to **stderr** so that
/// parallel and serial runs keep byte-identical stdout.
#[derive(Debug, Clone)]
pub struct SweepSummary {
    /// Worker threads used.
    pub jobs: usize,
    /// Tasks executed.
    pub tasks: usize,
    /// Tasks that panicked.
    pub failures: usize,
    /// End-to-end wall time of the sweep.
    pub wall: Duration,
    /// Summed per-task time (wall × achieved concurrency).
    pub task_time: Duration,
    /// Per-task wall times, in task order.
    pub timings: Vec<TaskTiming>,
    /// Per-worker busy time and warm/cold split, by worker index. Workers
    /// that claimed no task still appear (with zero counts).
    pub workers: Vec<WorkerTiming>,
    /// GEMM-time cache activity during the sweep.
    pub gemm_cache: CacheStats,
    /// Collective-cost cache activity during the sweep.
    pub collective_cache: CacheStats,
    /// Slack-ROI profile cache activity during the sweep.
    pub slack_roi_cache: CacheStats,
}

impl SweepSummary {
    /// Aggregate warm/cold split across all workers.
    #[must_use]
    pub fn warm_cold(&self) -> WarmColdSplit {
        let mut agg = WarmColdSplit::default();
        for t in &self.timings {
            agg.add(t.elapsed, t.cold);
        }
        agg
    }

    /// Build the per-worker breakdown from per-task timings. `jobs` is
    /// the requested worker count; the breakdown covers
    /// `min(jobs, tasks)` workers, matching what the pool spawned.
    fn workers_from_timings(jobs: usize, timings: &[TaskTiming]) -> Vec<WorkerTiming> {
        let spawned = jobs.max(1).min(timings.len().max(1));
        let mut workers: Vec<WorkerTiming> = (0..spawned)
            .map(|w| WorkerTiming {
                worker: w,
                ..WorkerTiming::default()
            })
            .collect();
        for t in timings {
            if let Some(w) = workers.get_mut(t.worker) {
                w.tasks += 1;
                w.busy += t.elapsed;
                w.split.add(t.elapsed, t.cold);
            }
        }
        workers
    }
}

impl fmt::Display for SweepSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let concurrency = if self.wall.as_secs_f64() > 0.0 {
            self.task_time.as_secs_f64() / self.wall.as_secs_f64()
        } else {
            1.0
        };
        writeln!(
            f,
            "sweep: {} tasks on {} worker thread{}: wall {:.1?}, task time {:.1?} ({:.1}x concurrency), {} failed",
            self.tasks,
            self.jobs,
            if self.jobs == 1 { "" } else { "s" },
            self.wall,
            self.task_time,
            concurrency,
            self.failures,
        )?;
        for t in &self.timings {
            writeln!(
                f,
                "  {:<28} {:>9.1?}  {}",
                t.label,
                t.elapsed,
                match (t.ok, t.cold) {
                    (false, _) => "FAILED",
                    (true, true) => "ok (cold)",
                    (true, false) => "ok (warm)",
                }
            )?;
        }
        writeln!(f, "workers (cache-cold vs cache-warm):")?;
        for w in &self.workers {
            writeln!(
                f,
                "  w{}: {} task{}, busy {:.1?} — {}",
                w.worker,
                w.tasks,
                if w.tasks == 1 { "" } else { "s" },
                w.busy,
                w.split,
            )?;
        }
        writeln!(f, "  aggregate: {}", self.warm_cold())?;
        writeln!(f, "caches (this sweep):")?;
        writeln!(f, "  gemm-time:  {}", self.gemm_cache)?;
        writeln!(f, "  collective: {}", self.collective_cache)?;
        write!(f, "  slack-roi:  {}", self.slack_roi_cache)
    }
}

/// Snapshot all three global memo caches.
fn cache_snapshot() -> (CacheStats, CacheStats, CacheStats) {
    (
        twocs_hw::cache::gemm_time_cache_stats(),
        twocs_collectives::node_time_cache_stats(),
        twocs_opmodel::slack_roi_cache_stats(),
    )
}

/// One experiment's outcome inside a sweep.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment id (e.g. `"fig10"`).
    pub id: &'static str,
    /// Short title.
    pub title: &'static str,
    /// Generated output, or the panic message if the generator failed.
    pub output: Result<ExperimentOutput, String>,
    /// Wall time of the generator.
    pub elapsed: Duration,
}

/// A completed experiment sweep: results in registry order plus the
/// summary.
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// One result per input definition, in input order.
    pub results: Vec<ExperimentResult>,
    /// Timing and cache accounting.
    pub summary: SweepSummary,
}

/// Run `defs` against `device` on `jobs` worker threads.
///
/// Results come back in registry order, so rendering them is
/// byte-identical to a serial loop; a panicking generator yields an
/// `Err` entry without disturbing its neighbours.
#[must_use]
pub fn run_experiments(device: &DeviceSpec, defs: &[ExperimentDef], jobs: usize) -> SweepRun {
    set_parallelism(jobs);
    let before = cache_snapshot();
    let start = Instant::now();
    let raw = run_tasks_labeled(
        jobs,
        defs.len(),
        |i| defs[i].id.to_owned(),
        |i| (defs[i].run)(device),
    );
    let wall = start.elapsed();
    let after = cache_snapshot();

    let timings: Vec<TaskTiming> = defs
        .iter()
        .zip(&raw)
        .map(|(def, t)| TaskTiming {
            label: def.id.to_owned(),
            elapsed: t.elapsed,
            ok: t.result.is_ok(),
            worker: t.worker,
            cold: t.is_cold(),
        })
        .collect();
    let results: Vec<ExperimentResult> = defs
        .iter()
        .zip(raw)
        .map(|(def, t)| ExperimentResult {
            id: def.id,
            title: def.title,
            output: t.result,
            elapsed: t.elapsed,
        })
        .collect();

    let summary = SweepSummary {
        jobs: jobs.max(1),
        tasks: results.len(),
        failures: results.iter().filter(|r| r.output.is_err()).count(),
        wall,
        task_time: results.iter().map(|r| r.elapsed).sum(),
        workers: SweepSummary::workers_from_timings(jobs, &timings),
        timings,
        gemm_cache: after.0.since(&before.0),
        collective_cache: after.1.since(&before.1),
        slack_roi_cache: after.2.since(&before.2),
    };
    SweepRun { results, summary }
}

/// A `(H, SL, TP, flop-vs-bw)` cross-product sweep — optionally widened
/// with MoE (`experts`, `top_k`), pipeline (`stages`, `micro_batches`),
/// and sequence-parallel (`sp`) axes — evaluating both of the paper's
/// communication metrics per point: the serialized-communication
/// fraction (§4.3.4) and the overlapped-communication percentage
/// (§4.3.5), on hardware evolved per the flop-vs-bw ratio (§4.3.6).
///
/// The extended axes and the non-training [`Workload`]s are modeled
/// through the projection path only ([`Method::Projection`]); the
/// discrete-event simulator covers the dense TP training iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSweep {
    /// Hidden sizes.
    pub hs: Vec<u64>,
    /// Sequence lengths.
    pub sls: Vec<u64>,
    /// Tensor-parallel degrees.
    pub tps: Vec<u64>,
    /// Flop-vs-bw hardware-evolution ratios (1 = today's hardware).
    pub flop_vs_bw: Vec<f64>,
    /// MoE expert counts (1 = dense FFN, no all-to-all).
    pub experts: Vec<u64>,
    /// Experts activated per token; combinations with
    /// `top_k > experts` are pruned.
    pub top_ks: Vec<u64>,
    /// Pipeline stage counts (1 = no pipeline parallelism).
    pub stages: Vec<u64>,
    /// Micro-batches per pipeline flush.
    pub micro_batches: Vec<u64>,
    /// Sequence-parallel degrees (1 = off).
    pub sps: Vec<u64>,
    /// Batch size.
    pub batch: u64,
    /// Evaluation method for the serialized fraction.
    pub method: Method,
    /// Which iteration the sweep models (a sweep-level selector like
    /// `method`, not a per-point axis).
    pub workload: Workload,
}

impl Default for GridSweep {
    /// T-NLG- to PaLM-3×-class models at the paper's studied TP degrees
    /// and hardware-evolution ratios; all extended axes neutral, training
    /// workload.
    fn default() -> Self {
        Self {
            hs: vec![4096, 16_384, 65_536],
            sls: vec![2048, 4096],
            tps: vec![16, 64, 256],
            flop_vs_bw: vec![1.0, 2.0, 4.0],
            experts: vec![1],
            top_ks: vec![1],
            stages: vec![1],
            micro_batches: vec![1],
            sps: vec![1],
            batch: 1,
            method: Method::Simulation,
            workload: Workload::Training,
        }
    }
}

/// One grid coordinate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPoint {
    /// Hidden size.
    pub h: u64,
    /// Sequence length.
    pub sl: u64,
    /// Tensor-parallel degree.
    pub tp: u64,
    /// Flop-vs-bw evolution ratio.
    pub ratio: f64,
    /// MoE expert count (1 = dense).
    pub experts: u64,
    /// Experts activated per token.
    pub top_k: u64,
    /// Pipeline stage count (1 = no PP).
    pub stages: u64,
    /// Micro-batches per pipeline flush.
    pub micro_batches: u64,
    /// Sequence-parallel degree (1 = off).
    pub sp: u64,
}

impl GridPoint {
    /// A dense training-grid point: every extended axis at its neutral
    /// value of 1 — the shape every pre-MoE/PP/SP grid produced.
    #[must_use]
    pub fn new(h: u64, sl: u64, tp: u64, ratio: f64) -> Self {
        Self {
            h,
            sl,
            tp,
            ratio,
            experts: 1,
            top_k: 1,
            stages: 1,
            micro_batches: 1,
            sp: 1,
        }
    }

    /// Whether every extended axis sits at its neutral value — the
    /// legacy `(H, SL, TP, ratio)` shape whose outputs are pinned
    /// byte-for-byte by the pre-axis CSV contract.
    #[must_use]
    pub fn axes_default(&self) -> bool {
        self.experts == 1
            && self.top_k == 1
            && self.stages == 1
            && self.micro_batches == 1
            && self.sp == 1
    }

    /// The extended-axis tuple, the key of the planner's per-axis table.
    pub(crate) fn axis_key(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.experts,
            self.top_k,
            self.stages,
            self.micro_batches,
            self.sp,
        )
    }
}

/// A contiguous slice of a [`GridSweep`]'s point list, the unit of work
/// the distributed fabric leases to one worker at a time.
///
/// `start` is the chunk's offset into [`GridSweep::points`] order, so a
/// coordinator can merge chunk results back into deterministic point
/// order no matter which worker computed them, or in what order they
/// arrived.
#[derive(Debug, Clone, PartialEq)]
pub struct GridChunk {
    /// Index of `points[0]` within the full [`GridSweep::points`] list.
    pub start: usize,
    /// The points of this chunk, in grid order.
    pub points: Vec<GridPoint>,
}

/// Per-layer cost contributions of the extended axes, computed by one
/// shared function ([`axis_costs`]) so the naive kernel and the factored
/// planner's per-axis tables hold bit-identical values.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub(crate) struct AxisCosts {
    /// Extra serialized communication per layer: the SP AllGather +
    /// ReduceScatter sites plus the MoE all-to-all dispatch/combine.
    pub comm_per_layer: f64,
    /// Pipeline boundary transfer per micro-batch per stage slot;
    /// `0.0` when `stages == 1`.
    pub pp_p2p: f64,
}

/// Price the extended axes of `p` on `dev` for one layer of `hyper`.
///
/// - **SP** (`sp > 1`): per-block AllGather + ReduceScatter pairs over
///   the four comm sites (QKV, attention output, FC1, FC2) at their
///   weight volumes, per the LinS exemplar — forward + backward for
///   training, forward-only gathers for inference workloads.
/// - **MoE** (`experts > 1`): all-to-all dispatch + combine over the
///   routed tokens (switch-style 1.25 capacity factor), both directions
///   of both passes for training, forward-only for inference.
/// - **PP** (`stages > 1`): one boundary activation transfer per
///   micro-batch, priced analytically as step latency plus bytes over
///   the ring-all-reduce link bandwidth.
pub(crate) fn axis_costs(
    dev: &DeviceSpec,
    hyper: &Hyperparams,
    p: GridPoint,
    workload: Workload,
) -> AxisCosts {
    let net = dev.network();
    let elem = hyper.precision().bytes();
    let cost = CollectiveCostModel::default();
    let (h, ff) = (hyper.hidden(), hyper.ff_dim());
    let mut comm = 0.0;
    if p.sp > 1 {
        let n = p.sp as usize;
        for elements in [3 * h * h, h * h, h * ff, ff * h] {
            let bytes = elements * elem;
            let ag = cost.node_time(Collective::AllGather, bytes, n, net);
            let rs = cost.node_time(Collective::ReduceScatter, bytes, n, net);
            comm += match workload {
                // forward + backward
                Workload::Training => 2.0 * ag + rs,
                Workload::Prefill | Workload::Decode => ag,
            };
        }
    }
    if p.experts > 1 {
        let moe = MoeConfig {
            experts: p.experts,
            top_k: p.top_k,
            capacity_factor: 1.25,
        };
        let routed = moe.routed_tokens(workload.tokens(hyper));
        let a2a = cost.alltoall_time(routed * h * elem, p.experts as usize, net);
        comm += match workload {
            // dispatch + combine, forward + backward
            Workload::Training => 4.0 * a2a,
            Workload::Prefill | Workload::Decode => 2.0 * a2a,
        };
    }
    let pp_p2p = if p.stages > 1 {
        let tokens = workload.tokens(hyper).div_ceil(p.micro_batches);
        let bytes = (tokens * h * elem) as f64;
        cost.step_latency() + bytes / net.ring_allreduce_bandwidth()
    } else {
        0.0
    };
    AxisCosts {
        comm_per_layer: comm,
        pp_p2p,
    }
}

/// Assemble the serialized fraction from per-layer costs under the
/// pipeline schedule: per micro-batch one stage runs `layers / stages`
/// layers over `1/micro_batches` of the tokens plus one boundary
/// transfer, and the `(M + S - 1)` bubble slot count cancels in the
/// ratio. `stages == 1` reduces to `comm / (comp + comm)`.
pub(crate) fn assemble_fraction(
    layers: u64,
    comp_per_layer: f64,
    comm_per_layer: f64,
    p: GridPoint,
    pp_p2p: f64,
) -> f64 {
    let stage_layers = layers as f64 / p.stages as f64;
    let micro = p.micro_batches as f64;
    let comm_slot = stage_layers * comm_per_layer / micro + pp_p2p;
    let total_slot = stage_layers * (comp_per_layer + comm_per_layer) / micro + pp_p2p;
    if total_slot <= 0.0 {
        return 0.0;
    }
    comm_slot / total_slot
}

/// The serialized-communication fraction of one extended grid point —
/// non-default axes or a non-training workload — from the projected
/// iteration and freshly priced parts. The factored planner runs the
/// same assembly ([`extended_fraction_from_parts`]) over tabulated
/// parts; both paths call the identical pricing functions on identical
/// inputs, which is the bit-identity contract.
pub(crate) fn extended_fraction(
    dev: &DeviceSpec,
    hyper: &Hyperparams,
    projected: &ProjectedIteration,
    p: GridPoint,
    workload: Workload,
) -> f64 {
    let inference = match workload {
        Workload::Training => None,
        Workload::Prefill | Workload::Decode => {
            let it = InferenceIteration::model(dev, hyper, p.tp, workload);
            Some((it.compute_per_layer, it.serialized_comm_per_layer))
        }
    };
    let axis = axis_costs(dev, hyper, p, workload);
    extended_fraction_from_parts(projected, inference, axis, p)
}

/// [`extended_fraction`]'s final arithmetic over already-priced parts:
/// training exposes the projected per-layer compute (plus any exposed
/// DP overlap, exactly `0.0` on the TP-only sweep path) against the
/// serialized all-reduce; inference workloads substitute the roofline
/// iteration's `(compute, comm)` pair. Axis communication stacks onto
/// the per-layer comm either way.
pub(crate) fn extended_fraction_from_parts(
    projected: &ProjectedIteration,
    inference: Option<(f64, f64)>,
    axis: AxisCosts,
    p: GridPoint,
) -> f64 {
    let (comp, comm) = match inference {
        Some(pair) => pair,
        None => (
            projected.compute_per_layer + projected.exposed_overlap(),
            projected.serialized_comm_per_layer,
        ),
    };
    assemble_fraction(
        projected.layers,
        comp,
        comm + axis.comm_per_layer,
        p,
        axis.pp_p2p,
    )
}

/// The paper-style comp-vs-comm figure for the MoE axis: serialized
/// communication (now including the all-to-all dispatch/combine) as the
/// expert count grows, at today's hardware and at the 4× flop-vs-bw
/// ratio, for the H=16K study shape at TP=16 with top-2 routing.
///
/// This is the figure the "moe" experiment renders; it validates against
/// the hybrid-parallelism traffic characterization of Anthony et al.
/// (PAPERS.md): all-to-all volume scales with routed tokens, so the
/// serialized fraction climbs with expert count and climbs faster on
/// compute-rich future hardware.
#[must_use]
pub fn moe_figure(device: &DeviceSpec) -> crate::report::Figure {
    let mut fig = crate::report::Figure::new(
        "moe",
        "MoE all-to-all: serialized communication vs expert count (H=16K, TP=16, top-2)",
        "experts",
        "serialized % of time",
    );
    for (label, ratio) in [("flop-vs-bw 1x (today)", 1.0), ("flop-vs-bw 4x", 4.0)] {
        let mut series = Vec::new();
        for experts in [1u64, 2, 4, 8, 16, 32, 64] {
            let p = GridPoint {
                experts,
                top_k: 2.min(experts),
                ..GridPoint::new(16_384, 2048, 16, ratio)
            };
            let (serialized, _) =
                eval_grid_point(device, p, 1, Method::Projection, Workload::Training);
            #[allow(clippy::cast_precision_loss)]
            series.push((experts as f64, serialized));
        }
        fig = fig.with_series(crate::report::Series::new(label, series));
    }
    fig
}

/// Panic (→ a per-point `error` cell) unless `p`'s extended axes are
/// well-formed and reachable by `method`: zero axis values and
/// `top_k > experts` never describe a model, and the simulation engine
/// models only the dense TP training iteration.
fn check_extended_point(p: GridPoint, method: Method, workload: Workload) {
    assert!(
        p.experts > 0
            && p.top_k > 0
            && p.top_k <= p.experts
            && p.stages > 0
            && p.micro_batches > 0
            && p.sp > 0,
        "grid point axes must be non-zero with top_k <= experts"
    );
    if !p.axes_default() || workload != Workload::Training {
        assert!(
            method == Method::Projection,
            "the simulation engine models the dense TP training iteration only; \
             MoE/PP/SP axes and inference workloads require the projection method"
        );
    }
}

/// Evaluate one grid point: the serialized-communication fraction
/// (percent, §4.3.4) and the overlapped-communication percentage
/// (§4.3.5) at `(H, SL, TP)` on `device` evolved by the point's
/// flop-vs-bw ratio (§4.3.6), with the extended MoE/PP/SP axes and
/// the selected [`Workload`] folded into the serialized fraction.
///
/// This is the pure kernel every executor — the local thread pool, a
/// remote `twocs worker`, a serve request — funnels through, which is
/// what makes distributed output byte-identical to a local run: the
/// value depends only on `(device, point, batch, method, workload)`.
/// Points with every axis at its neutral value under the training
/// workload evaluate through exactly the pre-axis code path, so legacy
/// grids keep their pinned bytes.
#[must_use]
pub fn eval_grid_point(
    device: &DeviceSpec,
    p: GridPoint,
    batch: u64,
    method: Method,
    workload: Workload,
) -> (f64, f64) {
    check_extended_point(p, method, workload);
    let dev = if p.ratio > 1.0 {
        HwEvolution::flop_vs_bw(p.ratio).apply(device)
    } else {
        device.clone()
    };
    let hyper = sweep_hyper(p.h, p.sl, batch);
    let parallel = ParallelConfig::new().tensor(p.tp);
    let serialized = if p.axes_default() && workload == Workload::Training {
        100.0 * comm_fraction(&dev, &hyper, &parallel, method)
    } else {
        // check_extended_point guarantees Method::Projection here.
        let model = ProjectionModel::from_baseline(&projection_baseline(), &dev);
        let projected = model.project(&hyper, &parallel);
        100.0 * extended_fraction(&dev, &hyper, &projected, p, workload)
    };
    let overlap = overlap_pct(&dev, p.h, p.sl * batch, p.tp, 4);
    (serialized, overlap)
}

/// Per-point sweep outcomes in [`GridSweep::points`] order: each entry
/// is the `(serialized %, overlapped %)` pair from [`eval_grid_point`],
/// or the panic message if that point's evaluation panicked.
pub type PointResults = Vec<Result<(f64, f64), String>>;

/// Something that can evaluate every point of a [`GridSweep`] and return
/// per-point results **in [`GridSweep::points`] order**.
///
/// The seam between grid definition and execution substrate: the default
/// [`LocalExecutor`] fans points over the in-process thread pool, while
/// `twocs-dist` provides a coordinator that shards them across TCP
/// workers. `twocs serve` accepts any executor for `/v1/sweep`, so the
/// query service can ride the same fabric.
pub trait GridExecutor: Send + Sync {
    /// Evaluate `sweep` on `device`, returning one result per point of
    /// [`GridSweep::points`], in that order. `Err` entries mark points
    /// whose evaluation panicked; an outer `Err` aborts the whole sweep
    /// (e.g. the fabric lost its last worker *and* cannot run locally).
    fn execute(&self, sweep: &GridSweep, device: &DeviceSpec) -> Result<PointResults, String>;

    /// Human-oriented name for logs and summaries.
    fn describe(&self) -> String {
        "local".to_owned()
    }
}

/// The in-process executor: [`run_tasks_labeled`] over `jobs` threads,
/// exactly what `twocs sweep --jobs N` has always done.
#[derive(Debug, Clone, Copy)]
pub struct LocalExecutor {
    /// Worker threads to fan points across.
    pub jobs: usize,
}

impl GridExecutor for LocalExecutor {
    fn execute(&self, sweep: &GridSweep, device: &DeviceSpec) -> Result<PointResults, String> {
        set_parallelism(self.jobs);
        let points = sweep.points();
        let plan =
            PlannerMode::Auto.plan(device, &points, sweep.batch, sweep.method, sweep.workload);
        match &plan {
            Some(plan) => Ok(run_batch_tasks(plan, &points, self.jobs).0),
            None => {
                let raw = run_tasks_labeled(
                    self.jobs,
                    points.len(),
                    |i| grid_point_label(&points[i]),
                    |i| {
                        eval_grid_point(
                            device,
                            points[i],
                            sweep.batch,
                            sweep.method,
                            sweep.workload,
                        )
                    },
                );
                Ok(raw.into_iter().map(|t| t.result).collect())
            }
        }
    }

    fn describe(&self) -> String {
        format!(
            "local ({} thread{})",
            self.jobs,
            if self.jobs == 1 { "" } else { "s" }
        )
    }
}

fn grid_point_label(p: &GridPoint) -> String {
    format!("H={} SL={} TP={} r={}", p.h, p.sl, p.tp, p.ratio)
}

/// Lease size for batch-factored pool tasks: enough chunks to keep every
/// worker busy twice over (so uneven chunk costs still load-balance),
/// capped at 64 points so per-chunk results stay cache-friendly and a
/// panicking chunk degrades a bounded slice of the grid.
fn batch_chunk_size(points: usize, jobs: usize) -> usize {
    points.div_ceil(jobs.max(1) * 2).clamp(1, 64)
}

/// Span label for one batch chunk task: the point label when the chunk
/// is a single point, the grid-order range otherwise.
fn chunk_label(start: usize, points: &[GridPoint]) -> String {
    match points {
        [p] => grid_point_label(p),
        _ => format!("points {}..{}", start, start + points.len()),
    }
}

/// Fan a factored plan's [`FactoredPlan::eval_batch`] over the pool in
/// lease-sized chunks — one task per chunk instead of one per point —
/// and flatten back to per-point results in grid order. A chunk task
/// that panics (the batch path catches per-point fallback panics itself,
/// so this means a planner bug, not a malformed point) degrades to one
/// `Err` per covered point, preserving the executor contract.
fn run_batch_tasks(
    plan: &FactoredPlan,
    points: &[GridPoint],
    jobs: usize,
) -> (PointResults, Vec<TaskTiming>) {
    let chunk = batch_chunk_size(points.len(), jobs);
    let chunked: Vec<&[GridPoint]> = points.chunks(chunk).collect();
    let raw = run_tasks_labeled(
        jobs,
        chunked.len(),
        |i| chunk_label(i * chunk, chunked[i]),
        |i| {
            let mut out = PointResults::with_capacity(chunked[i].len());
            plan.eval_batch(chunked[i], &mut out);
            out
        },
    );
    let mut results = PointResults::with_capacity(points.len());
    let mut timings = Vec::with_capacity(raw.len());
    for (i, (c, t)) in chunked.iter().zip(raw).enumerate() {
        timings.push(TaskTiming {
            label: chunk_label(i * chunk, c),
            elapsed: t.elapsed,
            ok: t.result.is_ok(),
            worker: t.worker,
            cold: t.cache_misses > 0,
        });
        match t.result {
            Ok(rs) => results.extend(rs),
            Err(msg) => results.extend(c.iter().map(|_| Err(msg.clone()))),
        }
    }
    (results, timings)
}

impl GridSweep {
    /// The realistic grid points, in deterministic row-major order
    /// (H, then SL, then TP, then ratio). Unrealistic `(H, TP)`
    /// combinations are pruned exactly as the figures do
    /// ([`realistic_tp`]), as are invalid axis values (zero dimensions,
    /// hidden sizes that are not multiples of the fixed 256-way head
    /// sharding) — an entirely invalid grid is simply empty.
    #[must_use]
    pub fn points(&self) -> Vec<GridPoint> {
        let mut points = Vec::new();
        for &h in &self.hs {
            if h == 0 || h % 256 != 0 || self.batch == 0 {
                continue;
            }
            for &sl in &self.sls {
                if sl == 0 {
                    continue;
                }
                for &tp in &self.tps {
                    if tp == 0
                        || !realistic_tp(h, tp)
                        || tp > sweep_hyper(h, sl, self.batch).heads()
                    {
                        continue;
                    }
                    for &ratio in &self.flop_vs_bw {
                        for &experts in &self.experts {
                            for &top_k in &self.top_ks {
                                if experts == 0 || top_k == 0 || top_k > experts {
                                    continue;
                                }
                                for &stages in &self.stages {
                                    if stages == 0 {
                                        continue;
                                    }
                                    for &micro_batches in &self.micro_batches {
                                        if micro_batches == 0 {
                                            continue;
                                        }
                                        for &sp in &self.sps {
                                            if sp == 0 {
                                                continue;
                                            }
                                            points.push(GridPoint {
                                                h,
                                                sl,
                                                tp,
                                                ratio,
                                                experts,
                                                top_k,
                                                stages,
                                                micro_batches,
                                                sp,
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        points
    }

    /// Split [`Self::points`] into contiguous chunks of at most
    /// `chunk_size` points, the work unit the distributed fabric leases
    /// out. Chunks keep their grid offset so results merge back into
    /// deterministic point order.
    ///
    /// # Panics
    /// Panics if `chunk_size` is zero.
    #[must_use]
    pub fn chunks(&self, chunk_size: usize) -> Vec<GridChunk> {
        assert!(chunk_size > 0, "chunk_size must be non-zero");
        self.points()
            .chunks(chunk_size)
            .enumerate()
            .map(|(i, points)| GridChunk {
                start: i * chunk_size,
                points: points.to_vec(),
            })
            .collect()
    }

    /// The sweep table's header cells. Legacy grids (every axis
    /// neutral) keep the pre-axis 6-column shape byte-for-byte; the
    /// extended columns appear only when `extended` is set (i.e. some
    /// point actually exercises them — computable up front from
    /// [`crate::grid::GridIndex::extended`] without seeing the grid).
    #[must_use]
    pub fn header_cells(extended: bool) -> Vec<String> {
        let mut header = vec![
            "H".to_owned(),
            "SL".to_owned(),
            "TP".to_owned(),
            "flop_vs_bw".to_owned(),
        ];
        if extended {
            for col in ["experts", "top_k", "stages", "micro_batches", "sp"] {
                header.push(col.to_owned());
            }
        }
        header.push("serialized_pct".to_owned());
        header.push("overlap_pct".to_owned());
        header
    }

    /// One sweep table row: the point's coordinates plus its metric
    /// cells, with an `Err` result rendering as `error` in both metric
    /// columns. Shared by [`Self::tabulate`] and the streaming sink in
    /// `twocs-store` — single formatting site, which is the
    /// byte-identity contract between buffered and streamed output.
    #[must_use]
    pub fn row_cells(p: &GridPoint, r: &Result<(f64, f64), String>, extended: bool) -> Vec<String> {
        let (serialized, overlap) = match r {
            Ok((s, o)) => (format!("{s:.2}"), format!("{o:.2}")),
            Err(_) => ("error".to_owned(), "error".to_owned()),
        };
        let mut row = vec![
            p.h.to_string(),
            p.sl.to_string(),
            p.tp.to_string(),
            format!("{}", p.ratio),
        ];
        if extended {
            row.push(p.experts.to_string());
            row.push(p.top_k.to_string());
            row.push(p.stages.to_string());
            row.push(p.micro_batches.to_string());
            row.push(p.sp.to_string());
        }
        row.push(serialized);
        row.push(overlap);
        row
    }

    /// Render per-point results into the sweep table. `results` must be
    /// in the same order as `points`; an `Err` entry renders as `error`
    /// in both metric columns — same formatting whatever executor
    /// produced the values, which is the byte-identity contract between
    /// local and distributed runs.
    #[must_use]
    pub fn tabulate(points: &[GridPoint], results: &[Result<(f64, f64), String>]) -> Table {
        assert_eq!(
            points.len(),
            results.len(),
            "one result per grid point is required"
        );
        let extended = points.iter().any(|p| !p.axes_default());
        let mut table = Table::new(
            "sweep",
            "Serialized and overlapped communication across the grid",
            Self::header_cells(extended),
        );
        for (p, r) in points.iter().zip(results) {
            table.push_row(Self::row_cells(p, r, extended));
        }
        table
    }

    /// Evaluate the sweep through an arbitrary [`GridExecutor`] and
    /// tabulate the outcome. The table is byte-identical to
    /// [`Self::run`]'s for any correct executor, because formatting lives
    /// entirely in [`Self::tabulate`].
    pub fn run_with(
        &self,
        device: &DeviceSpec,
        executor: &dyn GridExecutor,
    ) -> Result<Table, String> {
        let points = self.points();
        let results = executor.execute(self, device)?;
        if results.len() != points.len() {
            return Err(format!(
                "executor `{}` returned {} results for {} grid points",
                executor.describe(),
                results.len(),
                points.len()
            ));
        }
        Ok(Self::tabulate(&points, &results))
    }

    /// Run the sweep on `jobs` worker threads and tabulate it.
    ///
    /// The table rows follow [`Self::points`] order whatever the thread
    /// count, so CSV output is byte-identical across `jobs` settings. A
    /// panicking point renders as `error` in both metric columns rather
    /// than aborting the sweep.
    ///
    /// Uses [`PlannerMode::Auto`]: projection grids evaluate through the
    /// factored per-axis planner (bit-identical output, see
    /// [`FactoredPlan`]), everything else runs the naive per-point path.
    #[must_use]
    pub fn run(&self, device: &DeviceSpec, jobs: usize) -> (Table, SweepSummary) {
        self.run_mode(device, jobs, PlannerMode::Auto)
    }

    /// [`Self::run`] with an explicit [`PlannerMode`] — `Naive` forces
    /// the per-point path (the benchmark baseline), `Factored` demands
    /// the planner (still falling back to naive on grids it cannot
    /// factor, e.g. simulation sweeps).
    #[must_use]
    pub fn run_mode(
        &self,
        device: &DeviceSpec,
        jobs: usize,
        planner: PlannerMode,
    ) -> (Table, SweepSummary) {
        set_parallelism(jobs);
        let points = self.points();
        let before = cache_snapshot();
        let start = Instant::now();
        let plan = planner.plan(device, &points, self.batch, self.method, self.workload);
        let (results, timings) = match &plan {
            // Factored grids run batch-shaped: the plan's SoA tables are
            // filled once (on this thread, under a chunk-scoped cache
            // session) and the pool walks lease-sized chunks through
            // `eval_batch` — one task per chunk, not per point.
            Some(plan) => run_batch_tasks(plan, &points, jobs),
            None => {
                let raw = run_tasks_labeled(
                    jobs,
                    points.len(),
                    |i| grid_point_label(&points[i]),
                    |i| eval_grid_point(device, points[i], self.batch, self.method, self.workload),
                );
                let timings = points
                    .iter()
                    .zip(&raw)
                    .map(|(p, t)| TaskTiming {
                        label: grid_point_label(p),
                        elapsed: t.elapsed,
                        ok: t.result.is_ok(),
                        worker: t.worker,
                        cold: t.is_cold(),
                    })
                    .collect();
                let results = raw.into_iter().map(|t| t.result).collect();
                (results, timings)
            }
        };
        let wall = start.elapsed();
        let after = cache_snapshot();

        let table = Self::tabulate(&points, &results);
        let summary = SweepSummary {
            jobs: jobs.max(1),
            tasks: timings.len(),
            failures: results.iter().filter(|r| r.is_err()).count(),
            wall,
            task_time: timings.iter().map(|t| t.elapsed).sum(),
            workers: SweepSummary::workers_from_timings(jobs, &timings),
            timings,
            gemm_cache: after.0.since(&before.0),
            collective_cache: after.1.since(&before.1),
            slack_roi_cache: after.2.since(&before.2),
        };
        (table, summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments;

    #[test]
    fn run_tasks_preserves_index_order() {
        for jobs in [1, 2, 8] {
            let results = run_tasks(jobs, 100, |i| i * i);
            for (i, r) in results.iter().enumerate() {
                assert_eq!(r.result, Ok(i * i), "jobs={jobs}");
            }
        }
    }

    #[test]
    fn panics_surface_as_errors_without_losing_neighbours() {
        let results = run_tasks(4, 16, |i| {
            assert!(i != 5, "task five exploded");
            i
        });
        for (i, r) in results.iter().enumerate() {
            if i == 5 {
                let err = r.result.as_ref().unwrap_err();
                assert!(err.contains("task five exploded"), "{err}");
            } else {
                assert_eq!(r.result, Ok(i));
            }
        }
    }

    #[test]
    fn zero_jobs_is_treated_as_one() {
        let results = run_tasks(0, 3, |i| i + 1);
        assert_eq!(results.len(), 3);
        assert!(results.iter().all(|r| r.result.is_ok()));
    }

    #[test]
    fn experiment_sweep_matches_serial_rendering() {
        let device = DeviceSpec::mi210();
        let defs: Vec<_> = experiments::all()
            .into_iter()
            .filter(|d| d.id == "table2" || d.id == "table3")
            .collect();
        let parallel = run_experiments(&device, &defs, 8);
        assert_eq!(parallel.summary.failures, 0);
        for (def, res) in defs.iter().zip(&parallel.results) {
            let serial = (def.run)(&device);
            assert_eq!(
                res.output.as_ref().unwrap().to_csv(),
                serial.to_csv(),
                "{}",
                def.id
            );
        }
    }

    #[test]
    fn failed_experiment_is_reported_not_fatal() {
        fn boom(_: &DeviceSpec) -> ExperimentOutput {
            panic!("generator bug");
        }
        let defs = vec![
            experiments::by_id("table2").unwrap(),
            ExperimentDef {
                id: "boom",
                title: "always fails",
                paper_claim: "",
                run: boom,
            },
            experiments::by_id("table3").unwrap(),
        ];
        let run = run_experiments(&DeviceSpec::mi210(), &defs, 4);
        assert_eq!(run.summary.failures, 1);
        assert!(run.results[0].output.is_ok());
        assert!(run.results[1]
            .output
            .as_ref()
            .unwrap_err()
            .contains("generator bug"));
        assert!(run.results[2].output.is_ok());
    }

    #[test]
    fn grid_sweep_is_deterministic_across_thread_counts() {
        let sweep = GridSweep {
            hs: vec![4096],
            sls: vec![2048],
            tps: vec![16, 32],
            flop_vs_bw: vec![1.0, 2.0],
            batch: 1,
            method: Method::Projection,
            ..GridSweep::default()
        };
        let device = DeviceSpec::mi210();
        let (serial, _) = sweep.run(&device, 1);
        let (parallel, summary) = sweep.run(&device, 8);
        assert_eq!(serial.to_csv(), parallel.to_csv());
        // Factored grids run one pool task per lease-sized chunk, so the
        // task count is bounded by (and can be below) the point count.
        assert!(
            summary.tasks >= 1 && summary.tasks <= sweep.points().len(),
            "tasks {} for {} points",
            summary.tasks,
            sweep.points().len()
        );
        assert_eq!(summary.failures, 0);
    }

    #[test]
    fn grid_points_are_pruned_and_ordered() {
        let sweep = GridSweep::default();
        let points = sweep.points();
        assert!(!points.is_empty());
        // No unrealistic (H, TP) pairs survive pruning.
        assert!(points.iter().all(|p| realistic_tp(p.h, p.tp)));
        // PaLM-3x-class at TP 16 is pruned (needs TP >= 16 but 65536/128 >= 16 holds,
        // while H=4096 caps TP at 32).
        assert!(!points.iter().any(|p| p.h == 4096 && p.tp > 32));
        // Deterministic row-major order: sorted by (h, sl, tp, ratio) index.
        let mut sorted = points.clone();
        sorted.sort_by(|a, b| {
            (a.h, a.sl, a.tp)
                .cmp(&(b.h, b.sl, b.tp))
                .then(a.ratio.partial_cmp(&b.ratio).unwrap())
        });
        for (a, b) in points.iter().zip(&sorted) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn summary_displays_cache_and_timing_lines() {
        let device = DeviceSpec::mi210();
        let defs: Vec<_> = experiments::all()
            .into_iter()
            .filter(|d| d.id == "table2")
            .collect();
        let run = run_experiments(&device, &defs, 2);
        let text = run.summary.to_string();
        assert!(text.contains("1 tasks"), "{text}");
        assert!(text.contains("table2"), "{text}");
        assert!(text.contains("gemm-time:"), "{text}");
        assert!(text.contains("slack-roi:"), "{text}");
        assert!(
            text.contains("workers (cache-cold vs cache-warm):"),
            "{text}"
        );
        assert!(text.contains("aggregate:"), "{text}");
    }

    #[test]
    fn worker_breakdown_accounts_every_task() {
        let sweep = GridSweep {
            hs: vec![4096],
            sls: vec![2048],
            tps: vec![16, 32],
            flop_vs_bw: vec![1.0, 2.0],
            batch: 1,
            method: Method::Projection,
            ..GridSweep::default()
        };
        let (_, summary) = sweep.run(&DeviceSpec::mi210(), 3);
        assert_eq!(summary.workers.len(), 3);
        let by_worker: usize = summary.workers.iter().map(|w| w.tasks).sum();
        assert_eq!(by_worker, summary.tasks);
        let busy: Duration = summary.workers.iter().map(|w| w.busy).sum();
        assert_eq!(busy, summary.task_time);
        let agg = summary.warm_cold();
        assert_eq!(agg.cold_tasks + agg.warm_tasks, summary.tasks);
        assert_eq!(agg.cold_time + agg.warm_time, summary.task_time);
        for w in &summary.workers {
            assert_eq!(w.split.cold_tasks + w.split.warm_tasks, w.tasks);
            assert_eq!(w.split.cold_time + w.split.warm_time, w.busy);
        }
    }

    /// Regression test for the warm/cold mixing bug: a first run of a
    /// configuration pays memo-cache first-touch cost and must be
    /// classified cache-cold; rerunning the identical configuration is
    /// answered entirely from the caches and must be classified warm —
    /// the summary keeps the two populations separate instead of mixing
    /// them into one per-experiment average.
    ///
    /// Uses a distinctive (H, SL) so concurrently running tests cannot
    /// pre-warm its cache keys, and the naive planner so the cache
    /// activity is charged to the point's task — factored plans
    /// front-load all memo-cache work into plan construction on the
    /// calling thread, leaving every pool task warm by design.
    #[test]
    fn cold_first_run_then_warm_rerun_are_classified_separately() {
        let sweep = GridSweep {
            hs: vec![4864],
            sls: vec![1984],
            tps: vec![16],
            flop_vs_bw: vec![1.0],
            batch: 1,
            method: Method::Projection,
            ..GridSweep::default()
        };
        let device = DeviceSpec::mi210();
        let (_, first) = sweep.run_mode(&device, 1, PlannerMode::Naive);
        let (_, second) = sweep.run_mode(&device, 1, PlannerMode::Naive);
        assert_eq!(first.tasks, 1);
        assert!(first.timings[0].cold, "first touch must be cache-cold");
        assert!(!second.timings[0].cold, "identical rerun must be warm");
        let (f, s) = (first.warm_cold(), second.warm_cold());
        assert_eq!((f.cold_tasks, f.warm_tasks), (1, 0));
        assert_eq!((s.cold_tasks, s.warm_tasks), (0, 1));
        assert_eq!(f.cold_time, first.task_time);
        assert_eq!(s.warm_time, second.task_time);
        // And the per-worker view agrees with the aggregate.
        assert_eq!(first.workers[0].split.cold_tasks, 1);
        assert_eq!(second.workers[0].split.warm_tasks, 1);
    }

    #[test]
    fn parallelism_budget_is_thread_scoped() {
        set_parallelism(3);
        std::thread::scope(|s| {
            s.spawn(|| {
                // Fresh thread starts at the default budget…
                assert_eq!(parallelism(), 1);
                // …and setting it here must not leak to the spawner.
                set_parallelism(7);
                assert_eq!(parallelism(), 7);
            });
        });
        assert_eq!(parallelism(), 3);
        set_parallelism(1);
    }

    #[test]
    fn workers_inherit_the_callers_budget() {
        set_parallelism(5);
        let observed = run_tasks(2, 4, |_| parallelism());
        for r in &observed {
            assert_eq!(r.result, Ok(5));
        }
        set_parallelism(1);
    }

    /// Regression for the process-global `PARALLELISM` atomic: a sweep
    /// running at `--jobs 1` used to see its nested-generator budget
    /// stomped by a concurrent sweep at `--jobs 8` (now reachable via
    /// `twocs serve`). Each pool's tasks must observe exactly their own
    /// sweep's budget while the other sweep runs.
    #[test]
    fn concurrent_pools_keep_their_own_jobs_budget() {
        use std::sync::mpsc;
        let (ready_tx, ready_rx) = mpsc::channel::<()>();
        let (done_tx, done_rx) = mpsc::channel::<()>();
        // Task closures are shared across workers, so the channel ends
        // they capture must be Sync; a Mutex provides that.
        let done_rx = Mutex::new(done_rx);
        std::thread::scope(|s| {
            let serial = s.spawn(move || {
                set_parallelism(1);
                run_tasks(1, 3, |i| {
                    if i == 0 {
                        // Hold the serial pool open while the parallel
                        // pool runs to completion on the other thread.
                        ready_tx.send(()).unwrap();
                        done_rx.lock().unwrap().recv().unwrap();
                    }
                    parallelism()
                })
            });
            let parallel = s.spawn(move || {
                ready_rx.recv().unwrap();
                set_parallelism(8);
                let out = run_tasks(8, 3, |_| parallelism());
                done_tx.send(()).unwrap();
                out
            });
            for r in serial.join().unwrap() {
                assert_eq!(r.result, Ok(1), "serial sweep budget was stomped");
            }
            for r in parallel.join().unwrap() {
                assert_eq!(r.result, Ok(8), "parallel sweep budget was stomped");
            }
        });
    }

    /// Two grid sweeps at different `jobs` running concurrently must both
    /// emit byte-identical output to a serial reference run.
    #[test]
    fn concurrent_sweeps_at_different_jobs_are_byte_identical() {
        let sweep = GridSweep {
            hs: vec![4096],
            sls: vec![2048],
            tps: vec![16, 32],
            flop_vs_bw: vec![1.0, 2.0],
            batch: 1,
            method: Method::Projection,
            ..GridSweep::default()
        };
        let device = DeviceSpec::mi210();
        let reference = sweep.run(&device, 1).0.to_csv();
        std::thread::scope(|s| {
            let a = s.spawn(|| {
                (0..2)
                    .map(|_| sweep.run(&device, 1).0.to_csv())
                    .collect::<Vec<_>>()
            });
            let b = s.spawn(|| {
                (0..2)
                    .map(|_| sweep.run(&device, 4).0.to_csv())
                    .collect::<Vec<_>>()
            });
            for out in a.join().unwrap().into_iter().chain(b.join().unwrap()) {
                assert_eq!(out, reference);
            }
        });
    }

    #[test]
    fn chunks_cover_every_point_in_order() {
        let sweep = GridSweep::default();
        let points = sweep.points();
        for chunk_size in [1, 3, 7, points.len(), points.len() + 5] {
            let chunks = sweep.chunks(chunk_size);
            let mut reassembled = Vec::new();
            for (i, c) in chunks.iter().enumerate() {
                assert_eq!(c.start, reassembled.len(), "chunk {i} offset");
                assert!(!c.points.is_empty() && c.points.len() <= chunk_size);
                reassembled.extend(c.points.iter().copied());
            }
            assert_eq!(reassembled, points, "chunk_size={chunk_size}");
        }
    }

    #[test]
    fn run_with_local_executor_matches_run() {
        let sweep = GridSweep {
            hs: vec![4096],
            sls: vec![2048],
            tps: vec![16, 32],
            flop_vs_bw: vec![1.0, 2.0],
            batch: 1,
            method: Method::Projection,
            ..GridSweep::default()
        };
        let device = DeviceSpec::mi210();
        let (table, _) = sweep.run(&device, 2);
        let via_executor = sweep.run_with(&device, &LocalExecutor { jobs: 2 }).unwrap();
        assert_eq!(table.to_csv(), via_executor.to_csv());
    }

    #[test]
    fn tabulate_renders_errors_without_aborting() {
        let sweep = GridSweep {
            hs: vec![4096],
            sls: vec![2048],
            tps: vec![16],
            flop_vs_bw: vec![1.0, 2.0],
            batch: 1,
            method: Method::Projection,
            ..GridSweep::default()
        };
        let points = sweep.points();
        let results = vec![Ok((12.5, 34.25)), Err("boom".to_owned())];
        let csv = GridSweep::tabulate(&points, &results).to_csv();
        assert!(csv.contains("12.50"), "{csv}");
        assert!(csv.contains("error,error"), "{csv}");
    }

    #[test]
    fn task_results_carry_worker_and_cache_attribution() {
        let results = run_tasks_labeled(2, 6, |i| format!("t{i}"), |i| i);
        for r in &results {
            assert!(r.worker < 2);
            assert_eq!((r.cache_hits, r.cache_misses), (0, 0));
            assert!(!r.is_cold());
        }
    }

    #[test]
    fn pool_records_lifecycle_spans_deterministically() {
        use std::sync::Arc;
        let trace_for = |jobs: usize| {
            let tracer = Arc::new(twocs_obs::Tracer::new(twocs_obs::TraceMode::Logical));
            twocs_obs::set_thread_tracer(Some(tracer.clone()));
            let _ = run_tasks_labeled(jobs, 5, |i| format!("job {i}"), |i| i * 2);
            twocs_obs::set_thread_tracer(None);
            twocs_obs::chrome::render(&tracer.snapshot())
        };
        let serial = trace_for(1);
        let parallel = trace_for(4);
        assert_eq!(serial, parallel, "logical traces must not depend on jobs");
        assert!(serial.contains("job 3"));
    }
}
