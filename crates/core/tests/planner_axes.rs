//! Byte-identity property tests for the extended sweep axes (MoE
//! experts/top-k, pipeline stages/micro-batches, sequence parallelism)
//! and the prefill/decode inference workloads.
//!
//! The contract is the same one `planner_batch.rs` pins for the legacy
//! axes: `FactoredPlan::eval_batch` must be bit-identical to scalar
//! `eval`, which must be bit-identical to the naive reference
//! `eval_grid_point`, for *every* randomly drawn grid over the new axes
//! — the per-axis sub-expression tables are an optimization, never a
//! semantic.

use twocs_core::serialized::Method;
use twocs_core::sweep::{
    eval_chunk, eval_grid_point, FactoredPlan, GridPoint, GridSweep, PointResults, Workload,
};
use twocs_hw::DeviceSpec;
use twocs_testkit::{cases, Rng};

fn bits(v: (f64, f64)) -> (u64, u64) {
    (v.0.to_bits(), v.1.to_bits())
}

/// Draw a random grid that exercises the extended axes: each axis list
/// is a random subset (always including 1, the legacy value, so every
/// grid mixes legacy and extended points in one plan).
fn random_axis_grid(rng: &mut Rng) -> GridSweep {
    fn axis(rng: &mut Rng, choices: &[u64]) -> Vec<u64> {
        let mut values = vec![1];
        for _ in 0..rng.usize_in(1..3) {
            let v = *rng.choose(choices);
            if !values.contains(&v) {
                values.push(v);
            }
        }
        values
    }
    let experts = axis(rng, &[2, 4, 8, 16]);
    let workload = *rng.choose(&[Workload::Training, Workload::Prefill, Workload::Decode]);
    GridSweep {
        hs: vec![4096, 16_384],
        sls: vec![2048],
        tps: vec![4, 32],
        flop_vs_bw: vec![1.0, *rng.choose(&[2.0, 4.0])],
        batch: 1,
        method: Method::Projection,
        experts,
        top_ks: axis(rng, &[2, 4]),
        stages: axis(rng, &[2, 4, 8]),
        micro_batches: axis(rng, &[2, 4, 16]),
        sps: axis(rng, &[2, 4, 8]),
        workload,
    }
}

/// Property: for random grids over the new axes and all three workloads,
/// every chunking of a shuffled copy of the grid through `eval_batch`
/// is bit-identical to scalar `eval` and to the naive reference.
#[test]
fn extended_axis_batches_are_bit_identical_to_the_naive_reference() {
    let device = DeviceSpec::mi210();
    cases(24, |rng| {
        let grid = random_axis_grid(rng);
        let mut points = grid.points();
        assert!(
            points.iter().any(|p| !p.axes_default()),
            "random grid must contain extended points"
        );
        let plan = FactoredPlan::build(&device, &points, grid.batch, grid.method, grid.workload)
            .expect("extended projection grids are factorable");
        rng.shuffle(&mut points);
        let mut out = PointResults::new();
        let mut offset = 0;
        while offset < points.len() {
            let take = rng.usize_in(1..9).min(points.len() - offset);
            let chunk = &points[offset..offset + take];
            plan.eval_batch(chunk, &mut out);
            assert_eq!(out.len(), take);
            for (p, r) in chunk.iter().zip(&out) {
                let batch = *r.as_ref().expect("valid grid point");
                assert_eq!(bits(plan.eval(*p)), bits(batch), "scalar vs batch {p:?}");
                let naive = eval_grid_point(&device, *p, grid.batch, grid.method, grid.workload);
                assert_eq!(bits(naive), bits(batch), "naive vs batch {p:?}");
            }
            offset += take;
        }
    });
}

/// Legacy points inside an extended plan still produce the exact pre-axis
/// bytes: the plan's axis tables must not perturb the default-axes path.
#[test]
fn legacy_points_in_an_extended_plan_keep_legacy_bytes() {
    let device = DeviceSpec::mi210();
    let legacy = GridSweep {
        hs: vec![4096, 16_384],
        sls: vec![2048],
        tps: vec![4, 32],
        flop_vs_bw: vec![1.0, 4.0],
        batch: 1,
        method: Method::Projection,
        ..GridSweep::default()
    };
    let extended = GridSweep {
        experts: vec![1, 8],
        top_ks: vec![1, 2],
        stages: vec![1, 4],
        ..legacy.clone()
    };
    let legacy_points = legacy.points();
    let plan = FactoredPlan::build(
        &device,
        &extended.points(),
        extended.batch,
        extended.method,
        extended.workload,
    )
    .expect("factorable");
    for p in &legacy_points {
        assert!(p.axes_default());
        let reference = eval_grid_point(&device, *p, legacy.batch, legacy.method, legacy.workload);
        assert_eq!(bits(reference), bits(plan.eval(*p)), "legacy point {p:?}");
    }
}

/// Malformed axis values (top_k > experts, zero stages) degrade to
/// per-point errors through the scalar fallback, exactly like malformed
/// legacy points — and the naive chunk path agrees.
#[test]
fn malformed_axis_points_fall_back_to_per_point_errors() {
    let device = DeviceSpec::mi210();
    let grid = GridSweep {
        hs: vec![4096],
        sls: vec![2048],
        tps: vec![4, 16],
        flop_vs_bw: vec![1.0],
        batch: 1,
        method: Method::Projection,
        experts: vec![1, 4],
        top_ks: vec![1, 2],
        ..GridSweep::default()
    };
    let points = grid.points();
    let plan = FactoredPlan::build(&device, &points, grid.batch, grid.method, grid.workload)
        .expect("factorable");
    let good = points[0];
    for bad in [
        GridPoint {
            experts: 2,
            top_k: 4,
            ..GridPoint::new(4096, 2048, 4, 1.0)
        },
        GridPoint {
            stages: 0,
            ..GridPoint::new(4096, 2048, 4, 1.0)
        },
        GridPoint {
            micro_batches: 0,
            stages: 2,
            ..GridPoint::new(4096, 2048, 4, 1.0)
        },
        GridPoint {
            sp: 0,
            ..GridPoint::new(4096, 2048, 4, 1.0)
        },
    ] {
        let chunk = [good, bad, good];
        let mut out = PointResults::new();
        plan.eval_batch(&chunk, &mut out);
        assert_eq!(out.len(), 3);
        assert!(out[1].is_err(), "malformed axes must error: {bad:?}");
        let reference = eval_grid_point(&device, good, grid.batch, grid.method, grid.workload);
        assert_eq!(bits(reference), bits(*out[0].as_ref().unwrap()));
        assert_eq!(bits(reference), bits(*out[2].as_ref().unwrap()));
        let via_chunk = eval_chunk(&device, &chunk, grid.batch, grid.method, grid.workload);
        assert!(via_chunk[0].is_ok() && via_chunk[2].is_ok());
        assert!(via_chunk[1].is_err(), "naive chunk path must agree");
    }
}

/// The simulation engine models the dense TP training iteration only:
/// extended points and non-training workloads must surface as per-point
/// errors (not aborts) through the chunk entry point.
#[test]
fn simulation_method_rejects_extended_points_per_point() {
    let device = DeviceSpec::mi210();
    let extended = GridPoint {
        stages: 2,
        micro_batches: 4,
        ..GridPoint::new(4096, 2048, 4, 1.0)
    };
    let legacy = GridPoint::new(4096, 2048, 4, 1.0);
    let out = eval_chunk(
        &device,
        &[legacy, extended],
        1,
        Method::Simulation,
        Workload::Training,
    );
    assert!(out[0].is_ok(), "legacy point simulates fine");
    assert!(out[1].is_err(), "extended point must error under sim");
    let decode = eval_chunk(&device, &[legacy], 1, Method::Simulation, Workload::Decode);
    assert!(decode[0].is_err(), "decode workload must error under sim");
}
