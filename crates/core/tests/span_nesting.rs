//! Property: span open/close nesting is always balanced, even when
//! worker tasks panic with spans open.
//!
//! Tasks open a random depth of nested phase spans and a random subset
//! panic at the innermost point. The RAII guards must still close every
//! span on unwind, the pool must still close every task scope, and the
//! resulting trace must form a proper span tree (checked with
//! `twocs_testkit::assert_span_tree`).

use std::sync::Arc;
use twocs_core::sweep::run_tasks_labeled;
use twocs_obs::{self as obs, MetricsRegistry, TraceMode, Tracer};
use twocs_testkit::{assert_counter, assert_span_tree, cases};

fn nested_phases(depth: usize, boom: bool) {
    let _guard = obs::span(&format!("depth{depth}"), "phase");
    if depth > 0 {
        nested_phases(depth - 1, boom);
    } else if boom {
        panic!("injected worker panic");
    }
}

#[test]
fn span_nesting_is_balanced_under_injected_worker_panics() {
    cases(24, |rng| {
        let count = rng.usize_in(1..12);
        let jobs = rng.usize_in(1..5);
        let depths: Vec<usize> = (0..count).map(|_| rng.usize_in(0..4)).collect();
        let panics: Vec<bool> = (0..count).map(|_| rng.bool()).collect();

        let registry = MetricsRegistry::new();
        let started = registry.counter("tasks.started");
        let tracer = Arc::new(Tracer::new(TraceMode::Logical));
        obs::set_thread_tracer(Some(tracer.clone()));
        let results = run_tasks_labeled(
            jobs,
            count,
            |i| format!("task {i}"),
            |i| {
                started.inc();
                nested_phases(depths[i], panics[i]);
            },
        );
        obs::set_thread_tracer(None);

        // Every task ran exactly once, panicking or not.
        assert_counter(&registry, "tasks.started", count as u64);
        let failed = results.iter().filter(|r| r.result.is_err()).count();
        assert_eq!(failed, panics.iter().filter(|&&b| b).count());

        let spans = tracer.snapshot().spans;
        // Balance: one lifecycle span per task scope (closed exactly
        // once despite unwinding) ...
        let task_spans = spans.iter().filter(|s| s.cat == "task").count();
        assert_eq!(task_spans, count);
        // ... and one span per phase guard, even on panicking paths.
        let phase_spans = spans.iter().filter(|s| s.cat == "phase").count();
        let expected_phases: usize = depths.iter().map(|d| d + 1).sum();
        assert_eq!(phase_spans, expected_phases);
        // Structure: phases nest inside their task windows, tasks are
        // disjoint — no partial overlap anywhere in any lane.
        assert_span_tree(&spans);
    });
}
