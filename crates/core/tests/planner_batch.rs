//! Batch-kernel contract tests: `FactoredPlan::eval_batch` must be
//! bit-identical to scalar `eval` (and hence to the naive
//! `eval_grid_point` reference) for every chunking of a grid — chunk
//! boundaries and point order are execution details, never visible in
//! the results.

use twocs_core::serialized::Method;
use twocs_core::sweep::{
    eval_chunk, eval_grid_point, FactoredPlan, GridPoint, GridSweep, PointResults,
};
use twocs_hw::DeviceSpec;
use twocs_testkit::cases;

fn projection_grid() -> GridSweep {
    GridSweep {
        hs: vec![4096, 16_384],
        sls: vec![2048, 4096],
        tps: vec![4, 16, 32],
        flop_vs_bw: vec![1.0, 2.0],
        batch: 1,
        method: Method::Projection,
        ..GridSweep::default()
    }
}

fn build_plan(device: &DeviceSpec, grid: &GridSweep) -> (Vec<GridPoint>, FactoredPlan) {
    let points = grid.points();
    let plan = FactoredPlan::build(device, &points, grid.batch, grid.method, grid.workload)
        .expect("projection grids are factorable");
    (points, plan)
}

fn bits(v: (f64, f64)) -> (u64, u64) {
    (v.0.to_bits(), v.1.to_bits())
}

/// Property: however a shuffled copy of the grid is sliced into chunks,
/// feeding each chunk through `eval_batch` yields bit-identical values
/// to scalar `eval` point by point.
#[test]
fn eval_batch_matches_scalar_across_shuffled_chunk_boundaries() {
    let device = DeviceSpec::mi210();
    let grid = projection_grid();
    let (points, plan) = build_plan(&device, &grid);
    assert!(points.len() > 8, "grid too small to exercise chunking");
    cases(16, |rng| {
        let mut shuffled = points.clone();
        rng.shuffle(&mut shuffled);
        let mut results = PointResults::new();
        let mut chunk_out = PointResults::new();
        let mut offset = 0;
        while offset < shuffled.len() {
            let take = rng.usize_in(1..9).min(shuffled.len() - offset);
            plan.eval_batch(&shuffled[offset..offset + take], &mut chunk_out);
            assert_eq!(chunk_out.len(), take);
            results.append(&mut chunk_out);
            offset += take;
        }
        for (p, r) in shuffled.iter().zip(&results) {
            let batch = *r.as_ref().expect("valid grid point");
            assert_eq!(bits(plan.eval(*p)), bits(batch), "point {p:?}");
        }
    });
}

/// The batch path agrees bit-for-bit with the naive reference kernel —
/// the transitive form of the byte-identity contract.
#[test]
fn eval_batch_matches_the_naive_reference_kernel() {
    let device = DeviceSpec::mi210();
    let grid = projection_grid();
    let (points, plan) = build_plan(&device, &grid);
    let mut out = PointResults::new();
    plan.eval_batch(&points, &mut out);
    for (p, r) in points.iter().zip(&out) {
        let naive = eval_grid_point(&device, *p, grid.batch, grid.method, grid.workload);
        assert_eq!(bits(naive), bits(*r.as_ref().unwrap()), "point {p:?}");
    }
}

#[test]
fn empty_chunk_yields_empty_results_and_clears_stale_output() {
    let device = DeviceSpec::mi210();
    let grid = projection_grid();
    let (_, plan) = build_plan(&device, &grid);
    let mut out = PointResults::new();
    out.push(Err("stale entry from a previous lease".to_owned()));
    plan.eval_batch(&[], &mut out);
    assert!(out.is_empty(), "eval_batch must clear its output buffer");
    assert!(eval_chunk(&device, &[], grid.batch, grid.method, grid.workload).is_empty());
}

#[test]
fn single_point_chunks_match_scalar_eval() {
    let device = DeviceSpec::mi210();
    let grid = projection_grid();
    let (points, plan) = build_plan(&device, &grid);
    let mut out = PointResults::new();
    for p in &points {
        plan.eval_batch(std::slice::from_ref(p), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(bits(plan.eval(*p)), bits(*out[0].as_ref().unwrap()));
    }
}

/// A chunk mixing well-formed and malformed points degrades exactly the
/// malformed ones to per-point errors through the scalar fallback; the
/// neighbours stay bit-identical to the naive kernel.
#[test]
fn malformed_points_in_a_chunk_fall_back_to_scalar_per_point() {
    let device = DeviceSpec::mi210();
    let grid = projection_grid();
    let (points, plan) = build_plan(&device, &grid);
    let good_a = points[0];
    let good_b = points[points.len() - 1];
    // h not a multiple of 256: the naive path panics for this point.
    let bad = GridPoint::new(100, 2048, 4, 1.0);
    let chunk = [good_a, bad, good_b];
    let mut out = PointResults::new();
    plan.eval_batch(&chunk, &mut out);
    assert_eq!(out.len(), 3);
    assert_eq!(
        bits(eval_grid_point(
            &device,
            good_a,
            grid.batch,
            grid.method,
            grid.workload
        )),
        bits(*out[0].as_ref().unwrap())
    );
    assert!(out[1].is_err(), "malformed point must error, not abort");
    assert_eq!(
        bits(eval_grid_point(
            &device,
            good_b,
            grid.batch,
            grid.method,
            grid.workload
        )),
        bits(*out[2].as_ref().unwrap())
    );
    // The chunk-at-a-time entry point (what a dist worker lease runs)
    // shows the same degradation. Note: a chunk containing a malformed
    // point is refused by the planner, so this exercises the naive
    // chunk path end to end.
    let via_chunk = eval_chunk(&device, &chunk, grid.batch, grid.method, grid.workload);
    assert!(via_chunk[0].is_ok() && via_chunk[2].is_ok());
    assert!(via_chunk[1].is_err());
}
