//! [`SweepStore`] — the one-call composition of journal + streaming
//! sink that sweep drivers (CLI, serve, the dist coordinator's caller)
//! record completed chunks into.
//!
//! Ordering inside [`SweepStore::record`] is the durability contract:
//! the journal append (with its fsync) happens *before* the sink
//! renders, so a crash between the two re-renders the chunk from the
//! journal on resume rather than losing it. Duplicate chunks (a resumed
//! worker re-delivering) are absorbed silently.

use std::collections::BTreeSet;
use std::io::Write;
use std::path::Path;

use twocs_core::PointResults;

use crate::journal::Journal;
use crate::sink::{SinkReport, StreamSink, DEFAULT_BUFFER_POINTS};
use crate::spec::SweepSpec;

/// Final stats from a completed store, merging the sink report with
/// journal replay counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreReport {
    /// Data rows written (equals the grid's point count).
    pub rows: usize,
    /// Rows whose evaluation failed.
    pub failures: usize,
    /// Bytes spilled to disk by the reorder buffer.
    pub spilled_bytes: u64,
    /// Spill-file read passes during draining.
    pub merge_passes: u64,
    /// Chunks recovered from the journal instead of recomputed.
    pub replayed_chunks: u64,
}

/// A journal-backed streaming sweep run (see module docs).
#[derive(Debug)]
pub struct SweepStore {
    spec: SweepSpec,
    journal: Option<Journal>,
    sink: StreamSink,
    completed: BTreeSet<u32>,
    replayed_chunks: u64,
}

impl SweepStore {
    /// Start a fresh run: optionally create a journal at
    /// `journal_path` (refusing to clobber an existing file), and open
    /// the streaming sink over `out` (header is written immediately).
    pub fn create(
        spec: SweepSpec,
        out: Box<dyn Write + Send>,
        journal_path: Option<&Path>,
    ) -> Result<Self, String> {
        let journal = journal_path
            .map(|p| Journal::create(p, &spec))
            .transpose()?;
        let sink = StreamSink::new(
            spec.index(),
            spec.chunk_size.max(1) as usize,
            out,
            DEFAULT_BUFFER_POINTS,
        )?;
        Ok(Self {
            spec,
            journal,
            sink,
            completed: BTreeSet::new(),
            replayed_chunks: 0,
        })
    }

    /// Resume from an existing journal: replays its completed chunks
    /// straight into the sink (so `out` immediately receives every
    /// in-order recovered row) and keeps appending to the same journal.
    pub fn resume(journal_path: &Path, out: Box<dyn Write + Send>) -> Result<Self, String> {
        let (journal, spec, replay) = Journal::open(journal_path)?;
        let mut sink = StreamSink::new(
            spec.index(),
            spec.chunk_size.max(1) as usize,
            out,
            DEFAULT_BUFFER_POINTS,
        )?;
        let mut completed = BTreeSet::new();
        let replayed_chunks = replay.chunks.len() as u64;
        for (chunk, values) in replay.chunks {
            sink.accept(chunk, values)?;
            completed.insert(chunk);
        }
        Ok(Self {
            spec,
            journal: Some(journal),
            sink,
            completed,
            replayed_chunks,
        })
    }

    /// The run's spec (grid, chunking, device identity).
    #[must_use]
    pub fn spec(&self) -> &SweepSpec {
        &self.spec
    }

    /// Chunks already recorded (journal-replayed or recorded live).
    #[must_use]
    pub fn completed(&self) -> &BTreeSet<u32> {
        &self.completed
    }

    /// True once every chunk of the grid has been recorded.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.sink.complete()
    }

    /// Record one completed chunk: journal it durably (if journaling),
    /// then stream its rows. Returns `Ok(false)` for a duplicate of an
    /// already-recorded chunk, which is dropped without effect.
    pub fn record(&mut self, chunk: u32, values: PointResults) -> Result<bool, String> {
        if self.completed.contains(&chunk) {
            return Ok(false);
        }
        if let Some(j) = &mut self.journal {
            j.append_chunk(chunk, &values)?;
        }
        self.sink.accept(chunk, values)?;
        self.completed.insert(chunk);
        Ok(true)
    }

    /// Note which worker leased a chunk (advisory journal record; no-op
    /// without a journal).
    pub fn note_lease(&mut self, chunk: u32, worker: u64) -> Result<(), String> {
        match &mut self.journal {
            Some(j) => j.append_lease(chunk, worker),
            None => Ok(()),
        }
    }

    /// Finish the run: every chunk must have been recorded. Flushes the
    /// output and returns merged stats. The journal file is left in
    /// place — it is the caller's receipt, cheap and explicit to
    /// delete.
    pub fn finish(self) -> Result<StoreReport, String> {
        let SinkReport {
            rows,
            failures,
            spilled_bytes,
            merge_passes,
        } = self.sink.finish()?;
        Ok(StoreReport {
            rows,
            failures,
            spilled_bytes,
            merge_passes,
            replayed_chunks: self.replayed_chunks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::{Arc, Mutex};
    use twocs_core::serialized::Method;
    use twocs_core::sweep::GridSweep;

    #[derive(Clone)]
    struct Shared(Arc<Mutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn spec() -> SweepSpec {
        SweepSpec {
            sweep: GridSweep {
                method: Method::Projection,
                ..GridSweep::default()
            },
            chunk_size: 4,
            device_name: "mi210".to_owned(),
            device_fingerprint: 1,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!(
            "twocs-store-test-{}-{name}.journal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn values(spec: &SweepSpec, chunk: u32) -> PointResults {
        (0..spec.chunk_len(chunk))
            .map(|i| Ok((chunk as f64 + i as f64 * 0.125, 1.0)))
            .collect()
    }

    #[test]
    fn interrupted_run_resumes_to_identical_bytes() {
        let s = spec();
        let n = s.chunk_count();
        assert!(n >= 4);

        // Reference: one uninterrupted, unjournaled run.
        let want = Arc::new(Mutex::new(Vec::new()));
        let mut full = SweepStore::create(s.clone(), Box::new(Shared(want.clone())), None).unwrap();
        for c in 0..n {
            assert!(full.record(c, values(&s, c)).unwrap());
        }
        let report = full.finish().unwrap();
        assert_eq!(report.rows, s.point_count());
        assert_eq!(report.replayed_chunks, 0);

        // Journaled run that dies after recording half the chunks,
        // out of order.
        let path = tmp("resume");
        let dead = Arc::new(Mutex::new(Vec::new()));
        let mut first = SweepStore::create(s.clone(), Box::new(Shared(dead)), Some(&path)).unwrap();
        first.note_lease(1, 42).unwrap();
        for c in [1u32, 0, 3] {
            first.record(c, values(&s, c)).unwrap();
        }
        drop(first); // crash: no finish()

        let got = Arc::new(Mutex::new(Vec::new()));
        let mut second = SweepStore::resume(&path, Box::new(Shared(got.clone()))).unwrap();
        assert_eq!(second.spec(), &s);
        assert_eq!(second.completed().len(), 3);
        // Re-delivered chunk is a silent duplicate.
        assert!(!second.record(1, values(&s, 1)).unwrap());
        for c in 0..n {
            if !second.completed().contains(&c) {
                assert!(second.record(c, values(&s, c)).unwrap());
            }
        }
        let report = second.finish().unwrap();
        assert_eq!(report.replayed_chunks, 3);
        assert_eq!(report.rows, s.point_count());
        assert_eq!(*want.lock().unwrap(), *got.lock().unwrap());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn finish_requires_every_chunk() {
        let s = spec();
        let out = Arc::new(Mutex::new(Vec::new()));
        let mut store = SweepStore::create(s.clone(), Box::new(Shared(out)), None).unwrap();
        store.record(0, values(&s, 0)).unwrap();
        assert!(!store.is_complete());
        assert!(store.finish().is_err());
    }
}
