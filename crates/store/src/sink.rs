//! Streaming, spill-to-disk CSV result sink.
//!
//! Chunks of point results arrive in any order (dist workers finish
//! when they finish); rows must leave in grid order to stay
//! byte-identical with the in-memory CSV path. The sink holds a cursor
//! at the next unrendered chunk: an in-order chunk renders straight to
//! the output writer, an out-of-order chunk parks in a bounded
//! in-memory buffer, and when that buffer overflows its point budget
//! every parked chunk is flushed to an append-only temp spill file,
//! leaving only a tiny `chunk id -> (offset, len)` map in RAM. As the
//! cursor advances it drains parked chunks from memory or disk.
//!
//! Memory therefore scales with the reorder window (the buffer budget
//! plus one chunk), never with the grid; a million-point sweep renders
//! through a coordinator whose RSS stays flat.
//!
//! Byte identity with [`GridSweep::tabulate`] is by construction: both
//! paths render cells through [`GridSweep::header_cells`] and
//! [`GridSweep::row_cells`] and join them with `,` + `\n`.
//!
//! Metrics: `store.sink.spilled_bytes` (bytes appended to the spill
//! file) and `store.sink.merge_passes` (drain sessions that had to read
//! the spill file back).

use std::collections::{BTreeMap, HashMap};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use twocs_core::sweep::GridSweep;
use twocs_core::{GridIndex, PointResults};

use crate::enc::{self, Reader};

/// Default in-memory reorder budget, in points. At the default dist
/// chunk size this is a few hundred parked chunks — far beyond any
/// realistic worker skew — so spilling only engages on pathological
/// reorderings or deliberately tiny budgets (as in tests).
pub const DEFAULT_BUFFER_POINTS: usize = 65_536;

/// What a completed sink did, for logs and stats lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinkReport {
    /// Data rows written (equals the grid's point count).
    pub rows: usize,
    /// Rows whose evaluation failed (rendered as `error,error`).
    pub failures: usize,
    /// Bytes written to the spill file (0 if the buffer never
    /// overflowed).
    pub spilled_bytes: u64,
    /// Drain sessions that read chunks back from the spill file.
    pub merge_passes: u64,
}

/// Index-ordered streaming CSV sink (see module docs).
pub struct StreamSink {
    out: Box<dyn Write + Send>,
    index: GridIndex,
    chunk_size: usize,
    n_chunks: u32,
    extended: bool,
    /// Next chunk to render; everything below is already on `out`.
    next_chunk: u32,
    /// Out-of-order chunks parked in memory.
    buffered: BTreeMap<u32, PointResults>,
    buffered_points: usize,
    max_buffered_points: usize,
    spill: Option<SpillFile>,
    rows: usize,
    failures: usize,
    spilled_bytes: u64,
    merge_passes: u64,
}

impl std::fmt::Debug for StreamSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamSink")
            .field("next_chunk", &self.next_chunk)
            .field("n_chunks", &self.n_chunks)
            .field("buffered", &self.buffered.len())
            .field("spilled", &self.spill.as_ref().map(|s| s.index.len()))
            .finish_non_exhaustive()
    }
}

impl StreamSink {
    /// Build a sink over `index` split into `chunk_size`-point chunks,
    /// writing CSV to `out` with an in-memory reorder budget of
    /// `max_buffered_points`. The header line is written immediately.
    pub fn new(
        index: GridIndex,
        chunk_size: usize,
        mut out: Box<dyn Write + Send>,
        max_buffered_points: usize,
    ) -> Result<Self, String> {
        let chunk_size = chunk_size.max(1);
        let extended = index.extended();
        let header = GridSweep::header_cells(extended).join(",");
        out.write_all(header.as_bytes())
            .and_then(|()| out.write_all(b"\n"))
            .map_err(|e| format!("sink: cannot write header: {e}"))?;
        Ok(Self {
            n_chunks: index.chunk_count(chunk_size) as u32,
            out,
            index,
            chunk_size,
            extended,
            next_chunk: 0,
            buffered: BTreeMap::new(),
            buffered_points: 0,
            max_buffered_points: max_buffered_points.max(1),
            spill: None,
            rows: 0,
            failures: 0,
            spilled_bytes: 0,
            merge_passes: 0,
        })
    }

    /// Chunks the sink still needs (i.e. not yet rendered).
    #[must_use]
    pub fn pending_from(&self) -> u32 {
        self.next_chunk
    }

    /// True once every chunk has been accepted and rendered.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.next_chunk == self.n_chunks
    }

    /// Accept one chunk's results. Rejects out-of-range ids, wrong
    /// value counts, and duplicates (a chunk already rendered, parked,
    /// or spilled).
    pub fn accept(&mut self, chunk: u32, values: PointResults) -> Result<(), String> {
        if chunk >= self.n_chunks {
            return Err(format!(
                "sink: chunk {chunk} out of range ({} chunks)",
                self.n_chunks
            ));
        }
        let expected = self.chunk_len(chunk);
        if values.len() != expected {
            return Err(format!(
                "sink: chunk {chunk} has {} values, expected {expected}",
                values.len()
            ));
        }
        if chunk < self.next_chunk
            || self.buffered.contains_key(&chunk)
            || self.spill.as_ref().is_some_and(|s| s.contains(chunk))
        {
            return Err(format!("sink: duplicate chunk {chunk}"));
        }
        if chunk == self.next_chunk {
            self.render(chunk, &values)?;
            self.next_chunk += 1;
            return self.drain();
        }
        self.buffered_points += values.len();
        self.buffered.insert(chunk, values);
        if self.buffered_points > self.max_buffered_points {
            self.spill_buffered()?;
        }
        Ok(())
    }

    /// Finish the stream: every chunk must have arrived. Flushes the
    /// writer and returns the report.
    pub fn finish(mut self) -> Result<SinkReport, String> {
        if !self.complete() {
            return Err(format!(
                "sink: incomplete stream: {} of {} chunks rendered",
                self.next_chunk, self.n_chunks
            ));
        }
        self.out
            .flush()
            .map_err(|e| format!("sink: cannot flush output: {e}"))?;
        let registry = twocs_obs::metrics::global();
        registry
            .counter("store.sink.spilled_bytes")
            .add(self.spilled_bytes);
        registry
            .counter("store.sink.merge_passes")
            .add(self.merge_passes);
        Ok(SinkReport {
            rows: self.rows,
            failures: self.failures,
            spilled_bytes: self.spilled_bytes,
            merge_passes: self.merge_passes,
        })
    }

    fn chunk_len(&self, chunk: u32) -> usize {
        let start = chunk as usize * self.chunk_size;
        self.index.len().saturating_sub(start).min(self.chunk_size)
    }

    /// Render one chunk's rows to the output writer.
    fn render(&mut self, chunk: u32, values: &PointResults) -> Result<(), String> {
        let start = chunk as usize * self.chunk_size;
        let mut line = String::new();
        for (i, v) in values.iter().enumerate() {
            let p = self.index.point(start + i);
            line.clear();
            line.push_str(&GridSweep::row_cells(&p, v, self.extended).join(","));
            line.push('\n');
            self.out
                .write_all(line.as_bytes())
                .map_err(|e| format!("sink: cannot write row: {e}"))?;
            self.rows += 1;
            if v.is_err() {
                self.failures += 1;
            }
        }
        Ok(())
    }

    /// Advance the cursor through every consecutively-available parked
    /// chunk, from memory or the spill file.
    fn drain(&mut self) -> Result<(), String> {
        let mut read_spill = false;
        loop {
            if let Some(values) = self.buffered.remove(&self.next_chunk) {
                self.buffered_points -= values.len();
                self.render(self.next_chunk, &values)?;
                self.next_chunk += 1;
                continue;
            }
            let from_spill = match &mut self.spill {
                Some(s) if s.contains(self.next_chunk) => Some(s.read(self.next_chunk)?),
                _ => None,
            };
            let Some(values) = from_spill else { break };
            read_spill = true;
            self.render(self.next_chunk, &values)?;
            self.next_chunk += 1;
        }
        if read_spill {
            self.merge_passes += 1;
        }
        if let Some(s) = &self.spill {
            if s.is_drained() {
                self.spill = None; // Drop removes the temp file.
            }
        }
        Ok(())
    }

    /// Move every parked chunk to the spill file, leaving only the
    /// offset map in memory.
    fn spill_buffered(&mut self) -> Result<(), String> {
        if self.spill.is_none() {
            self.spill = Some(SpillFile::create()?);
        }
        let spill = self.spill.as_mut().expect("just created");
        for (chunk, values) in std::mem::take(&mut self.buffered) {
            self.spilled_bytes += spill.append(chunk, &values)?;
        }
        self.buffered_points = 0;
        Ok(())
    }
}

static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Append-only temp file of encoded chunk results, with an in-memory
/// `chunk -> (offset, len)` map. Removed on drop.
struct SpillFile {
    file: File,
    path: PathBuf,
    write_pos: u64,
    index: HashMap<u32, (u64, u32)>,
}

impl SpillFile {
    fn create() -> Result<Self, String> {
        let path = std::env::temp_dir().join(format!(
            "twocs-sink-spill-{}-{}.tmp",
            std::process::id(),
            SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| format!("sink: cannot create spill file {}: {e}", path.display()))?;
        Ok(Self {
            file,
            path,
            write_pos: 0,
            index: HashMap::new(),
        })
    }

    fn contains(&self, chunk: u32) -> bool {
        self.index.contains_key(&chunk)
    }

    fn is_drained(&self) -> bool {
        self.index.is_empty()
    }

    /// Append one chunk; returns the bytes written.
    fn append(&mut self, chunk: u32, values: &PointResults) -> Result<u64, String> {
        let mut buf = Vec::new();
        enc::put_values(&mut buf, values);
        self.file
            .seek(SeekFrom::Start(self.write_pos))
            .and_then(|_| self.file.write_all(&buf))
            .map_err(|e| format!("sink: cannot write spill file: {e}"))?;
        self.index.insert(chunk, (self.write_pos, buf.len() as u32));
        self.write_pos += buf.len() as u64;
        Ok(buf.len() as u64)
    }

    /// Read one chunk back and forget it (each chunk is read at most
    /// once, by the drain cursor).
    fn read(&mut self, chunk: u32) -> Result<PointResults, String> {
        let (offset, len) = self
            .index
            .remove(&chunk)
            .ok_or_else(|| format!("sink: chunk {chunk} not in spill file"))?;
        let mut buf = vec![0u8; len as usize];
        self.file
            .seek(SeekFrom::Start(offset))
            .and_then(|_| self.file.read_exact(&mut buf))
            .map_err(|e| format!("sink: cannot read spill file: {e}"))?;
        let mut r = Reader::new(&buf);
        let values = enc::read_values(&mut r)?;
        if !r.done() {
            return Err("sink: trailing bytes in spill record".to_owned());
        }
        Ok(values)
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};
    use twocs_testkit::cases;

    /// A `Write` handle over a shared byte buffer.
    #[derive(Clone)]
    struct Shared(Arc<Mutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn sweep() -> GridSweep {
        GridSweep::default()
    }

    fn fake_values(index: &GridIndex, chunk: u32, chunk_size: usize) -> PointResults {
        let start = chunk as usize * chunk_size;
        let len = index.len().saturating_sub(start).min(chunk_size);
        (0..len)
            .map(|i| {
                let rank = start + i;
                if rank % 17 == 3 {
                    Err(format!("boom {rank}"))
                } else {
                    Ok((rank as f64 * 0.25, 100.0 - rank as f64))
                }
            })
            .collect()
    }

    fn expected_csv(s: &GridSweep, index: &GridIndex, chunk_size: usize) -> String {
        let points = s.points();
        let results: Vec<_> = (0..index.chunk_count(chunk_size))
            .flat_map(|c| fake_values(index, c as u32, chunk_size))
            .collect();
        GridSweep::tabulate(&points, &results).to_csv()
    }

    #[test]
    fn in_order_stream_matches_tabulate_bytes() {
        let s = sweep();
        let index = s.index();
        let buf = Arc::new(Mutex::new(Vec::new()));
        let mut sink =
            StreamSink::new(s.index(), 16, Box::new(Shared(buf.clone())), 1 << 20).unwrap();
        for c in 0..index.chunk_count(16) as u32 {
            sink.accept(c, fake_values(&index, c, 16)).unwrap();
        }
        let report = sink.finish().unwrap();
        assert_eq!(report.rows, index.len());
        assert_eq!(report.spilled_bytes, 0);
        let got = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(got, expected_csv(&s, &index, 16));
    }

    #[test]
    fn shuffled_chunks_with_forced_spill_still_match_bytes() {
        cases(20, |rng| {
            let s = sweep();
            let index = s.index();
            let chunk_size = rng.usize_in(1..40);
            let n = index.chunk_count(chunk_size) as u32;
            let mut order: Vec<u32> = (0..n).collect();
            rng.shuffle(&mut order);
            let buf = Arc::new(Mutex::new(Vec::new()));
            // A tiny budget forces spilling on almost every reorder.
            let mut sink = StreamSink::new(
                s.index(),
                chunk_size,
                Box::new(Shared(buf.clone())),
                chunk_size * 2,
            )
            .unwrap();
            for &c in &order {
                sink.accept(c, fake_values(&index, c, chunk_size)).unwrap();
            }
            let report = sink.finish().unwrap();
            assert_eq!(report.rows, index.len());
            let got = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
            assert_eq!(got, expected_csv(&s, &index, chunk_size));
        });
    }

    #[test]
    fn duplicates_bad_lengths_and_incomplete_streams_are_rejected() {
        let s = sweep();
        let index = s.index();
        let buf = Arc::new(Mutex::new(Vec::new()));
        let mut sink = StreamSink::new(s.index(), 16, Box::new(Shared(buf)), 1 << 20).unwrap();
        sink.accept(0, fake_values(&index, 0, 16)).unwrap();
        assert!(sink.accept(0, fake_values(&index, 0, 16)).is_err());
        sink.accept(2, fake_values(&index, 2, 16)).unwrap();
        assert!(sink.accept(2, fake_values(&index, 2, 16)).is_err());
        assert!(sink
            .accept(1, fake_values(&index, 0, 16)[..3].to_vec())
            .is_err());
        assert!(sink.accept(u32::MAX, Vec::new()).is_err());
        assert!(sink.finish().is_err());
    }

    #[test]
    fn spill_file_is_removed_after_drain() {
        let s = sweep();
        let index = s.index();
        let n = index.chunk_count(8) as u32;
        assert!(n > 3);
        let buf = Arc::new(Mutex::new(Vec::new()));
        let mut sink = StreamSink::new(s.index(), 8, Box::new(Shared(buf)), 1).unwrap();
        // Park everything except chunk 0 -> guaranteed spill.
        for c in (1..n).rev() {
            sink.accept(c, fake_values(&index, c, 8)).unwrap();
        }
        let spill_path = sink.spill.as_ref().map(|f| f.path.clone()).unwrap();
        assert!(spill_path.exists());
        sink.accept(0, fake_values(&index, 0, 8)).unwrap();
        assert!(sink.complete());
        assert!(sink.spill.is_none());
        assert!(!spill_path.exists());
        let report = sink.finish().unwrap();
        assert!(report.spilled_bytes > 0);
        assert!(report.merge_passes >= 1);
    }
}
