//! Bounded-memory local sweep driver: evaluates every pending chunk of
//! a [`SweepStore`] across worker threads without ever materializing
//! the full grid.
//!
//! Workers claim chunk ids from an atomic cursor, decode their points
//! lazily through the grid index, evaluate them — through one shared
//! whole-grid [`FactoredPlan`] when the method supports it — and send
//! `(chunk, values)` over a bounded channel. The calling thread is the
//! sole recorder: it journals and streams each chunk as it lands, so
//! peak memory is the plan tables plus the channel and reorder windows,
//! independent of grid size.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;

use twocs_core::planner::{eval_chunk, FactoredPlan};
use twocs_core::PointResults;
use twocs_hw::DeviceSpec;

use crate::store::SweepStore;

/// Evaluate every chunk the store has not yet recorded, on `jobs`
/// worker threads, recording each completed chunk (journal + stream)
/// as it arrives. Returns the number of chunks evaluated (0 for an
/// already-complete resume).
pub fn run_streaming(
    device: &DeviceSpec,
    store: &mut SweepStore,
    jobs: usize,
) -> Result<u64, String> {
    let spec = store.spec();
    if device.fingerprint() != spec.device_fingerprint {
        return Err(format!(
            "device \"{}\" (fingerprint {:#x}) does not match the run's journaled \
             device \"{}\" (fingerprint {:#x}); resuming on different hardware \
             would mix incomparable numbers in one CSV",
            device.name(),
            device.fingerprint(),
            spec.device_name,
            spec.device_fingerprint
        ));
    }
    let index = spec.index();
    let chunk_size = spec.chunk_size.max(1) as usize;
    let pending: Vec<u32> = (0..spec.chunk_count())
        .filter(|c| !store.completed().contains(c))
        .collect();
    if pending.is_empty() {
        return Ok(0);
    }
    let sweep = spec.sweep.clone();
    let batch = sweep.batch;
    let method = sweep.method;
    let workload = sweep.workload;
    // One whole-grid factored plan shared read-only by every worker;
    // None (simulation grids) falls back to per-chunk planning.
    let plan: Option<FactoredPlan> = FactoredPlan::build_from_sweep(device, &sweep);
    let jobs = jobs.max(1).min(pending.len());
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = sync_channel::<(u32, PointResults)>(jobs * 4);

    let evaluated = std::thread::scope(|scope| -> Result<u64, String> {
        for _ in 0..jobs {
            let tx = tx.clone();
            let (pending, cursor, index, plan) = (&pending, &cursor, &index, &plan);
            scope.spawn(move || loop {
                let at = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&chunk) = pending.get(at) else { break };
                let points = index.chunk_points(chunk as usize, chunk_size);
                let values = match plan {
                    Some(plan) => {
                        let mut out = PointResults::with_capacity(points.len());
                        plan.eval_batch(&points, &mut out);
                        out
                    }
                    None => eval_chunk(device, &points, batch, method, workload),
                };
                if tx.send((chunk, values)).is_err() {
                    break; // recorder gone (record error): stop early
                }
            });
        }
        drop(tx);
        let mut evaluated = 0u64;
        while let Ok((chunk, values)) = rx.recv() {
            store.record(chunk, values)?;
            evaluated += 1;
        }
        Ok(evaluated)
    })?;
    Ok(evaluated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::{Arc, Mutex};
    use twocs_core::serialized::Method;
    use twocs_core::sweep::{GridSweep, Workload};

    #[derive(Clone)]
    struct Shared(Arc<Mutex<Vec<u8>>>);

    impl std::io::Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn spec(device: &DeviceSpec, method: Method) -> crate::SweepSpec {
        crate::SweepSpec {
            sweep: GridSweep {
                method,
                workload: Workload::Training,
                ..GridSweep::default()
            },
            chunk_size: 4,
            device_name: device.name().to_owned(),
            device_fingerprint: device.fingerprint(),
        }
    }

    fn reference_csv(device: &DeviceSpec, s: &GridSweep) -> String {
        let points = s.points();
        let results: Vec<_> = points
            .iter()
            .map(|&p| {
                Ok(twocs_core::sweep::eval_grid_point(
                    device, p, s.batch, s.method, s.workload,
                ))
            })
            .collect();
        GridSweep::tabulate(&points, &results).to_csv()
    }

    fn tmp(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!(
            "twocs-runner-test-{}-{name}.journal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn streaming_run_matches_in_memory_csv_for_both_methods() {
        let device = DeviceSpec::mi210();
        for method in [Method::Projection, Method::Simulation] {
            let s = spec(&device, method);
            let buf = Arc::new(Mutex::new(Vec::new()));
            let mut store =
                SweepStore::create(s.clone(), Box::new(Shared(buf.clone())), None).unwrap();
            let evaluated = run_streaming(&device, &mut store, 4).unwrap();
            assert_eq!(evaluated, u64::from(s.chunk_count()));
            store.finish().unwrap();
            let got = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
            assert_eq!(got, reference_csv(&device, &s.sweep), "method {method:?}");
        }
    }

    #[test]
    fn resumed_run_evaluates_only_pending_chunks() {
        let device = DeviceSpec::mi210();
        let s = spec(&device, Method::Projection);
        let path = tmp("pending");

        // First run dies after a partial, journaled evaluation.
        {
            let buf = Arc::new(Mutex::new(Vec::new()));
            let mut store =
                SweepStore::create(s.clone(), Box::new(Shared(buf)), Some(&path)).unwrap();
            let index = s.index();
            for chunk in [0u32, 2, 5] {
                let points = index.chunk_points(chunk as usize, 4);
                store
                    .record(
                        chunk,
                        eval_chunk(&device, &points, 1, s.sweep.method, s.sweep.workload),
                    )
                    .unwrap();
            }
        }

        let buf = Arc::new(Mutex::new(Vec::new()));
        let mut store = SweepStore::resume(&path, Box::new(Shared(buf.clone()))).unwrap();
        let evaluated = run_streaming(&device, &mut store, 3).unwrap();
        assert_eq!(evaluated, u64::from(s.chunk_count()) - 3);
        let report = store.finish().unwrap();
        assert_eq!(report.replayed_chunks, 3);
        let got = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(got, reference_csv(&device, &s.sweep));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_device_is_refused() {
        let device = DeviceSpec::mi210();
        let mut s = spec(&device, Method::Projection);
        s.device_fingerprint ^= 1;
        let buf = Arc::new(Mutex::new(Vec::new()));
        let mut store = SweepStore::create(s, Box::new(Shared(buf)), None).unwrap();
        assert!(run_streaming(&device, &mut store, 2).is_err());
    }
}
