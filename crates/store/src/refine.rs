//! Adaptive frontier refinement: find the comp-vs-comm crossover along
//! the `flop_vs_bw` axis without sweeping it densely.
//!
//! The paper's headline question for a shape is *at what
//! compute-vs-bandwidth scaling ratio does communication start to
//! dominate* — i.e. where the serialized-communication fraction crosses
//! a threshold. The serialized fraction is monotone non-decreasing in
//! `flop_vs_bw` (scaling FLOPs faster than bandwidth only ever shifts
//! time toward communication), so the crossover is a root of a monotone
//! function and bisection finds it to tolerance `tol` in
//! `O(log(range/tol))` evaluations per shape, versus the
//! `range/tol + 1` evaluations a dense axis at the same resolution
//! would need.
//!
//! The output frontier is a first-class [`Table`] (id `frontier`):
//! one row per surviving `(H, SL, TP[, extended axes])` combination
//! with the crossover ratio, the serialized fraction at it, a status
//! (`crossed` / `below_range` / `above_range`), and the evaluation
//! count spent on that row.

use twocs_core::report::Table;
use twocs_core::serialized::Method;
use twocs_core::sweep::{eval_grid_point, GridPoint, GridSweep};
use twocs_hw::DeviceSpec;

/// The metric whose threshold crossing defines the frontier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefineMetric {
    /// Serialized (exposed) communication as a percentage of step time
    /// — the paper's comp-vs-comm balance metric. CLI spelling:
    /// `comm-frac`.
    SerializedFraction,
}

/// A refinement request: which metric, the threshold (as a fraction in
/// `0..=1`), and the ratio-axis tolerance of the bisection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineSpec {
    /// Metric defining the frontier.
    pub metric: RefineMetric,
    /// Threshold as a percentage (`50.0` = half the step serialized).
    pub threshold_pct: f64,
    /// Absolute tolerance on the crossover ratio (default `0.01`).
    pub tolerance: f64,
}

impl RefineSpec {
    /// Parse the CLI form `<metric>=<fraction>`, e.g. `comm-frac=0.5`.
    pub fn parse(s: &str, tolerance: f64) -> Result<Self, String> {
        let (metric, value) = s
            .split_once('=')
            .ok_or_else(|| format!("--refine wants <metric>=<fraction>, got \"{s}\""))?;
        if metric != "comm-frac" {
            return Err(format!(
                "unknown refine metric \"{metric}\" (supported: comm-frac)"
            ));
        }
        let frac: f64 = value
            .parse()
            .map_err(|_| format!("refine fraction \"{value}\" is not a number"))?;
        if !(0.0..=1.0).contains(&frac) || !frac.is_finite() {
            return Err(format!("refine fraction {frac} must be in 0..=1"));
        }
        if !(tolerance.is_finite() && tolerance > 0.0) {
            return Err(format!("refine tolerance {tolerance} must be positive"));
        }
        Ok(Self {
            metric: RefineMetric::SerializedFraction,
            threshold_pct: frac * 100.0,
            tolerance,
        })
    }
}

/// Where one shape's metric sits relative to the threshold over the
/// swept ratio range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Crossing {
    /// The metric crosses the threshold inside the range: the crossover
    /// ratio (to tolerance) and the metric's value there.
    Crossed {
        /// Smallest ratio (within tolerance) at or above the threshold.
        ratio: f64,
        /// Serialized percentage evaluated at that ratio.
        serialized_pct: f64,
    },
    /// Already at/above the threshold at the range's low end.
    BelowRange,
    /// Still below the threshold at the range's high end.
    AboveRange,
}

/// One frontier row: the shape and where its crossover landed.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierRow {
    /// The grid point carrying the shape (its `ratio` field is the
    /// crossover when `crossing` is [`Crossing::Crossed`], else the
    /// range edge that was inspected last).
    pub point: GridPoint,
    /// Crossing classification for this shape.
    pub crossing: Crossing,
    /// Model evaluations spent on this row.
    pub evaluations: u64,
}

/// The refined frontier plus its cost accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierResult {
    /// One row per surviving shape combination.
    pub rows: Vec<FrontierRow>,
    /// Total model evaluations spent.
    pub evaluations: u64,
    /// Evaluations a dense `flop_vs_bw` axis at the same tolerance
    /// would have needed (`shapes × (range/tol + 1)`).
    pub dense_equivalent: u64,
    /// The frontier rendered as a CSV-able table (id `frontier`).
    pub table: Table,
}

/// Refine the crossover frontier of `sweep` on `device`.
///
/// Uses the sweep's `flop_vs_bw` list only for its extent (min/max
/// bracket the search); every other axis is swept as usual. Requires
/// `Method::Projection` — the analytic model is what makes thousands of
/// single-point probes cheap; simulation probes would dwarf the dense
/// sweep this mode exists to avoid.
pub fn refine_frontier(
    device: &DeviceSpec,
    sweep: &GridSweep,
    spec: &RefineSpec,
) -> Result<FrontierResult, String> {
    if sweep.method != Method::Projection {
        return Err(
            "--refine requires the projection method (simulation probes would cost \
             more than the dense sweep refinement avoids)"
                .to_owned(),
        );
    }
    let index = sweep.index();
    if index.is_empty() {
        return Err("refine: the grid has no surviving points".to_owned());
    }
    let lo = sweep
        .flop_vs_bw
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let hi = sweep
        .flop_vs_bw
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    if !(lo.is_finite() && hi.is_finite() && lo >= 1.0 && hi >= lo) {
        return Err(format!(
            "refine: flop_vs_bw range [{lo}, {hi}] must be finite and start at >= 1"
        ));
    }
    let tol = spec.tolerance;
    let RefineMetric::SerializedFraction = spec.metric;
    let threshold = spec.threshold_pct;

    let extended = index.extended();
    let mut headers: Vec<String> = ["H", "SL", "TP"].map(str::to_owned).to_vec();
    if extended {
        for c in ["experts", "top_k", "stages", "micro_batches", "sp"] {
            headers.push(c.to_owned());
        }
    }
    for c in [
        "crossover_flop_vs_bw",
        "serialized_pct_at_crossover",
        "status",
        "evals",
    ] {
        headers.push(c.to_owned());
    }
    let mut table = Table::new(
        "frontier",
        format!("serialized-comm crossover frontier @ {threshold:.0}%"),
        headers,
    );

    let axes: Vec<_> = index.axis_tuples().collect();
    let mut rows = Vec::with_capacity(index.triples().len() * axes.len());
    let mut total_evals = 0u64;
    for &(h, sl, tp) in index.triples() {
        for &(experts, top_k, stages, micro_batches, sp) in &axes {
            let shape = GridPoint {
                experts,
                top_k,
                stages,
                micro_batches,
                sp,
                ..GridPoint::new(h, sl, tp, lo)
            };
            let mut evals = 0u64;
            let mut probe = |ratio: f64| -> f64 {
                evals += 1;
                eval_grid_point(
                    device,
                    GridPoint { ratio, ..shape },
                    sweep.batch,
                    sweep.method,
                    sweep.workload,
                )
                .0
            };
            let (crossing, point) = bisect(&mut probe, lo, hi, threshold, tol, shape);
            total_evals += evals;
            let mut cells: Vec<String> = vec![h.to_string(), sl.to_string(), tp.to_string()];
            if extended {
                for v in [experts, top_k, stages, micro_batches, sp] {
                    cells.push(v.to_string());
                }
            }
            let (ratio_cell, pct_cell, status) = match crossing {
                Crossing::Crossed {
                    ratio,
                    serialized_pct,
                } => (
                    format!("{ratio:.4}"),
                    format!("{serialized_pct:.2}"),
                    "crossed",
                ),
                Crossing::BelowRange => ("".to_owned(), "".to_owned(), "below_range"),
                Crossing::AboveRange => ("".to_owned(), "".to_owned(), "above_range"),
            };
            cells.push(ratio_cell);
            cells.push(pct_cell);
            cells.push(status.to_owned());
            cells.push(evals.to_string());
            table.push_row(cells);
            rows.push(FrontierRow {
                point,
                crossing,
                evaluations: evals,
            });
        }
    }
    let dense_per_shape = ((hi - lo) / tol).floor() as u64 + 1;
    Ok(FrontierResult {
        dense_equivalent: rows.len() as u64 * dense_per_shape,
        evaluations: total_evals,
        rows,
        table,
    })
}

/// Bisect the monotone serialized fraction over `[lo, hi]` for the
/// smallest ratio whose value reaches `threshold`, to tolerance `tol`.
fn bisect(
    probe: &mut impl FnMut(f64) -> f64,
    lo: f64,
    hi: f64,
    threshold: f64,
    tol: f64,
    shape: GridPoint,
) -> (Crossing, GridPoint) {
    let at_lo = probe(lo);
    if at_lo >= threshold {
        return (Crossing::BelowRange, GridPoint { ratio: lo, ..shape });
    }
    if lo == hi {
        return (Crossing::AboveRange, GridPoint { ratio: hi, ..shape });
    }
    let mut at_hi = probe(hi);
    if at_hi < threshold {
        return (Crossing::AboveRange, GridPoint { ratio: hi, ..shape });
    }
    let (mut lo, mut hi) = (lo, hi);
    while hi - lo > tol {
        let mid = (lo + hi) / 2.0;
        let at_mid = probe(mid);
        if at_mid >= threshold {
            hi = mid;
            at_hi = at_mid;
        } else {
            lo = mid;
        }
    }
    (
        Crossing::Crossed {
            ratio: hi,
            serialized_pct: at_hi,
        },
        GridPoint { ratio: hi, ..shape },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DeviceSpec {
        DeviceSpec::mi210()
    }

    fn sweep() -> GridSweep {
        GridSweep {
            method: Method::Projection,
            ..GridSweep::default()
        }
    }

    #[test]
    fn parse_accepts_comm_frac_and_rejects_junk() {
        let spec = RefineSpec::parse("comm-frac=0.5", 0.01).unwrap();
        assert_eq!(spec.threshold_pct, 50.0);
        assert_eq!(spec.tolerance, 0.01);
        assert!(RefineSpec::parse("comm-frac", 0.01).is_err());
        assert!(RefineSpec::parse("latency=0.5", 0.01).is_err());
        assert!(RefineSpec::parse("comm-frac=1.5", 0.01).is_err());
        assert!(RefineSpec::parse("comm-frac=zed", 0.01).is_err());
        assert!(RefineSpec::parse("comm-frac=0.5", 0.0).is_err());
    }

    #[test]
    fn refine_requires_projection() {
        let s = GridSweep::default(); // Method::Simulation
        let spec = RefineSpec::parse("comm-frac=0.5", 0.01).unwrap();
        assert!(refine_frontier(&device(), &s, &spec).is_err());
    }

    #[test]
    fn crossovers_agree_with_direct_evaluation() {
        // 30%: the default grid tops out near 40% serialized at ratio 4,
        // so 30% is a threshold it genuinely crosses.
        let s = sweep();
        let spec = RefineSpec::parse("comm-frac=0.3", 0.01).unwrap();
        let result = refine_frontier(&device(), &s, &spec).unwrap();
        assert_eq!(
            result.rows.len(),
            s.index().triples().len() * s.index().axis_tuples().count()
        );
        let mut crossed = 0;
        for row in &result.rows {
            if let Crossing::Crossed {
                ratio,
                serialized_pct,
            } = row.crossing
            {
                crossed += 1;
                assert!(serialized_pct >= 30.0);
                assert!((1.0..=4.0).contains(&ratio));
                // The model agrees at the reported ratio, and is below
                // the threshold one tolerance to the left (when that
                // stays in range).
                let at = eval_grid_point(&device(), row.point, s.batch, s.method, s.workload).0;
                assert!((at - serialized_pct).abs() < 1e-9);
                let left = ratio - spec.tolerance;
                if left > 1.0 {
                    let below = eval_grid_point(
                        &device(),
                        GridPoint {
                            ratio: left,
                            ..row.point
                        },
                        s.batch,
                        s.method,
                        s.workload,
                    )
                    .0;
                    assert!(below < 30.0 + 1e-9, "not the smallest crossing ratio");
                }
            }
        }
        // The default grid must actually exhibit a frontier.
        assert!(crossed > 0, "no shape crossed 30% serialized");
    }

    #[test]
    fn refinement_beats_the_dense_grid_by_10x() {
        let s = sweep();
        let spec = RefineSpec::parse("comm-frac=0.3", 0.01).unwrap();
        let result = refine_frontier(&device(), &s, &spec).unwrap();
        assert!(
            result.evaluations * 10 <= result.dense_equivalent,
            "{} evals vs dense {}",
            result.evaluations,
            result.dense_equivalent
        );
    }

    #[test]
    fn frontier_table_shape_matches_rows() {
        let s = sweep();
        let spec = RefineSpec::parse("comm-frac=0.5", 0.01).unwrap();
        let result = refine_frontier(&device(), &s, &spec).unwrap();
        assert_eq!(result.table.id, "frontier");
        assert_eq!(result.table.rows.len(), result.rows.len());
        let csv = result.table.to_csv();
        assert!(csv.starts_with(
            "H,SL,TP,crossover_flop_vs_bw,serialized_pct_at_crossover,status,evals\n"
        ));
    }
}
