//! Private byte-level encoding helpers shared by the journal, the spill
//! file, and the spec fingerprint: little-endian scalars, length-prefixed
//! strings and lists, a streaming CRC-32 (IEEE), and FNV-1a 64.
//!
//! Deliberately independent of the dist wire protocol — a journal is a
//! durable artifact with its own versioning, while the wire format may
//! bump per release — but it follows the same conventions (LE integers,
//! f64 by bit pattern, u32 length prefixes bounded by remaining input).

use twocs_core::PointResults;

/// Append a u32, little-endian.
pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a u64, little-endian.
pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an f64 by bit pattern (bit-exact round trip, NaN included).
pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Append a length-prefixed UTF-8 string.
pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Append a length-prefixed u64 list.
pub(crate) fn put_u64_list(out: &mut Vec<u8>, list: &[u64]) {
    put_u32(out, list.len() as u32);
    for &v in list {
        put_u64(out, v);
    }
}

/// Append a length-prefixed f64 list (by bit pattern).
pub(crate) fn put_f64_list(out: &mut Vec<u8>, list: &[f64]) {
    put_u32(out, list.len() as u32);
    for &v in list {
        put_f64(out, v);
    }
}

/// Sequential reader over an encoded payload; every read is
/// bounds-checked and length prefixes are validated against the
/// remaining input, so corrupt payloads fail with an error instead of
/// a panic or an absurd allocation.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, at: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    pub(crate) fn done(&self) -> bool {
        self.at == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "truncated payload: wanted {n} bytes, {} left",
                self.remaining()
            ));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A length prefix for items of `item_bytes` each, rejected when it
    /// cannot fit in the remaining input.
    pub(crate) fn len_prefix(&mut self, item_bytes: usize) -> Result<usize, String> {
        let n = self.u32()? as usize;
        if n.saturating_mul(item_bytes.max(1)) > self.remaining() {
            return Err(format!(
                "length prefix {n} exceeds remaining payload ({} bytes)",
                self.remaining()
            ));
        }
        Ok(n)
    }

    pub(crate) fn str(&mut self) -> Result<String, String> {
        let n = self.len_prefix(1)?;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|e| format!("invalid UTF-8: {e}"))
    }

    pub(crate) fn u64_list(&mut self) -> Result<Vec<u64>, String> {
        let n = self.len_prefix(8)?;
        (0..n).map(|_| self.u64()).collect()
    }

    pub(crate) fn f64_list(&mut self) -> Result<Vec<f64>, String> {
        let n = self.len_prefix(8)?;
        (0..n).map(|_| self.f64()).collect()
    }
}

/// Encode per-point results: count, then per point either `0` + two f64
/// bit patterns (ok) or `1` + error string.
pub(crate) fn put_values(out: &mut Vec<u8>, values: &PointResults) {
    put_u32(out, values.len() as u32);
    for v in values {
        match v {
            Ok((s, o)) => {
                out.push(0);
                put_f64(out, *s);
                put_f64(out, *o);
            }
            Err(msg) => {
                out.push(1);
                put_str(out, msg);
            }
        }
    }
}

/// Decode per-point results written by [`put_values`].
pub(crate) fn read_values(r: &mut Reader<'_>) -> Result<PointResults, String> {
    let n = r.len_prefix(1)?;
    let mut values = PointResults::with_capacity(n);
    for _ in 0..n {
        values.push(match r.u8()? {
            0 => Ok((r.f64()?, r.f64()?)),
            1 => Err(r.str()?),
            t => return Err(format!("unknown point-result tag {t}")),
        });
    }
    Ok(values)
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `bytes` —
/// the per-record checksum the journal uses to detect torn or corrupt
/// records on replay. Table-free bitwise form: the journal writes
/// records at chunk cadence, so throughput is irrelevant next to the
/// fsync beside it.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// FNV-1a 64 over a byte slice (the spec fingerprint hash).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn values_round_trip_bit_exact() {
        let values: PointResults = vec![
            Ok((42.125, -0.0)),
            Err("point exploded".to_owned()),
            Ok((f64::NAN, 1.0)),
        ];
        let mut buf = Vec::new();
        put_values(&mut buf, &values);
        let mut r = Reader::new(&buf);
        let back = read_values(&mut r).unwrap();
        assert!(r.done());
        assert_eq!(back.len(), values.len());
        for (a, b) in values.iter().zip(&back) {
            match (a, b) {
                (Ok((s1, o1)), Ok((s2, o2))) => {
                    assert_eq!(s1.to_bits(), s2.to_bits());
                    assert_eq!(o1.to_bits(), o2.to_bits());
                }
                (Err(e1), Err(e2)) => assert_eq!(e1, e2),
                _ => panic!("variant changed in round trip"),
            }
        }
    }

    #[test]
    fn corrupt_length_prefixes_error_out() {
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        assert!(Reader::new(&buf).u64_list().is_err());
        assert!(read_values(&mut Reader::new(&buf)).is_err());
        assert!(Reader::new(&[0, 0]).u32().is_err());
    }
}
