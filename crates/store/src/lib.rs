//! # twocs-store — sweep durability, streaming, and refinement
//!
//! The std-only storage subsystem that lets sweeps outgrow RAM and
//! process lifetimes (ROADMAP item 3), in three pillars:
//!
//! * [`journal`] — an append-only, CRC-checksummed record of a sweep's
//!   specification, chunk leases, and completed-chunk results. A killed
//!   run resumes from the last durable chunk (`twocs sweep --resume`),
//!   with replay validated against the journaled grid fingerprint.
//! * [`sink`] — a streaming result sink: chunks arrive in any order,
//!   in-order rows go straight to the output writer, out-of-order
//!   chunks are buffered up to a point budget and spilled to a temp
//!   file beyond it. Coordinator RSS stays bounded by the buffer
//!   budget, not the grid, and the CSV bytes are identical to the
//!   in-memory path (the row renderer is shared with
//!   [`GridSweep::tabulate`](twocs_core::GridSweep::tabulate)).
//! * [`refine`] — adaptive frontier refinement: bisect along the
//!   flop-vs-bw axis to locate the comp-vs-comm crossover (the paper's
//!   key output) in orders of magnitude fewer evaluations than the
//!   dense grid.
//!
//! [`SweepStore`] composes the journal and sink behind one
//! `record(chunk, values)` call; [`runner::run_streaming`] drives a
//! bounded-memory local evaluation through it.
//!
//! Observability: the journal emits `store.journal.{appends,fsyncs,
//! replayed_chunks}` and the sink `store.sink.{spilled_bytes,
//! merge_passes}` through the `twocs-obs` registry (so they surface in
//! `/v1/metrics` and `--metrics`), plus replay/fsync spans for traces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod enc;
pub mod journal;
pub mod refine;
pub mod runner;
pub mod sink;
pub mod spec;
mod store;

pub use journal::{Journal, Replay};
pub use refine::{
    refine_frontier, Crossing, FrontierResult, FrontierRow, RefineMetric, RefineSpec,
};
pub use runner::run_streaming;
pub use sink::{SinkReport, StreamSink, DEFAULT_BUFFER_POINTS};
pub use spec::SweepSpec;
pub use store::{StoreReport, SweepStore};
