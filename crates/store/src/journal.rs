//! Append-only, checksummed sweep journal.
//!
//! Layout: an 8-byte magic + u32 format version, then a sequence of
//! records, each `[u32 payload_len][u32 crc32(payload)][payload]`. The
//! first record is always the [`SweepSpec`] (with its fingerprint);
//! after it come chunk-result records and advisory lease records in
//! arrival order.
//!
//! Durability model: [`Journal::append_chunk`] fsyncs after every
//! record, so a completed chunk survives any later crash. A crash *mid*
//! append leaves a torn record at the tail; replay detects it by length
//! or CRC, truncates the file back to the last intact record, and
//! resumes from there — the torn chunk is simply recomputed. A CRC
//! mismatch anywhere invalidates everything after it (an append-only
//! file has no record framing to resynchronize on), which replay
//! reports via [`Replay::discarded_bytes`] so callers can warn.
//!
//! Metrics: `store.journal.appends`, `store.journal.fsyncs`,
//! `store.journal.replayed_chunks`; spans: `journal fsync`,
//! `journal replay` (category `store`).

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use twocs_core::PointResults;

use crate::enc::{self, Reader};
use crate::spec::SweepSpec;

const MAGIC: &[u8; 8] = b"TWOCSJNL";
const VERSION: u32 = 1;
/// Record kinds.
const KIND_SPEC: u8 = 1;
const KIND_CHUNK: u8 = 2;
const KIND_LEASE: u8 = 3;
/// Upper bound on one record's payload; a length prefix beyond it is
/// treated as corruption rather than attempted as an allocation.
const MAX_RECORD_LEN: u32 = 64 * 1024 * 1024;

/// A writable sweep journal (see module docs for the format).
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

/// What replaying an existing journal recovered.
#[derive(Debug, Default)]
pub struct Replay {
    /// Completed chunks by id, each with its full per-point results.
    pub chunks: BTreeMap<u32, PointResults>,
    /// Advisory lease records seen (crash forensics; not needed to
    /// resume).
    pub leases: u64,
    /// Bytes discarded from the tail because of a torn or corrupt
    /// record (zero for a cleanly closed journal).
    pub discarded_bytes: u64,
}

impl Journal {
    /// Create a new journal at `path` and durably write the spec
    /// record. Refuses to overwrite an existing file — a journal is a
    /// recovery artifact, so clobbering one is always a caller bug.
    pub fn create(path: &Path, spec: &SweepSpec) -> Result<Self, String> {
        let file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
            .map_err(|e| format!("cannot create journal {}: {e}", path.display()))?;
        let mut journal = Self {
            file,
            path: path.to_path_buf(),
        };
        let mut header = Vec::with_capacity(12);
        header.extend_from_slice(MAGIC);
        enc::put_u32(&mut header, VERSION);
        journal
            .file
            .write_all(&header)
            .map_err(|e| journal.io_err("write header", &e))?;
        let mut payload = vec![KIND_SPEC];
        enc::put_u64(&mut payload, spec.fingerprint());
        payload.extend_from_slice(&spec.encode());
        journal.append_record(&payload, true)?;
        Ok(journal)
    }

    /// Open an existing journal, validate its spec, and replay every
    /// intact record. Returns the journal positioned for appending
    /// (truncated past any torn tail), the decoded spec, and the
    /// replayed state.
    pub fn open(path: &Path) -> Result<(Self, SweepSpec, Replay), String> {
        let _span = twocs_obs::span("journal replay", "store");
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| format!("cannot open journal {}: {e}", path.display()))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| format!("cannot read journal {}: {e}", path.display()))?;
        if bytes.len() < 12 || &bytes[..8] != MAGIC {
            return Err(format!("{} is not a twocs sweep journal", path.display()));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(format!(
                "journal {} has format version {version}, this build reads {VERSION}",
                path.display()
            ));
        }

        let mut spec: Option<SweepSpec> = None;
        let mut replay = Replay::default();
        let mut good_end = 12usize;
        let mut at = 12usize;
        while at < bytes.len() {
            let Some(record) = read_record(&bytes[at..]) else {
                break; // torn or corrupt: everything from `at` is dead
            };
            let (payload, consumed) = record;
            match apply_record(payload, &mut spec, &mut replay) {
                Ok(()) => {}
                Err(e) => return Err(format!("journal {}: {e}", path.display())),
            }
            at += consumed;
            good_end = at;
        }
        replay.discarded_bytes = (bytes.len() - good_end) as u64;
        let spec = spec.ok_or_else(|| {
            format!(
                "journal {} has no intact spec record; nothing to resume",
                path.display()
            )
        })?;
        for (&chunk, values) in &replay.chunks {
            if chunk >= spec.chunk_count() || values.len() != spec.chunk_len(chunk) {
                return Err(format!(
                    "journal {}: chunk {chunk} does not fit the journaled grid \
                     ({} values, expected {})",
                    path.display(),
                    values.len(),
                    spec.chunk_len(chunk)
                ));
            }
        }
        if replay.discarded_bytes > 0 {
            file.set_len(good_end as u64)
                .map_err(|e| format!("cannot truncate torn journal {}: {e}", path.display()))?;
        }
        file.seek(SeekFrom::End(0))
            .map_err(|e| format!("cannot seek journal {}: {e}", path.display()))?;
        let registry = twocs_obs::metrics::global();
        registry
            .counter("store.journal.replayed_chunks")
            .add(replay.chunks.len() as u64);
        Ok((
            Self {
                file,
                path: path.to_path_buf(),
            },
            spec,
            replay,
        ))
    }

    /// The journal's file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Durably append one completed chunk's results: the record is
    /// written and fsynced before this returns, so a chunk the caller
    /// believes journaled survives any crash after this call.
    pub fn append_chunk(&mut self, chunk: u32, values: &PointResults) -> Result<(), String> {
        let mut payload = vec![KIND_CHUNK];
        enc::put_u32(&mut payload, chunk);
        enc::put_values(&mut payload, values);
        self.append_record(&payload, true)
    }

    /// Append an advisory lease record (which worker took which chunk).
    /// Not fsynced — leases are forensic context, not recovery state;
    /// the next durable chunk append flushes them along.
    pub fn append_lease(&mut self, chunk: u32, worker: u64) -> Result<(), String> {
        let mut payload = vec![KIND_LEASE];
        enc::put_u32(&mut payload, chunk);
        enc::put_u64(&mut payload, worker);
        self.append_record(&payload, false)
    }

    fn append_record(&mut self, payload: &[u8], durable: bool) -> Result<(), String> {
        let mut framed = Vec::with_capacity(payload.len() + 8);
        enc::put_u32(&mut framed, payload.len() as u32);
        enc::put_u32(&mut framed, enc::crc32(payload));
        framed.extend_from_slice(payload);
        self.file
            .write_all(&framed)
            .map_err(|e| self.io_err("append", &e))?;
        let registry = twocs_obs::metrics::global();
        registry.counter("store.journal.appends").inc();
        if durable {
            let _span = twocs_obs::span("journal fsync", "store");
            self.file
                .sync_data()
                .map_err(|e| self.io_err("fsync", &e))?;
            registry.counter("store.journal.fsyncs").inc();
        }
        Ok(())
    }

    fn io_err(&self, what: &str, e: &std::io::Error) -> String {
        format!("journal {} {what} failed: {e}", self.path.display())
    }
}

/// Parse one framed record from `buf`; `None` when the frame is torn
/// (truncated length/payload) or fails its CRC.
fn read_record(buf: &[u8]) -> Option<(&[u8], usize)> {
    if buf.len() < 8 {
        return None;
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap());
    if len > MAX_RECORD_LEN {
        return None;
    }
    let crc = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    let total = 8 + len as usize;
    if buf.len() < total {
        return None;
    }
    let payload = &buf[8..total];
    (enc::crc32(payload) == crc).then_some((payload, total))
}

/// Apply one intact record to the replay state. Intact-but-invalid
/// records (bad kind, malformed payload, spec mismatch) are hard
/// errors: the CRC passed, so this is version skew or a writer bug,
/// not a crash artifact.
fn apply_record(
    payload: &[u8],
    spec: &mut Option<SweepSpec>,
    replay: &mut Replay,
) -> Result<(), String> {
    let mut r = Reader::new(payload);
    match r.u8()? {
        KIND_SPEC => {
            if spec.is_some() {
                return Err("duplicate spec record".to_owned());
            }
            let journaled_fp = r.u64()?;
            let decoded = SweepSpec::read(&mut r)?;
            if !r.done() {
                return Err("trailing bytes in spec record".to_owned());
            }
            if decoded.fingerprint() != journaled_fp {
                return Err(format!(
                    "grid fingerprint mismatch: journal says {journaled_fp:#x}, \
                     decoded spec hashes to {:#x}",
                    decoded.fingerprint()
                ));
            }
            *spec = Some(decoded);
            Ok(())
        }
        KIND_CHUNK => {
            if spec.is_none() {
                return Err("chunk record before spec record".to_owned());
            }
            let chunk = r.u32()?;
            let values = enc::read_values(&mut r)?;
            if !r.done() {
                return Err(format!("trailing bytes in chunk {chunk} record"));
            }
            replay.chunks.insert(chunk, values);
            Ok(())
        }
        KIND_LEASE => {
            let _chunk = r.u32()?;
            let _worker = r.u64()?;
            if !r.done() {
                return Err("trailing bytes in lease record".to_owned());
            }
            replay.leases += 1;
            Ok(())
        }
        other => Err(format!("unknown record kind {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twocs_core::serialized::Method;
    use twocs_core::sweep::GridSweep;

    fn spec() -> SweepSpec {
        SweepSpec {
            sweep: GridSweep {
                method: Method::Projection,
                ..GridSweep::default()
            },
            chunk_size: 4,
            device_name: "mi210".to_owned(),
            device_fingerprint: 7,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("twocs-journal-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&dir);
        dir
    }

    fn chunk_values(spec: &SweepSpec, chunk: u32) -> PointResults {
        (0..spec.chunk_len(chunk))
            .map(|i| Ok((i as f64 + chunk as f64, 0.5)))
            .collect()
    }

    #[test]
    fn journal_round_trips_spec_and_chunks() {
        let path = tmp("roundtrip");
        let s = spec();
        let mut j = Journal::create(&path, &s).unwrap();
        j.append_lease(0, 3).unwrap();
        j.append_chunk(0, &chunk_values(&s, 0)).unwrap();
        j.append_chunk(2, &chunk_values(&s, 2)).unwrap();
        drop(j);
        let (_j, back, replay) = Journal::open(&path).unwrap();
        assert_eq!(back, s);
        assert_eq!(replay.leases, 1);
        assert_eq!(replay.discarded_bytes, 0);
        assert_eq!(
            replay.chunks.keys().copied().collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert_eq!(replay.chunks[&0], chunk_values(&s, 0));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let path = tmp("torn");
        let s = spec();
        let mut j = Journal::create(&path, &s).unwrap();
        j.append_chunk(0, &chunk_values(&s, 0)).unwrap();
        let intact = std::fs::metadata(&path).unwrap().len();
        j.append_chunk(1, &chunk_values(&s, 1)).unwrap();
        drop(j);
        // Tear the second chunk record mid-payload.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(intact + 5).unwrap();
        drop(f);
        let (mut j, _s, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.chunks.len(), 1);
        assert_eq!(replay.discarded_bytes, 5);
        // The journal must now accept the recomputed chunk cleanly.
        j.append_chunk(1, &chunk_values(&s, 1)).unwrap();
        drop(j);
        let (_j, _s, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.chunks.len(), 2);
        assert_eq!(replay.discarded_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_spec_or_flipped_bit_is_detected() {
        let path = tmp("flip");
        let s = spec();
        let mut j = Journal::create(&path, &s).unwrap();
        j.append_chunk(0, &chunk_values(&s, 0)).unwrap();
        drop(j);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() - 10;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        // The flipped record fails its CRC: replay keeps the prefix.
        let (_j, _s, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.chunks.len(), 0);
        assert!(replay.discarded_bytes > 0);
        // Flipping inside the spec record kills the whole journal.
        bytes[mid] ^= 0x40; // restore
        bytes[20] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(Journal::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn refuses_foreign_files_and_clobbering() {
        let path = tmp("foreign");
        std::fs::write(&path, b"definitely not a journal").unwrap();
        assert!(Journal::open(&path).is_err());
        assert!(Journal::create(&path, &spec()).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn chunk_outside_the_grid_is_rejected_on_replay() {
        let path = tmp("badchunk");
        let s = spec();
        let mut j = Journal::create(&path, &s).unwrap();
        j.append_chunk(10_000, &vec![Ok((1.0, 2.0))]).unwrap();
        drop(j);
        assert!(Journal::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
