//! The durable sweep specification: everything a resumed process needs
//! to re-create the grid, validate it, and continue — the full
//! [`GridSweep`] axes, the chunk split, and the device identity.

use twocs_core::sweep::{GridSweep, Workload};
use twocs_core::GridIndex;

use crate::enc::{self, Reader};

/// Stable one-byte tag for the evaluation method.
fn method_tag(m: twocs_core::serialized::Method) -> u8 {
    match m {
        twocs_core::serialized::Method::Simulation => 0,
        twocs_core::serialized::Method::Projection => 1,
    }
}

fn method_from_tag(t: u8) -> Result<twocs_core::serialized::Method, String> {
    match t {
        0 => Ok(twocs_core::serialized::Method::Simulation),
        1 => Ok(twocs_core::serialized::Method::Projection),
        other => Err(format!("unknown method tag {other}")),
    }
}

/// Stable one-byte tag for the workload.
fn workload_tag(w: Workload) -> u8 {
    match w {
        Workload::Training => 0,
        Workload::Prefill => 1,
        Workload::Decode => 2,
    }
}

fn workload_from_tag(t: u8) -> Result<Workload, String> {
    match t {
        0 => Ok(Workload::Training),
        1 => Ok(Workload::Prefill),
        2 => Ok(Workload::Decode),
        other => Err(format!("unknown workload tag {other}")),
    }
}

/// The journaled identity of one sweep run: the grid specification, the
/// chunk split that defines chunk ids, and the device it runs on.
///
/// Two runs are resumable into each other iff their spec
/// [fingerprints](Self::fingerprint) match — same axes in the same
/// order, same batch/method/workload, same chunk size, same device.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// The grid being swept.
    pub sweep: GridSweep,
    /// Points per chunk — fixes the meaning of every chunk id in the
    /// journal and on the dist wire.
    pub chunk_size: u32,
    /// Catalog name of the device (resolvable on a restarted process).
    pub device_name: String,
    /// The device's [`fingerprint`](twocs_hw::DeviceSpec::fingerprint),
    /// so a renamed or re-calibrated catalog cannot silently resume
    /// into different numbers.
    pub device_fingerprint: u64,
}

impl SweepSpec {
    /// Total surviving grid points.
    #[must_use]
    pub fn point_count(&self) -> usize {
        self.sweep.point_count()
    }

    /// Number of chunks the grid splits into.
    #[must_use]
    pub fn chunk_count(&self) -> u32 {
        self.index().chunk_count(self.chunk_size.max(1) as usize) as u32
    }

    /// The lazy point index of the grid.
    #[must_use]
    pub fn index(&self) -> GridIndex {
        self.sweep.index()
    }

    /// Points in chunk `chunk` (the last chunk may be short).
    #[must_use]
    pub fn chunk_len(&self, chunk: u32) -> usize {
        let total = self.point_count();
        let size = self.chunk_size.max(1) as usize;
        let start = (chunk as usize) * size;
        total.saturating_sub(start).min(size)
    }

    /// Canonical byte encoding, the basis of both the journal's spec
    /// record and [`Self::fingerprint`].
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let s = &self.sweep;
        let mut out = Vec::new();
        enc::put_u64_list(&mut out, &s.hs);
        enc::put_u64_list(&mut out, &s.sls);
        enc::put_u64_list(&mut out, &s.tps);
        enc::put_f64_list(&mut out, &s.flop_vs_bw);
        enc::put_u64_list(&mut out, &s.experts);
        enc::put_u64_list(&mut out, &s.top_ks);
        enc::put_u64_list(&mut out, &s.stages);
        enc::put_u64_list(&mut out, &s.micro_batches);
        enc::put_u64_list(&mut out, &s.sps);
        enc::put_u64(&mut out, s.batch);
        out.push(method_tag(s.method));
        out.push(workload_tag(s.workload));
        enc::put_u32(&mut out, self.chunk_size);
        enc::put_str(&mut out, &self.device_name);
        enc::put_u64(&mut out, self.device_fingerprint);
        out
    }

    /// Decode an encoding produced by [`Self::encode`].
    pub fn decode(buf: &[u8]) -> Result<Self, String> {
        let mut r = Reader::new(buf);
        let spec = Self::read(&mut r)?;
        if !r.done() {
            return Err(format!("{} trailing bytes after sweep spec", r.remaining()));
        }
        Ok(spec)
    }

    /// Decode from a reader positioned at a spec encoding (the journal
    /// reads trailing fields after it).
    pub(crate) fn read(r: &mut Reader<'_>) -> Result<Self, String> {
        let hs = r.u64_list()?;
        let sls = r.u64_list()?;
        let tps = r.u64_list()?;
        let flop_vs_bw = r.f64_list()?;
        let experts = r.u64_list()?;
        let top_ks = r.u64_list()?;
        let stages = r.u64_list()?;
        let micro_batches = r.u64_list()?;
        let sps = r.u64_list()?;
        let batch = r.u64()?;
        let method = method_from_tag(r.u8()?)?;
        let workload = workload_from_tag(r.u8()?)?;
        let chunk_size = r.u32()?;
        let device_name = r.str()?;
        let device_fingerprint = r.u64()?;
        Ok(Self {
            sweep: GridSweep {
                hs,
                sls,
                tps,
                flop_vs_bw,
                experts,
                top_ks,
                stages,
                micro_batches,
                sps,
                batch,
                method,
                workload,
            },
            chunk_size,
            device_name,
            device_fingerprint,
        })
    }

    /// Stable fingerprint of the whole run spec — FNV-1a over the
    /// canonical encoding. The journal stores it next to the encoded
    /// spec; replay recomputes it from the decoded spec, so either a
    /// corrupted spec or an encoding drift between writer and reader
    /// versions fails loudly instead of resuming into a different grid.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        enc::fnv1a(&self.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twocs_core::serialized::Method;

    fn sample() -> SweepSpec {
        SweepSpec {
            sweep: GridSweep {
                method: Method::Projection,
                workload: Workload::Decode,
                experts: vec![1, 4],
                top_ks: vec![2],
                ..GridSweep::default()
            },
            chunk_size: 7,
            device_name: "mi210".to_owned(),
            device_fingerprint: 0xdead_beef,
        }
    }

    #[test]
    fn spec_round_trips_and_fingerprint_is_stable() {
        let spec = sample();
        let back = SweepSpec::decode(&spec.encode()).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.fingerprint(), spec.fingerprint());
    }

    #[test]
    fn fingerprint_separates_chunking_and_device() {
        let spec = sample();
        let mut other = sample();
        other.chunk_size = 8;
        assert_ne!(spec.fingerprint(), other.fingerprint());
        let mut dev = sample();
        dev.device_fingerprint ^= 1;
        assert_ne!(spec.fingerprint(), dev.fingerprint());
    }

    #[test]
    fn chunk_math_matches_the_grid() {
        let spec = sample();
        let n = spec.point_count();
        assert!(n > 0);
        let chunks = spec.chunk_count();
        assert_eq!(chunks as usize, n.div_ceil(7));
        let total: usize = (0..chunks).map(|c| spec.chunk_len(c)).sum();
        assert_eq!(total, n);
        assert_eq!(spec.chunk_len(chunks), 0);
    }

    #[test]
    fn truncated_spec_fails_to_decode() {
        let buf = sample().encode();
        for cut in [0, 1, buf.len() / 2, buf.len() - 1] {
            assert!(SweepSpec::decode(&buf[..cut]).is_err(), "cut at {cut}");
        }
        let mut trailing = buf.clone();
        trailing.push(0);
        assert!(SweepSpec::decode(&trailing).is_err());
    }
}
