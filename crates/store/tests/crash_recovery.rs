//! Crash-recovery property: a journaled sweep killed at *any* byte
//! offset — mid-record, mid-header, mid-fsync — resumes to a final CSV
//! byte-identical to an uninterrupted run. The "kill" is simulated by
//! truncating a copy of a complete journal at a random offset, which is
//! exactly the on-disk state a SIGKILL between two writes leaves behind.

use std::io::Write;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use twocs_core::serialized::Method;
use twocs_core::sweep::GridSweep;
use twocs_hw::DeviceSpec;
use twocs_store::{run_streaming, SweepSpec, SweepStore};

#[derive(Clone)]
struct Shared(Arc<Mutex<Vec<u8>>>);

impl Write for Shared {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn tmp(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!(
        "twocs-crash-test-{}-{name}.journal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn resume_from_any_truncation_point_is_byte_identical() {
    let device = DeviceSpec::mi210();
    let spec = SweepSpec {
        sweep: GridSweep {
            method: Method::Projection,
            ..GridSweep::default()
        },
        chunk_size: 4,
        device_name: device.name().to_owned(),
        device_fingerprint: device.fingerprint(),
    };

    // Reference: one clean, journaled run.
    let journal = tmp("full");
    let want = Arc::new(Mutex::new(Vec::new()));
    let mut store =
        SweepStore::create(spec.clone(), Box::new(Shared(want.clone())), Some(&journal)).unwrap();
    // File size right after create = header + spec record; any cut at or
    // past this point leaves a resumable journal.
    let spec_end = std::fs::metadata(&journal).unwrap().len() as usize;
    run_streaming(&device, &mut store, 4).unwrap();
    store.finish().unwrap();
    let want = want.lock().unwrap().clone();
    let full = std::fs::read(&journal).unwrap();
    std::fs::remove_file(&journal).unwrap();
    // 12-byte magic+version header, then the spec record, then chunks.
    assert!(full.len() > spec_end, "journal has chunk content");

    twocs_testkit::cases(16, |rng| {
        // A SIGKILL can land anywhere at or after the spec record —
        // including mid-chunk-record; resume must replay the clean
        // prefix and recompute the rest, never produce different bytes.
        let cut = rng.usize_in(spec_end..full.len());
        let path = tmp(&format!("cut-{cut}"));
        std::fs::write(&path, &full[..cut]).unwrap();

        let got = Arc::new(Mutex::new(Vec::new()));
        let mut resumed = SweepStore::resume(&path, Box::new(Shared(got.clone()))).unwrap();
        let replayed = resumed.completed().len();
        run_streaming(&device, &mut resumed, 3).unwrap();
        let report = resumed.finish().unwrap();
        assert_eq!(report.rows, spec.point_count());
        assert_eq!(report.replayed_chunks as usize, replayed);

        let got = got.lock().unwrap().clone();
        assert_eq!(
            got, want,
            "truncation at byte {cut} must still yield identical bytes"
        );
        std::fs::remove_file(&path).unwrap();
    });
}

/// Truncating *inside the spec record* leaves no valid run to resume;
/// the store must refuse rather than guess.
#[test]
fn truncation_before_the_spec_record_refuses_to_resume() {
    let device = DeviceSpec::mi210();
    let spec = SweepSpec {
        sweep: GridSweep {
            method: Method::Projection,
            ..GridSweep::default()
        },
        chunk_size: 8,
        device_name: device.name().to_owned(),
        device_fingerprint: device.fingerprint(),
    };
    let journal = tmp("headless");
    let out = Arc::new(Mutex::new(Vec::new()));
    let store = SweepStore::create(spec, Box::new(Shared(out)), Some(&journal)).unwrap();
    drop(store);
    let full = std::fs::read(&journal).unwrap();
    std::fs::remove_file(&journal).unwrap();

    // Keep the magic+version header but cut the spec record short.
    let path = tmp("headless-cut");
    std::fs::write(&path, &full[..20.min(full.len())]).unwrap();
    let sink = Arc::new(Mutex::new(Vec::new()));
    assert!(SweepStore::resume(&path, Box::new(Shared(sink))).is_err());
    std::fs::remove_file(&path).unwrap();
}
