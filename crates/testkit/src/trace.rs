//! Assertion helpers for `twocs-obs` traces and metrics.
//!
//! [`assert_span_tree`] checks the structural invariant every trace must
//! satisfy: within each `(pid, tid)` lane, spans form a properly nested
//! tree — a span either contains another or is disjoint from it, never
//! partially overlapping. Since a [`twocs_obs::SpanRecord`] is only
//! emitted when a span *closes*, a trace whose spans nest properly and
//! whose expected scopes are all present proves open/close balance even
//! when tasks panic mid-span (the RAII guards close on unwind).
//!
//! [`assert_counter`] pins a named counter in a metrics registry to an
//! exact value.

use twocs_obs::{MetricsRegistry, SpanRecord};

/// Assert that `spans` form a properly nested tree within every
/// `(pid, tid)` lane.
///
/// # Panics
/// Panics with the offending pair of spans when two spans in one lane
/// partially overlap (each starts inside the other's extent without
/// being contained by it).
pub fn assert_span_tree(spans: &[SpanRecord]) {
    let mut lanes: std::collections::BTreeMap<(u64, u64), Vec<&SpanRecord>> =
        std::collections::BTreeMap::new();
    for s in spans {
        lanes.entry((s.pid, s.tid)).or_default().push(s);
    }
    for ((pid, tid), mut lane) in lanes {
        // Parents first: by start ascending, then longest first so a
        // containing span precedes its children.
        lane.sort_by(|a, b| {
            a.start_us
                .total_cmp(&b.start_us)
                .then(b.dur_us.total_cmp(&a.dur_us))
        });
        let mut stack: Vec<&SpanRecord> = Vec::new();
        for s in lane {
            while let Some(top) = stack.last() {
                if top.end_us() <= s.start_us {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(top) = stack.last() {
                assert!(
                    s.end_us() <= top.end_us(),
                    "span tree violated in lane pid={pid} tid={tid}: \
                     `{}` [{}, {}) partially overlaps enclosing `{}` [{}, {})",
                    s.name,
                    s.start_us,
                    s.end_us(),
                    top.name,
                    top.start_us,
                    top.end_us(),
                );
            }
            stack.push(s);
        }
    }
}

/// Assert that counter `name` in `registry` currently reads `expected`.
///
/// # Panics
/// Panics (with the actual value) on mismatch, and if `name` is
/// registered as a non-counter metric.
pub fn assert_counter(registry: &MetricsRegistry, name: &str, expected: u64) {
    let actual = registry.counter(name).get();
    assert_eq!(
        actual, expected,
        "counter `{name}`: expected {expected}, got {actual}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, tid: u64, start: f64, dur: f64) -> SpanRecord {
        SpanRecord {
            name: name.into(),
            cat: "test".into(),
            pid: 0,
            tid,
            start_us: start,
            dur_us: dur,
            args: Vec::new(),
        }
    }

    #[test]
    fn nested_and_disjoint_spans_pass() {
        assert_span_tree(&[
            span("outer", 0, 0.0, 100.0),
            span("inner", 0, 10.0, 20.0),
            span("inner2", 0, 40.0, 20.0),
            span("deep", 0, 12.0, 5.0),
            span("later", 0, 200.0, 50.0),
        ]);
    }

    #[test]
    #[should_panic(expected = "partially overlaps")]
    fn partial_overlap_fails() {
        assert_span_tree(&[span("a", 0, 0.0, 50.0), span("b", 0, 25.0, 50.0)]);
    }

    #[test]
    fn lanes_are_independent() {
        // These would partially overlap in one lane, but live in two.
        assert_span_tree(&[span("a", 0, 0.0, 50.0), span("b", 1, 25.0, 50.0)]);
    }

    #[test]
    fn touching_siblings_pass() {
        // [0,10) and [10,20): adjacent windows, no overlap.
        assert_span_tree(&[span("a", 0, 0.0, 10.0), span("b", 0, 10.0, 10.0)]);
    }

    #[test]
    fn counter_assertion_reads_registry() {
        let reg = MetricsRegistry::new();
        reg.counter("k").add(3);
        assert_counter(&reg, "k", 3);
    }

    #[test]
    #[should_panic(expected = "expected 9, got 3")]
    fn counter_assertion_fails_loudly() {
        let reg = MetricsRegistry::new();
        reg.counter("k").add(3);
        assert_counter(&reg, "k", 9);
    }
}
