//! # twocs-testkit — std-only property testing
//!
//! The workspace must build and test with **no network access**, so it
//! cannot depend on `proptest`/`rand` from crates.io. This crate provides
//! the small subset the tests actually need: a fast deterministic PRNG
//! ([`Rng`], SplitMix64) and a case driver ([`cases`]) that runs a
//! property over many generated inputs and reports the failing case seed
//! so a failure can be replayed exactly.
//!
//! Determinism is a feature: every run of the suite generates the same
//! inputs, so CI failures reproduce locally without shrinking machinery.
//!
//! ## Example
//!
//! ```
//! use twocs_testkit::cases;
//!
//! cases(64, |rng| {
//!     let a = rng.u64_in(1..1000);
//!     let b = rng.u64_in(1..1000);
//!     assert!(a + b >= a.max(b));
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod trace;

pub use trace::{assert_counter, assert_span_tree};

use std::ops::Range;

/// Deterministic 64-bit PRNG (SplitMix64).
///
/// Not cryptographic — it exists to generate well-spread test inputs
/// reproducibly.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `u64` in `range` (half-open).
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn u64_in(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        range.start + self.next_u64() % span
    }

    /// Uniform `usize` in `range` (half-open).
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        self.u64_in(range.start as u64..range.end as u64) as usize
    }

    /// Uniform `u32` in `range` (half-open).
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn u32_in(&mut self, range: Range<u32>) -> u32 {
        self.u64_in(u64::from(range.start)..u64::from(range.end)) as u32
    }

    /// Uniform `f64` in `[range.start, range.end)`.
    ///
    /// # Panics
    /// Panics if the range is empty or either bound is non-finite.
    pub fn f64_in(&mut self, range: Range<f64>) -> f64 {
        assert!(
            range.start.is_finite() && range.end.is_finite() && range.start < range.end,
            "invalid f64 range"
        );
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }

    /// Uniform `f32` in `[range.start, range.end)`.
    ///
    /// # Panics
    /// Panics if the range is empty or either bound is non-finite.
    pub fn f32_in(&mut self, range: Range<f32>) -> f32 {
        self.f64_in(f64::from(range.start)..f64::from(range.end)) as f32
    }

    /// Random boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fisher–Yates shuffle of `slice` in place. Used by interleaving
    /// property tests (e.g. the distributed lease state machine) to
    /// explore event orders reproducibly.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.usize_in(0..i + 1);
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen reference into `slice`.
    ///
    /// # Panics
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "cannot choose from an empty slice");
        &slice[self.usize_in(0..slice.len())]
    }

    /// A vector of `len` values drawn by `f`.
    pub fn vec_of<T>(&mut self, len: usize, mut f: impl FnMut(&mut Self) -> T) -> Vec<T> {
        (0..len).map(|_| f(self)).collect()
    }

    /// A vector of `f32` of length drawn from `len`, each element drawn
    /// from `range`.
    ///
    /// # Panics
    /// Panics if either range is empty.
    pub fn f32_vec(&mut self, len: Range<usize>, range: Range<f32>) -> Vec<f32> {
        let n = self.usize_in(len);
        self.vec_of(n, |rng| rng.f32_in(range.clone()))
    }
}

/// Default case count used by most suites; chosen to keep the whole
/// workspace test run under a few seconds.
pub const DEFAULT_CASES: usize = 64;

/// Run `property` over `n` generated cases.
///
/// Each case gets an [`Rng`] seeded from the case index, so any failure
/// message can name the case and `replay` can re-run exactly that input.
pub fn cases(n: usize, mut property: impl FnMut(&mut Rng)) {
    for case in 0..n {
        let mut rng = Rng::new(case_seed(case));
        property(&mut rng);
    }
}

/// Re-run a single case by index (for debugging a failure from [`cases`]).
pub fn replay(case: usize, mut property: impl FnMut(&mut Rng)) {
    let mut rng = Rng::new(case_seed(case));
    property(&mut rng);
}

/// The seed for case `case`: mixes the index so consecutive cases are
/// decorrelated.
#[must_use]
pub fn case_seed(case: usize) -> u64 {
    (case as u64).wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0xDEAD_BEEF_CAFE_F00D
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = Rng::new(7);
        for _ in 0..10_000 {
            let v = rng.u64_in(10..20);
            assert!((10..20).contains(&v));
            let f = rng.f64_in(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn f64_covers_the_interval() {
        let mut rng = Rng::new(3);
        let (mut lo, mut hi) = (f64::MAX, f64::MIN);
        for _ in 0..10_000 {
            let v = rng.f64_in(0.0..1.0);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn cases_run_the_requested_count() {
        let mut count = 0;
        cases(17, |_| count += 1);
        assert_eq!(count, 17);
    }

    #[test]
    fn replay_matches_cases() {
        let mut from_cases = Vec::new();
        cases(5, |rng| from_cases.push(rng.next_u64()));
        for (i, expect) in from_cases.iter().enumerate() {
            replay(i, |rng| assert_eq!(rng.next_u64(), *expect));
        }
    }

    #[test]
    fn shuffle_permutes_without_losing_elements() {
        let mut rng = Rng::new(5);
        let mut v: Vec<u32> = (0..32).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        // Same seed, same permutation.
        let mut rng2 = Rng::new(5);
        let mut v2: Vec<u32> = (0..32).collect();
        rng2.shuffle(&mut v2);
        assert_eq!(v, v2);
        // And it is not (always) the identity.
        assert_ne!(v, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn choose_stays_in_bounds() {
        let mut rng = Rng::new(9);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(rng.choose(&items)));
        }
    }

    #[test]
    fn vec_helpers_have_correct_shapes() {
        let mut rng = Rng::new(11);
        let v = rng.f32_vec(3..7, -1.0..1.0);
        assert!((3..7).contains(&v.len()));
        let w = rng.vec_of(4, |r| r.bool());
        assert_eq!(w.len(), 4);
    }
}
