//! The classic roofline bound: an operator's time is at least its math time
//! at peak throughput and at least its data-movement time at peak memory
//! bandwidth.

/// Roofline execution-time bound.
///
/// `flops` is the total multiply/add count, `bytes` the total off-chip data
/// moved, `peak_flops` in FLOP/s and `mem_bandwidth` in B/s.
///
/// ```
/// use twocs_hw::roofline::roofline_time;
/// // 1 GFLOP of math on a 1 TFLOP/s device moving 1 MB at 1 TB/s:
/// // compute-bound at 1 ms.
/// let t = roofline_time(1e9 as u64, 1 << 20, 1e12, 1e12);
/// assert!((t - 1e-3).abs() < 1e-6);
/// ```
///
/// # Panics
/// Panics if `peak_flops` or `mem_bandwidth` are not strictly positive.
#[must_use]
pub fn roofline_time(flops: u64, bytes: u64, peak_flops: f64, mem_bandwidth: f64) -> f64 {
    assert!(peak_flops > 0.0, "peak_flops must be positive");
    assert!(mem_bandwidth > 0.0, "mem_bandwidth must be positive");
    let math = flops as f64 / peak_flops;
    let mem = bytes as f64 / mem_bandwidth;
    math.max(mem)
}

/// Arithmetic intensity (FLOP per byte) of an operator; `None` when the
/// operator moves no data.
#[must_use]
pub fn arithmetic_intensity(flops: u64, bytes: u64) -> Option<f64> {
    if bytes == 0 {
        None
    } else {
        Some(flops as f64 / bytes as f64)
    }
}

/// The machine-balance point (FLOP per byte) above which an operator is
/// compute-bound on the given device rates.
#[must_use]
pub fn machine_balance(peak_flops: f64, mem_bandwidth: f64) -> f64 {
    peak_flops / mem_bandwidth
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_bound_side() {
        // Tiny math, lots of data: memory-bound.
        let t = roofline_time(1_000, 1 << 30, 1e15, 1e12);
        assert!((t - (1u64 << 30) as f64 / 1e12).abs() < 1e-9);
    }

    #[test]
    fn compute_bound_side() {
        let t = roofline_time(1_000_000_000_000, 8, 1e12, 1e12);
        assert!((t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn intensity_and_balance() {
        assert_eq!(arithmetic_intensity(100, 0), None);
        assert_eq!(arithmetic_intensity(100, 50), Some(2.0));
        // An op is compute-bound iff intensity > balance.
        let balance = machine_balance(1e15, 1e12);
        assert!((balance - 1000.0).abs() < 1e-9);
    }
}
