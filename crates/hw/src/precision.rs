//! Number formats used for model weights, activations, and communication.
//!
//! The paper (§6.2) observes that peak compute often scales *super-linearly*
//! as precision shrinks (e.g. MI210 fp16 matrix throughput is ~4× fp32),
//! while communicated bytes only scale *linearly*. [`Precision`] carries the
//! byte width; per-precision peak FLOPS live on
//! [`DeviceSpec`](crate::DeviceSpec).

use std::fmt;

/// A floating-point number format.
///
/// ```
/// use twocs_hw::Precision;
/// assert_eq!(Precision::Fp16.bytes(), 2);
/// assert!(Precision::Fp8 < Precision::Fp32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Precision {
    /// 8-bit floating point (E4M3/E5M2 family).
    Fp8,
    /// IEEE 754 half precision.
    #[default]
    Fp16,
    /// bfloat16 (same width as fp16, wider exponent).
    Bf16,
    /// IEEE 754 single precision.
    Fp32,
    /// IEEE 754 double precision.
    Fp64,
}

impl Precision {
    /// Width of one element in bytes.
    #[must_use]
    pub const fn bytes(self) -> u64 {
        match self {
            Precision::Fp8 => 1,
            Precision::Fp16 | Precision::Bf16 => 2,
            Precision::Fp32 => 4,
            Precision::Fp64 => 8,
        }
    }

    /// Width of one element in bits (the paper's `precision` term in Eq. 5
    /// is in bits, divided by 8 to give bytes).
    #[must_use]
    pub const fn bits(self) -> u64 {
        self.bytes() * 8
    }

    /// All supported precisions, widest last.
    #[must_use]
    pub const fn all() -> [Precision; 5] {
        [
            Precision::Fp8,
            Precision::Fp16,
            Precision::Bf16,
            Precision::Fp32,
            Precision::Fp64,
        ]
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Precision::Fp8 => "fp8",
            Precision::Fp16 => "fp16",
            Precision::Bf16 => "bf16",
            Precision::Fp32 => "fp32",
            Precision::Fp64 => "fp64",
        };
        f.write_str(s)
    }
}

/// Peak matrix-math throughput (FLOP/s) of a device for each precision.
///
/// Construct with [`PeakFlops::from_fp32_matrix`] for the common case where
/// each halving of width doubles throughput, or specify each rate with the
/// struct literal via [`PeakFlops::new`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeakFlops {
    fp64: f64,
    fp32: f64,
    fp16: f64,
    bf16: f64,
    fp8: f64,
}

impl PeakFlops {
    /// Create from explicit per-precision rates (FLOP/s).
    ///
    /// # Panics
    /// Panics if any rate is not strictly positive and finite.
    #[must_use]
    pub fn new(fp64: f64, fp32: f64, fp16: f64, bf16: f64, fp8: f64) -> Self {
        for (name, v) in [
            ("fp64", fp64),
            ("fp32", fp32),
            ("fp16", fp16),
            ("bf16", bf16),
            ("fp8", fp8),
        ] {
            assert!(
                v.is_finite() && v > 0.0,
                "peak {name} FLOPS must be positive, got {v}"
            );
        }
        Self {
            fp64,
            fp32,
            fp16,
            bf16,
            fp8,
        }
    }

    /// Derive all rates from an fp32 matrix rate assuming 2× throughput per
    /// halving of element width (and fp64 at half of fp32).
    #[must_use]
    pub fn from_fp32_matrix(fp32: f64) -> Self {
        Self::new(fp32 / 2.0, fp32, fp32 * 2.0, fp32 * 2.0, fp32 * 4.0)
    }

    /// Peak rate for `precision`, FLOP/s.
    #[must_use]
    pub fn rate(&self, precision: Precision) -> f64 {
        match precision {
            Precision::Fp64 => self.fp64,
            Precision::Fp32 => self.fp32,
            Precision::Fp16 => self.fp16,
            Precision::Bf16 => self.bf16,
            Precision::Fp8 => self.fp8,
        }
    }

    /// Return a copy with every rate multiplied by `factor`.
    ///
    /// # Panics
    /// Panics if `factor` is not strictly positive and finite.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive, got {factor}"
        );
        Self::new(
            self.fp64 * factor,
            self.fp32 * factor,
            self.fp16 * factor,
            self.bf16 * factor,
            self.fp8 * factor,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_match_formats() {
        assert_eq!(Precision::Fp8.bytes(), 1);
        assert_eq!(Precision::Fp16.bytes(), 2);
        assert_eq!(Precision::Bf16.bytes(), 2);
        assert_eq!(Precision::Fp32.bytes(), 4);
        assert_eq!(Precision::Fp64.bytes(), 8);
        assert_eq!(Precision::Fp16.bits(), 16);
    }

    #[test]
    fn derived_rates_double_per_halving() {
        let p = PeakFlops::from_fp32_matrix(10e12);
        assert_eq!(p.rate(Precision::Fp32), 10e12);
        assert_eq!(p.rate(Precision::Fp16), 20e12);
        assert_eq!(p.rate(Precision::Fp8), 40e12);
        assert_eq!(p.rate(Precision::Fp64), 5e12);
    }

    #[test]
    fn scaled_multiplies_all() {
        let p = PeakFlops::from_fp32_matrix(1e12).scaled(3.0);
        assert_eq!(p.rate(Precision::Fp32), 3e12);
        assert_eq!(p.rate(Precision::Fp16), 6e12);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_rate_rejected() {
        let _ = PeakFlops::new(0.0, 1.0, 1.0, 1.0, 1.0);
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(Precision::Bf16.to_string(), "bf16");
        assert_eq!(Precision::Fp32.to_string(), "fp32");
    }

    #[test]
    fn ordering_by_width() {
        let mut all = Precision::all();
        all.sort();
        assert_eq!(all[0], Precision::Fp8);
        assert_eq!(all[4], Precision::Fp64);
    }
}
