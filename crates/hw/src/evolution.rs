//! Hardware-evolution scaling (paper §4.3.6).
//!
//! The paper's central hardware question: compute FLOPS have historically
//! scaled faster than network bandwidth — 5×/2× (NVIDIA V100→A100) and
//! 7×/1.7× (AMD MI50→MI100) between 2018 and 2020, i.e. a *flop-vs.-bw*
//! ratio of ~2–4×. [`HwEvolution`] applies such relative scaling to a
//! [`DeviceSpec`], producing the "future hardware" used by Figures 12–14.

use crate::device::DeviceSpec;
use crate::precision::Precision;
use std::fmt;

/// A multiplicative scaling of device capabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HwEvolution {
    /// Multiplier on peak math throughput (all precisions).
    pub flop_scale: f64,
    /// Multiplier on all network bandwidths (links and ring all-reduce).
    pub network_scale: f64,
    /// Multiplier on memory bandwidth.
    pub mem_bandwidth_scale: f64,
    /// Multiplier on memory capacity.
    pub mem_capacity_scale: f64,
}

impl HwEvolution {
    /// The identity evolution (today's hardware).
    #[must_use]
    pub fn identity() -> Self {
        Self {
            flop_scale: 1.0,
            network_scale: 1.0,
            mem_bandwidth_scale: 1.0,
            mem_capacity_scale: 1.0,
        }
    }

    /// The paper's *flop-vs.-bw* experiment: compute scales `ratio`× more
    /// than network bandwidth. Network bandwidth is held constant and
    /// compute is multiplied, which only fixes the *relative* scaling the
    /// analysis depends on. Memory bandwidth follows compute (GEMMs stay
    /// compute-bound, per §4.2.3).
    ///
    /// # Panics
    /// Panics if `ratio` is not ≥ 1 and finite.
    #[must_use]
    pub fn flop_vs_bw(ratio: f64) -> Self {
        assert!(
            ratio.is_finite() && ratio >= 1.0,
            "flop-vs-bw ratio must be >= 1, got {ratio}"
        );
        Self {
            flop_scale: ratio,
            network_scale: 1.0,
            mem_bandwidth_scale: ratio,
            mem_capacity_scale: 1.0,
        }
    }

    /// Derive the historical evolution between two catalog devices at the
    /// given precision: per-component ratios `newer / older`.
    #[must_use]
    pub fn between(older: &DeviceSpec, newer: &DeviceSpec, precision: Precision) -> Self {
        Self {
            flop_scale: newer.peak_flops(precision) / older.peak_flops(precision),
            network_scale: newer.network().intra_node().bandwidth()
                / older.network().intra_node().bandwidth(),
            mem_bandwidth_scale: newer.mem_bandwidth() / older.mem_bandwidth(),
            mem_capacity_scale: newer.mem_capacity() as f64 / older.mem_capacity() as f64,
        }
    }

    /// The flop-vs.-bw ratio implied by this evolution.
    #[must_use]
    pub fn flop_vs_bw_ratio(&self) -> f64 {
        self.flop_scale / self.network_scale
    }

    /// Apply this evolution to a device, producing the future device.
    ///
    /// # Panics
    /// Panics if any scale is not strictly positive and finite.
    #[must_use]
    pub fn apply(&self, device: &DeviceSpec) -> DeviceSpec {
        for (name, v) in [
            ("flop_scale", self.flop_scale),
            ("network_scale", self.network_scale),
            ("mem_bandwidth_scale", self.mem_bandwidth_scale),
            ("mem_capacity_scale", self.mem_capacity_scale),
        ] {
            assert!(v.is_finite() && v > 0.0, "{name} must be positive, got {v}");
        }
        let peak = crate::precision::PeakFlops::new(
            device.peak_flops(Precision::Fp64) * self.flop_scale,
            device.peak_flops(Precision::Fp32) * self.flop_scale,
            device.peak_flops(Precision::Fp16) * self.flop_scale,
            device.peak_flops(Precision::Bf16) * self.flop_scale,
            device.peak_flops(Precision::Fp8) * self.flop_scale,
        );
        let capacity = (device.mem_capacity() as f64 * self.mem_capacity_scale) as u64;
        let name = format!(
            "{} (x{:.1} flops, x{:.1} net)",
            device.name(),
            self.flop_scale,
            self.network_scale
        );
        device
            .clone()
            .with_peak(peak)
            .with_mem_capacity(capacity)
            .with_mem_bandwidth(device.mem_bandwidth() * self.mem_bandwidth_scale)
            .with_network(device.network().scaled_bandwidth(self.network_scale))
            .with_name(name)
    }
}

impl Default for HwEvolution {
    fn default() -> Self {
        Self::identity()
    }
}

impl fmt::Display for HwEvolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "flops x{:.2}, net x{:.2}, mem-bw x{:.2}, mem-cap x{:.2}",
            self.flop_scale, self.network_scale, self.mem_bandwidth_scale, self.mem_capacity_scale
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::GemmShape;

    #[test]
    fn identity_changes_nothing_measurable() {
        let d = DeviceSpec::mi210();
        let e = HwEvolution::identity().apply(&d);
        assert_eq!(e.peak_flops(Precision::Fp16), d.peak_flops(Precision::Fp16));
        assert_eq!(e.mem_capacity(), d.mem_capacity());
    }

    #[test]
    fn flop_vs_bw_speeds_compute_not_network() {
        let d = DeviceSpec::mi210();
        let fut = HwEvolution::flop_vs_bw(4.0).apply(&d);
        assert_eq!(
            fut.peak_flops(Precision::Fp16),
            4.0 * d.peak_flops(Precision::Fp16)
        );
        assert_eq!(
            fut.network().ring_allreduce_bandwidth(),
            d.network().ring_allreduce_bandwidth()
        );
        // A large GEMM gets ~4x faster (launch overhead excepted).
        let shape = GemmShape::new(8192, 8192, 8192);
        let t_now = d.gemm_time(shape, Precision::Fp16);
        let t_fut = fut.gemm_time(shape, Precision::Fp16);
        let speedup = t_now / t_fut;
        assert!((3.5..=4.1).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn historical_ratio_between_v100_and_a100() {
        let e = HwEvolution::between(&DeviceSpec::v100(), &DeviceSpec::a100(), Precision::Fp16);
        let r = e.flop_vs_bw_ratio();
        // §4.3.6: compute scaled ~2-4x more than network.
        assert!((2.0..=4.0).contains(&r), "flop-vs-bw ratio {r}");
    }

    #[test]
    fn historical_ratio_between_mi50_and_mi100() {
        let e = HwEvolution::between(&DeviceSpec::mi50(), &DeviceSpec::mi100(), Precision::Fp16);
        let r = e.flop_vs_bw_ratio();
        assert!((2.0..=4.5).contains(&r), "flop-vs-bw ratio {r}");
    }

    #[test]
    #[should_panic(expected = "flop-vs-bw ratio")]
    fn sub_unity_ratio_rejected() {
        let _ = HwEvolution::flop_vs_bw(0.5);
    }

    #[test]
    fn display_mentions_scales() {
        let e = HwEvolution::flop_vs_bw(2.0);
        let s = e.to_string();
        assert!(s.contains("x2.00"));
    }
}
