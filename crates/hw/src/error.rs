//! Error type for hardware-model construction and validation.

use std::error::Error;
use std::fmt;

/// Error produced when building or validating hardware descriptions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HwError {
    /// A numeric parameter was out of its valid range.
    InvalidParameter {
        /// Which parameter was invalid.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// A topology was asked about a device it does not contain.
    UnknownDevice {
        /// The requested device index.
        device: usize,
        /// The number of devices in the topology.
        count: usize,
    },
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwError::InvalidParameter { name, reason } => {
                write!(f, "invalid hardware parameter `{name}`: {reason}")
            }
            HwError::UnknownDevice { device, count } => {
                write!(
                    f,
                    "device {device} out of range for topology of {count} devices"
                )
            }
        }
    }
}

impl Error for HwError {}

impl HwError {
    /// Convenience constructor for [`HwError::InvalidParameter`].
    pub fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        HwError::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_parameter() {
        let e = HwError::invalid("bandwidth", "must be positive");
        assert!(e.to_string().contains("bandwidth"));
        assert!(e.to_string().contains("must be positive"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HwError>();
    }
}
