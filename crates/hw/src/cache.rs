//! Shared memoization infrastructure for the hot pure cost functions.
//!
//! The paper's methodology projects hundreds of future-hardware
//! configurations from one baseline profile, and the sweeps re-evaluate
//! identical (shape, device) cost queries thousands of times. Every cost
//! function in the workspace is *pure* — same inputs, same output — so
//! results can be memoized and shared across sweep worker threads.
//!
//! [`MemoCache`] is the generic building block; this crate keeps a global
//! cache for [`DeviceSpec::gemm_time`] (see [`gemm_time_cache_stats`]),
//! while `twocs-collectives` and `twocs-opmodel` keep caches for
//! collective costs and ROI profiles built on the same type.
//!
//! # Concurrency design
//!
//! A lookup goes through three tiers, cheapest first:
//!
//! 1. **Thread-local L1** — each worker thread keeps a private copy of
//!    the entries it has already seen, so a warm hit takes *no lock at
//!    all* (one atomic generation load plus a thread-local `HashMap`
//!    probe). L1 tables are invalidated lazily by a generation counter
//!    that [`MemoCache::clear`] bumps.
//! 2. **Lock-striped shards** — the shared table is split across
//!    [`SHARDS`] independent `RwLock<HashMap>` stripes keyed by the
//!    key's hash, so writers on different keys almost never contend.
//! 3. **In-flight dedupe** — a miss installs a `Pending` slot before
//!    computing, and later lookups of the same key *wait* on that slot
//!    instead of re-running the compute function: two workers never
//!    compute the same key concurrently. If the computing thread
//!    panics, the slot is abandoned and one waiter retries the compute,
//!    so a poisoned key never wedges later lookups.
//!
//! Each cache counts hits and misses so sweep reports can show how much
//! recomputation was avoided; a thread that waits on an in-flight
//! computation counts as a *hit* (it did not run the compute function),
//! so `misses` equals compute-function invocations exactly. Named caches
//! ([`MemoCache::named`]) publish those counters to the `twocs-obs`
//! metrics registry (as `cache.<name>.hits` / `cache.<name>.misses`,
//! plus a `cache.<name>.entries` gauge), and every lookup is also
//! attributed to the current `twocs-obs` task scope so the sweep pool
//! can tell cache-cold tasks from cache-warm ones exactly.
//!
//! [`DeviceSpec::gemm_time`]: crate::DeviceSpec::gemm_time

use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};
use twocs_obs::{Counter, Gauge};

/// Number of lock stripes per cache. A power of two so the shard index
/// is a mask of the key hash; 16 stripes keep writer collisions rare at
/// the worker counts the sweep pool uses without bloating empty caches.
pub const SHARDS: usize = 16;

/// A point-in-time snapshot of one cache's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the map (including lookups that waited on
    /// an in-flight computation of the same key).
    pub hits: u64,
    /// Lookups that ran the compute function. Because in-flight misses
    /// are deduplicated, this equals compute-function invocations.
    pub misses: u64,
    /// Entries currently resident. Exact: summed across all shards at
    /// snapshot time. Thread-local L1 tables only ever hold copies of
    /// shard-resident entries, so the distinct-key count is the shard
    /// sum.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache; 0 when never queried.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }

    /// Counter-wise difference `self - earlier` (entries keeps the later
    /// value): the activity between two snapshots.
    #[must_use]
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            entries: self.entries,
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.1}% hit rate, {} entries)",
            self.hits,
            self.misses,
            100.0 * self.hit_rate(),
            self.entries
        )
    }
}

/// One shared-table slot: a finished value, or a computation in flight.
enum Slot<V> {
    Ready(V),
    Pending(Arc<InFlight<V>>),
}

/// Rendezvous for threads that miss on a key already being computed.
struct InFlight<V> {
    state: Mutex<FlightState<V>>,
    cv: Condvar,
}

enum FlightState<V> {
    Running,
    Done(V),
    /// The computing thread panicked; waiters must retry the lookup.
    Abandoned,
}

impl<V: Clone> InFlight<V> {
    fn new() -> Self {
        Self {
            state: Mutex::new(FlightState::Running),
            cv: Condvar::new(),
        }
    }

    /// Block until the computing thread finishes. `Some(value)` on
    /// success, `None` if it panicked (caller retries the lookup).
    fn wait(&self) -> Option<V> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            match &*state {
                FlightState::Running => {
                    state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
                }
                FlightState::Done(v) => return Some(v.clone()),
                FlightState::Abandoned => return None,
            }
        }
    }

    fn finish(&self, state: FlightState<V>) {
        *self.state.lock().unwrap_or_else(PoisonError::into_inner) = state;
        self.cv.notify_all();
    }
}

/// Per-thread L1 table for one cache: a private copy of entries this
/// thread has already looked up, stamped with the cache generation it
/// was filled under so `clear()` invalidates it lazily.
struct L1Table<K, V> {
    generation: u64,
    map: HashMap<K, V>,
}

thread_local! {
    /// This thread's L1 tables, keyed by cache id. `Box<dyn Any>` hides
    /// the per-cache `(K, V)` types behind one registry.
    static L1: RefCell<HashMap<u64, Box<dyn Any>>> = RefCell::new(HashMap::new());
}

/// Unique id per cache instance, so thread-local L1 tables never alias
/// across caches (ids are never reused, unlike addresses).
static NEXT_CACHE_ID: AtomicU64 = AtomicU64::new(0);

/// A thread-safe memo table with hit/miss accounting, lock-striped
/// shards, a per-thread L1, and in-flight miss deduplication (see the
/// module docs for the tiered design). Designed for pure functions:
/// same key, same value. Lock poisoning is ignored (the guarded map
/// operations cannot leave a shard inconsistent), and a panicking
/// compute function abandons its in-flight slot so one waiter retries —
/// a panicking sweep worker never wedges later lookups.
pub struct MemoCache<K, V> {
    shards: Box<[Shard<K, V>]>,
    hits: Counter,
    misses: Counter,
    /// Chunk scopes opened on this cache (see [`MemoCache::begin_chunk`]).
    chunks: Counter,
    /// Resident-entry gauge mirror (detached unless the cache is named).
    entries_gauge: Gauge,
    /// Bumped by `clear()`; thread-local L1 tables flush on mismatch.
    generation: AtomicU64,
    id: u64,
}

/// RAII scope for one lease-sized chunk of work against a [`MemoCache`]
/// (see [`MemoCache::begin_chunk`]). Construction pre-resolves the
/// chunk's distinct keys against the shared shards — each shard's lock
/// is taken at most once — copying every shard-resident value into the
/// calling thread's L1 table, so the chunk's per-point lookups that
/// follow are lock-free L1 hits. Dropping the scope "ends" the chunk:
/// it bumps the cache's chunk counter and leaves the L1 warm for the
/// next lease on the same thread.
#[must_use = "the chunk ends when the scope is dropped"]
pub struct ChunkScope<'a, K, V>
where
    K: Eq + Hash + Clone + 'static,
    V: Clone + 'static,
{
    cache: &'a MemoCache<K, V>,
    /// Keys the prefetch copied from shared shards into the L1.
    prefetched: usize,
    /// Shard read-locks the prefetch acquired (≤ [`SHARDS`]).
    shard_probes: usize,
}

impl<K, V> ChunkScope<'_, K, V>
where
    K: Eq + Hash + Clone + 'static,
    V: Clone + 'static,
{
    /// Keys the prefetch copied from shared shards into this thread's L1
    /// (keys already in the L1, or absent from the shared table, are not
    /// counted).
    #[must_use]
    pub fn prefetched(&self) -> usize {
        self.prefetched
    }

    /// Shard locks the prefetch took — at most one per shard per chunk,
    /// however many keys the chunk touches.
    #[must_use]
    pub fn shard_probes(&self) -> usize {
        self.shard_probes
    }
}

impl<K, V> fmt::Debug for ChunkScope<'_, K, V>
where
    K: Eq + Hash + Clone + 'static,
    V: Clone + 'static,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChunkScope")
            .field("prefetched", &self.prefetched)
            .field("shard_probes", &self.shard_probes)
            .finish_non_exhaustive()
    }
}

impl<K, V> Drop for ChunkScope<'_, K, V>
where
    K: Eq + Hash + Clone + 'static,
    V: Clone + 'static,
{
    fn drop(&mut self) {
        self.cache.chunks.inc();
    }
}

/// One lock-striped shard of the shared table.
type Shard<K, V> = RwLock<HashMap<K, Slot<V>>>;

/// Outcome of a shared-table probe.
enum Probe<V> {
    Hit(V),
    Wait(Arc<InFlight<V>>),
    Compute(Arc<InFlight<V>>),
}

impl<K, V> MemoCache<K, V>
where
    K: Eq + Hash + Clone + 'static,
    V: Clone + 'static,
{
    fn with_counters(
        hits: Counter,
        misses: Counter,
        chunks: Counter,
        entries_gauge: Gauge,
    ) -> Self {
        Self {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            hits,
            misses,
            chunks,
            entries_gauge,
            generation: AtomicU64::new(0),
            id: NEXT_CACHE_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Create an empty cache with detached (unpublished) counters.
    #[must_use]
    pub fn new() -> Self {
        Self::with_counters(
            Counter::detached(),
            Counter::detached(),
            Counter::detached(),
            Gauge::detached(),
        )
    }

    /// Create an empty cache whose counters are registered in the global
    /// `twocs-obs` metrics registry as `cache.<name>.hits` /
    /// `cache.<name>.misses` / `cache.<name>.chunks` plus a
    /// `cache.<name>.entries` gauge, so `--metrics` reports its hit rate
    /// and size.
    #[must_use]
    pub fn named(name: &str) -> Self {
        Self::with_metric_prefix(&format!("cache.{name}"))
    }

    /// Like [`MemoCache::named`], but with full control of the metric
    /// namespace: counters register as `<prefix>.hits` /
    /// `<prefix>.misses` / `<prefix>.chunks` plus a `<prefix>.entries`
    /// gauge. Lets consumers outside the hardware layer (e.g. the serve
    /// response cache, which publishes `serve.cache.*`) reuse this
    /// machinery without squatting in the `cache.*` namespace.
    #[must_use]
    pub fn with_metric_prefix(prefix: &str) -> Self {
        let registry = twocs_obs::metrics::global();
        Self::with_counters(
            registry.counter(&format!("{prefix}.hits")),
            registry.counter(&format!("{prefix}.misses")),
            registry.counter(&format!("{prefix}.chunks")),
            registry.gauge(&format!("{prefix}.entries")),
        )
    }

    fn shard_index(&self, key: &K) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) & (SHARDS - 1)
    }

    fn shard(&self, key: &K) -> &RwLock<HashMap<K, Slot<V>>> {
        &self.shards[self.shard_index(key)]
    }

    /// Probe this thread's L1 table; no lock taken.
    fn l1_get(&self, generation: u64, key: &K) -> Option<V> {
        L1.with(|tables| {
            let mut tables = tables.borrow_mut();
            let table = tables.get_mut(&self.id)?.downcast_mut::<L1Table<K, V>>()?;
            if table.generation != generation {
                table.map.clear();
                table.generation = generation;
                return None;
            }
            table.map.get(key).cloned()
        })
    }

    fn l1_put(&self, generation: u64, key: K, value: V) {
        // Re-check the live generation so a clear() that raced this
        // lookup cannot resurrect a dropped entry into the L1.
        if self.generation.load(Ordering::Acquire) != generation {
            return;
        }
        L1.with(|tables| {
            let mut tables = tables.borrow_mut();
            let table = tables.entry(self.id).or_insert_with(|| {
                Box::new(L1Table::<K, V> {
                    generation,
                    map: HashMap::new(),
                })
            });
            let Some(table) = table.downcast_mut::<L1Table<K, V>>() else {
                return;
            };
            if table.generation != generation {
                table.map.clear();
                table.generation = generation;
            }
            table.map.insert(key, value);
        });
    }

    /// One shared-table round: hit, join an in-flight computation, or
    /// claim the key by installing a `Pending` slot.
    fn probe(&self, key: &K) -> Probe<V> {
        let shard = self.shard(key);
        {
            let map = shard.read().unwrap_or_else(PoisonError::into_inner);
            match map.get(key) {
                Some(Slot::Ready(v)) => return Probe::Hit(v.clone()),
                Some(Slot::Pending(flight)) => return Probe::Wait(Arc::clone(flight)),
                None => {}
            }
        }
        let mut map = shard.write().unwrap_or_else(PoisonError::into_inner);
        match map.get(key) {
            Some(Slot::Ready(v)) => Probe::Hit(v.clone()),
            Some(Slot::Pending(flight)) => Probe::Wait(Arc::clone(flight)),
            None => {
                let flight = Arc::new(InFlight::new());
                map.insert(key.clone(), Slot::Pending(Arc::clone(&flight)));
                Probe::Compute(flight)
            }
        }
    }

    /// Record a hit on this cache and the caller's task scope.
    fn count_hit(&self, generation: u64, key: &K, value: &V) {
        self.hits.inc();
        twocs_obs::note_cache_hit();
        self.l1_put(generation, key.clone(), value.clone());
    }

    /// Replace our `Pending` slot with the finished value and wake
    /// waiters.
    fn publish(&self, key: &K, flight: &Arc<InFlight<V>>, value: V) {
        let newly_resident = {
            let mut map = self
                .shard(key)
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            let prev = map.insert(key.clone(), Slot::Ready(value.clone()));
            !matches!(prev, Some(Slot::Ready(_)))
        };
        if newly_resident {
            self.entries_gauge.set(self.len() as f64);
        }
        flight.finish(FlightState::Done(value));
    }

    /// Return the cached value for `key`, computing it with `compute` on
    /// a miss. `compute` runs outside all locks, and concurrent misses
    /// on the same key run it exactly once — the losers block until the
    /// winner publishes and then count as hits. The outcome is counted
    /// on this cache and charged to the calling thread's current
    /// `twocs-obs` task scope.
    pub fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> V {
        let generation = self.generation.load(Ordering::Acquire);
        if let Some(v) = self.l1_get(generation, &key) {
            self.hits.inc();
            twocs_obs::note_cache_hit();
            return v;
        }
        // FnOnce in a retry loop: consumed at most once, because after
        // this thread computes it either returns or unwinds.
        let mut compute = Some(compute);
        loop {
            match self.probe(&key) {
                Probe::Hit(v) => {
                    self.count_hit(generation, &key, &v);
                    return v;
                }
                Probe::Wait(flight) => match flight.wait() {
                    Some(v) => {
                        self.count_hit(generation, &key, &v);
                        return v;
                    }
                    // The computing thread panicked; retry — we may
                    // become the new computer.
                    None => continue,
                },
                Probe::Compute(flight) => {
                    self.misses.inc();
                    twocs_obs::note_cache_miss();
                    let guard = AbandonOnUnwind {
                        cache: self,
                        key: &key,
                        flight: &flight,
                    };
                    let value = (compute.take().expect("compute claimed twice"))();
                    std::mem::forget(guard);
                    self.publish(&key, &flight, value.clone());
                    self.l1_put(generation, key, value.clone());
                    return value;
                }
            }
        }
    }

    /// Begin a chunk-scoped lookup session: pre-resolve `keys` against
    /// the shared shards, touching each shard **at most once** for the
    /// whole chunk instead of once per key.
    ///
    /// Keys already in this thread's L1 cost no lock at all. The
    /// remaining keys are grouped by shard and probed under a single
    /// read-lock per shard; every `Ready` value found is copied into the
    /// L1, so the chunk's per-point `get_or_insert_with` calls that
    /// follow are lock-free L1 hits. Keys absent from the shared table
    /// (or still being computed by another thread) are left to the
    /// normal lookup path — computed once, in-flight deduplicated, and
    /// counted as misses exactly as if no prefetch had happened.
    ///
    /// The prefetch itself records no hits or misses: the counters keep
    /// describing what the chunk's real lookups did. The returned
    /// [`ChunkScope`] ends the chunk on drop (bumping
    /// `cache.<name>.chunks` for named caches).
    pub fn begin_chunk(&self, keys: impl IntoIterator<Item = K>) -> ChunkScope<'_, K, V> {
        let generation = self.generation.load(Ordering::Acquire);
        // Distinct keys this thread has not seen yet, grouped by shard so
        // each shard's lock is taken at most once below.
        let mut by_shard: Vec<Vec<K>> = (0..SHARDS).map(|_| Vec::new()).collect();
        for key in keys {
            if self.l1_get(generation, &key).is_none() {
                by_shard[self.shard_index(&key)].push(key);
            }
        }
        let mut prefetched = 0;
        let mut shard_probes = 0;
        for (s, keys) in by_shard.into_iter().enumerate() {
            if keys.is_empty() {
                continue;
            }
            shard_probes += 1;
            let map = self.shards[s]
                .read()
                .unwrap_or_else(PoisonError::into_inner);
            for key in keys {
                if let Some(Slot::Ready(v)) = map.get(&key) {
                    let value = v.clone();
                    self.l1_put(generation, key, value);
                    prefetched += 1;
                }
            }
        }
        ChunkScope {
            cache: self,
            prefetched,
            shard_probes,
        }
    }

    /// Exact resident-entry count: sum of finished entries across all
    /// shards (in-flight `Pending` slots are not yet resident).
    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                shard
                    .read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .values()
                    .filter(|slot| matches!(slot, Slot::Ready(_)))
                    .count()
            })
            .sum()
    }

    /// Current counters. `entries` is exact at snapshot time (summed
    /// across shards; L1 tables hold only copies of shard entries).
    pub fn stats(&self) -> CacheStats {
        let entries = self.len();
        self.entries_gauge.set(entries as f64);
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            entries,
        }
    }

    /// Drop all entries and zero the counters (for tests and benchmarks
    /// that need cold-cache numbers). Thread-local L1 copies are
    /// invalidated lazily via the generation counter.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard
                .write()
                .unwrap_or_else(PoisonError::into_inner)
                .clear();
        }
        self.generation.fetch_add(1, Ordering::AcqRel);
        self.hits.reset();
        self.misses.reset();
        self.entries_gauge.set(0.0);
    }
}

/// Unwind guard armed while a claimed compute function runs: on panic it
/// removes the `Pending` slot (so a retry can claim the key) and marks
/// the flight abandoned so waiters wake up and retry instead of blocking
/// forever. Disarmed with `mem::forget` on success.
struct AbandonOnUnwind<'a, K, V>
where
    K: Eq + Hash + Clone + 'static,
    V: Clone + 'static,
{
    cache: &'a MemoCache<K, V>,
    key: &'a K,
    flight: &'a Arc<InFlight<V>>,
}

impl<K, V> Drop for AbandonOnUnwind<'_, K, V>
where
    K: Eq + Hash + Clone + 'static,
    V: Clone + 'static,
{
    fn drop(&mut self) {
        {
            let mut map = self
                .cache
                .shard(self.key)
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(Slot::Pending(p)) = map.get(self.key) {
                if Arc::ptr_eq(p, self.flight) {
                    map.remove(self.key);
                }
            }
        }
        self.flight.finish(FlightState::Abandoned);
    }
}

impl<K, V> Default for MemoCache<K, V>
where
    K: Eq + Hash + Clone + 'static,
    V: Clone + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> fmt::Debug for MemoCache<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoCache")
            .field("hits", &self.hits.get())
            .field("misses", &self.misses.get())
            .finish_non_exhaustive()
    }
}

/// FNV-1a hash of a byte string — used to fingerprint model
/// configurations into compact cache keys.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Cache key for [`DeviceSpec::gemm_time`]: the device fingerprint, the
/// four GEMM shape dimensions (m, n, k, batch), and the precision.
///
/// [`DeviceSpec::gemm_time`]: crate::DeviceSpec::gemm_time
pub(crate) type GemmTimeKey = (u64, u64, u64, u64, u64, u8);

/// Global memo table for [`DeviceSpec::gemm_time`].
///
/// [`DeviceSpec::gemm_time`]: crate::DeviceSpec::gemm_time
pub(crate) static GEMM_TIME: std::sync::LazyLock<MemoCache<GemmTimeKey, f64>> =
    std::sync::LazyLock::new(|| MemoCache::named("gemm_time"));

/// Counters of the global GEMM-time cache.
#[must_use]
pub fn gemm_time_cache_stats() -> CacheStats {
    GEMM_TIME.stats()
}

/// Empty the global GEMM-time cache and zero its counters.
pub fn clear_gemm_time_cache() {
    GEMM_TIME.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    #[test]
    fn hit_and_miss_accounting() {
        let cache: MemoCache<u64, u64> = MemoCache::new();
        assert_eq!(cache.get_or_insert_with(1, || 10), 10);
        assert_eq!(cache.get_or_insert_with(1, || 99), 10);
        assert_eq!(cache.get_or_insert_with(2, || 20), 20);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 2, 2));
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn clear_resets_everything() {
        let cache: MemoCache<u64, u64> = MemoCache::new();
        let _ = cache.get_or_insert_with(1, || 1);
        cache.clear();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
    }

    #[test]
    fn clear_invalidates_thread_local_l1() {
        let cache: MemoCache<u64, u64> = MemoCache::new();
        assert_eq!(cache.get_or_insert_with(1, || 10), 10);
        assert_eq!(cache.get_or_insert_with(1, || 99), 10);
        cache.clear();
        // A stale L1 copy must not survive the clear.
        assert_eq!(cache.get_or_insert_with(1, || 42), 42);
    }

    #[test]
    fn since_subtracts_counters() {
        let a = CacheStats {
            hits: 10,
            misses: 5,
            entries: 4,
        };
        let b = CacheStats {
            hits: 25,
            misses: 7,
            entries: 6,
        };
        let d = b.since(&a);
        assert_eq!((d.hits, d.misses, d.entries), (15, 2, 6));
    }

    #[test]
    fn concurrent_lookups_agree() {
        let cache: MemoCache<u64, u64> = MemoCache::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for k in 0..100u64 {
                        assert_eq!(cache.get_or_insert_with(k, move || k * 3), k * 3);
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.entries, 100);
        assert_eq!(s.hits + s.misses, 800);
        // In-flight dedupe: every key computed exactly once.
        assert_eq!(s.misses, 100);
    }

    #[test]
    fn duplicate_misses_compute_once_and_share() {
        const THREADS: usize = 8;
        let cache: MemoCache<u64, u64> = MemoCache::new();
        let invocations = AtomicUsize::new(0);
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    barrier.wait();
                    let v = cache.get_or_insert_with(7, || {
                        invocations.fetch_add(1, Ordering::SeqCst);
                        // Hold the in-flight slot open long enough that
                        // the other threads arrive while it is pending.
                        std::thread::sleep(std::time::Duration::from_millis(25));
                        777
                    });
                    assert_eq!(v, 777);
                });
            }
        });
        assert_eq!(invocations.load(Ordering::SeqCst), 1);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (THREADS as u64 - 1, 1, 1));
    }

    #[test]
    fn panicking_compute_releases_the_key() {
        let cache: MemoCache<u64, u64> = MemoCache::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_insert_with(3, || panic!("compute failed"))
        }));
        assert!(result.is_err());
        // The abandoned slot must not wedge or poison later lookups.
        assert_eq!(cache.get_or_insert_with(3, || 30), 30);
        let s = cache.stats();
        assert_eq!((s.misses, s.entries), (2, 1));
    }

    #[test]
    fn waiters_survive_a_panicking_computer() {
        let cache: MemoCache<u64, u64> = MemoCache::new();
        let barrier = Barrier::new(2);
        std::thread::scope(|s| {
            s.spawn(|| {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    cache.get_or_insert_with(5, || {
                        barrier.wait();
                        // Give the second thread time to park on the
                        // in-flight slot before unwinding.
                        std::thread::sleep(std::time::Duration::from_millis(25));
                        panic!("computer dies")
                    })
                }));
                assert!(result.is_err());
            });
            s.spawn(|| {
                barrier.wait();
                // Whether this waits on the doomed flight or claims the
                // key after the abandon, it must come back with a value.
                assert_eq!(cache.get_or_insert_with(5, || 50), 50);
            });
        });
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn named_cache_publishes_metrics() {
        let cache: MemoCache<u64, u64> = MemoCache::named("test_named");
        let _ = cache.get_or_insert_with(1, || 1);
        let _ = cache.get_or_insert_with(1, || 1);
        let reg = twocs_obs::metrics::global();
        assert_eq!(reg.counter("cache.test_named.hits").get(), 1);
        assert_eq!(reg.counter("cache.test_named.misses").get(), 1);
    }

    #[test]
    fn named_cache_publishes_entries_gauge() {
        let cache: MemoCache<u64, u64> = MemoCache::named("test_entries");
        let _ = cache.get_or_insert_with(1, || 1);
        let _ = cache.get_or_insert_with(2, || 2);
        let reg = twocs_obs::metrics::global();
        assert_eq!(reg.gauge("cache.test_entries.entries").get(), 2.0);
        cache.clear();
        assert_eq!(reg.gauge("cache.test_entries.entries").get(), 0.0);
    }

    #[test]
    fn lookups_attribute_to_task_scope() {
        let cache: MemoCache<u64, u64> = MemoCache::new();
        let scope = twocs_obs::task_scope(0, "t");
        let _ = cache.get_or_insert_with(7, || 7);
        let _ = cache.get_or_insert_with(7, || 7);
        let obs = scope.finish();
        assert_eq!((obs.cache_hits, obs.cache_misses), (1, 1));
    }

    #[test]
    fn caches_do_not_share_l1_tables() {
        let a: MemoCache<u64, u64> = MemoCache::new();
        let b: MemoCache<u64, u64> = MemoCache::new();
        assert_eq!(a.get_or_insert_with(1, || 10), 10);
        // Same key, different cache: must compute its own value.
        assert_eq!(b.get_or_insert_with(1, || 20), 20);
        assert_eq!(b.stats().misses, 1);
    }

    #[test]
    fn chunk_prefetch_copies_shard_entries_into_l1() {
        let cache: MemoCache<u64, u64> = MemoCache::new();
        // Fill the shared shards from another thread, so this thread's L1
        // is guaranteed cold for every key.
        std::thread::scope(|s| {
            s.spawn(|| {
                for k in 0..32u64 {
                    let _ = cache.get_or_insert_with(k, move || k * 2);
                }
            });
        });
        let scope = cache.begin_chunk(0..32u64);
        assert_eq!(scope.prefetched(), 32);
        // 32 keys resolved with at most one lock acquisition per shard.
        assert!(scope.shard_probes() <= SHARDS, "{}", scope.shard_probes());
        // Every prefetched key is now answerable without computing.
        for k in 0..32u64 {
            assert_eq!(
                cache.get_or_insert_with(k, || unreachable!("prefetched key recomputed")),
                k * 2
            );
        }
        drop(scope);
    }

    #[test]
    fn chunk_prefetch_leaves_counters_untouched() {
        let cache: MemoCache<u64, u64> = MemoCache::new();
        let _ = cache.get_or_insert_with(1, || 10);
        let before = cache.stats();
        let scope = cache.begin_chunk([1, 2, 3]);
        let after = cache.stats();
        assert_eq!((before.hits, before.misses), (after.hits, after.misses));
        drop(scope);
    }

    #[test]
    fn chunk_prefetch_of_absent_keys_is_harmless() {
        let cache: MemoCache<u64, u64> = MemoCache::new();
        let scope = cache.begin_chunk(0..8u64);
        assert_eq!(scope.prefetched(), 0);
        drop(scope);
        // Absent keys still compute normally (and count as misses).
        assert_eq!(cache.get_or_insert_with(3, || 33), 33);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn chunk_prefetch_skips_keys_already_in_l1() {
        let cache: MemoCache<u64, u64> = MemoCache::new();
        // Computed on this thread, so it is already in this thread's L1.
        let _ = cache.get_or_insert_with(5, || 50);
        let scope = cache.begin_chunk([5]);
        assert_eq!((scope.prefetched(), scope.shard_probes()), (0, 0));
        drop(scope);
    }

    #[test]
    fn named_cache_counts_chunks() {
        let cache: MemoCache<u64, u64> = MemoCache::named("test_chunks");
        drop(cache.begin_chunk([1, 2]));
        drop(cache.begin_chunk(std::iter::empty()));
        let reg = twocs_obs::metrics::global();
        assert_eq!(reg.counter("cache.test_chunks.chunks").get(), 2);
    }

    #[test]
    fn display_formats_rate() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            entries: 1,
        };
        let text = s.to_string();
        assert!(text.contains("75.0%"), "{text}");
    }
}
