//! Shared memoization infrastructure for the hot pure cost functions.
//!
//! The paper's methodology projects hundreds of future-hardware
//! configurations from one baseline profile, and the sweeps re-evaluate
//! identical (shape, device) cost queries thousands of times. Every cost
//! function in the workspace is *pure* — same inputs, same output — so
//! results can be memoized behind an [`std::sync::RwLock`]-guarded map and
//! shared across sweep worker threads.
//!
//! [`MemoCache`] is the generic building block; this crate keeps a global
//! cache for [`DeviceSpec::gemm_time`] (see [`gemm_time_cache_stats`]),
//! while `twocs-collectives` and `twocs-opmodel` keep caches for
//! collective costs and ROI profiles built on the same type. Each cache
//! counts hits and misses so sweep reports can show how much recomputation
//! was avoided; named caches ([`MemoCache::named`]) publish those counters
//! to the `twocs-obs` metrics registry (as `cache.<name>.hits` /
//! `cache.<name>.misses`), and every lookup is also attributed to the
//! current `twocs-obs` task scope so the sweep pool can tell cache-cold
//! tasks from cache-warm ones exactly.
//!
//! [`DeviceSpec::gemm_time`]: crate::DeviceSpec::gemm_time

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;
use std::sync::RwLock;
use twocs_obs::Counter;

/// A point-in-time snapshot of one cache's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the map.
    pub hits: u64,
    /// Lookups that had to compute and insert.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache; 0 when never queried.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }

    /// Counter-wise difference `self - earlier` (entries keeps the later
    /// value): the activity between two snapshots.
    #[must_use]
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            entries: self.entries,
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.1}% hit rate, {} entries)",
            self.hits,
            self.misses,
            100.0 * self.hit_rate(),
            self.entries
        )
    }
}

/// A thread-safe memo table with hit/miss accounting.
///
/// Designed for pure functions: `get_or_insert_with` may race two
/// computations of the same key under contention, but both produce the
/// identical value, so the first insert wins and correctness is
/// unaffected. Lock poisoning is ignored (the guarded `HashMap`
/// operations cannot leave the map inconsistent), so a panicking sweep
/// worker never wedges later lookups.
#[derive(Debug, Default)]
pub struct MemoCache<K, V> {
    map: RwLock<HashMap<K, V>>,
    hits: Counter,
    misses: Counter,
}

impl<K: Eq + Hash + Clone, V: Clone> MemoCache<K, V> {
    /// Create an empty cache with detached (unpublished) counters.
    #[must_use]
    pub fn new() -> Self {
        Self {
            map: RwLock::new(HashMap::new()),
            hits: Counter::detached(),
            misses: Counter::detached(),
        }
    }

    /// Create an empty cache whose hit/miss counters are registered in
    /// the global `twocs-obs` metrics registry as `cache.<name>.hits` /
    /// `cache.<name>.misses`, so `--metrics` reports its hit rate.
    #[must_use]
    pub fn named(name: &str) -> Self {
        let registry = twocs_obs::metrics::global();
        Self {
            map: RwLock::new(HashMap::new()),
            hits: registry.counter(&format!("cache.{name}.hits")),
            misses: registry.counter(&format!("cache.{name}.misses")),
        }
    }

    /// Return the cached value for `key`, computing it with `compute` on a
    /// miss. `compute` runs outside the lock. The outcome is counted on
    /// this cache and charged to the calling thread's current `twocs-obs`
    /// task scope.
    pub fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> V {
        {
            let map = self
                .map
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(v) = map.get(&key) {
                self.hits.inc();
                twocs_obs::note_cache_hit();
                return v.clone();
            }
        }
        self.misses.inc();
        twocs_obs::note_cache_miss();
        let value = compute();
        let mut map = self
            .map
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        map.entry(key).or_insert_with(|| value.clone());
        value
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .map
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len();
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            entries,
        }
    }

    /// Drop all entries and zero the counters (for tests and benchmarks
    /// that need cold-cache numbers).
    pub fn clear(&self) {
        self.map
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
        self.hits.reset();
        self.misses.reset();
    }
}

/// FNV-1a hash of a byte string — used to fingerprint model
/// configurations into compact cache keys.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Cache key for [`DeviceSpec::gemm_time`]: the device fingerprint, the
/// four GEMM shape dimensions (m, n, k, batch), and the precision.
///
/// [`DeviceSpec::gemm_time`]: crate::DeviceSpec::gemm_time
pub(crate) type GemmTimeKey = (u64, u64, u64, u64, u64, u8);

/// Global memo table for [`DeviceSpec::gemm_time`].
///
/// [`DeviceSpec::gemm_time`]: crate::DeviceSpec::gemm_time
pub(crate) static GEMM_TIME: std::sync::LazyLock<MemoCache<GemmTimeKey, f64>> =
    std::sync::LazyLock::new(|| MemoCache::named("gemm_time"));

/// Counters of the global GEMM-time cache.
#[must_use]
pub fn gemm_time_cache_stats() -> CacheStats {
    GEMM_TIME.stats()
}

/// Empty the global GEMM-time cache and zero its counters.
pub fn clear_gemm_time_cache() {
    GEMM_TIME.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_accounting() {
        let cache: MemoCache<u64, u64> = MemoCache::new();
        assert_eq!(cache.get_or_insert_with(1, || 10), 10);
        assert_eq!(cache.get_or_insert_with(1, || 99), 10);
        assert_eq!(cache.get_or_insert_with(2, || 20), 20);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 2, 2));
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn clear_resets_everything() {
        let cache: MemoCache<u64, u64> = MemoCache::new();
        let _ = cache.get_or_insert_with(1, || 1);
        cache.clear();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
    }

    #[test]
    fn since_subtracts_counters() {
        let a = CacheStats {
            hits: 10,
            misses: 5,
            entries: 4,
        };
        let b = CacheStats {
            hits: 25,
            misses: 7,
            entries: 6,
        };
        let d = b.since(&a);
        assert_eq!((d.hits, d.misses, d.entries), (15, 2, 6));
    }

    #[test]
    fn concurrent_lookups_agree() {
        let cache: MemoCache<u64, u64> = MemoCache::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for k in 0..100u64 {
                        assert_eq!(cache.get_or_insert_with(k, move || k * 3), k * 3);
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.entries, 100);
        assert_eq!(s.hits + s.misses, 800);
    }

    #[test]
    fn named_cache_publishes_metrics() {
        let cache: MemoCache<u64, u64> = MemoCache::named("test_named");
        let _ = cache.get_or_insert_with(1, || 1);
        let _ = cache.get_or_insert_with(1, || 1);
        let reg = twocs_obs::metrics::global();
        assert_eq!(reg.counter("cache.test_named.hits").get(), 1);
        assert_eq!(reg.counter("cache.test_named.misses").get(), 1);
    }

    #[test]
    fn lookups_attribute_to_task_scope() {
        let cache: MemoCache<u64, u64> = MemoCache::new();
        let scope = twocs_obs::task_scope(0, "t");
        let _ = cache.get_or_insert_with(7, || 7);
        let _ = cache.get_or_insert_with(7, || 7);
        let obs = scope.finish();
        assert_eq!((obs.cache_hits, obs.cache_misses), (1, 1));
    }

    #[test]
    fn display_formats_rate() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            entries: 1,
        };
        let text = s.to_string();
        assert!(text.contains("75.0%"), "{text}");
    }
}
