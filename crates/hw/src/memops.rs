//! Bandwidth-bound (non-GEMM) operator costs.
//!
//! Transformer layers interleave GEMMs with element-wise and reduction
//! operators — LayerNorm, GeLU, residual adds, dropout, softmax. These have
//! negligible math but stream their operands through memory, so their time
//! is data volume over effective memory bandwidth plus a kernel-launch
//! overhead. The paper's operator model (Fig. 15(b)) finds LayerNorm time
//! linear in both `SL` and `H`, which this model reproduces by construction.

use std::fmt;

/// Kind of bandwidth-bound operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum MemOpKind {
    /// Layer normalization over the hidden dimension.
    LayerNorm,
    /// GeLU (or similar) activation.
    Gelu,
    /// Residual addition.
    ResidualAdd,
    /// Dropout (mask generate + apply).
    Dropout,
    /// Row-wise softmax (attention probabilities).
    Softmax,
    /// Elementwise scale (e.g. 1/sqrt(d) attention scaling).
    Scale,
    /// Generic elementwise unary op.
    Elementwise,
    /// Elementwise reduction used inside collectives (local sum of received
    /// chunks).
    ReduceSum,
}

impl MemOpKind {
    /// How many times each logical element crosses the memory interface.
    ///
    /// LayerNorm needs two passes (statistics, then normalize) reading the
    /// input twice and writing once, plus gradient bookkeeping ≈ 4×. Binary
    /// ops read two operands and write one ≈ 3×, and so on. These small
    /// integer "pass counts" are what make the model linear in element
    /// count, matching the paper's measurements.
    #[must_use]
    pub fn memory_passes(self) -> f64 {
        match self {
            MemOpKind::LayerNorm => 4.0,
            MemOpKind::Gelu => 2.0,
            MemOpKind::ResidualAdd => 3.0,
            MemOpKind::Dropout => 2.5,
            MemOpKind::Softmax => 4.0,
            MemOpKind::Scale => 2.0,
            MemOpKind::Elementwise => 2.0,
            MemOpKind::ReduceSum => 3.0,
        }
    }

    /// Canonical lower-case name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MemOpKind::LayerNorm => "layernorm",
            MemOpKind::Gelu => "gelu",
            MemOpKind::ResidualAdd => "residual_add",
            MemOpKind::Dropout => "dropout",
            MemOpKind::Softmax => "softmax",
            MemOpKind::Scale => "scale",
            MemOpKind::Elementwise => "elementwise",
            MemOpKind::ReduceSum => "reduce_sum",
        }
    }
}

impl fmt::Display for MemOpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Memory-bandwidth model for element-wise/reduction kernels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemOpModel {
    /// Fraction of peak memory bandwidth these kernels achieve (streaming
    /// kernels rarely exceed ~80–90%).
    efficiency: f64,
}

impl MemOpModel {
    /// Create a model with the given streaming efficiency.
    ///
    /// # Panics
    /// Panics if `efficiency` is outside `(0, 1]`.
    #[must_use]
    pub fn new(efficiency: f64) -> Self {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "mem-op efficiency must be in (0, 1], got {efficiency}"
        );
        Self { efficiency }
    }

    /// Bytes moved by `kind` over `elements` elements of `elem_bytes` each.
    #[must_use]
    pub fn bytes_moved(&self, kind: MemOpKind, elements: u64, elem_bytes: u64) -> u64 {
        (kind.memory_passes() * (elements * elem_bytes) as f64).round() as u64
    }

    /// Kernel time (seconds), excluding launch overhead.
    ///
    /// # Panics
    /// Panics if `mem_bandwidth` is not strictly positive.
    #[must_use]
    pub fn kernel_time(
        &self,
        kind: MemOpKind,
        elements: u64,
        elem_bytes: u64,
        mem_bandwidth: f64,
    ) -> f64 {
        assert!(mem_bandwidth > 0.0, "mem_bandwidth must be positive");
        self.bytes_moved(kind, elements, elem_bytes) as f64 / (mem_bandwidth * self.efficiency)
    }
}

impl Default for MemOpModel {
    fn default() -> Self {
        Self::new(0.8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layernorm_time_linear_in_elements() {
        let m = MemOpModel::default();
        let t1 = m.kernel_time(MemOpKind::LayerNorm, 1 << 20, 2, 1e12);
        let t2 = m.kernel_time(MemOpKind::LayerNorm, 1 << 21, 2, 1e12);
        assert!((t2 / t1 - 2.0).abs() < 1e-9, "ratio {}", t2 / t1);
    }

    #[test]
    fn passes_reflect_operand_counts() {
        assert!(MemOpKind::ResidualAdd.memory_passes() > MemOpKind::Gelu.memory_passes());
        assert!(MemOpKind::LayerNorm.memory_passes() >= 4.0);
    }

    #[test]
    fn bytes_account_for_precision() {
        let m = MemOpModel::default();
        let fp16 = m.bytes_moved(MemOpKind::Gelu, 1000, 2);
        let fp32 = m.bytes_moved(MemOpKind::Gelu, 1000, 4);
        assert_eq!(fp32, 2 * fp16);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn bad_efficiency_rejected() {
        let _ = MemOpModel::new(1.5);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(MemOpKind::LayerNorm.to_string(), "layernorm");
        assert_eq!(MemOpKind::Softmax.name(), "softmax");
    }
}
