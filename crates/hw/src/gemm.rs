//! Achievable-throughput model for matrix multiplication.
//!
//! GEMMs dominate Transformer compute (paper §3.3). Their *achieved* FLOPS
//! depend on shape: real BLAS libraries pick a tiled kernel per size, and
//! efficiency is lost to (a) partial edge tiles, (b) wave quantization
//! (the last wave of tiles under-fills the compute units), and (c) short
//! accumulation (K) dimensions that cannot amortize prologue/epilogue work.
//! The paper calls these effects out explicitly as the source of its ~15%
//! operator-model error ("GEMMs also use different kernel implementations
//! tuned per size which may prevent ideal linear/quadratic scaling").
//!
//! [`GemmModel`] reproduces those effects with a small kernel catalog plus a
//! roofline memory bound, so the rest of the workspace sees realistic,
//! shape-dependent GEMM times.

use crate::precision::Precision;
use crate::roofline::roofline_time;
use std::fmt;

/// Shape of a (possibly batched) GEMM: `C[b] = A[b] (m×k) · B[b] (k×n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmShape {
    /// Rows of the output.
    pub m: u64,
    /// Columns of the output.
    pub n: u64,
    /// Accumulation (inner) dimension.
    pub k: u64,
    /// Number of independent GEMMs in the batch.
    pub batch: u64,
}

impl GemmShape {
    /// An unbatched GEMM.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(m: u64, n: u64, k: u64) -> Self {
        Self::batched(m, n, k, 1)
    }

    /// A batched GEMM of `batch` independent problems.
    ///
    /// # Panics
    /// Panics if any dimension or the batch count is zero.
    #[must_use]
    pub fn batched(m: u64, n: u64, k: u64, batch: u64) -> Self {
        assert!(
            m > 0 && n > 0 && k > 0 && batch > 0,
            "GEMM dimensions must be non-zero (m={m}, n={n}, k={k}, batch={batch})"
        );
        Self { m, n, k, batch }
    }

    /// Total multiply-add operation count, `2·batch·m·n·k`.
    #[must_use]
    pub fn flops(&self) -> u64 {
        2 * self.batch * self.m * self.n * self.k
    }

    /// Elements touched in off-chip memory: both inputs and the output,
    /// counted once each (idealized perfect reuse within the kernel).
    #[must_use]
    pub fn elements_moved(&self) -> u64 {
        self.batch * (self.m * self.k + self.k * self.n + self.m * self.n)
    }

    /// Elements in the output matrix/matrices.
    #[must_use]
    pub fn output_elements(&self) -> u64 {
        self.batch * self.m * self.n
    }
}

impl fmt::Display for GemmShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.batch == 1 {
            write!(f, "gemm {}x{}x{}", self.m, self.n, self.k)
        } else {
            write!(f, "gemm {}x[{}x{}x{}]", self.batch, self.m, self.n, self.k)
        }
    }
}

/// One tiled kernel implementation in the catalog.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelSpec {
    /// Output-tile rows.
    pub tile_m: u64,
    /// Output-tile columns.
    pub tile_n: u64,
    /// Fraction of device peak this kernel reaches on an ideal shape
    /// (larger tiles reuse more data and run closer to peak).
    pub peak_fraction: f64,
}

/// Default kernel catalog, largest tiles first.
const CATALOG: [KernelSpec; 8] = [
    KernelSpec {
        tile_m: 256,
        tile_n: 256,
        peak_fraction: 0.95,
    },
    KernelSpec {
        tile_m: 256,
        tile_n: 128,
        peak_fraction: 0.93,
    },
    KernelSpec {
        tile_m: 128,
        tile_n: 128,
        peak_fraction: 0.90,
    },
    KernelSpec {
        tile_m: 128,
        tile_n: 64,
        peak_fraction: 0.85,
    },
    KernelSpec {
        tile_m: 64,
        tile_n: 64,
        peak_fraction: 0.78,
    },
    KernelSpec {
        tile_m: 64,
        tile_n: 32,
        peak_fraction: 0.68,
    },
    KernelSpec {
        tile_m: 32,
        tile_n: 32,
        peak_fraction: 0.55,
    },
    KernelSpec {
        tile_m: 16,
        tile_n: 16,
        peak_fraction: 0.35,
    },
];

/// Outcome of selecting a kernel for a shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelChoice {
    /// The selected kernel.
    pub kernel: KernelSpec,
    /// Fraction of device peak the kernel achieves on this shape
    /// (0, 1].
    pub efficiency: f64,
}

/// Shape-dependent GEMM performance model for one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GemmModel {
    /// Number of compute units (tiles execute one per CU per wave).
    cu_count: u64,
    /// K length at which the main loop reaches half of its asymptotic
    /// efficiency.
    k_half: f64,
    /// Fraction of peak memory bandwidth streaming kernels achieve.
    mem_efficiency: f64,
}

impl GemmModel {
    /// Create a model.
    ///
    /// # Panics
    /// Panics if `cu_count` is zero or the efficiencies are outside (0, 1].
    #[must_use]
    pub fn new(cu_count: u64, k_half: f64, mem_efficiency: f64) -> Self {
        assert!(cu_count > 0, "cu_count must be non-zero");
        assert!(k_half >= 0.0 && k_half.is_finite(), "k_half must be >= 0");
        assert!(
            mem_efficiency > 0.0 && mem_efficiency <= 1.0,
            "mem_efficiency must be in (0, 1]"
        );
        Self {
            cu_count,
            k_half,
            mem_efficiency,
        }
    }

    /// Pick the kernel that maximizes achieved throughput for `shape`.
    #[must_use]
    pub fn select_kernel(&self, shape: GemmShape) -> KernelChoice {
        let mut best = KernelChoice {
            kernel: CATALOG[CATALOG.len() - 1],
            efficiency: 0.0,
        };
        for kernel in CATALOG {
            let eff = self.kernel_efficiency(shape, kernel);
            if eff > best.efficiency {
                best = KernelChoice {
                    kernel,
                    efficiency: eff,
                };
            }
        }
        best
    }

    /// Efficiency (fraction of peak) of one specific kernel on `shape`.
    #[must_use]
    pub fn kernel_efficiency(&self, shape: GemmShape, kernel: KernelSpec) -> f64 {
        let tiles_m = shape.m.div_ceil(kernel.tile_m);
        let tiles_n = shape.n.div_ceil(kernel.tile_n);
        let tiles = tiles_m * tiles_n * shape.batch;

        // Edge waste: partial tiles still occupy a full tile's issue slots.
        let useful = (shape.m * shape.n) as f64;
        let issued = (tiles_m * kernel.tile_m * tiles_n * kernel.tile_n) as f64;
        let edge = useful / issued;

        // Wave quantization: the last wave may not fill every CU.
        let waves = tiles.div_ceil(self.cu_count);
        let quant = tiles as f64 / (waves * self.cu_count) as f64;

        // Short-K inefficiency: prologue/epilogue amortization.
        let k_eff = shape.k as f64 / (shape.k as f64 + self.k_half);

        kernel.peak_fraction * edge * quant * k_eff
    }

    /// Achieved throughput (FLOP/s) for `shape` at the given device peak.
    ///
    /// # Panics
    /// Panics if `peak_flops` is not strictly positive.
    #[must_use]
    pub fn achieved_flops(&self, shape: GemmShape, peak_flops: f64) -> f64 {
        assert!(peak_flops > 0.0, "peak_flops must be positive");
        peak_flops * self.select_kernel(shape).efficiency
    }

    /// Execution time (seconds) for `shape`, excluding launch overhead:
    /// the roofline max of math time at achieved FLOPS and data movement at
    /// effective memory bandwidth.
    ///
    /// # Panics
    /// Panics if `peak_flops` or `mem_bandwidth` are not strictly positive.
    #[must_use]
    pub fn kernel_time(
        &self,
        shape: GemmShape,
        precision: Precision,
        peak_flops: f64,
        mem_bandwidth: f64,
    ) -> f64 {
        let achieved = self.achieved_flops(shape, peak_flops);
        let bytes = shape.elements_moved() * precision.bytes();
        roofline_time(
            shape.flops(),
            bytes,
            achieved,
            mem_bandwidth * self.mem_efficiency,
        )
    }
}

impl Default for GemmModel {
    /// MI210-class defaults: 104 CUs, short-K half point of 160 elements,
    /// 85% streaming memory efficiency.
    fn default() -> Self {
        Self::new(104, 160.0, 0.85)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PEAK: f64 = 181e12; // MI210 fp16 matrix
    const MEM_BW: f64 = 1.6384e12;

    #[test]
    fn flops_formula() {
        let s = GemmShape::new(4, 5, 6);
        assert_eq!(s.flops(), 2 * 4 * 5 * 6);
        let b = GemmShape::batched(4, 5, 6, 3);
        assert_eq!(b.flops(), 3 * 2 * 4 * 5 * 6);
    }

    #[test]
    fn big_square_gemm_runs_near_peak() {
        let m = GemmModel::default();
        let s = GemmShape::new(8192, 8192, 8192);
        let eff = m.select_kernel(s).efficiency;
        assert!(
            eff > 0.80,
            "large GEMM efficiency {eff} should be near peak"
        );
    }

    #[test]
    fn small_gemm_is_inefficient() {
        let m = GemmModel::default();
        let small = m.select_kernel(GemmShape::new(64, 64, 64)).efficiency;
        let big = m.select_kernel(GemmShape::new(8192, 8192, 8192)).efficiency;
        assert!(
            small < big / 2.0,
            "small GEMM ({small}) should be far less efficient than big ({big})"
        );
    }

    #[test]
    fn short_k_hurts_efficiency() {
        let m = GemmModel::default();
        let skinny = m.select_kernel(GemmShape::new(8192, 8192, 64)).efficiency;
        let fat = m.select_kernel(GemmShape::new(8192, 8192, 8192)).efficiency;
        assert!(skinny < fat);
    }

    #[test]
    fn kernel_selection_prefers_big_tiles_for_big_shapes() {
        let m = GemmModel::default();
        let choice = m.select_kernel(GemmShape::new(16384, 16384, 4096));
        assert!(choice.kernel.tile_m >= 128);
        let choice_small = m.select_kernel(GemmShape::new(96, 96, 4096));
        assert!(choice_small.kernel.tile_m <= 64);
    }

    #[test]
    fn time_scales_roughly_linearly_in_m_for_large_shapes() {
        let m = GemmModel::default();
        let t1 = m.kernel_time(
            GemmShape::new(4096, 8192, 8192),
            Precision::Fp16,
            PEAK,
            MEM_BW,
        );
        let t2 = m.kernel_time(
            GemmShape::new(8192, 8192, 8192),
            Precision::Fp16,
            PEAK,
            MEM_BW,
        );
        let ratio = t2 / t1;
        assert!(
            (1.6..=2.4).contains(&ratio),
            "doubling M should ~double time, got ratio {ratio}"
        );
    }

    #[test]
    fn memory_bound_for_very_skinny_gemm() {
        // m=1: a GEMV. Arithmetic intensity ~1 flop/byte, heavily
        // memory-bound: time should match bytes / effective bandwidth.
        let m = GemmModel::default();
        let s = GemmShape::new(1, 4096, 4096);
        let t = m.kernel_time(s, Precision::Fp16, PEAK, MEM_BW);
        let mem_time = (s.elements_moved() * 2) as f64 / (MEM_BW * 0.85);
        assert!((t - mem_time).abs() / mem_time < 1e-9);
    }

    #[test]
    fn batching_improves_small_gemm_efficiency() {
        // Attention GEMMs are small per head but batched over B*heads.
        let m = GemmModel::default();
        let single = m.select_kernel(GemmShape::new(512, 512, 64)).efficiency;
        let batched = m
            .select_kernel(GemmShape::batched(512, 512, 64, 64))
            .efficiency;
        assert!(batched >= single);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dim_rejected() {
        let _ = GemmShape::new(0, 1, 1);
    }

    #[test]
    fn efficiency_bounded_by_one() {
        let m = GemmModel::default();
        for &(a, b, c) in &[
            (1u64, 1u64, 1u64),
            (100, 100, 100),
            (8192, 8192, 8192),
            (17, 333, 65),
        ] {
            let e = m.select_kernel(GemmShape::new(a, b, c)).efficiency;
            assert!(e > 0.0 && e <= 1.0, "efficiency {e} out of range");
        }
    }
}
