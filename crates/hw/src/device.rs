//! Accelerator descriptions and a catalog of published devices.
//!
//! [`DeviceSpec`] bundles everything the simulator and the operator models
//! need to cost a kernel on one device: peak math rates per precision,
//! memory capacity/bandwidth, launch overhead, the GEMM and mem-op models,
//! and the node network. Published devices relevant to the paper's hardware
//! trend analysis (§4.3.6) are provided as constructors; numbers are taken
//! from vendor datasheets.

use crate::gemm::{GemmModel, GemmShape};
use crate::memops::{MemOpKind, MemOpModel};
use crate::network::{LinkSpec, NetworkSpec, PinMode};
use crate::precision::{PeakFlops, Precision};

/// Gigabyte in bytes.
pub const GIB: u64 = 1 << 30;

/// A single accelerator (GPU) and its node-level network.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    name: String,
    year: u16,
    peak: PeakFlops,
    mem_capacity: u64,
    mem_bandwidth: f64,
    launch_overhead: f64,
    gemm_model: GemmModel,
    memop_model: MemOpModel,
    network: NetworkSpec,
    /// Hash of every cost-relevant field, maintained by the builder and
    /// the `with_*` setters; keys the global cost caches.
    fingerprint: u64,
}

impl DeviceSpec {
    /// Start building a custom device.
    #[must_use]
    pub fn builder(name: impl Into<String>) -> DeviceSpecBuilder {
        DeviceSpecBuilder::new(name)
    }

    /// Device (marketing) name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Launch year, used by the hardware-trend analysis.
    #[must_use]
    pub fn year(&self) -> u16 {
        self.year
    }

    /// Peak matrix throughput for `precision`, FLOP/s.
    #[must_use]
    pub fn peak_flops(&self, precision: Precision) -> f64 {
        self.peak.rate(precision)
    }

    /// HBM capacity in bytes.
    #[must_use]
    pub fn mem_capacity(&self) -> u64 {
        self.mem_capacity
    }

    /// Peak memory bandwidth, bytes/s.
    #[must_use]
    pub fn mem_bandwidth(&self) -> f64 {
        self.mem_bandwidth
    }

    /// Fixed kernel-launch overhead, seconds.
    #[must_use]
    pub fn launch_overhead(&self) -> f64 {
        self.launch_overhead
    }

    /// The GEMM performance model.
    #[must_use]
    pub fn gemm_model(&self) -> &GemmModel {
        &self.gemm_model
    }

    /// The bandwidth-bound operator model.
    #[must_use]
    pub fn memop_model(&self) -> &MemOpModel {
        &self.memop_model
    }

    /// The node network (links, all-reduce bandwidth, PIN mode).
    #[must_use]
    pub fn network(&self) -> &NetworkSpec {
        &self.network
    }

    /// A hash of every cost-relevant field. Two specs with the same
    /// fingerprint produce the same kernel and collective costs, so the
    /// global memo caches key on it (see [`crate::cache`]).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn compute_fingerprint(&self) -> u64 {
        // Debug formatting of f64 is the shortest round-trip
        // representation, so distinct parameter values always hash apart.
        let repr = format!(
            "{}|{}|{:?}|{}|{}|{}|{:?}|{:?}|{:?}",
            self.name,
            self.year,
            self.peak,
            self.mem_capacity,
            self.mem_bandwidth,
            self.launch_overhead,
            self.gemm_model,
            self.memop_model,
            self.network,
        );
        crate::cache::fnv1a(repr.as_bytes())
    }

    /// Total time (seconds) for one GEMM kernel including launch overhead.
    ///
    /// Memoized globally per (device fingerprint, shape, precision): the
    /// analysis sweeps re-price identical GEMMs thousands of times, and
    /// the kernel-catalog search is the single hottest pure function in
    /// the workspace.
    #[must_use]
    pub fn gemm_time(&self, shape: GemmShape, precision: Precision) -> f64 {
        let key = (
            self.fingerprint,
            shape.m,
            shape.n,
            shape.k,
            shape.batch,
            precision as u8,
        );
        crate::cache::GEMM_TIME.get_or_insert_with(key, || {
            self.launch_overhead
                + self.gemm_model.kernel_time(
                    shape,
                    precision,
                    self.peak_flops(precision),
                    self.mem_bandwidth,
                )
        })
    }

    /// Total time (seconds) for one bandwidth-bound kernel including launch
    /// overhead.
    #[must_use]
    pub fn memop_time(&self, kind: MemOpKind, elements: u64, precision: Precision) -> f64 {
        self.launch_overhead
            + self
                .memop_model
                .kernel_time(kind, elements, precision.bytes(), self.mem_bandwidth)
    }

    /// Replace the network description (e.g. to apply an inter-node
    /// slowdown or enable processing-in-network).
    #[must_use]
    pub fn with_network(mut self, network: NetworkSpec) -> Self {
        self.network = network;
        self.fingerprint = self.compute_fingerprint();
        self
    }

    /// Replace the peak math rates (used by hardware evolution).
    #[must_use]
    pub fn with_peak(mut self, peak: PeakFlops) -> Self {
        self.peak = peak;
        self.fingerprint = self.compute_fingerprint();
        self
    }

    /// Replace the memory capacity (used by hardware evolution).
    #[must_use]
    pub fn with_mem_capacity(mut self, bytes: u64) -> Self {
        self.mem_capacity = bytes;
        self.fingerprint = self.compute_fingerprint();
        self
    }

    /// Replace the memory bandwidth (used by hardware evolution).
    ///
    /// # Panics
    /// Panics if `bytes_per_sec` is not strictly positive.
    #[must_use]
    pub fn with_mem_bandwidth(mut self, bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "memory bandwidth must be positive");
        self.mem_bandwidth = bytes_per_sec;
        self.fingerprint = self.compute_fingerprint();
        self
    }

    /// Replace the device name.
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self.fingerprint = self.compute_fingerprint();
        self
    }

    // ------------------------------------------------------------------
    // Catalog. Peak rates are dense matrix throughput from datasheets.
    // ------------------------------------------------------------------

    /// AMD Instinct MI210 (2022) — the paper's testbed device. 64 GB HBM2e,
    /// 1.64 TB/s, fp16 matrix 181 TFLOP/s; Infinity Fabric links with
    /// 100 GB/s bidirectional bandwidth forming rings with ~150 GB/s peak
    /// ring-all-reduce bandwidth (paper §4.3.1).
    #[must_use]
    pub fn mi210() -> Self {
        Self::builder("AMD Instinct MI210")
            .year(2022)
            .peak(PeakFlops::new(
                22.6e12, 45.3e12, 181.0e12, 181.0e12, 362.0e12,
            ))
            .mem_capacity(64 * GIB)
            .mem_bandwidth(1.6384e12)
            .cu_count(104)
            .intra_link(50e9, 7e-6)
            .inter_link(25e9, 12e-6)
            .ring_allreduce_bandwidth(150e9)
            .build()
    }

    /// AMD Instinct MI50 (2018). fp16 26.5 TFLOP/s, 32 GB, 1.02 TB/s.
    #[must_use]
    pub fn mi50() -> Self {
        Self::builder("AMD Instinct MI50")
            .year(2018)
            .peak(PeakFlops::new(6.6e12, 13.3e12, 26.5e12, 26.5e12, 53.0e12))
            .mem_capacity(32 * GIB)
            .mem_bandwidth(1.024e12)
            .cu_count(60)
            .intra_link(25e9, 8e-6)
            .inter_link(12.5e9, 15e-6)
            .ring_allreduce_bandwidth(46e9)
            .build()
    }

    /// AMD Instinct MI100 (2020). fp16 matrix 184.6 TFLOP/s, 32 GB,
    /// 1.23 TB/s. Compared with MI50: ~7× compute, ~1.7× bandwidth — one of
    /// the paper's two historical *flop-vs.-bw* data points.
    #[must_use]
    pub fn mi100() -> Self {
        Self::builder("AMD Instinct MI100")
            .year(2020)
            .peak(PeakFlops::new(
                11.5e12, 23.1e12, 184.6e12, 92.3e12, 369.2e12,
            ))
            .mem_capacity(32 * GIB)
            .mem_bandwidth(1.2288e12)
            .cu_count(120)
            .intra_link(42.5e9, 7e-6)
            .inter_link(20e9, 14e-6)
            .ring_allreduce_bandwidth(78e9)
            .build()
    }

    /// AMD Instinct MI250X (2021). fp16 matrix 383 TFLOP/s, 128 GB,
    /// 3.28 TB/s.
    #[must_use]
    pub fn mi250x() -> Self {
        Self::builder("AMD Instinct MI250X")
            .year(2021)
            .peak(PeakFlops::new(
                95.7e12, 95.7e12, 383.0e12, 383.0e12, 766.0e12,
            ))
            .mem_capacity(128 * GIB)
            .mem_bandwidth(3.2768e12)
            .cu_count(220)
            .intra_link(100e9, 7e-6)
            .inter_link(25e9, 12e-6)
            .ring_allreduce_bandwidth(300e9)
            .build()
    }

    /// NVIDIA V100 SXM2 (2018-era). fp16 tensor 125 TFLOP/s, 32 GB,
    /// 0.9 TB/s, NVLink2 300 GB/s aggregate.
    #[must_use]
    pub fn v100() -> Self {
        Self::builder("NVIDIA V100")
            .year(2018)
            .peak(PeakFlops::new(
                7.8e12, 15.7e12, 125.0e12, 125.0e12, 250.0e12,
            ))
            .mem_capacity(32 * GIB)
            .mem_bandwidth(0.9e12)
            .cu_count(80)
            .intra_link(150e9, 6e-6)
            .inter_link(12.5e9, 15e-6)
            .ring_allreduce_bandwidth(130e9)
            .build()
    }

    /// NVIDIA A100 SXM (2020). fp16 tensor 312 TFLOP/s dense (624 sparse —
    /// the paper's ~5× compute vs. V100 uses sparse rates), 80 GB, 2.04
    /// TB/s, NVLink3 600 GB/s. Paired with V100: ~5× compute, ~2× bandwidth.
    #[must_use]
    pub fn a100() -> Self {
        Self::builder("NVIDIA A100")
            .year(2020)
            .peak(PeakFlops::new(
                19.5e12, 19.5e12, 624.0e12, 624.0e12, 1248.0e12,
            ))
            .mem_capacity(80 * GIB)
            .mem_bandwidth(2.039e12)
            .cu_count(108)
            .intra_link(300e9, 6e-6)
            .inter_link(25e9, 12e-6)
            .ring_allreduce_bandwidth(260e9)
            .build()
    }

    /// NVIDIA H100 SXM-class (2022). fp16 tensor 989 TFLOP/s dense, fp8
    /// 1979 TFLOP/s, 80 GB, 3.35 TB/s, NVLink4 900 GB/s.
    #[must_use]
    pub fn h100() -> Self {
        Self::builder("NVIDIA H100")
            .year(2022)
            .peak(PeakFlops::new(
                67.0e12, 67.0e12, 989.0e12, 989.0e12, 1979.0e12,
            ))
            .mem_capacity(80 * GIB)
            .mem_bandwidth(3.35e12)
            .cu_count(132)
            .intra_link(450e9, 5e-6)
            .inter_link(50e9, 10e-6)
            .ring_allreduce_bandwidth(390e9)
            .build()
    }

    /// All catalog devices, oldest first.
    #[must_use]
    pub fn catalog() -> Vec<DeviceSpec> {
        let mut v = vec![
            Self::mi50(),
            Self::v100(),
            Self::mi100(),
            Self::a100(),
            Self::mi250x(),
            Self::mi210(),
            Self::h100(),
        ];
        v.sort_by_key(|d| (d.year(), d.name().to_owned()));
        v
    }
}

/// Builder for [`DeviceSpec`]; see [`DeviceSpec::builder`].
#[derive(Debug, Clone)]
pub struct DeviceSpecBuilder {
    name: String,
    year: u16,
    peak: PeakFlops,
    mem_capacity: u64,
    mem_bandwidth: f64,
    launch_overhead: f64,
    cu_count: u64,
    k_half: f64,
    gemm_mem_efficiency: f64,
    memop_efficiency: f64,
    intra_link: LinkSpec,
    inter_link: LinkSpec,
    ring_allreduce_bandwidth: f64,
    pin_mode: PinMode,
}

impl DeviceSpecBuilder {
    fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            year: 2022,
            peak: PeakFlops::from_fp32_matrix(45e12),
            mem_capacity: 64 * GIB,
            mem_bandwidth: 1.6e12,
            launch_overhead: 8e-6,
            cu_count: 104,
            k_half: 160.0,
            gemm_mem_efficiency: 0.85,
            memop_efficiency: 0.8,
            intra_link: LinkSpec::new(50e9, 7e-6, 4.0 * 1024.0 * 1024.0)
                .expect("default intra link is valid"),
            inter_link: LinkSpec::new(25e9, 12e-6, 8.0 * 1024.0 * 1024.0)
                .expect("default inter link is valid"),
            ring_allreduce_bandwidth: 150e9,
            pin_mode: PinMode::None,
        }
    }

    /// Launch year.
    #[must_use]
    pub fn year(mut self, year: u16) -> Self {
        self.year = year;
        self
    }

    /// Peak math rates.
    #[must_use]
    pub fn peak(mut self, peak: PeakFlops) -> Self {
        self.peak = peak;
        self
    }

    /// HBM capacity, bytes.
    #[must_use]
    pub fn mem_capacity(mut self, bytes: u64) -> Self {
        self.mem_capacity = bytes;
        self
    }

    /// Memory bandwidth, bytes/s.
    #[must_use]
    pub fn mem_bandwidth(mut self, bytes_per_sec: f64) -> Self {
        self.mem_bandwidth = bytes_per_sec;
        self
    }

    /// Kernel launch overhead, seconds.
    #[must_use]
    pub fn launch_overhead(mut self, seconds: f64) -> Self {
        self.launch_overhead = seconds;
        self
    }

    /// Compute-unit count (GEMM wave quantization granularity).
    #[must_use]
    pub fn cu_count(mut self, count: u64) -> Self {
        self.cu_count = count;
        self
    }

    /// Short-K half-saturation length for the GEMM model.
    #[must_use]
    pub fn k_half(mut self, k_half: f64) -> Self {
        self.k_half = k_half;
        self
    }

    /// Intra-node link: per-direction bandwidth (B/s) and latency (s).
    /// Uses a 4 MiB half-saturation ramp.
    #[must_use]
    pub fn intra_link(mut self, bandwidth: f64, latency: f64) -> Self {
        self.intra_link = LinkSpec::new(bandwidth, latency, 4.0 * 1024.0 * 1024.0)
            .expect("intra link parameters must be valid");
        self
    }

    /// Inter-node link: per-direction bandwidth (B/s) and latency (s).
    /// Uses an 8 MiB half-saturation ramp.
    #[must_use]
    pub fn inter_link(mut self, bandwidth: f64, latency: f64) -> Self {
        self.inter_link = LinkSpec::new(bandwidth, latency, 8.0 * 1024.0 * 1024.0)
            .expect("inter link parameters must be valid");
        self
    }

    /// Peak algorithmic ring all-reduce bandwidth inside a node, B/s.
    #[must_use]
    pub fn ring_allreduce_bandwidth(mut self, bytes_per_sec: f64) -> Self {
        self.ring_allreduce_bandwidth = bytes_per_sec;
        self
    }

    /// Processing-in-network mode.
    #[must_use]
    pub fn pin_mode(mut self, pin_mode: PinMode) -> Self {
        self.pin_mode = pin_mode;
        self
    }

    /// Finish building.
    ///
    /// # Panics
    /// Panics if any numeric parameter is out of range (delegated to the
    /// component model constructors).
    #[must_use]
    pub fn build(self) -> DeviceSpec {
        assert!(self.mem_capacity > 0, "memory capacity must be non-zero");
        assert!(
            self.mem_bandwidth > 0.0,
            "memory bandwidth must be positive"
        );
        assert!(
            self.launch_overhead >= 0.0 && self.launch_overhead.is_finite(),
            "launch overhead must be non-negative"
        );
        let network = NetworkSpec::new(
            self.intra_link,
            self.inter_link,
            self.ring_allreduce_bandwidth,
            self.pin_mode,
        )
        .expect("network parameters must be valid");
        let mut spec = DeviceSpec {
            name: self.name,
            year: self.year,
            peak: self.peak,
            mem_capacity: self.mem_capacity,
            mem_bandwidth: self.mem_bandwidth,
            launch_overhead: self.launch_overhead,
            gemm_model: GemmModel::new(self.cu_count, self.k_half, self.gemm_mem_efficiency),
            memop_model: MemOpModel::new(self.memop_efficiency),
            network,
            fingerprint: 0,
        };
        spec.fingerprint = spec.compute_fingerprint();
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mi210_matches_datasheet_headlines() {
        let d = DeviceSpec::mi210();
        assert_eq!(d.peak_flops(Precision::Fp16), 181.0e12);
        assert_eq!(d.mem_capacity(), 64 * GIB);
        assert_eq!(d.year(), 2022);
        assert_eq!(d.network().ring_allreduce_bandwidth(), 150e9);
    }

    #[test]
    fn fp16_is_4x_fp32_on_mi210() {
        // §6.2: "FP16 throughput for the MI210 GPUs we study is about 4×
        // that for FP32".
        let d = DeviceSpec::mi210();
        let ratio = d.peak_flops(Precision::Fp16) / d.peak_flops(Precision::Fp32);
        assert!((ratio - 4.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn catalog_is_sorted_by_year() {
        let cat = DeviceSpec::catalog();
        assert!(cat.len() >= 6);
        for w in cat.windows(2) {
            assert!(w[0].year() <= w[1].year());
        }
    }

    #[test]
    fn historical_flop_vs_bw_ratios_hold() {
        // §4.3.6: 2018→2020 compute scaled ~5× (NVIDIA) and ~7× (AMD) while
        // network bandwidth scaled ~2× and ~1.7×.
        let flop = |a: &DeviceSpec, b: &DeviceSpec| {
            b.peak_flops(Precision::Fp16) / a.peak_flops(Precision::Fp16)
        };
        let bw = |a: &DeviceSpec, b: &DeviceSpec| {
            b.network().intra_node().bandwidth() / a.network().intra_node().bandwidth()
        };
        let (v, a) = (DeviceSpec::v100(), DeviceSpec::a100());
        assert!(
            (4.5..=5.5).contains(&flop(&v, &a)),
            "nvidia flops {}",
            flop(&v, &a)
        );
        assert!(
            (1.8..=2.2).contains(&bw(&v, &a)),
            "nvidia bw {}",
            bw(&v, &a)
        );
        let (m5, m1) = (DeviceSpec::mi50(), DeviceSpec::mi100());
        assert!(
            (6.5..=7.5).contains(&flop(&m5, &m1)),
            "amd flops {}",
            flop(&m5, &m1)
        );
        assert!(
            (1.5..=1.9).contains(&bw(&m5, &m1)),
            "amd bw {}",
            bw(&m5, &m1)
        );
    }

    #[test]
    fn gemm_time_includes_launch_overhead() {
        let d = DeviceSpec::mi210();
        let t = d.gemm_time(GemmShape::new(16, 16, 16), Precision::Fp16);
        assert!(t >= d.launch_overhead());
    }

    #[test]
    fn memop_time_positive_and_linear() {
        let d = DeviceSpec::mi210();
        let base = d.memop_time(MemOpKind::LayerNorm, 1 << 24, Precision::Fp16);
        let double = d.memop_time(MemOpKind::LayerNorm, 1 << 25, Precision::Fp16);
        // Linear up to launch overhead.
        let marginal = double - base;
        let expected = base - d.launch_overhead();
        assert!((marginal / expected - 1.0).abs() < 1e-6);
    }

    #[test]
    fn builder_customization_round_trips() {
        let d = DeviceSpec::builder("TestChip")
            .year(2030)
            .mem_capacity(256 * GIB)
            .mem_bandwidth(10e12)
            .build();
        assert_eq!(d.name(), "TestChip");
        assert_eq!(d.year(), 2030);
        assert_eq!(d.mem_capacity(), 256 * GIB);
    }

    #[test]
    fn memory_capacity_trend_grows_over_years() {
        // Fig. 6's device line: capacity grows roughly linearly with year.
        let cat = DeviceSpec::catalog();
        let first = cat.first().unwrap();
        let last = cat.last().unwrap();
        assert!(last.mem_capacity() >= first.mem_capacity());
    }
}
