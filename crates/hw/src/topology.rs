//! Interconnect topologies.
//!
//! A [`Topology`] answers two questions for the rest of the workspace:
//! which devices exist, and what link quality connects any ordered pair.
//! Hierarchical (multi-node) topologies route through slower inter-node
//! links, which matters for the paper's §4.3.7 discussion of DP
//! communication spilling onto inter-node fabrics.

use crate::error::HwError;
use crate::network::LinkSpec;

/// How a set of devices is wired together.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Topology {
    /// Every device pair is directly connected by `link` (the paper's
    /// 4-GPU MI210 node).
    FullyConnected {
        /// Number of devices.
        devices: usize,
        /// The direct link between any pair.
        link: LinkSpec,
    },
    /// Devices form a ring; neighbours are connected by `link`.
    Ring {
        /// Number of devices.
        devices: usize,
        /// The link between ring neighbours.
        link: LinkSpec,
    },
    /// All devices hang off a central switch; each traversal crosses two
    /// `link` hops (in, out).
    Switched {
        /// Number of devices.
        devices: usize,
        /// The device-to-switch link.
        link: LinkSpec,
    },
    /// Nodes of `node_size` fully connected devices internally; nodes are
    /// connected by `inter` links.
    Hierarchical {
        /// Number of nodes.
        nodes: usize,
        /// Devices per node.
        node_size: usize,
        /// Link inside a node.
        intra: LinkSpec,
        /// Link between nodes.
        inter: LinkSpec,
    },
}

/// The effective path between two devices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkPath {
    /// Bottleneck link on the path.
    pub link: LinkSpec,
    /// Number of hops (1 for direct links).
    pub hops: usize,
}

impl LinkPath {
    /// Time to move `bytes` along this path: the bottleneck link's transfer
    /// time plus per-extra-hop latency.
    #[must_use]
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.link.transfer_time(bytes) + (self.hops.saturating_sub(1)) as f64 * self.link.latency()
    }
}

impl Topology {
    /// Number of devices in the topology.
    #[must_use]
    pub fn devices(&self) -> usize {
        match *self {
            Topology::FullyConnected { devices, .. }
            | Topology::Ring { devices, .. }
            | Topology::Switched { devices, .. } => devices,
            Topology::Hierarchical {
                nodes, node_size, ..
            } => nodes * node_size,
        }
    }

    /// The path between devices `a` and `b`.
    ///
    /// # Errors
    /// Returns [`HwError::UnknownDevice`] if either index is out of range,
    /// and [`HwError::InvalidParameter`] if `a == b` (no self-links).
    pub fn path(&self, a: usize, b: usize) -> Result<LinkPath, HwError> {
        let n = self.devices();
        for d in [a, b] {
            if d >= n {
                return Err(HwError::UnknownDevice {
                    device: d,
                    count: n,
                });
            }
        }
        if a == b {
            return Err(HwError::invalid("device pair", "no self-links (a == b)"));
        }
        Ok(match *self {
            Topology::FullyConnected { link, .. } => LinkPath { link, hops: 1 },
            Topology::Ring { devices, link } => {
                let dist = ring_distance(a, b, devices);
                LinkPath { link, hops: dist }
            }
            Topology::Switched { link, .. } => LinkPath { link, hops: 2 },
            Topology::Hierarchical {
                node_size,
                intra,
                inter,
                ..
            } => {
                if a / node_size == b / node_size {
                    LinkPath {
                        link: intra,
                        hops: 1,
                    }
                } else {
                    // intra hop to NIC, inter hop, intra hop; bottleneck is
                    // the inter link.
                    LinkPath {
                        link: inter,
                        hops: 3,
                    }
                }
            }
        })
    }

    /// Whether devices `a` and `b` are in the same node (always true for
    /// single-node topologies).
    ///
    /// # Errors
    /// Returns [`HwError::UnknownDevice`] if either index is out of range.
    pub fn same_node(&self, a: usize, b: usize) -> Result<bool, HwError> {
        let n = self.devices();
        for d in [a, b] {
            if d >= n {
                return Err(HwError::UnknownDevice {
                    device: d,
                    count: n,
                });
            }
        }
        Ok(match *self {
            Topology::Hierarchical { node_size, .. } => a / node_size == b / node_size,
            _ => true,
        })
    }

    /// The minimum-quality (bottleneck) link used by a ring traversal of
    /// all devices — what a ring all-reduce is limited by.
    #[must_use]
    pub fn ring_bottleneck(&self) -> LinkSpec {
        match *self {
            Topology::FullyConnected { link, .. }
            | Topology::Ring { link, .. }
            | Topology::Switched { link, .. } => link,
            Topology::Hierarchical {
                nodes,
                intra,
                inter,
                ..
            } => {
                if nodes > 1 {
                    inter
                } else {
                    intra
                }
            }
        }
    }
}

fn ring_distance(a: usize, b: usize, n: usize) -> usize {
    let d = a.abs_diff(b);
    d.min(n - d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(bw: f64) -> LinkSpec {
        LinkSpec::new(bw, 5e-6, 1024.0 * 1024.0).unwrap()
    }

    #[test]
    fn fully_connected_is_one_hop() {
        let t = Topology::FullyConnected {
            devices: 4,
            link: link(50e9),
        };
        let p = t.path(0, 3).unwrap();
        assert_eq!(p.hops, 1);
        assert_eq!(t.devices(), 4);
    }

    #[test]
    fn ring_distance_wraps() {
        let t = Topology::Ring {
            devices: 8,
            link: link(50e9),
        };
        assert_eq!(t.path(0, 1).unwrap().hops, 1);
        assert_eq!(t.path(0, 7).unwrap().hops, 1);
        assert_eq!(t.path(0, 4).unwrap().hops, 4);
    }

    #[test]
    fn hierarchical_routes_through_inter_link() {
        let t = Topology::Hierarchical {
            nodes: 2,
            node_size: 4,
            intra: link(50e9),
            inter: link(12.5e9),
        };
        assert_eq!(t.devices(), 8);
        let same = t.path(0, 3).unwrap();
        let cross = t.path(0, 4).unwrap();
        assert_eq!(same.link.bandwidth(), 50e9);
        assert_eq!(cross.link.bandwidth(), 12.5e9);
        assert!(cross.hops > same.hops);
        assert!(t.same_node(0, 3).unwrap());
        assert!(!t.same_node(0, 4).unwrap());
    }

    #[test]
    fn cross_node_transfer_slower_than_intra() {
        let t = Topology::Hierarchical {
            nodes: 2,
            node_size: 4,
            intra: link(50e9),
            inter: link(12.5e9),
        };
        let bytes = 64 * 1024 * 1024;
        let ti = t.path(0, 1).unwrap().transfer_time(bytes);
        let tx = t.path(0, 4).unwrap().transfer_time(bytes);
        assert!(tx > 3.0 * ti);
    }

    #[test]
    fn out_of_range_device_is_error() {
        let t = Topology::FullyConnected {
            devices: 4,
            link: link(50e9),
        };
        assert!(matches!(t.path(0, 4), Err(HwError::UnknownDevice { .. })));
        assert!(t.path(1, 1).is_err());
    }

    #[test]
    fn ring_bottleneck_is_inter_for_multinode() {
        let t = Topology::Hierarchical {
            nodes: 4,
            node_size: 4,
            intra: link(50e9),
            inter: link(12.5e9),
        };
        assert_eq!(t.ring_bottleneck().bandwidth(), 12.5e9);
    }

    #[test]
    fn switched_is_two_hops() {
        let t = Topology::Switched {
            devices: 16,
            link: link(25e9),
        };
        assert_eq!(t.path(3, 9).unwrap().hops, 2);
    }
}
