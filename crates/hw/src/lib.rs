//! # twocs-hw — parametric accelerator and interconnect models
//!
//! This crate is the hardware substrate of the `twocs` workspace. It models
//! the *first-order* performance behaviour of ML accelerators (GPUs) and the
//! links that connect them:
//!
//! * [`DeviceSpec`] — peak math throughput per [`Precision`], memory capacity
//!   and bandwidth, kernel-launch overhead, and the attached [`LinkSpec`].
//!   A catalog of published accelerators (MI50 → MI250X, V100 → H100-class)
//!   is available via constructors such as [`DeviceSpec::mi210`].
//! * [`gemm`] — an achievable-throughput model for matrix multiplication
//!   built around a small kernel catalog (tile sizes, wave quantization,
//!   short-K inefficiency), combined with a roofline bound.
//! * [`memops`] — bandwidth-bound operator costs (LayerNorm, GeLU, softmax,
//!   residual adds, dropout, …).
//! * [`network`] — latency + size-dependent effective bandwidth for links,
//!   and node-level network properties (ring all-reduce bandwidth,
//!   processing-in-network modes).
//! * [`topology`] — how devices are wired: fully connected, ring, switched,
//!   or hierarchical multi-node.
//! * [`evolution`] — "future hardware" scaling knobs, most importantly the
//!   paper's *flop-vs.-bw* ratio (compute FLOPS scaling faster than network
//!   bandwidth).
//!
//! All times in this crate are `f64` **seconds**; all sizes are **bytes**;
//! all rates are **per second** (FLOP/s, B/s). The discrete-event simulator
//! (`twocs-sim`) converts to integer picoseconds at its boundary.
//!
//! ## Example
//!
//! ```
//! use twocs_hw::{DeviceSpec, Precision, gemm::GemmShape};
//!
//! let dev = DeviceSpec::mi210();
//! let shape = GemmShape::new(4096, 4096, 4096);
//! let t = dev.gemm_time(shape, Precision::Fp16);
//! assert!(t > 0.0 && t < 1.0);
//! // A big square GEMM should run near peak.
//! let eff = shape.flops() as f64 / t / dev.peak_flops(Precision::Fp16);
//! assert!(eff > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod device;
pub mod error;
pub mod evolution;
pub mod gemm;
pub mod memops;
pub mod network;
pub mod precision;
pub mod roofline;
pub mod topology;

pub use cache::{CacheStats, MemoCache};
pub use device::DeviceSpec;
pub use error::HwError;
pub use evolution::HwEvolution;
pub use network::{LinkSpec, PinMode};
pub use precision::Precision;
pub use topology::Topology;
