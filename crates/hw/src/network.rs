//! Link and node-network models.
//!
//! The central empirical effect this module captures (paper §4.3.5) is that
//! *small messages do not saturate link bandwidth*: effective bandwidth ramps
//! up with message size and only approaches the peak for large transfers.
//! This is why, in the paper's Figure 11, smaller hidden sizes (smaller
//! gradients) see disproportionately expensive communication.
//!
//! The ramp is modelled with a half-saturation constant: a message of
//! `ramp_bytes` achieves half the peak bandwidth,
//! `eff_bw(s) = peak * s / (s + ramp_bytes)`.

use crate::error::HwError;
use std::fmt;

/// A point-to-point link between two devices (one direction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Peak bandwidth in bytes/second (per direction).
    bandwidth: f64,
    /// Fixed per-message latency in seconds (software + wire).
    latency: f64,
    /// Message size (bytes) at which effective bandwidth reaches half of
    /// peak. Smaller values mean the link saturates with smaller messages.
    ramp_bytes: f64,
}

impl LinkSpec {
    /// Create a link model.
    ///
    /// # Errors
    /// Returns [`HwError::InvalidParameter`] if `bandwidth` is not positive,
    /// or `latency`/`ramp_bytes` are negative or non-finite.
    pub fn new(bandwidth: f64, latency: f64, ramp_bytes: f64) -> Result<Self, HwError> {
        if !(bandwidth.is_finite() && bandwidth > 0.0) {
            return Err(HwError::invalid("bandwidth", "must be positive and finite"));
        }
        if !(latency.is_finite() && latency >= 0.0) {
            return Err(HwError::invalid(
                "latency",
                "must be non-negative and finite",
            ));
        }
        if !(ramp_bytes.is_finite() && ramp_bytes >= 0.0) {
            return Err(HwError::invalid(
                "ramp_bytes",
                "must be non-negative and finite",
            ));
        }
        Ok(Self {
            bandwidth,
            latency,
            ramp_bytes,
        })
    }

    /// Peak bandwidth, bytes/second.
    #[must_use]
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Fixed per-message latency, seconds.
    #[must_use]
    pub fn latency(&self) -> f64 {
        self.latency
    }

    /// Half-saturation message size, bytes.
    #[must_use]
    pub fn ramp_bytes(&self) -> f64 {
        self.ramp_bytes
    }

    /// Effective bandwidth (bytes/s) achieved by a message of `bytes`.
    ///
    /// Monotonically increasing in `bytes` and bounded by
    /// [`LinkSpec::bandwidth`].
    #[must_use]
    pub fn effective_bandwidth(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        let s = bytes as f64;
        self.bandwidth * s / (s + self.ramp_bytes)
    }

    /// Time (seconds) to move a message of `bytes` across this link:
    /// latency plus size over effective bandwidth.
    #[must_use]
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return self.latency;
        }
        self.latency + bytes as f64 / self.effective_bandwidth(bytes)
    }

    /// A copy with bandwidth multiplied by `factor` (latency and ramp
    /// unchanged).
    ///
    /// # Panics
    /// Panics if `factor` is not strictly positive and finite.
    #[must_use]
    pub fn scaled_bandwidth(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "bandwidth scale factor must be positive, got {factor}"
        );
        Self {
            bandwidth: self.bandwidth * factor,
            latency: self.latency,
            ramp_bytes: self.ramp_bytes,
        }
    }
}

impl fmt::Display for LinkSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} GB/s link ({:.1} us latency)",
            self.bandwidth / 1e9,
            self.latency * 1e6
        )
    }
}

/// Where collective reductions are executed (paper §5, *Technique 2*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PinMode {
    /// Conventional: accelerators run the reduction themselves; a ring
    /// all-reduce moves `2 (N-1)/N` of the data per device.
    #[default]
    None,
    /// Processing-in-network: the switch reduces in flight; devices only
    /// push data out once and receive the result, halving traffic
    /// (~2× effective all-reduce bandwidth).
    InSwitch,
}

impl PinMode {
    /// Multiplier applied to effective all-reduce bandwidth.
    #[must_use]
    pub fn bandwidth_multiplier(self) -> f64 {
        match self {
            PinMode::None => 1.0,
            PinMode::InSwitch => 2.0,
        }
    }
}

/// Network characteristics of a node or cluster as seen by collectives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkSpec {
    /// Link between devices inside a node.
    intra_node: LinkSpec,
    /// Link between nodes (slower, e.g. InfiniBand vs. Infinity Fabric).
    inter_node: LinkSpec,
    /// Peak *algorithmic* all-reduce bandwidth inside a node, i.e.
    /// `payload_bytes / time` for a large all-reduce. The MI210 node in the
    /// paper reports 150 GB/s across its multiple intra-node rings.
    ring_allreduce_bandwidth: f64,
    /// Where reductions execute.
    pin_mode: PinMode,
}

impl NetworkSpec {
    /// Create a network description.
    ///
    /// # Errors
    /// Returns [`HwError::InvalidParameter`] if the ring all-reduce
    /// bandwidth is not positive.
    pub fn new(
        intra_node: LinkSpec,
        inter_node: LinkSpec,
        ring_allreduce_bandwidth: f64,
        pin_mode: PinMode,
    ) -> Result<Self, HwError> {
        if !(ring_allreduce_bandwidth.is_finite() && ring_allreduce_bandwidth > 0.0) {
            return Err(HwError::invalid(
                "ring_allreduce_bandwidth",
                "must be positive and finite",
            ));
        }
        Ok(Self {
            intra_node,
            inter_node,
            ring_allreduce_bandwidth,
            pin_mode,
        })
    }

    /// Link between devices inside one node.
    #[must_use]
    pub fn intra_node(&self) -> LinkSpec {
        self.intra_node
    }

    /// Link between nodes.
    #[must_use]
    pub fn inter_node(&self) -> LinkSpec {
        self.inter_node
    }

    /// Peak algorithmic all-reduce bandwidth (bytes/s) inside a node,
    /// after applying the [`PinMode`] multiplier.
    #[must_use]
    pub fn ring_allreduce_bandwidth(&self) -> f64 {
        self.ring_allreduce_bandwidth * self.pin_mode.bandwidth_multiplier()
    }

    /// The processing-in-network mode.
    #[must_use]
    pub fn pin_mode(&self) -> PinMode {
        self.pin_mode
    }

    /// A copy with a different [`PinMode`].
    #[must_use]
    pub fn with_pin_mode(mut self, pin_mode: PinMode) -> Self {
        self.pin_mode = pin_mode;
        self
    }

    /// A copy with all bandwidths (links and ring) multiplied by `factor`.
    ///
    /// # Panics
    /// Panics if `factor` is not strictly positive and finite.
    #[must_use]
    pub fn scaled_bandwidth(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "bandwidth scale factor must be positive, got {factor}"
        );
        Self {
            intra_node: self.intra_node.scaled_bandwidth(factor),
            inter_node: self.inter_node.scaled_bandwidth(factor),
            ring_allreduce_bandwidth: self.ring_allreduce_bandwidth * factor,
            pin_mode: self.pin_mode,
        }
    }

    /// A copy with the inter-node link bandwidth *divided* by `slowdown`,
    /// used for the paper's §4.3.7 case study (≈8× slower inter-node links).
    ///
    /// # Panics
    /// Panics if `slowdown` is not ≥ 1 and finite.
    #[must_use]
    pub fn with_inter_node_slowdown(&self, slowdown: f64) -> Self {
        assert!(
            slowdown.is_finite() && slowdown >= 1.0,
            "inter-node slowdown must be >= 1, got {slowdown}"
        );
        Self {
            inter_node: self.inter_node.scaled_bandwidth(1.0 / slowdown),
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> LinkSpec {
        LinkSpec::new(100e9, 5e-6, 4.0 * 1024.0 * 1024.0).unwrap()
    }

    #[test]
    fn effective_bandwidth_ramps_and_saturates() {
        let l = link();
        let small = l.effective_bandwidth(64 * 1024);
        let mid = l.effective_bandwidth(4 * 1024 * 1024);
        let big = l.effective_bandwidth(1024 * 1024 * 1024);
        assert!(small < mid && mid < big);
        assert!((mid - 50e9).abs() < 1e9, "half saturation at ramp size");
        assert!(big > 0.95 * l.bandwidth());
        assert!(big <= l.bandwidth());
    }

    #[test]
    fn transfer_time_includes_latency() {
        let l = link();
        assert!((l.transfer_time(0) - 5e-6).abs() < 1e-12);
        let t = l.transfer_time(1024 * 1024 * 1024);
        // ~1 GiB at near-100 GB/s -> a bit over 10 ms.
        assert!(t > 0.010 && t < 0.013, "got {t}");
    }

    #[test]
    fn transfer_time_is_monotone_in_size() {
        let l = link();
        let mut prev = 0.0;
        for s in [1u64, 1 << 10, 1 << 16, 1 << 20, 1 << 26, 1 << 30] {
            let t = l.transfer_time(s);
            assert!(t > prev, "time must grow with size");
            prev = t;
        }
    }

    #[test]
    fn scaled_bandwidth_speeds_up_large_transfers() {
        let l = link();
        let fast = l.scaled_bandwidth(2.0);
        let s = 1u64 << 30;
        assert!(fast.transfer_time(s) < l.transfer_time(s));
    }

    #[test]
    fn pin_doubles_allreduce_bandwidth() {
        let net = NetworkSpec::new(link(), link(), 150e9, PinMode::None).unwrap();
        assert_eq!(net.ring_allreduce_bandwidth(), 150e9);
        let pin = net.with_pin_mode(PinMode::InSwitch);
        assert_eq!(pin.ring_allreduce_bandwidth(), 300e9);
    }

    #[test]
    fn inter_node_slowdown_only_affects_inter_link() {
        let net = NetworkSpec::new(link(), link(), 150e9, PinMode::None).unwrap();
        let slow = net.with_inter_node_slowdown(8.0);
        assert_eq!(slow.intra_node().bandwidth(), 100e9);
        assert!((slow.inter_node().bandwidth() - 12.5e9).abs() < 1.0);
    }

    #[test]
    fn invalid_link_rejected() {
        assert!(LinkSpec::new(0.0, 1e-6, 1.0).is_err());
        assert!(LinkSpec::new(1e9, -1.0, 1.0).is_err());
        assert!(LinkSpec::new(1e9, 1e-6, f64::NAN).is_err());
    }
}
