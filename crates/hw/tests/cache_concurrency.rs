//! Property test for the sharded memo cache: hammer one cache from N
//! threads with overlapping random key sets and check the accounting
//! invariants the sweep summaries rely on:
//!
//! - every lookup is counted exactly once (`hits + misses == lookups`),
//! - in-flight dedupe means every distinct key is computed exactly once
//!   (`misses == distinct keys == compute-fn invocations`),
//! - `CacheStats::entries` is exact (one resident entry per distinct key),
//! - every thread observes the canonical value for every key.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

use twocs_hw::MemoCache;
use twocs_testkit::cases;

#[test]
fn sharded_cache_accounting_is_exact_under_contention() {
    cases(24, |rng| {
        let threads = rng.usize_in(2..9);
        let key_space = rng.u64_in(1..65);
        let lookups_per_thread = rng.usize_in(10..200);
        // One invocation counter per possible key, indexed directly.
        let invocations: Vec<AtomicU64> = (0..key_space).map(|_| AtomicU64::new(0)).collect();
        let cache: MemoCache<u64, u64> = MemoCache::new();
        let barrier = Barrier::new(threads);

        // Pre-draw each thread's key sequence so the property is
        // deterministic per seed (thread interleaving varies, the
        // invariants must not).
        let sequences: Vec<Vec<u64>> = (0..threads)
            .map(|_| {
                (0..lookups_per_thread)
                    .map(|_| rng.u64_in(0..key_space))
                    .collect()
            })
            .collect();
        let distinct: std::collections::HashSet<u64> =
            sequences.iter().flatten().copied().collect();
        let total_lookups = (threads * lookups_per_thread) as u64;

        std::thread::scope(|s| {
            for seq in &sequences {
                let (cache, invocations, barrier) = (&cache, &invocations, &barrier);
                s.spawn(move || {
                    barrier.wait();
                    for &k in seq {
                        let v = cache.get_or_insert_with(k, || {
                            invocations[k as usize].fetch_add(1, Ordering::SeqCst);
                            k.wrapping_mul(2654435761)
                        });
                        assert_eq!(v, k.wrapping_mul(2654435761));
                    }
                });
            }
        });

        let stats = cache.stats();
        assert_eq!(
            stats.hits + stats.misses,
            total_lookups,
            "every lookup counted exactly once"
        );
        assert_eq!(
            stats.misses,
            distinct.len() as u64,
            "one miss per distinct key"
        );
        assert_eq!(
            stats.entries,
            distinct.len(),
            "entries exact under sharding"
        );
        for (k, count) in invocations.iter().enumerate() {
            let expected = u64::from(distinct.contains(&(k as u64)));
            assert_eq!(
                count.load(Ordering::SeqCst),
                expected,
                "key {k} computed exactly once"
            );
        }
    });
}
