//! Property-based tests of the hardware models: efficiencies stay in
//! (0, 1], costs are positive, monotone where physics demands it, and
//! hardware evolution composes. Runs on the std-only `twocs-testkit`
//! case driver (deterministic seeds, no external deps).

use twocs_hw::gemm::{GemmModel, GemmShape};
use twocs_hw::memops::{MemOpKind, MemOpModel};
use twocs_hw::network::LinkSpec;
use twocs_hw::{DeviceSpec, HwEvolution, Precision};
use twocs_testkit::{cases, Rng};

fn shape(rng: &mut Rng) -> GemmShape {
    GemmShape::batched(
        rng.u64_in(1..8192),
        rng.u64_in(1..8192),
        rng.u64_in(1..8192),
        rng.u64_in(1..64),
    )
}

#[test]
fn gemm_efficiency_in_unit_interval() {
    cases(128, |rng| {
        let s = shape(rng);
        let model = GemmModel::default();
        let eff = model.select_kernel(s).efficiency;
        assert!(eff > 0.0 && eff <= 1.0, "{s}: {eff}");
    });
}

#[test]
fn gemm_time_at_least_ideal() {
    // Modelled time can never beat ideal peak math time.
    cases(128, |rng| {
        let s = shape(rng);
        let dev = DeviceSpec::mi210();
        let t = dev.gemm_time(s, Precision::Fp16);
        let ideal = s.flops() as f64 / dev.peak_flops(Precision::Fp16);
        assert!(t >= ideal, "{s}: t {t} < ideal {ideal}");
        assert!(t.is_finite() && t > 0.0);
    });
}

#[test]
fn gemm_time_monotone_in_each_dim() {
    cases(128, |rng| {
        let (m, n, k) = (
            rng.u64_in(64..2048),
            rng.u64_in(64..2048),
            rng.u64_in(64..2048),
        );
        let dev = DeviceSpec::mi210();
        let base = dev.gemm_time(GemmShape::new(m, n, k), Precision::Fp16);
        // Quadrupling any dimension (with room in the catalog) cannot
        // reduce time below the base minus launch jitter.
        for bigger in [
            GemmShape::new(4 * m, n, k),
            GemmShape::new(m, 4 * n, k),
            GemmShape::new(m, n, 4 * k),
        ] {
            let t = dev.gemm_time(bigger, Precision::Fp16);
            assert!(t > 0.95 * base, "{bigger} ({t}) vs base ({base})");
        }
    });
}

#[test]
fn lower_precision_is_never_slower_for_big_gemms() {
    for exp in 9u64..12 {
        let dev = DeviceSpec::mi210();
        let d = 1u64 << exp;
        let s = GemmShape::new(d, d, d);
        let t32 = dev.gemm_time(s, Precision::Fp32);
        let t16 = dev.gemm_time(s, Precision::Fp16);
        let t8 = dev.gemm_time(s, Precision::Fp8);
        assert!(t16 <= t32 && t8 <= t16);
    }
}

#[test]
fn memop_time_linear_in_elements() {
    cases(128, |rng| {
        let elements = rng.u64_in(1 << 16..1 << 26);
        let model = MemOpModel::default();
        let t1 = model.kernel_time(MemOpKind::LayerNorm, elements, 2, 1e12);
        let t2 = model.kernel_time(MemOpKind::LayerNorm, 2 * elements, 2, 1e12);
        assert!((t2 / t1 - 2.0).abs() < 1e-6);
    });
}

#[test]
fn transfer_time_monotone_and_bounded() {
    cases(128, |rng| {
        let bw_gb = rng.f64_in(10.0..500.0);
        let latency_us = rng.f64_in(0.0..50.0);
        let bytes = rng.u64_in(1..1 << 32);
        let link = LinkSpec::new(bw_gb * 1e9, latency_us * 1e-6, 4e6).unwrap();
        let t = link.transfer_time(bytes);
        // Never faster than ideal wire time + latency.
        let ideal = latency_us * 1e-6 + bytes as f64 / (bw_gb * 1e9);
        assert!(t >= ideal - 1e-15);
        // And monotone in size.
        assert!(link.transfer_time(bytes + 1024) >= t);
    });
}

#[test]
fn evolution_composes() {
    cases(64, |rng| {
        let r1 = rng.f64_in(1.0..4.0);
        let r2 = rng.f64_in(1.0..4.0);
        let dev = DeviceSpec::mi210();
        let once = HwEvolution::flop_vs_bw(r1 * r2).apply(&dev);
        let twice = HwEvolution::flop_vs_bw(r2).apply(&HwEvolution::flop_vs_bw(r1).apply(&dev));
        let a = once.peak_flops(Precision::Fp16);
        let b = twice.peak_flops(Precision::Fp16);
        assert!(((a - b) / a).abs() < 1e-12);
        assert!(
            (once.network().ring_allreduce_bandwidth()
                - twice.network().ring_allreduce_bandwidth())
            .abs()
                < 1.0
        );
    });
}

#[test]
fn evolution_preserves_catalog_invariants() {
    cases(16, |rng| {
        let ratio = rng.f64_in(1.0..8.0);
        for dev in DeviceSpec::catalog() {
            let fut = HwEvolution::flop_vs_bw(ratio).apply(&dev);
            assert!(fut.peak_flops(Precision::Fp16) >= dev.peak_flops(Precision::Fp16));
            assert_eq!(fut.mem_capacity(), dev.mem_capacity());
            // A large GEMM gets faster, a tiny one is launch-bound.
            let big = GemmShape::new(8192, 8192, 8192);
            assert!(fut.gemm_time(big, Precision::Fp16) < dev.gemm_time(big, Precision::Fp16));
        }
    });
}
