//! The operator vocabulary of a Transformer training iteration.
//!
//! Each [`Op`] is a named instance of a GEMM, a bandwidth-bound kernel, or
//! a communication primitive, with enough shape information to (a) count
//! its algorithmic cost (FLOPs / bytes, the paper's §3 analysis) and
//! (b) price its execution time on a `twocs-hw` device (the §4 empirical
//! analysis).

use std::fmt;
use twocs_collectives::{Collective, CollectiveCostModel};
use twocs_hw::gemm::GemmShape;
use twocs_hw::memops::MemOpKind;
use twocs_hw::{DeviceSpec, Precision};
use twocs_sim::OpClass;

/// Which parallelism a communication op belongs to — determines whether it
/// is serialized (TP, EP, PP) or overlappable (DP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CommScope {
    /// Tensor-parallel activation/error all-reduce: on the critical path.
    TensorParallel,
    /// Data-parallel gradient all-reduce: overlappable with backprop.
    DataParallel,
    /// Expert-parallel all-to-all (MoE): on the critical path.
    Expert,
    /// Pipeline-parallel stage boundary transfer: on the critical path.
    Pipeline,
}

/// What an [`Op`] computes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum OpKind {
    /// A (batched) matrix multiplication.
    Gemm(GemmShape),
    /// A bandwidth-bound kernel over `elements` elements.
    MemOp {
        /// Kernel family.
        kind: MemOpKind,
        /// Logical element count.
        elements: u64,
    },
    /// An all-reduce over `participants` devices.
    AllReduce {
        /// Payload in elements.
        elements: u64,
        /// Group size.
        participants: u64,
        /// Which parallelism issued it.
        scope: CommScope,
    },
    /// A reduce-scatter over `participants` devices (sequence parallelism,
    /// ZeRO gradient sharding).
    ReduceScatter {
        /// Payload in elements (full tensor; each rank keeps 1/N).
        elements: u64,
        /// Group size.
        participants: u64,
        /// Which parallelism issued it.
        scope: CommScope,
    },
    /// An all-gather over `participants` devices.
    AllGather {
        /// Payload in elements (full gathered tensor).
        elements: u64,
        /// Group size.
        participants: u64,
        /// Which parallelism issued it.
        scope: CommScope,
    },
    /// An all-to-all over `participants` devices.
    AllToAll {
        /// Payload in elements (per device).
        elements: u64,
        /// Group size.
        participants: u64,
        /// Which parallelism issued it.
        scope: CommScope,
    },
    /// A point-to-point activation transfer (pipeline stage boundary).
    PointToPoint {
        /// Payload in elements.
        elements: u64,
    },
}

/// One named operator instance.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Op {
    name: &'static str,
    kind: OpKind,
}

impl Op {
    /// Create a named operator.
    #[must_use]
    pub fn new(name: &'static str, kind: OpKind) -> Self {
        Self { name, kind }
    }

    /// Shorthand for a GEMM op.
    #[must_use]
    pub fn gemm(name: &'static str, shape: GemmShape) -> Self {
        Self::new(name, OpKind::Gemm(shape))
    }

    /// Shorthand for a bandwidth-bound op.
    #[must_use]
    pub fn memop(name: &'static str, kind: MemOpKind, elements: u64) -> Self {
        Self::new(name, OpKind::MemOp { kind, elements })
    }

    /// Shorthand for an all-reduce.
    #[must_use]
    pub fn allreduce(
        name: &'static str,
        elements: u64,
        participants: u64,
        scope: CommScope,
    ) -> Self {
        Self::new(
            name,
            OpKind::AllReduce {
                elements,
                participants,
                scope,
            },
        )
    }

    /// Operator label (stable across instances, e.g. `"fc1_gemm"`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The operator's kind and shape.
    #[must_use]
    pub fn kind(&self) -> &OpKind {
        &self.kind
    }

    /// Whether this is a communication op.
    #[must_use]
    pub fn is_comm(&self) -> bool {
        matches!(
            self.kind,
            OpKind::AllReduce { .. }
                | OpKind::ReduceScatter { .. }
                | OpKind::AllGather { .. }
                | OpKind::AllToAll { .. }
                | OpKind::PointToPoint { .. }
        )
    }

    /// Whether this is a *serialized* (critical-path) communication op —
    /// everything except DP gradient all-reduces.
    #[must_use]
    pub fn is_serialized_comm(&self) -> bool {
        match self.kind {
            OpKind::AllReduce { scope, .. }
            | OpKind::ReduceScatter { scope, .. }
            | OpKind::AllGather { scope, .. }
            | OpKind::AllToAll { scope, .. } => scope != CommScope::DataParallel,
            OpKind::PointToPoint { .. } => true,
            _ => false,
        }
    }

    /// The communication scope, if this is a communication op.
    #[must_use]
    pub fn comm_scope(&self) -> Option<CommScope> {
        match self.kind {
            OpKind::AllReduce { scope, .. }
            | OpKind::ReduceScatter { scope, .. }
            | OpKind::AllGather { scope, .. }
            | OpKind::AllToAll { scope, .. } => Some(scope),
            OpKind::PointToPoint { .. } => Some(CommScope::Pipeline),
            _ => None,
        }
    }

    /// Simulator op class for breakdowns.
    #[must_use]
    pub fn class(&self) -> OpClass {
        match self.kind {
            OpKind::Gemm(_) => OpClass::Gemm,
            OpKind::MemOp { .. } => OpClass::MemOp,
            _ => OpClass::Comm,
        }
    }

    /// Algorithmic compute cost in FLOPs (zero for communication).
    #[must_use]
    pub fn flops(&self) -> u64 {
        match &self.kind {
            OpKind::Gemm(shape) => shape.flops(),
            // Element-wise math is negligible next to GEMMs; the paper's
            // algorithmic analysis counts only GEMM FLOPs (§3.3).
            _ => 0,
        }
    }

    /// Bytes this op communicates (zero for compute), at `precision`.
    #[must_use]
    pub fn comm_bytes(&self, precision: Precision) -> u64 {
        match self.kind {
            OpKind::AllReduce { elements, .. }
            | OpKind::AllToAll { elements, .. }
            | OpKind::PointToPoint { elements } => elements * precision.bytes(),
            // RS/AG each move half an all-reduce of the same tensor.
            OpKind::ReduceScatter { elements, .. } | OpKind::AllGather { elements, .. } => {
                elements * precision.bytes() / 2
            }
            _ => 0,
        }
    }

    /// Group size for collectives (1 otherwise).
    #[must_use]
    pub fn participants(&self) -> u64 {
        match self.kind {
            OpKind::AllReduce { participants, .. }
            | OpKind::ReduceScatter { participants, .. }
            | OpKind::AllGather { participants, .. }
            | OpKind::AllToAll { participants, .. } => participants,
            _ => 1,
        }
    }

    /// Execution time (seconds) on `device` at `precision`, pricing
    /// collectives with `comm_model`. This is the simulator's ground
    /// truth — the quantity the paper measures with rocProf.
    #[must_use]
    pub fn time_on(
        &self,
        device: &DeviceSpec,
        precision: Precision,
        comm_model: &CollectiveCostModel,
    ) -> f64 {
        match &self.kind {
            OpKind::Gemm(shape) => device.gemm_time(*shape, precision),
            OpKind::MemOp { kind, elements } => device.memop_time(*kind, *elements, precision),
            OpKind::AllReduce {
                elements,
                participants,
                ..
            } => comm_model.node_time(
                Collective::AllReduce,
                elements * precision.bytes(),
                *participants as usize,
                device.network(),
            ),
            OpKind::ReduceScatter {
                elements,
                participants,
                ..
            } => comm_model.node_time(
                Collective::ReduceScatter,
                elements * precision.bytes(),
                *participants as usize,
                device.network(),
            ),
            OpKind::AllGather {
                elements,
                participants,
                ..
            } => comm_model.node_time(
                Collective::AllGather,
                elements * precision.bytes(),
                *participants as usize,
                device.network(),
            ),
            OpKind::AllToAll {
                elements,
                participants,
                ..
            } => comm_model.node_time(
                Collective::AllToAll,
                elements * precision.bytes(),
                *participants as usize,
                device.network(),
            ),
            OpKind::PointToPoint { elements } => device
                .network()
                .intra_node()
                .transfer_time(elements * precision.bytes()),
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            OpKind::Gemm(shape) => write!(f, "{} [{shape}]", self.name),
            OpKind::MemOp { elements, .. } => write!(f, "{} [{elements} elems]", self.name),
            OpKind::AllReduce {
                elements,
                participants,
                ..
            } => write!(f, "{} [AR {elements} elems x{participants}]", self.name),
            OpKind::ReduceScatter {
                elements,
                participants,
                ..
            } => write!(f, "{} [RS {elements} elems x{participants}]", self.name),
            OpKind::AllGather {
                elements,
                participants,
                ..
            } => write!(f, "{} [AG {elements} elems x{participants}]", self.name),
            OpKind::AllToAll {
                elements,
                participants,
                ..
            } => write!(f, "{} [A2A {elements} elems x{participants}]", self.name),
            OpKind::PointToPoint { elements } => {
                write!(f, "{} [P2P {elements} elems]", self.name)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_flops_come_from_shape() {
        let op = Op::gemm("qkv_gemm", GemmShape::new(128, 256, 512));
        assert_eq!(op.flops(), 2 * 128 * 256 * 512);
        assert_eq!(op.comm_bytes(Precision::Fp16), 0);
        assert!(!op.is_comm());
        assert_eq!(op.class(), OpClass::Gemm);
    }

    #[test]
    fn allreduce_bytes_scale_with_precision() {
        let op = Op::allreduce("tp_ar", 1_000_000, 8, CommScope::TensorParallel);
        assert_eq!(op.comm_bytes(Precision::Fp16), 2_000_000);
        assert_eq!(op.comm_bytes(Precision::Fp32), 4_000_000);
        assert!(op.is_comm());
        assert!(op.is_serialized_comm());
        assert_eq!(op.participants(), 8);
    }

    #[test]
    fn dp_allreduce_is_not_serialized() {
        let op = Op::allreduce("dp_ar", 1_000, 4, CommScope::DataParallel);
        assert!(op.is_comm());
        assert!(!op.is_serialized_comm());
        assert_eq!(op.comm_scope(), Some(CommScope::DataParallel));
    }

    #[test]
    fn times_are_positive_and_sane() {
        let dev = DeviceSpec::mi210();
        let comm = CollectiveCostModel::default();
        let gemm = Op::gemm("g", GemmShape::new(4096, 4096, 4096));
        let ln = Op::memop("layernorm", MemOpKind::LayerNorm, 1 << 22);
        let ar = Op::allreduce("ar", 1 << 24, 8, CommScope::TensorParallel);
        for op in [&gemm, &ln, &ar] {
            let t = op.time_on(&dev, Precision::Fp16, &comm);
            assert!(t > 0.0 && t < 1.0, "{op}: {t}");
        }
        // GEMM dominates LayerNorm of comparable logical size.
        assert!(
            gemm.time_on(&dev, Precision::Fp16, &comm) > ln.time_on(&dev, Precision::Fp16, &comm)
        );
    }

    #[test]
    fn display_includes_shape_info() {
        let op = Op::gemm("fc1_gemm", GemmShape::new(2048, 4096, 1024));
        assert!(op.to_string().contains("fc1_gemm"));
        assert!(op.to_string().contains("2048"));
    }
}
